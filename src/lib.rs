//! Workspace façade crate: re-exports every Granula crate so examples and
//! cross-crate integration tests have a single dependency root.

pub use gpsim_cluster as cluster;
pub use gpsim_graph as graph;
pub use gpsim_platforms as platforms;
pub use granula as core;
pub use granula_archive as archive;
pub use granula_model as model;
pub use granula_monitor as monitor;
pub use granula_viz as viz;
