//! Pipeline-level property tests: the Granula evaluation process must be
//! total (never panic) and degrade gracefully under monitoring loss —
//! the reality of scraping logs from distributed platforms.

use proptest::prelude::*;

use gpsim_graph::gen::{datagen_like, GenConfig};
use gpsim_platforms::{Algorithm, CostModel, GiraphPlatform, JobConfig, PlatformRun};
use granula::models::giraph_model;
use granula::process::EvaluationProcess;
use granula_archive::JobMeta;

fn platform_run() -> PlatformRun {
    let g = datagen_like(&GenConfig::datagen(800, 17));
    let cfg = JobConfig::new(
        "prop",
        "dgt",
        Algorithm::Bfs { source: 1 },
        4,
        CostModel::giraph_like(),
    );
    GiraphPlatform::default()
        .run(&g, &cfg)
        .expect("simulation runs")
}

fn meta() -> JobMeta {
    JobMeta {
        job_id: "prop".into(),
        platform: "Giraph".into(),
        algorithm: "BFS".into(),
        dataset: "dgt".into(),
        nodes: 4,
        model: String::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dropping an arbitrary subset of monitored events never panics the
    /// pipeline; the archive shrinks, and validation reports the damage
    /// instead of failing.
    #[test]
    fn evaluation_total_under_event_loss(keep_seed in any::<u64>(), drop_pct in 0u32..100) {
        let run = platform_run();
        let mut state = keep_seed | 1;
        let mut lossy = run.clone();
        lossy.events.retain(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % 100 >= drop_pct as u64
        });
        let process = EvaluationProcess::new(giraph_model());
        let report = process.evaluate(&lossy, meta());
        prop_assert!(report.archive.num_operations() <= run.events.len());
        // Validation coverage is a valid fraction.
        let c = report.validation.coverage();
        prop_assert!((0.0..=1.0).contains(&c));
        // Domain breakdown still computes when the root survived.
        if report.archive.job().is_some() {
            let _ = granula::metrics::DomainBreakdown::from_archive(&report.archive);
        }
    }

    /// Corrupting timestamps (clock skew per node) still assembles, and
    /// after anchor-based correction the archive matches the unskewed one.
    #[test]
    fn skew_correction_restores_archive(offsets in prop::collection::vec(0i64..400_000, 4)) {
        let run = platform_run();
        let mut skewed = run.clone();
        let node_of = |i: usize| format!("node{:03}", 300 + i);
        for e in &mut skewed.events {
            for (i, off) in offsets.iter().enumerate() {
                if e.node == node_of(i) {
                    e.time_us = e.time_us.saturating_add(*off as u64);
                }
            }
        }
        // The analyst knows the offsets (e.g. from barrier anchors).
        let mut process = EvaluationProcess::new(giraph_model());
        for (i, off) in offsets.iter().enumerate() {
            process.skew.set_offset(node_of(i), -off);
        }
        let corrected = process.evaluate(&skewed, meta());
        let reference = EvaluationProcess::new(giraph_model()).evaluate(&run, meta());
        prop_assert_eq!(
            corrected.archive.num_operations(),
            reference.archive.num_operations()
        );
        prop_assert_eq!(
            corrected.archive.total_runtime_us(),
            reference.archive.total_runtime_us()
        );
    }

    /// The model filter is monotone: a deeper model never keeps fewer
    /// events than a shallower one.
    #[test]
    fn filter_monotone_in_depth(depth_a in 1u8..=4, depth_b in 1u8..=4) {
        let (lo, hi) = (depth_a.min(depth_b), depth_a.max(depth_b));
        let run = platform_run();
        let full = giraph_model();
        let shallow = EvaluationProcess::new(
            full.truncated(granula_model::AbstractionLevel::from_depth(lo)),
        )
        .evaluate(&run, meta());
        let deep = EvaluationProcess::new(
            full.truncated(granula_model::AbstractionLevel::from_depth(hi)),
        )
        .evaluate(&run, meta());
        prop_assert!(shallow.events_kept <= deep.events_kept);
        prop_assert!(shallow.archive.num_operations() <= deep.archive.num_operations());
    }
}
