//! The MODELING_GUIDE.md workflow, executed end-to-end as a test so the
//! documentation cannot rot: instrument (hand-written logs) → domain model
//! → evaluate → read feedback → refine → derive → share.

use granula_archive::{from_json, to_json, JobArchive, JobMeta};
use granula_model::{
    model_from_json, model_to_json, rules::derive_all_durations, AbstractionLevel, ChildSelector,
    DerivationRule, InfoRequirement, OperationTypeDef, OperationTypeId, PerformanceModel,
    RuleEngine, ValidationIssue,
};
use granula_monitor::{Assembler, EventFilter};

/// The "scraped" logs of a fictional two-phase platform.
const LOGS: &str = "\
[noise] platform booting
GRANULA 0 head driver START CrunchJob-0@Job-0
GRANULA 0 head driver START Warmup-0@Job-0 parent=CrunchJob-0@Job-0
GRANULA 1000000 head driver END Warmup-0@Job-0
GRANULA 1000000 head driver START Crunch-0@Job-0 parent=CrunchJob-0@Job-0
GRANULA 1000000 nodeA exec-1 START Chew-0@Executor-1 parent=Crunch-0@Job-0
GRANULA 1000000 nodeB exec-2 START Chew-0@Executor-2 parent=Crunch-0@Job-0
GRANULA 1200000 nodeA exec-1 INFO Chew-0@Executor-1 Records=100000
GRANULA 3000000 nodeA exec-1 END Chew-0@Executor-1
GRANULA 5000000 nodeB exec-2 INFO Chew-0@Executor-2 Records=400000
GRANULA 5000000 nodeB exec-2 END Chew-0@Executor-2
GRANULA 5100000 head driver END Crunch-0@Job-0
GRANULA 5100000 head driver END CrunchJob-0@Job-0
";

fn domain_model() -> PerformanceModel {
    PerformanceModel::new("crunch-v1", "CrunchPlatform")
        .with_type(OperationTypeDef::new(
            "Job",
            "CrunchJob",
            AbstractionLevel::Domain,
        ))
        .with_type(
            OperationTypeDef::new("Job", "Warmup", AbstractionLevel::Domain)
                .child_of("Job", "CrunchJob"),
        )
        .with_type(
            OperationTypeDef::new("Job", "Crunch", AbstractionLevel::Domain)
                .child_of("Job", "CrunchJob")
                .with_rule(DerivationRule::MaxChildren {
                    info: "Duration".into(),
                    select: ChildSelector::MissionKind("Chew".into()),
                    output: "SlowestExecutor".into(),
                }),
        )
}

#[test]
fn guide_workflow_end_to_end() {
    // Iteration 0: domain model only. The executor-level `Chew` events are
    // filtered away — and validation has nothing to complain about.
    let model0 = domain_model();
    let events = EventFilter::from_model(&model0).apply(
        LOGS.lines()
            .filter_map(granula_monitor::parse_line)
            .collect(),
    );
    let outcome = Assembler::new().assemble(events);
    assert!(outcome.warnings.is_empty());
    let mut tree = outcome.tree;
    derive_all_durations(&mut tree);
    RuleEngine::apply(&model0, &mut tree);
    let report = granula_model::validate::validate(&model0, &tree);
    assert!(report.is_clean(), "{:?}", report.issues);
    assert_eq!(tree.len(), 3, "domain model keeps 3 operations");

    // Feedback-driven decision: Crunch takes 4.1s of the 5.1s job. Refine.
    let crunch = tree
        .by_mission_kind("Crunch")
        .next()
        .expect("crunch archived")
        .duration_us()
        .expect("derived");
    assert_eq!(crunch, 4_100_000);

    // Iteration 1: refine Crunch into per-executor Chew operations.
    let mut model1 = domain_model();
    model1
        .refine(
            &OperationTypeId::new("Job", "Crunch"),
            vec![
                OperationTypeDef::new("Executor", "Chew", AbstractionLevel::System)
                    .parallel()
                    .with_info(InfoRequirement::optional("Records"))
                    .with_rule(DerivationRule::RatePerSecond {
                        amount: "Records".into(),
                        output: "Throughput".into(),
                    }),
            ],
        )
        .expect("refinement applies");

    let events = EventFilter::from_model(&model1).apply(
        LOGS.lines()
            .filter_map(granula_monitor::parse_line)
            .collect(),
    );
    let outcome = Assembler::new().assemble(events);
    let mut tree = outcome.tree;
    derive_all_durations(&mut tree);
    RuleEngine::apply(&model1, &mut tree);
    assert_eq!(tree.len(), 5, "refined model reveals the executors");

    // Derived metrics answer the imbalance question.
    let crunch_id = tree.by_mission_kind("Crunch").next().unwrap().id;
    assert_eq!(
        tree.op(crunch_id).info_i64("SlowestExecutor"),
        Some(4_000_000)
    );
    let throughputs: Vec<f64> = tree
        .by_mission_kind("Chew")
        .filter_map(|o| o.info_f64("Throughput"))
        .collect();
    assert_eq!(throughputs.len(), 2);
    assert!(throughputs.iter().any(|&t| (t - 50_000.0).abs() < 1.0)); // 100k / 2s
    assert!(throughputs.iter().any(|&t| (t - 100_000.0).abs() < 1.0)); // 400k / 4s

    // Validation guards the refined model too.
    let report = granula_model::validate::validate(&model1, &tree);
    assert!(report.is_clean(), "{:?}", report.issues);

    // Sharing: both the archive and the model survive JSON.
    let archive = JobArchive::new(
        JobMeta {
            job_id: "tutorial".into(),
            ..Default::default()
        },
        tree,
    );
    let back = from_json(&to_json(&archive).unwrap()).unwrap();
    assert_eq!(back, archive);
    let model_back = model_from_json(&model_to_json(&model1).unwrap()).unwrap();
    assert_eq!(model_back, model1);
}

#[test]
fn guide_feedback_signals_fire_when_things_go_wrong() {
    // Model a type the platform never performs, and feed it an operation it
    // does not know: both feedback signals of the guide's §3 appear.
    let model = domain_model().with_type(
        OperationTypeDef::new("Job", "Shutdown", AbstractionLevel::Domain)
            .child_of("Job", "CrunchJob"),
    );
    let events: Vec<_> = LOGS
        .lines()
        .filter_map(granula_monitor::parse_line)
        .collect();
    let outcome = Assembler::new().assemble(events);
    let mut tree = outcome.tree;
    derive_all_durations(&mut tree);
    let report = granula_model::validate::validate(&model, &tree);
    assert!(report.issues.iter().any(
        |i| matches!(i, ValidationIssue::UnobservedType { ty } if ty.mission_kind == "Shutdown")
    ));
    assert!(report.issues.iter().any(
        |i| matches!(i, ValidationIssue::UnmodeledOperation { label, .. } if label.contains("Chew"))
    ));
    assert!(report.coverage() < 1.0);
}
