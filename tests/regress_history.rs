//! Regression-service integration tests over the committed fixture
//! history (`tests/fixtures/history/`): six synthetic fig5 runs
//! (Giraph + PowerGraph, BFS on dg1000) whose timings carry sub-band
//! jitter around the deterministic simulation.
//!
//! Regenerate the fixtures after an intentional performance change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test regress_history
//! ```

use std::path::{Path, PathBuf};

use granula::experiment::{default_threads, dg1000, dg1000_quick, par_map, Platform};
use granula_archive::{ArchiveStore, RunMeta};
use granula_regress::{analyze, scale_timings, scaled_store, History, Status, Tolerance, MAKESPAN};

/// Sub-band (≤0.25%) jitter factors for the six fixture runs: large
/// enough to give the t-tests real variance, far inside the ±2%
/// tolerance band so the history itself can never flag.
const JITTER: [f64; 6] = [0.9985, 1.0022, 0.9993, 1.0011, 1.0004, 0.9978];

/// Epoch base + 1 h spacing for the fixture run headers.
const T0: u64 = 1_700_000_000_000_000;
const HOUR_US: u64 = 3_600_000_000;

fn history_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/history")
}

/// The fig5 experiment both fixture and "current" stores are built from.
fn fig5_store() -> ArchiveStore {
    let platforms = [Platform::Giraph, Platform::PowerGraph];
    let results = par_map(&platforms, default_threads(), |p| dg1000(*p));
    let mut store = ArchiveStore::new();
    for result in results {
        store
            .add(result.report.archive)
            .expect("fig5 job ids are unique");
    }
    store
}

fn regenerate_fixtures(base: &ArchiveStore) {
    std::fs::create_dir_all(history_dir()).expect("create fixture dir");
    for (i, factor) in JITTER.iter().enumerate() {
        let run = RunMeta::new(
            format!("r{}", i + 1),
            T0 + i as u64 * HOUR_US,
            "fixture: fig5 dg1000 synthetic history",
        );
        let store = scaled_store(base, *factor).with_run(run);
        let path = history_dir().join(format!("r{}.gar", i + 1));
        store.save(&path).expect("write fixture store");
        println!("regenerated {}", path.display());
    }
}

#[test]
fn fresh_fig5_run_is_ok_and_injected_slowdown_is_regressed() {
    let base = fig5_store();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        regenerate_fixtures(&base);
    }

    // An unchanged run against the committed history: inside the band.
    let mut history = History::load_dir(history_dir()).expect("fixture history exists");
    assert_eq!(history.len(), JITTER.len(), "committed fixture count");
    history.push_latest(base.clone(), "current.gar");
    let (report, _) = analyze(&mut history, &Tolerance::default());
    assert_eq!(
        report.verdict,
        Status::Ok,
        "unchanged fig5 run must pass: {report:?}"
    );
    assert_eq!(report.runs.len(), JITTER.len() + 1);
    assert_eq!(report.runs.last().unwrap().run_id, "current");
    assert!(
        report.metrics.len() >= 4,
        "makespan + phases for two platforms, got {}",
        report.metrics.len()
    );
    for m in &report.metrics {
        assert_eq!(m.status, Status::Ok, "{} {}: {m:?}", m.job_id, m.metric);
        assert!(
            m.effect.abs() < 0.02,
            "{} {}: effect {}",
            m.job_id,
            m.metric,
            m.effect
        );
    }

    // The same run slowed by 5%: every makespan regresses, and the first
    // offending run is the run under test.
    let mut history = History::load_dir(history_dir()).expect("fixture history exists");
    history.push_latest(scaled_store(&base, 1.05), "slow.gar");
    let (report, _) = analyze(&mut history, &Tolerance::default());
    assert_eq!(report.verdict, Status::Regressed);
    let makespans: Vec<_> = report
        .metrics
        .iter()
        .filter(|m| m.metric == MAKESPAN)
        .collect();
    assert_eq!(makespans.len(), 2, "one makespan per platform");
    for m in makespans {
        assert_eq!(m.status, Status::Regressed, "{}: {m:?}", m.job_id);
        assert_eq!(
            m.first_offending_run.as_deref(),
            Some("current"),
            "{}: the slowdown starts at the run under test",
            m.job_id
        );
        assert!(
            (m.effect - 0.05).abs() < 0.01,
            "{}: effect {}",
            m.job_id,
            m.effect
        );
        assert!(m.p_value < 1e-3, "{}: p {}", m.job_id, m.p_value);
    }
}

#[test]
fn fixture_headers_order_the_series() {
    let history = History::load_dir(history_dir()).expect("fixture history exists");
    let ids: Vec<_> = history
        .runs()
        .iter()
        .map(|r| r.meta.run_id.clone())
        .collect();
    assert_eq!(ids, ["r1", "r2", "r3", "r4", "r5", "r6"]);
    for (i, run) in history.runs().iter().enumerate() {
        assert_eq!(run.meta.timestamp_us, T0 + i as u64 * HOUR_US);
        assert!(!run.meta.label.is_empty(), "fixtures carry a label");
    }
}

/// A shift that happened *inside* the history (not at the run under
/// test) is attributed to its onset run.
#[test]
fn mid_history_shift_names_the_onset_run() {
    let result = dg1000_quick(Platform::Giraph, 8_000);
    let mut base = ArchiveStore::new();
    base.add(result.report.archive).unwrap();

    let mut history = History::new();
    for i in 0..10 {
        let factor = JITTER[i % JITTER.len()] * if i >= 5 { 1.06 } else { 1.0 };
        let run = RunMeta::new(format!("r{i}"), T0 + i as u64 * HOUR_US, "");
        history.push_store(
            scaled_store(&base, factor).with_run(run),
            format!("r{i}.gar"),
        );
    }
    let (report, _) = analyze(&mut history, &Tolerance::default());
    assert_eq!(report.verdict, Status::Regressed);
    let makespan = report
        .metrics
        .iter()
        .find(|m| m.metric == MAKESPAN)
        .expect("quick run has a makespan");
    assert_eq!(makespan.status, Status::Regressed);
    assert_eq!(
        makespan.first_offending_run.as_deref(),
        Some("r5"),
        "onset run, not the detection split: {makespan:?}"
    );
    assert_eq!(makespan.n_baseline, 5);
}

/// Satellite: upserting an archive into a live history invalidates the
/// engine's cached query results, so re-extracted series see the new
/// timings instead of stale memos.
#[test]
fn upsert_mid_ingest_invalidates_cached_series() {
    let result = dg1000_quick(Platform::Giraph, 8_000);
    let job_id = result.report.archive.meta.job_id.clone();
    let mut base = ArchiveStore::new();
    base.add(result.report.archive).unwrap();

    let mut history = History::new();
    for (i, factor) in JITTER.iter().take(4).enumerate() {
        let run = RunMeta::new(format!("r{i}"), T0 + i as u64 * HOUR_US, "");
        history.push_store(
            scaled_store(&base, *factor).with_run(run),
            format!("r{i}.gar"),
        );
    }
    let first = history.series();

    // Replace the newest run's archive with a 10%-slower tree, through
    // the engine so its result cache is invalidated.
    let last = history.len() - 1;
    let mut slowed = history
        .run_mut(last)
        .engine
        .store()
        .get(&job_id)
        .unwrap()
        .clone();
    scale_timings(&mut slowed.tree, 1.10);
    history.run_mut(last).engine.upsert(slowed);
    assert!(
        history.run_mut(last).engine.stats().invalidations > 0,
        "the first extraction cached phase queries for this job"
    );

    let second = history.series();
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!((&a.job_id, &a.metric), (&b.job_id, &b.metric));
        assert_eq!(
            a.values[..last],
            b.values[..last],
            "{}: history untouched",
            a.metric
        );
        let ratio = b.values[last] / a.values[last];
        assert!(
            (ratio - 1.10).abs() < 0.01,
            "{}: upserted timings must be served fresh (ratio {ratio})",
            a.metric
        );
    }
}
