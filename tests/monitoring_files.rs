//! File-based monitoring integration: platform logs written to disk in the
//! per-process layout a real scraper sees, collected back, and fed through
//! the pipeline — must reproduce the in-memory archive exactly.

use std::fs;

use gpsim_graph::gen::{datagen_like, GenConfig};
use gpsim_platforms::{Algorithm, CostModel, GiraphPlatform, JobConfig, PlatformRun};
use granula::models::giraph_model;
use granula::process::EvaluationProcess;
use granula_archive::JobMeta;
use granula_monitor::{collect_dir, write_env_logs, write_logs};

fn platform_run() -> PlatformRun {
    let g = datagen_like(&GenConfig::datagen(1_200, 21));
    let cfg = JobConfig::new(
        "files",
        "dgt",
        Algorithm::Bfs { source: 1 },
        4,
        CostModel::giraph_like(),
    );
    GiraphPlatform::default()
        .run(&g, &cfg)
        .expect("simulation runs")
}

fn meta() -> JobMeta {
    JobMeta {
        job_id: "files".into(),
        platform: "Giraph".into(),
        algorithm: "BFS".into(),
        dataset: "dgt".into(),
        nodes: 4,
        model: String::new(),
    }
}

#[test]
fn disk_roundtrip_reproduces_the_archive() {
    let run = platform_run();
    let dir = std::env::temp_dir().join(format!("granula-files-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    // "Deploy": the platform's processes write their logs; the environment
    // monitor writes per-node sample files.
    let log_files = write_logs(&run.events, &dir).expect("logs written");
    let env_files = write_env_logs(&run.env_samples, &dir).expect("env written");
    assert!(log_files >= 4, "one file per process at least");
    assert_eq!(env_files, 4, "one env file per node");

    // "Scrape": collect the directory.
    let (events, samples, stats) = collect_dir(&dir).expect("collect");
    assert_eq!(stats.events, run.events.len());
    assert_eq!(stats.samples, run.env_samples.len());

    // Evaluate both paths and compare archives.
    let from_disk = PlatformRun {
        events,
        env_samples: samples,
        ..run.clone()
    };
    let process = EvaluationProcess::new(giraph_model());
    let a = process.evaluate(&run, meta());
    let b = process.evaluate(&from_disk, meta());
    assert_eq!(a.archive, b.archive, "disk roundtrip must be lossless");
    assert!(b.validation.is_clean());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_log_file_degrades_gracefully() {
    let run = platform_run();
    let dir = std::env::temp_dir().join(format!("granula-files-trunc-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    write_logs(&run.events, &dir).expect("logs written");

    // A node died: truncate one worker's log to half its lines.
    let victim = fs::read_dir(&dir)
        .expect("dir listing")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().contains("worker-2"))
        })
        .expect("worker-2 log exists");
    let content = fs::read_to_string(&victim).expect("readable");
    let lines: Vec<&str> = content.lines().collect();
    fs::write(&victim, lines[..lines.len() / 2].join("\n")).expect("truncate");

    let (events, _, _) = collect_dir(&dir).expect("collect");
    assert!(events.len() < run.events.len());
    let report = EvaluationProcess::new(giraph_model()).evaluate(
        &PlatformRun {
            events,
            ..run.clone()
        },
        meta(),
    );
    // The pipeline survives; the damage shows up as warnings/unclosed ops,
    // which is exactly what failure diagnosis consumes.
    let diagnosis = granula::diagnose(&report.archive, &report.assembly_warnings);
    assert!(!diagnosis.is_healthy());

    let _ = fs::remove_dir_all(&dir);
}
