//! Figure-level integration tests: every table/figure claim of the paper,
//! checked at fast (down-sampled, volume-scaled) configuration.
//!
//! The *shapes* asserted here are the ones EXPERIMENTS.md records at full
//! dg1000 scale via the `fig*` binaries.

use granula::experiment::{dg1000_quick, Platform};
use granula::metrics::{worker_imbalance, Phase};
use granula::models::{giraph_model, powergraph_model};
use granula::registry;
use granula_monitor::ResourceKind;
use granula_viz::tree::render_model;
use granula_viz::{BreakdownChart, BreakdownRow, GanttChart, TimelineChart};

/// Table 1: the registry matches the paper's table.
#[test]
fn table1_contents() {
    let t = registry::table1();
    assert_eq!(t.len(), 7);
    let giraph = t.iter().find(|p| p.name == "Giraph").unwrap();
    assert_eq!(giraph.programming_model, "Pregel");
    assert_eq!(giraph.file_system, "HDFS");
    let pg = t.iter().find(|p| p.name == "PowerGraph").unwrap();
    assert_eq!(pg.programming_model, "GAS");
    assert_eq!(pg.provisioning, "OpenMPI");
}

/// Figure 4: the Giraph model has the paper's operations at the right
/// levels, and the rendering shows all of them.
#[test]
fn fig4_model_structure() {
    let rendered = render_model(&giraph_model());
    for op in [
        "GiraphJob",
        "Startup",
        "LoadGraph",
        "ProcessGraph",
        "OffloadGraph",
        "Cleanup",
        "JobStartup",
        "LaunchWorkers",
        "LocalStartup",
        "LocalLoad",
        "LoadHdfsData",
        "Superstep",
        "LocalSuperstep",
        "SyncZookeeper",
        "PreStep",
        "Compute",
        "Message",
        "PostStep",
        "LocalOffload",
        "OffloadHdfsData",
        "AbortWorkers",
        "ClientCleanup",
        "ServerCleanup",
        "ZkCleanup",
    ] {
        assert!(rendered.contains(op), "Figure 4 operation `{op}` missing");
    }
    let pg = render_model(&powergraph_model());
    for op in [
        "SequentialLoad",
        "DistributeEdges",
        "FinalizeGraph",
        "Gather",
        "Apply",
        "Scatter",
    ] {
        assert!(pg.contains(op), "PowerGraph operation `{op}` missing");
    }
}

/// Figure 5 shape: Giraph has three substantial phases; PowerGraph is
/// dominated by I/O with tiny processing; PowerGraph is several times
/// slower end-to-end.
#[test]
fn fig5_shape() {
    let g = dg1000_quick(Platform::Giraph, 8_000);
    let p = dg1000_quick(Platform::PowerGraph, 8_000);

    let gb = &g.breakdown;
    assert!(gb.fraction(Phase::Setup) > 0.10);
    assert!(gb.fraction(Phase::InputOutput) > 0.25);
    assert!(gb.fraction(Phase::Processing) > 0.10);

    let pb = &p.breakdown;
    assert!(pb.fraction(Phase::InputOutput) > 0.85);
    assert!(pb.fraction(Phase::Processing) < 0.10);
    assert!(pb.total_us > 3 * gb.total_us);

    // And the chart renders both rows.
    let mut chart = BreakdownChart::new();
    for (name, b) in [("Giraph", gb), ("PowerGraph", pb)] {
        chart.add_row(
            BreakdownRow::new(name, b.total_us)
                .with_segment("Setup", b.setup_us)
                .with_segment("IO", b.io_us)
                .with_segment("Proc", b.processing_us),
        );
    }
    let text = chart.render_text(60);
    assert!(text.contains("Giraph") && text.contains("PowerGraph"));
}

/// Figure 6 observations: Giraph setup is CPU-idle, LoadGraph is CPU-heavy
/// on every node, ProcessGraph is spiky/under-utilized.
#[test]
fn fig6_giraph_cpu_observations() {
    let r = dg1000_quick(Platform::Giraph, 8_000);
    let archive = &r.report.archive;
    let env = &r.report.env;
    let root = archive.tree.root().unwrap();
    let span = |kind: &str| {
        let id = archive.tree.child_by_mission(root, kind).unwrap();
        let op = archive.tree.op(id);
        (op.start_us().unwrap(), op.end_us().unwrap())
    };
    let mean_cluster = |(s, e): (u64, u64)| -> f64 {
        let cum = env.cumulative(ResourceKind::Cpu);
        let w: Vec<f64> = cum
            .iter()
            .filter(|&&(t, _)| t >= s && t < e)
            .map(|&(_, v)| v)
            .collect();
        if w.is_empty() {
            0.0
        } else {
            w.iter().sum::<f64>() / w.len() as f64
        }
    };
    let startup = mean_cluster(span("Startup"));
    let load = mean_cluster(span("LoadGraph"));
    let proc_ = mean_cluster(span("ProcessGraph"));
    assert!(
        startup < 0.05 * load,
        "setup not compute-intensive: {startup} vs {load}"
    );
    assert!(load > 100.0, "LoadGraph uses the CPU heavily: {load}");
    assert!(
        proc_ < load,
        "processing under-utilizes relative to loading"
    );

    // All 8 nodes contribute during LoadGraph (unlike PowerGraph).
    let (ls, le) = span("LoadGraph");
    for node in env
        .nodes()
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
    {
        let u = env.usage(&node, ResourceKind::Cpu, ls, le).unwrap();
        assert!(u.peak > 1.0, "{node} idle during Giraph load");
    }

    // The timeline renders with phase bands.
    let chart = TimelineChart::new(env, ResourceKind::Cpu).with_phase("LoadGraph", ls, le);
    assert!(chart.render_text(60, 8).contains("LoadGraph"));
}

/// Figure 7 observations: one PowerGraph machine loads while others idle;
/// the others join only at the end (FinalizeGraph).
#[test]
fn fig7_powergraph_cpu_observations() {
    let r = dg1000_quick(Platform::PowerGraph, 8_000);
    let archive = &r.report.archive;
    let env = &r.report.env;
    let root = archive.tree.root().unwrap();
    let load_id = archive.tree.child_by_mission(root, "LoadGraph").unwrap();
    let load = archive.tree.op(load_id);
    let (ls, le) = (load.start_us().unwrap(), load.end_us().unwrap());
    let cutoff = ls + (le - ls) / 2;

    let mut head_busy = 0.0;
    let mut others_busy = 0.0;
    for node in env
        .nodes()
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
    {
        if let Some(u) = env.usage(&node, ResourceKind::Cpu, ls, cutoff) {
            let total = u.mean * u.samples as f64;
            if node == "node300" {
                head_busy += total;
            } else {
                others_busy += total;
            }
        }
    }
    assert!(head_busy > 0.0);
    assert!(
        others_busy < 0.05 * head_busy,
        "others should idle during the first half of loading: {others_busy} vs {head_busy}"
    );

    // FinalizeGraph runs on all machines near the end of loading.
    let finalizes: Vec<_> = archive.tree.by_mission_kind("FinalizeGraph").collect();
    assert_eq!(finalizes.len(), 8);
    for f in finalizes {
        assert!(
            f.start_us().unwrap() > cutoff,
            "finalize happens late in LoadGraph"
        );
    }
}

/// Figure 8 observations: superstep skew and worker imbalance, visible in
/// the Gantt and quantified by the imbalance stats.
#[test]
fn fig8_worker_imbalance() {
    let r = dg1000_quick(Platform::Giraph, 8_000);
    let archive = &r.report.archive;
    let stats = worker_imbalance(archive, "Compute");
    assert!(stats.len() as u32 == r.run.iterations);

    // One superstep dominates the mean durations.
    let means: Vec<f64> = stats.iter().map(|s| s.mean_us).collect();
    let max = means.iter().copied().fold(0.0, f64::max);
    let avg = means.iter().sum::<f64>() / means.len() as f64;
    assert!(max > 2.0 * avg, "superstep skew: max {max} vs avg {avg}");

    // Some worker-level imbalance exists.
    assert!(stats.iter().any(|s| s.imbalance > 1.05));

    // The Gantt renders computation and overhead.
    let gantt = GanttChart::from_archive(archive, &["PreStep", "Compute", "PostStep"], "Compute");
    let text = gantt.render_text(80);
    assert!(text.contains('#') && text.contains('.'));
    assert_eq!(text.lines().filter(|l| l.starts_with("Worker-")).count(), 8);
}

/// Beyond the paper's CPU channel: the environment log's network view shows
/// message bursts during ProcessGraph and the HDFS replica traffic during
/// LoadGraph — nothing during Startup.
#[test]
fn network_bursts_follow_the_phases() {
    let r = dg1000_quick(Platform::Giraph, 8_000);
    let archive = &r.report.archive;
    let env = &r.report.env;
    let root = archive.tree.root().unwrap();
    let span = |kind: &str| {
        let id = archive.tree.child_by_mission(root, kind).unwrap();
        let op = archive.tree.op(id);
        (op.start_us().unwrap(), op.end_us().unwrap())
    };
    let bytes_in = |(s, e): (u64, u64)| -> f64 {
        env.nodes()
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .iter()
            .filter_map(|n| env.usage(n, ResourceKind::Network, s, e))
            .map(|u| u.mean * u.samples as f64)
            .sum()
    };
    let startup = bytes_in(span("Startup"));
    let processing = bytes_in(span("ProcessGraph"));
    // Per-second sampling bleeds one bucket across the phase boundary, so
    // compare magnitudes rather than demanding exact zero.
    assert!(
        startup < 0.05 * processing,
        "deployment is network-quiet: {startup:.2e} vs {processing:.2e}"
    );
    assert!(
        processing > 1e9,
        "superstep messages are network-visible: {processing:.2e}"
    );
}
