//! Golden-file snapshot tests: the textual figure renders are compared
//! byte-for-byte against checked-in fixtures under `tests/golden/`.
//!
//! The whole pipeline is deterministic — same seed, same scheduler, same
//! renders — so any byte of drift in these snapshots is a behavior change
//! that must be reviewed, not noise. CI runs this suite twice
//! back-to-back to prove the renders are bit-deterministic run-over-run.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --release --test golden
//! ```
//!
//! then review the fixture diff like any other code change.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use granula::experiment::{dg1000_quick, Platform};
use granula_monitor::ResourceKind;
use granula_viz::{BreakdownChart, BreakdownRow, GanttChart, TimelineChart};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the fixture `name`, or rewrites the fixture
/// when `UPDATE_GOLDEN=1`. On mismatch the panic message carries a
/// line-level diff so the drift is readable straight from the test log.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, actual).unwrap();
        println!("updated golden fixture {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run `UPDATE_GOLDEN=1 cargo test \
             --release --test golden` to create it",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mut diff = String::new();
    let mut shown = 0;
    let (mut exp_lines, mut act_lines) = (expected.lines(), actual.lines());
    let mut line_no = 0;
    loop {
        let (e, a) = (exp_lines.next(), act_lines.next());
        line_no += 1;
        if e.is_none() && a.is_none() {
            break;
        }
        if e != a {
            let _ = writeln!(diff, "  line {line_no}:");
            let _ = writeln!(diff, "  - {}", e.unwrap_or("<end of fixture>"));
            let _ = writeln!(diff, "  + {}", a.unwrap_or("<end of output>"));
            shown += 1;
            if shown == 10 {
                let _ = writeln!(diff, "  ... (further differences elided)");
                break;
            }
        }
    }
    panic!(
        "golden mismatch for {name} ({} fixture lines vs {} output lines):\n{diff}\
         if the change is intentional: UPDATE_GOLDEN=1 cargo test --release --test golden",
        expected.lines().count(),
        actual.lines().count()
    );
}

/// Figure 5 — domain-level breakdown of both platforms, rendered exactly
/// the way the `fig5` binary does (per-mission segments, width 72).
#[test]
fn golden_fig5_breakdown() {
    let mut chart = BreakdownChart::new();
    for platform in [Platform::Giraph, Platform::PowerGraph] {
        let result = dg1000_quick(platform, 8_000);
        let archive = &result.report.archive;
        let mut row = BreakdownRow::new(platform.name(), result.breakdown.total_us);
        for kind in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            let d = archive.total_duration_of_us(kind);
            if d > 0 {
                row = row.with_segment(kind, d);
            }
        }
        chart.add_row(row);
    }
    check_golden("fig5_breakdown.txt", &chart.render_text(72));
}

/// Figure 6 — cumulative CPU timeline of the Giraph job with phase bands.
#[test]
fn golden_fig6_cpu_timeline() {
    let result = dg1000_quick(Platform::Giraph, 8_000);
    let archive = &result.report.archive;
    let env = &result.report.env;
    let mut chart = TimelineChart::new(env, ResourceKind::Cpu);
    let root = archive.tree.root().expect("archived job has a root");
    for kind in [
        "Startup",
        "LoadGraph",
        "ProcessGraph",
        "OffloadGraph",
        "Cleanup",
    ] {
        if let Some(id) = archive.tree.child_by_mission(root, kind) {
            let op = archive.tree.op(id);
            if let (Some(s), Some(e)) = (op.start_us(), op.end_us()) {
                chart = chart.with_phase(kind, s, e);
            }
        }
    }
    check_golden("fig6_cpu_timeline.txt", &chart.render_text(96, 14));
}

/// Figure 8 — per-worker Gantt of the Giraph supersteps.
#[test]
fn golden_fig8_gantt() {
    let result = dg1000_quick(Platform::Giraph, 8_000);
    let gantt = GanttChart::from_archive(
        &result.report.archive,
        &["PreStep", "Compute", "PostStep"],
        "Compute",
    );
    check_golden("fig8_gantt.txt", &gantt.render_text(80));
}

/// Network timeline of the Giraph job — the beyond-the-paper channel the
/// monitoring layer exposes (message bursts during ProcessGraph).
#[test]
fn golden_network_timeline() {
    let result = dg1000_quick(Platform::Giraph, 8_000);
    let archive = &result.report.archive;
    let env = &result.report.env;
    let root = archive.tree.root().expect("archived job has a root");
    let mut chart = TimelineChart::new(env, ResourceKind::Network);
    for kind in ["LoadGraph", "ProcessGraph"] {
        if let Some(id) = archive.tree.child_by_mission(root, kind) {
            let op = archive.tree.op(id);
            if let (Some(s), Some(e)) = (op.start_us(), op.end_us()) {
                chart = chart.with_phase(kind, s, e);
            }
        }
    }
    check_golden("network_timeline.txt", &chart.render_text(96, 10));
}

/// The choke-point matrix over the two new engines, rendered exactly the
/// way the `choke_matrix` binary does: per cell, total runtime plus the
/// dominant domain phase read back from the archive.
#[test]
fn golden_choke_matrix() {
    use gpsim_platforms::Algorithm;
    use granula::calibration;
    use granula::experiment::run_experiment;
    use granula_viz::{MatrixCell, MatrixChart};

    let (graph, scale) = calibration::dg_graph_small(8_000, calibration::DG_SEED);
    let mut chart = MatrixChart::new(["Grape/hash-ec", "GraphX/hash-ec"], ["BFS", "PageRank"]);
    for (r, platform) in [Platform::Grape, Platform::GraphX].into_iter().enumerate() {
        for (c, algorithm) in [
            Algorithm::Bfs { source: 1 },
            Algorithm::PageRank { iterations: 10 },
        ]
        .into_iter()
        .enumerate()
        {
            let mut cfg = platform.dg1000_job();
            cfg.algorithm = algorithm;
            cfg.scale_factor = scale;
            let result = run_experiment(platform, &graph, &cfg).expect("matrix cell runs");
            let archive = &result.report.archive;
            let total_us = archive.total_runtime_us().expect("archived job has a span");
            let (bottleneck, dominant_us) = [
                "Startup",
                "LoadGraph",
                "ProcessGraph",
                "OffloadGraph",
                "Cleanup",
            ]
            .iter()
            .map(|k| (*k, archive.total_duration_of_us(k)))
            .max_by_key(|(_, us)| *us)
            .expect("five domain kinds");
            chart.set(
                r,
                c,
                MatrixCell {
                    total_us,
                    bottleneck: bottleneck.into(),
                    bottleneck_frac: dominant_us as f64 / total_us.max(1) as f64,
                },
            );
        }
    }
    check_golden("choke_matrix.txt", &chart.render_text());
}

/// The archive query listing (`granula-cli archive query` output body):
/// path, actor, duration, start time of each superstep hit.
#[test]
fn golden_query_listing() {
    let result = dg1000_quick(Platform::Giraph, 8_000);
    let tree = &result.report.archive.tree;
    let query = granula_archive::Query::parse("GiraphJob/ProcessGraph/Superstep").unwrap();
    let hits = query.select(tree);
    check_golden(
        "query_supersteps.txt",
        &granula_viz::tree::render_ops(tree, &hits),
    );
}
