//! End-to-end integration: platform simulation → monitoring → archiving →
//! metrics → sharing, across crates.

use gpsim_graph::gen::{datagen_like, GenConfig};
use gpsim_platforms::Algorithm;
use granula::experiment::{dg1000_quick, run_experiment, Platform};
use granula::metrics::{DomainBreakdown, Phase};
use granula::regression::RegressionSuite;
use granula_archive::{from_json, to_json, ArchiveStore, Query};
use granula_regress::{analyze, History, Status, Tolerance};

#[test]
fn giraph_pipeline_end_to_end() {
    let result = dg1000_quick(Platform::Giraph, 6_000);
    let archive = &result.report.archive;

    // Clean evaluation.
    assert!(result.report.validation.is_clean());
    assert!(result.report.assembly_warnings.is_empty());

    // The archive answers the paper's questions.
    let b = &result.breakdown;
    assert!(b.total_us > 0);
    assert!(b.unattributed_us().abs() < b.total_us as i64 / 10);

    // Path query across the hierarchy.
    let q = Query::parse("GiraphJob/ProcessGraph/Superstep/LocalSuperstep@Worker-0/Compute")
        .expect("valid query");
    let computes = q.select(&archive.tree);
    assert_eq!(computes.len() as u32, result.run.iterations);

    // Sharing: JSON roundtrip preserves the archive bit-for-bit.
    let json = to_json(archive).expect("serializable");
    let back = from_json(&json).expect("deserializable");
    assert_eq!(&back, archive);
}

#[test]
fn powergraph_pipeline_end_to_end() {
    let result = dg1000_quick(Platform::PowerGraph, 6_000);
    assert!(result.report.validation.is_clean());
    let archive = &result.report.archive;

    // GAS minor-steps archived under iterations.
    let q = Query::parse("PowerGraphJob/ProcessGraph/Iteration/Gather@Machine-0").unwrap();
    assert_eq!(q.select(&archive.tree).len() as u32, result.run.iterations);

    // The sequential loader is archived as one machine-0 operation.
    let seq = Query::parse("SequentialLoad")
        .unwrap()
        .find_all(&archive.tree);
    assert_eq!(seq.len(), 1);
    let op = archive.tree.op(seq[0]);
    assert_eq!(op.actor.to_string(), "Machine-0");
    assert!(
        op.info_f64("LoadThroughput").is_some(),
        "derived throughput present"
    );
}

#[test]
fn cross_platform_store_reproduces_paper_conclusions() {
    let mut store = ArchiveStore::new();
    let g = dg1000_quick(Platform::Giraph, 6_000);
    let p = dg1000_quick(Platform::PowerGraph, 6_000);
    store.add(g.report.archive.clone()).unwrap();
    store.add(p.report.archive.clone()).unwrap();

    // PowerGraph's processing is faster in absolute terms...
    let rows = store.compare("ProcessGraph");
    let by = |name: &str| {
        rows.iter()
            .find(|r| r.platform == name)
            .expect("row present")
    };
    assert!(by("PowerGraph").mission_us < by("Giraph").mission_us);
    // ...but its I/O dominates and the total is much slower.
    let load = store.compare("LoadGraph");
    assert!(
        by("Giraph").total_us * 3
            < load
                .iter()
                .find(|r| r.platform == "PowerGraph")
                .unwrap()
                .total_us
    );
}

#[test]
fn breakdown_fractions_are_consistent() {
    for platform in [Platform::Giraph, Platform::PowerGraph] {
        let result = dg1000_quick(platform, 4_000);
        let b = &result.breakdown;
        let sum = b.fraction(Phase::Setup)
            + b.fraction(Phase::InputOutput)
            + b.fraction(Phase::Processing);
        assert!(sum > 0.85 && sum <= 1.01, "{}: {sum}", platform.name());
    }
}

#[test]
fn regression_suite_detects_injected_slowdown_end_to_end() {
    let (graph, scale) = granula::calibration::dg_graph_small(4_000, 9);
    let mut cfg = granula::calibration::giraph_dg1000_job();
    cfg.scale_factor = scale;
    let baseline = run_experiment(Platform::Giraph, &graph, &cfg).unwrap();
    let mut suite = RegressionSuite::new(0.10);
    suite.add_baseline(baseline.report.archive);

    // Unchanged config: deterministic simulation -> identical archive.
    let same = run_experiment(Platform::Giraph, &graph, &cfg).unwrap();
    assert!(suite.check(&same.report.archive).unwrap().passed());

    // Injected slowdown: halve the worker threads.
    let mut bad = cfg.clone();
    bad.costs.worker_threads /= 4;
    let worse = run_experiment(Platform::Giraph, &graph, &bad).unwrap();
    let report = suite.check(&worse.report.archive).unwrap();
    assert!(!report.passed());
    assert!(report.regressions.iter().any(|r| r.subject == "total"));
}

/// The headline numbers of the paper's §4.2 comparison at full dg1000
/// scale: Giraph finishes BFS in ~81.9 s, PowerGraph in ~398.7 s.
///
/// These used to be hand-locked to the microsecond; they are now gated
/// by the statistical trend check of `granula-regress` against the
/// committed fixture history (`tests/fixtures/history/`), plus a coarse
/// absolute anchor to the paper's own measurements. A calibration or
/// scheduler change that moves the makespan beyond the ±2% band fails
/// here with the offending run named; regenerate the fixtures
/// (`UPDATE_GOLDEN=1 cargo test --test regress_history`) to accept it
/// deliberately (and update the EXPERIMENTS.md narrative).
#[test]
fn headline_makespans_stay_inside_the_trend_band() {
    let giraph = granula::experiment::dg1000(Platform::Giraph);
    let powergraph = granula::experiment::dg1000(Platform::PowerGraph);

    // Coarse absolute anchor to the paper (§4.2): ±5% of 81.59 s and
    // 400.38 s keeps the simulation tethered to the source even if the
    // fixture history were regenerated from a drifted build.
    let g_us = giraph.run.makespan_us as f64;
    let p_us = powergraph.run.makespan_us as f64;
    assert!(
        (g_us / 81.59e6 - 1.0).abs() < 0.05,
        "Giraph makespan {g_us} µs strays from the paper's 81.59 s"
    );
    assert!(
        (p_us / 400.38e6 - 1.0).abs() < 0.05,
        "PowerGraph makespan {p_us} µs strays from the paper's 400.38 s"
    );

    // Statistical gate: the fresh run joins the fixture history as the
    // run under test; every metric must stay inside the tolerance band.
    let mut store = ArchiveStore::new();
    store.add(giraph.report.archive.clone()).unwrap();
    store.add(powergraph.report.archive.clone()).unwrap();
    let fixtures = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/history");
    let mut history = History::load_dir(&fixtures).expect("committed fixture history");
    assert!(history.len() >= 5, "fixture corpus holds at least 5 runs");
    history.push_latest(store, "current");
    let (report, _) = analyze(&mut history, &Tolerance::default());
    for m in &report.metrics {
        assert_eq!(
            m.status,
            Status::Ok,
            "{} {} drifted: effect {:+.2}% since {:?} (p={:.2e})",
            m.job_id,
            m.metric,
            m.effect * 100.0,
            m.first_offending_run,
            m.p_value
        );
    }
    assert_eq!(report.verdict, Status::Ok);
    // The archived root spans the whole run; its runtime is the makespan.
    for result in [&giraph, &powergraph] {
        assert_eq!(
            result.report.archive.total_runtime_us(),
            Some(result.run.makespan_us),
            "{} archive runtime",
            result.report.archive.meta.platform
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    let a = dg1000_quick(Platform::Giraph, 4_000);
    let b = dg1000_quick(Platform::Giraph, 4_000);
    assert_eq!(a.report.archive, b.report.archive);
    assert_eq!(a.run.makespan_us, b.run.makespan_us);
}

#[test]
fn all_algorithms_validate_on_both_platforms() {
    let graph = datagen_like(&GenConfig::datagen(1_500, 33));
    let algorithms = [
        Algorithm::Bfs { source: 2 },
        Algorithm::PageRank { iterations: 4 },
        Algorithm::Wcc,
        Algorithm::Cdlp { iterations: 3 },
        Algorithm::Sssp { source: 2 },
    ];
    for platform in [
        Platform::Giraph,
        Platform::PowerGraph,
        Platform::GraphMat,
        Platform::Grape,
        Platform::GraphX,
    ] {
        for algorithm in algorithms {
            let mut cfg = platform.dg1000_job();
            cfg.algorithm = algorithm;
            cfg.scale_factor = 1.0;
            cfg.nodes = 4;
            let result = run_experiment(platform, &graph, &cfg).expect("runs");
            let reference = gpsim_platforms::common::reference_output(&graph, algorithm);
            assert!(
                result.run.output.matches(&reference),
                "{} {} output mismatch",
                platform.name(),
                algorithm.name()
            );
            // Metrics derivable for every workload.
            assert!(DomainBreakdown::from_archive(&result.report.archive).is_some());
        }
    }
}
