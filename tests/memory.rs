//! Memory-signature integration tests: the environment monitor's RSS view
//! distinguishes the three loader designs.

use granula::experiment::{dg1000_quick, Platform};
use granula_monitor::ResourceKind;

fn peak_memory(result: &granula::ExperimentResult, node: &str) -> f64 {
    result
        .report
        .env
        .series(node, ResourceKind::Memory)
        .map(|s| s.iter().map(|&(_, v)| v).fold(0.0, f64::max))
        .unwrap_or(0.0)
}

#[test]
fn powergraph_staging_buffer_peaks_on_the_loader_node() {
    let result = dg1000_quick(Platform::PowerGraph, 6_000);
    let head_peak = peak_memory(&result, "node300");
    let other_peak = peak_memory(&result, "node304");
    // Machine 0 holds the whole edge list (~19 GB raw) on top of its
    // partition; the others only ever hold their partitions.
    assert!(
        head_peak > 3.0 * other_peak,
        "loader-node memory should tower: head {head_peak:.2e} vs other {other_peak:.2e}"
    );
    // And the staging buffer is released: the head's memory drops after
    // loading (final value well below its peak).
    let series = result
        .report
        .env
        .series("node300", ResourceKind::Memory)
        .unwrap();
    let last = series
        .iter()
        .rev()
        .find(|&&(_, v)| v > 0.0)
        .map(|&(_, v)| v)
        .unwrap_or(0.0);
    assert!(
        last < 0.5 * head_peak,
        "staging buffer released: last {last:.2e} vs peak {head_peak:.2e}"
    );
}

#[test]
fn giraph_jvm_footprint_is_balanced_and_larger_per_edge() {
    let giraph = dg1000_quick(Platform::Giraph, 6_000);
    let graphmat = dg1000_quick(Platform::GraphMat, 6_000);
    // Balanced: every Giraph node holds a similar partition.
    let peaks: Vec<f64> = (0..8)
        .map(|i| peak_memory(&giraph, &format!("node{:03}", 300 + i)))
        .collect();
    let max = peaks.iter().copied().fold(0.0, f64::max);
    let min = peaks.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(max < 1.5 * min, "balanced partitions: {peaks:?}");
    // JVM object overhead: Giraph's resident bytes per edge dwarf GraphMat's
    // compact matrix blocks (110 vs 24 B/edge in the cost models).
    let graphmat_max = (0..8)
        .map(|i| peak_memory(&graphmat, &format!("node{:03}", 300 + i)))
        .fold(0.0, f64::max);
    assert!(
        max > 3.0 * graphmat_max,
        "giraph {max:.2e} vs graphmat {graphmat_max:.2e}"
    );
}

#[test]
fn memory_is_released_by_cleanup() {
    let result = dg1000_quick(Platform::Giraph, 6_000);
    let series = result
        .report
        .env
        .series("node301", ResourceKind::Memory)
        .unwrap();
    let peak = series.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    let last = series.last().map(|&(_, v)| v).unwrap_or(f64::NAN);
    assert!(peak > 0.0);
    assert_eq!(last, 0.0, "JVM exit releases the partition");
}
