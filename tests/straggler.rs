//! Straggler detection end-to-end: a degraded node must be identifiable
//! from the archive alone, on every platform.

use gpsim_cluster::ClusterSpec;
use granula::analysis::{find_choke_points, ChokePointConfig, ChokePointKind};
use granula::calibration;
use granula::experiment::{run_experiment_on, Platform};
use granula_archive::Query;

fn degraded_cluster(victim: usize) -> ClusterSpec {
    let mut cluster = ClusterSpec::das5(8);
    cluster.nodes[victim].cores /= 4;
    cluster
}

#[test]
fn giraph_straggler_named_by_imbalance_choke_point() {
    let (graph, scale) = calibration::dg_graph_small(8_000, calibration::DG_SEED);
    let mut cfg = calibration::giraph_dg1000_job();
    cfg.scale_factor = scale;
    let result = run_experiment_on(Platform::Giraph, &graph, &cfg, &degraded_cluster(5))
        .expect("simulation runs");

    let findings = find_choke_points(&result.report.archive, &ChokePointConfig::default());
    let imbalance = findings
        .iter()
        .find(|c| matches!(c.kind, ChokePointKind::Imbalance { .. }))
        .expect("imbalance detected");
    assert!(
        imbalance.label.contains("Worker-5"),
        "slowest actor should be the degraded node's worker: {}",
        imbalance.label
    );
}

#[test]
fn straggler_slows_the_job_but_not_correctness() {
    let (graph, scale) = calibration::dg_graph_small(5_000, calibration::DG_SEED);
    let mut cfg = calibration::giraph_dg1000_job();
    cfg.scale_factor = scale;
    let healthy = run_experiment_on(Platform::Giraph, &graph, &cfg, &ClusterSpec::das5(8))
        .expect("simulation runs");
    let degraded = run_experiment_on(Platform::Giraph, &graph, &cfg, &degraded_cluster(3))
        .expect("simulation runs");
    assert!(degraded.breakdown.total_us > healthy.breakdown.total_us * 11 / 10);
    assert_eq!(healthy.run.output, degraded.run.output, "results identical");
}

#[test]
fn powergraph_straggling_loader_node_is_catastrophic() {
    // Degrading the *loading* machine of PowerGraph hits the whole job;
    // degrading any other machine barely matters — the decomposition shows
    // why (the sequential loader runs on machine 0).
    let (graph, scale) = calibration::dg_graph_small(5_000, calibration::DG_SEED);
    let mut cfg = calibration::powergraph_dg1000_job();
    cfg.scale_factor = scale;

    let loader_slow = run_experiment_on(Platform::PowerGraph, &graph, &cfg, &degraded_cluster(0))
        .expect("simulation runs");
    let other_slow = run_experiment_on(Platform::PowerGraph, &graph, &cfg, &degraded_cluster(6))
        .expect("simulation runs");
    // The single-threaded parse isn't core-count-bound, so degrade cores
    // hits the finalize/processing; but the loader node's work still
    // dominates: check the relationship holds directionally.
    assert!(loader_slow.breakdown.total_us >= other_slow.breakdown.total_us);

    // The per-machine Gather operations expose which machine lags.
    let q = Query::parse("Gather@Machine-6").expect("valid");
    let gathers = q.find_all(&other_slow.report.archive.tree);
    assert!(!gathers.is_empty(), "machine-level operations are archived");
}
