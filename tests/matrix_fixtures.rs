//! The committed choke-point matrix artifacts are live fixtures: one
//! `.gar` store per engine row under `tests/fixtures/matrix/` and the
//! six-run GRAPE headline history under `tests/fixtures/history/grape/`
//! that `granula-cli regress` gates in CI. This suite pins their shape so
//! a stale regeneration (or a format change that silently drops them)
//! fails in `cargo test` before it fails in CI.
//!
//! Regenerate with:
//!
//! ```text
//! GRANULA_RUN_ID=matrix-r1 GRANULA_RUN_TIMESTAMP=1700000000000000 \
//!   GRANULA_RUN_LABEL="fixture: choke-point matrix fixtures" \
//!   cargo run --release -p granula-bench --bin choke_matrix -- \
//!   --archive-dir tests/fixtures/matrix --update-fixtures
//! ```

use std::path::{Path, PathBuf};

use granula_archive::ArchiveStore;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Every engine row of the matrix has a committed store holding exactly
/// its BFS and PageRank runs, loadable through the current reader.
#[test]
fn matrix_stores_cover_all_engine_rows() {
    for (file, prefix) in [
        ("matrix_giraph_hash-ec.gar", "matrix-giraph-hash-ec"),
        (
            "matrix_powergraph_greedy-vc.gar",
            "matrix-powergraph-greedy-vc",
        ),
        ("matrix_grape_hash-ec.gar", "matrix-grape-hash-ec"),
        ("matrix_grape_block-ec.gar", "matrix-grape-block-ec"),
        ("matrix_graphx_hash-ec.gar", "matrix-graphx-hash-ec"),
    ] {
        let path = fixtures_root().join("matrix").join(file);
        let store = ArchiveStore::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let mut job_ids: Vec<String> = store.iter().map(|a| a.meta.job_id.clone()).collect();
        job_ids.sort();
        assert_eq!(
            job_ids,
            vec![format!("{prefix}-bfs"), format!("{prefix}-pagerank")],
            "{}",
            path.display()
        );
        for archive in store.iter() {
            assert!(
                archive.total_runtime_us().is_some(),
                "{}: archived jobs carry a root span",
                path.display()
            );
            assert!(
                archive.total_duration_of_us("ProcessGraph") > 0,
                "{}: archived jobs decompose into domain phases",
                path.display()
            );
        }
    }
}

/// The new engines' archives flow through the same domain vocabulary as
/// the paper's two platforms — that is what makes the matrix comparable.
#[test]
fn new_engine_archives_use_the_shared_domain_vocabulary() {
    for file in ["matrix_grape_hash-ec.gar", "matrix_graphx_hash-ec.gar"] {
        let path = fixtures_root().join("matrix").join(file);
        let store = ArchiveStore::load(&path).unwrap();
        for archive in store.iter() {
            for kind in [
                "Startup",
                "LoadGraph",
                "ProcessGraph",
                "OffloadGraph",
                "Cleanup",
            ] {
                assert!(
                    archive.total_duration_of_us(kind) > 0,
                    "{}: {} missing domain phase {kind}",
                    path.display(),
                    archive.meta.job_id
                );
            }
        }
    }
}

/// The GRAPE regress gate's history: six runs, strictly increasing
/// timestamps, all carrying the headline job.
#[test]
fn grape_history_is_six_increasing_runs_of_the_headline() {
    let dir = fixtures_root().join("history/grape");
    let mut last_ts = 0u64;
    for i in 1..=6u32 {
        let path = dir.join(format!("r{i}.gar"));
        let store = ArchiveStore::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(store.run().run_id, format!("r{i}"), "{}", path.display());
        assert!(
            store.run().timestamp_us > last_ts,
            "{}: run timestamps must increase",
            path.display()
        );
        last_ts = store.run().timestamp_us;
        assert!(
            store.get("matrix-grape-hash-ec-bfs").is_some(),
            "{}: history tracks the GRAPE headline job",
            path.display()
        );
    }
}
