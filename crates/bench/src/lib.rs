//! # granula-bench
//!
//! The benchmark harness: one binary per table/figure of the paper
//! (`table1`, `fig1` … `fig8`), ablation studies beyond the paper
//! (`ablation_*`), and Criterion micro-benchmarks (`benches/`).
//!
//! Every figure binary prints the paper's reference values next to the
//! measured ones and writes SVG renderings under `figures/`.

use std::fs;
use std::path::PathBuf;

/// Directory figure SVGs are written to (`$GRANULA_FIGURES` or `figures/`).
pub fn figures_dir() -> PathBuf {
    let dir = std::env::var("GRANULA_FIGURES").unwrap_or_else(|_| "figures".into());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("create figures directory");
    path
}

/// Saves an artifact under the figures directory and reports the path.
pub fn save_figure(name: &str, content: &str) {
    let path = figures_dir().join(name);
    fs::write(&path, content).expect("write figure");
    println!("  [saved {}]", path.display());
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Parses `--trace-out <path>` from the process arguments; when present,
/// resets and enables the self-observability tracer and returns the path
/// the trace should be written to. Call once at the top of a figure or
/// ablation binary's `main`.
pub fn trace_out_flag() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    let path = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1).cloned())?;
    granula_trace::reset();
    granula_trace::enable();
    Some(path)
}

/// Writes the collected Chrome trace-event JSON (and prints the metrics
/// snapshot) when [`trace_out_flag`] armed the tracer. Call at the end of
/// `main`; a no-op when `--trace-out` was not given.
pub fn write_trace(path: &Option<String>) {
    let Some(path) = path else { return };
    granula_trace::disable();
    let spans = granula_trace::take_spans();
    let json = granula_trace::chrome_trace_json(&spans);
    fs::write(path, &json).expect("write trace");
    println!("  [trace: {} spans -> {path}]", spans.len());
    print!("{}", granula_trace::metrics_snapshot());
}

/// Parses `--archive-out <path>` from the process arguments; when present,
/// the figure binary packs the job archives it produced into a persistent
/// binary store ([`granula_archive::ArchiveStore::save`]) at that path,
/// ready for `granula-cli archive query`/`stat`.
pub fn archive_out_flag() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--archive-out")
        .and_then(|i| args.get(i + 1).cloned())
}

/// Packs `archives` into a binary store at `path` when [`archive_out_flag`]
/// was given; a no-op otherwise. Call at the end of a figure binary's
/// `main`, handing it the job archives the figure produced.
pub fn write_archive_store<'a>(
    path: &Option<String>,
    archives: impl IntoIterator<Item = &'a granula_archive::JobArchive>,
) {
    let Some(path) = path else { return };
    let mut store = granula_archive::ArchiveStore::new();
    for archive in archives {
        store.upsert(archive.clone());
    }
    store = store.with_run(run_meta_from_env());
    store.save(path).expect("write archive store");
    println!("  [archive store: {} jobs -> {path}]", store.len());
}

/// Builds the store's run header from the environment, so CI can stamp
/// the stores it archives into a regression history:
///
/// * `GRANULA_RUN_ID` — run identifier (e.g. the commit SHA);
/// * `GRANULA_RUN_TIMESTAMP` — microseconds since epoch, ordering the
///   run within a history (defaults to 0: "no recorded time");
/// * `GRANULA_RUN_LABEL` — free-form description.
///
/// All unset: the default (empty) header, as before.
pub fn run_meta_from_env() -> granula_archive::RunMeta {
    let var = |name: &str| std::env::var(name).unwrap_or_default();
    granula_archive::RunMeta::new(
        var("GRANULA_RUN_ID"),
        var("GRANULA_RUN_TIMESTAMP").parse().unwrap_or(0),
        var("GRANULA_RUN_LABEL"),
    )
}

/// Prints a `paper vs measured` comparison row with a relative error.
pub fn compare(label: &str, paper: f64, measured: f64, unit: &str) {
    let err = if paper != 0.0 {
        100.0 * (measured - paper) / paper
    } else {
        0.0
    };
    println!(
        "  {label:<34} paper {paper:>9.2}{unit}   measured {measured:>9.2}{unit}   ({err:+.1}%)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_dir_is_created() {
        std::env::set_var("GRANULA_FIGURES", "/tmp/granula-fig-test");
        let d = figures_dir();
        assert!(d.exists());
        save_figure("probe.txt", "x");
        assert!(d.join("probe.txt").exists());
        std::env::remove_var("GRANULA_FIGURES");
    }

    #[test]
    fn run_meta_comes_from_the_environment() {
        assert_eq!(run_meta_from_env(), granula_archive::RunMeta::default());
        std::env::set_var("GRANULA_RUN_ID", "abc123");
        std::env::set_var("GRANULA_RUN_TIMESTAMP", "42");
        std::env::set_var("GRANULA_RUN_LABEL", "ci fig5");
        let meta = run_meta_from_env();
        assert_eq!(meta.run_id, "abc123");
        assert_eq!(meta.timestamp_us, 42);
        assert_eq!(meta.label, "ci fig5");
        std::env::remove_var("GRANULA_RUN_ID");
        std::env::remove_var("GRANULA_RUN_TIMESTAMP");
        std::env::remove_var("GRANULA_RUN_LABEL");
    }
}
