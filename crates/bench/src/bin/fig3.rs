//! Regenerates **Figure 3**: the high-level breakdown of a graph
//! processing job — Setup (startup/cleanup), Input/output (load/offload),
//! Processing.

use granula::metrics::Phase;
use granula::models::domain_model;
use granula_bench::header;
use granula_viz::tree::render_model;

fn main() {
    header("Figure 3 — High-level breakdown of a graph processing job");
    println!(
        r#"
  |-- startup --|-- load --|===== processing =====|-- offload --|-- cleanup --|
  \____Setup____/\___________Input/output____________________/  (interleaved)
        Ts              Td                   Tp
"#
    );
    for phase in [Phase::Setup, Phase::InputOutput, Phase::Processing] {
        println!(
            "  {:<13} <- {}",
            phase.label(),
            phase.mission_kinds().join(" + ")
        );
    }
    println!("\nAs a Granula domain-level performance model:");
    print!("{}", render_model(&domain_model("AnyPlatform", "Job")));
}
