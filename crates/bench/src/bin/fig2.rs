//! Regenerates **Figure 2**: the Granula evaluation process — Modeling →
//! Monitoring → Archiving → Visualizing, with the feedback edge.
//!
//! Demonstrated live: two iterations of the loop on the Giraph platform,
//! the first with a domain-level model, the second refined to the full
//! model after reviewing the feedback — exactly the incremental procedure
//! of requirement R3.

use granula::experiment::{dg1000_quick, Platform};
use granula::models::giraph_model;
use granula::process::EvaluationProcess;
use granula_archive::JobMeta;
use granula_bench::header;
use granula_model::AbstractionLevel;

fn main() {
    header("Figure 2 — The Granula evaluation process (two live iterations)");
    println!(
        r#"
        +-------------+  abstractions  +--------------+
   +--> |  1 Modeling | -------------> | 2 Monitoring |
   |    +-------------+                +--------------+
   |  feedback                                | data
   |    +---------------+   results   +--------------+
   +--- | 4 Visualizing | <---------- | 3 Archiving  |
        +---------------+             +--------------+
"#
    );

    // Monitoring output is shared by both iterations (same experiment run).
    let result = dg1000_quick(Platform::Giraph, 4_000);
    let meta = JobMeta {
        job_id: "fig2-demo".into(),
        platform: "Giraph".into(),
        algorithm: "BFS".into(),
        dataset: "dg1000".into(),
        nodes: 8,
        model: String::new(),
    };

    println!("Iteration 1 — domain-level model (coarse, cheap):");
    let coarse = giraph_model().truncated(AbstractionLevel::Domain);
    let process = EvaluationProcess::new(coarse);
    let report = process.evaluate(&result.run, meta.clone());
    println!(
        "  events kept {}/{} ({:.1}%), {} operations archived, model coverage {:.0}%",
        report.events_kept,
        report.events_total,
        100.0 * report.filter_ratio(),
        report.archive.num_operations(),
        100.0 * report.validation.coverage()
    );
    println!(
        "  feedback: {} validation issues -> refine the model\n",
        report.validation.issues.len()
    );

    println!("Iteration 2 — full 4-level Giraph model (fine-grained):");
    let process = EvaluationProcess::new(giraph_model());
    let report = process.evaluate(&result.run, meta);
    println!(
        "  events kept {}/{} ({:.1}%), {} operations archived, model coverage {:.0}%",
        report.events_kept,
        report.events_total,
        100.0 * report.filter_ratio(),
        report.archive.num_operations(),
        100.0 * report.validation.coverage()
    );
    println!(
        "  feedback: {} validation issues, {} assembly warnings",
        report.validation.issues.len(),
        report.assembly_warnings.len()
    );
}
