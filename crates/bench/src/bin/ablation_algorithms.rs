//! Ablation: Figure-5-style decomposition across the Graphalytics
//! algorithm set.
//!
//! The paper evaluates BFS only; this ablation shows the decomposition is
//! workload-dependent: iteration-heavy algorithms (PageRank, CDLP) shift
//! the balance toward processing, while the PowerGraph loader dominates
//! regardless of the algorithm — the paper's diagnosis generalizes.

use gpsim_platforms::Algorithm;
use granula::calibration;
use granula::experiment::{run_experiment, Platform};
use granula::metrics::Phase;
use granula_bench::header;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Ablation — domain decomposition across algorithms (dg1000 scale, 8 nodes)");
    let (graph, scale) = calibration::dg_graph_small(20_000, calibration::DG_SEED);
    // SSSP needs edge weights; unweighted graphs would degenerate to BFS.
    let weighted = gpsim_graph::gen::with_uniform_weights(&graph, 4.0, calibration::DG_SEED);
    let algorithms = [
        Algorithm::Bfs { source: 1 },
        Algorithm::PageRank { iterations: 10 },
        Algorithm::Wcc,
        Algorithm::Cdlp { iterations: 5 },
        Algorithm::Sssp { source: 1 },
    ];

    println!(
        "  {:<12} {:<10} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "platform", "algorithm", "total", "setup%", "io%", "proc%", "iters"
    );
    for platform in [Platform::Giraph, Platform::PowerGraph] {
        for algorithm in algorithms {
            let mut cfg = platform.dg1000_job();
            cfg.algorithm = algorithm;
            cfg.scale_factor = scale;
            cfg.job_id = format!(
                "{}-{}",
                platform.name().to_lowercase(),
                algorithm.name().to_lowercase()
            );
            let g = if matches!(algorithm, Algorithm::Sssp { .. }) {
                &weighted
            } else {
                &graph
            };
            let r = run_experiment(platform, g, &cfg)?;
            let b = &r.breakdown;
            println!(
                "  {:<12} {:<10} {:>8.1}s {:>8.1}% {:>8.1}% {:>8.1}% {:>7}",
                platform.name(),
                algorithm.name(),
                b.total_s(),
                100.0 * b.fraction(Phase::Setup),
                100.0 * b.fraction(Phase::InputOutput),
                100.0 * b.fraction(Phase::Processing),
                r.run.iterations,
            );
        }
        println!();
    }
    println!(
        "Interpretation: the PowerGraph loader dominates every workload; on\n\
         Giraph, iteration counts decide whether I/O or processing leads."
    );
    Ok(())
}
