//! Regenerates **Table 1**: diversity in (large-scale) graph processing
//! platforms.

use granula_bench::header;

fn main() {
    header("Table 1 — Diversity in (large-scale) graph processing platforms");
    print!("{}", granula::registry::render_table1());
}
