//! Regenerates **Figure 8**: compute-workload distribution among workers,
//! as visualized by Granula — per-worker PreStep/Compute/PostStep bars
//! across the supersteps of the Giraph BFS job.
//!
//! Paper observations (§4.4): the compute workload is not distributed
//! evenly among supersteps (one superstep, Compute-4 in the paper, takes
//! significantly longer); workers are imbalanced within a superstep (some
//! wait at the barrier); PreStep/PostStep overheads are visible around the
//! Compute operations.

use granula::experiment::{dg1000, Platform};
use granula::metrics::worker_imbalance;
use granula_bench::{header, save_figure};
use granula_viz::GanttChart;

fn main() {
    header("Figure 8 — Compute-workload distribution among workers (Giraph, BFS, dg1000)");
    println!("running Giraph ...");
    let result = dg1000(Platform::Giraph);
    let archive = &result.report.archive;

    // The paper's window: the ProcessGraph span.
    let root = archive.tree.root().expect("archived job has a root");
    let proc_id = archive
        .tree
        .child_by_mission(root, "ProcessGraph")
        .expect("ProcessGraph");
    let proc_op = archive.tree.op(proc_id);
    let (ps, pe) = (
        proc_op.start_us().unwrap_or(0),
        proc_op.end_us().unwrap_or(0),
    );

    let chart = GanttChart::from_archive(archive, &["PreStep", "Compute", "PostStep"], "Compute")
        .with_window(ps, pe);
    println!("{}", chart.render_text(100));
    save_figure("fig8_worker_gantt.svg", &chart.render_svg());

    // Quantified observations.
    let stats = worker_imbalance(archive, "Compute");
    println!("Per-superstep Compute statistics (8 workers):");
    println!(
        "  {:<10} {:>10} {:>10} {:>10} {:>10}",
        "superstep", "min (s)", "mean (s)", "max (s)", "max/mean"
    );
    let mut longest = (String::new(), 0.0f64);
    for s in &stats {
        println!(
            "  {:<10} {:>10.3} {:>10.3} {:>10.3} {:>10.2}",
            s.iteration,
            s.min_us as f64 / 1e6,
            s.mean_us / 1e6,
            s.max_us as f64 / 1e6,
            s.imbalance
        );
        if s.mean_us > longest.1 {
            longest = (s.iteration.clone(), s.mean_us);
        }
    }
    println!("\nPaper's observations hold:");
    println!(
        "  one superstep dominates (here Compute-{}, like the paper's Compute-4): {}",
        longest.0,
        longest.1 > 2.0 * stats.iter().map(|s| s.mean_us).sum::<f64>() / stats.len() as f64
    );
    let max_imb = stats.iter().map(|s| s.imbalance).fold(0.0f64, f64::max);
    println!(
        "  workers imbalanced within supersteps (max max/mean = {max_imb:.2}): {}",
        max_imb > 1.2
    );
}
