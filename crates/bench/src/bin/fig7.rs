//! Regenerates **Figure 7**: cumulative CPU usage of the 8 compute nodes
//! mapped onto the PowerGraph job's operations.
//!
//! Paper observations (§4.3): during LoadGraph only one node utilizes the
//! CPU while the others idle; only towards the end of loading do the other
//! nodes participate (building the in-memory structures); peak cumulative
//! usage ≈ 46.93 CPU-time/second.

use granula::calibration::PAPER;
use granula::experiment::{dg1000, Platform};
use granula_bench::{compare, header, save_figure};
use granula_monitor::ResourceKind;
use granula_viz::TimelineChart;

fn main() {
    header("Figure 7 — CPU utilization of PowerGraph operations (BFS, dg1000, 8 nodes)");
    println!("running PowerGraph ...");
    let result = dg1000(Platform::PowerGraph);
    let archive = &result.report.archive;
    let env = &result.report.env;

    let mut chart = TimelineChart::new(env, ResourceKind::Cpu);
    let root = archive.tree.root().expect("archived job has a root");
    for kind in [
        "Startup",
        "LoadGraph",
        "ProcessGraph",
        "OffloadGraph",
        "Cleanup",
    ] {
        if let Some(id) = archive.tree.child_by_mission(root, kind) {
            let op = archive.tree.op(id);
            if let (Some(s), Some(e)) = (op.start_us(), op.end_us()) {
                chart = chart.with_phase(kind, s, e);
            }
        }
    }
    println!("{}", chart.render_text(96, 14));
    save_figure("fig7_powergraph_cpu.svg", &chart.render_svg());

    let peak = env
        .cumulative(ResourceKind::Cpu)
        .into_iter()
        .map(|(_, v)| v)
        .fold(0.0f64, f64::max);
    compare(
        "peak cumulative CPU",
        PAPER.powergraph_cpu_peak,
        peak,
        " cpu/s",
    );

    // Quantify the sequential-loader signature: share of CPU time consumed
    // by the loading node during the first 60 % of LoadGraph.
    let load_id = archive
        .tree
        .child_by_mission(root, "LoadGraph")
        .expect("LoadGraph archived");
    let load = archive.tree.op(load_id);
    let (ls, le) = (load.start_us().unwrap_or(0), load.end_us().unwrap_or(0));
    let cutoff = ls + (le - ls) * 6 / 10;
    let mut head = 0.0f64;
    let mut others = 0.0f64;
    for node in env
        .nodes()
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
    {
        if let Some(u) = env.usage(&node, ResourceKind::Cpu, ls, cutoff) {
            let total = u.mean * u.samples as f64;
            if node.ends_with("300") {
                head += total;
            } else {
                others += total;
            }
        }
    }
    println!("\nSequential-loader signature (first 60% of LoadGraph):");
    println!("  loading node CPU-time: {head:>10.1}");
    println!("  other 7 nodes total:   {others:>10.1}");
    println!(
        "  paper's observation `only one compute node is utilizing the CPU` holds: {}",
        others < 0.05 * head
    );
}
