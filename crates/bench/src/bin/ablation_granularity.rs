//! Ablation: the coarse/fine granularity trade-off (paper Issues 3–4,
//! requirement R3).
//!
//! The same monitored Giraph run is archived under the Giraph model
//! truncated at each abstraction level. Deeper models retain more events,
//! archive more operations and infos, and cost more evaluation time — the
//! quantified version of "the analyst controls the trade-off between the
//! fast, coarse-grained analysis and the costly, fine-grained analysis".

use std::time::Instant;

use granula::experiment::{dg1000_quick, Platform};
use granula::models::giraph_model;
use granula::process::EvaluationProcess;
use granula_archive::JobMeta;
use granula_bench::header;
use granula_model::AbstractionLevel;

fn main() {
    header("Ablation — model granularity vs evaluation cost (Giraph, BFS)");
    let result = dg1000_quick(Platform::Giraph, 20_000);
    let meta = JobMeta {
        job_id: "granularity".into(),
        platform: "Giraph".into(),
        algorithm: "BFS".into(),
        dataset: "dg1000".into(),
        nodes: 8,
        model: String::new(),
    };

    println!(
        "  {:<8} {:>8} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "level", "types", "events kept", "ops", "infos", "derived", "eval time"
    );
    let full = giraph_model();
    for depth in 1..=full.max_depth() {
        let model = full.truncated(AbstractionLevel::from_depth(depth));
        let process = EvaluationProcess::new(model.clone());
        let t0 = Instant::now();
        let report = process.evaluate(&result.run, meta.clone());
        let dt = t0.elapsed();
        println!(
            "  {:<8} {:>8} {:>12} {:>10} {:>10} {:>12} {:>10.1}ms",
            depth,
            model.types.len(),
            format!("{}/{}", report.events_kept, report.events_total),
            report.archive.num_operations(),
            report.archive.num_infos(),
            report.infos_derived,
            dt.as_secs_f64() * 1e3,
        );
    }
    println!(
        "\nInterpretation: each level multiplies archived detail; analysts pay\n\
         for depth only where the previous iteration's feedback demands it."
    );
}
