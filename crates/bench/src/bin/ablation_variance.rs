//! Ablation: robustness of the decomposition across graph instances.
//!
//! The paper reports a single run. This ablation repeats the Figure 5
//! experiment over several independently generated Datagen-like graphs
//! (different seeds, same size) and reports the mean and spread of every
//! phase — showing the decomposition is a property of the platform, not of
//! one lucky graph.

use granula::calibration;
use granula::experiment::{run_experiment, Platform};
use granula::metrics::Phase;
use granula_bench::header;
use granula_regress::stats::mean_std;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Ablation — decomposition variance over 5 graph instances (BFS, dg1000 scale)");
    const SEEDS: [u64; 5] = [1_000, 2_000, 3_000, 4_000, 5_000];

    for platform in [Platform::Giraph, Platform::PowerGraph] {
        let mut totals = Vec::new();
        let mut fractions: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut iterations = Vec::new();
        for seed in SEEDS {
            let (graph, scale) = calibration::dg_graph_small(20_000, seed);
            let mut cfg = platform.dg1000_job();
            cfg.scale_factor = scale;
            cfg.job_id = format!("{}-seed{}", platform.name().to_lowercase(), seed);
            let r = run_experiment(platform, &graph, &cfg)?;
            totals.push(r.breakdown.total_s());
            for (i, phase) in [Phase::Setup, Phase::InputOutput, Phase::Processing]
                .into_iter()
                .enumerate()
            {
                fractions[i].push(100.0 * r.breakdown.fraction(phase));
            }
            iterations.push(r.run.iterations as f64);
        }
        let (t_mean, t_std) = mean_std(&totals);
        let (i_mean, i_std) = mean_std(&iterations);
        println!("\n{} over {} seeds:", platform.name(), SEEDS.len());
        println!("  total runtime  {t_mean:>8.2}s ± {t_std:.2}s");
        for (i, label) in ["setup %", "io %", "proc %"].iter().enumerate() {
            let (mean, std) = mean_std(&fractions[i]);
            println!("  {label:<14} {mean:>8.1}  ± {std:.1}");
        }
        println!("  supersteps     {i_mean:>8.1}  ± {i_std:.1}");
    }
    println!(
        "\nInterpretation: phase fractions vary by at most a couple of points\n\
         across graph instances — the Figure 5 shape is platform-determined."
    );
    Ok(())
}
