//! Extension: a third platform from Table 1 — GraphMat (Intel, SpMV,
//! MPI, local/shared storage) — analyzed with the same generic evaluation
//! process, demonstrating requirement R2 beyond the paper's two systems.
//!
//! GraphMat loads in parallel (unlike PowerGraph) but pays a famously
//! expensive conversion to its internal matrix format; its SIMD-friendly
//! processing is the fastest of the three.

use granula::experiment::{dg1000, Platform};
use granula::metrics::Phase;
use granula_bench::{header, save_figure};
use granula_viz::{BreakdownChart, BreakdownRow};

fn main() {
    header("Extension — three-platform decomposition (BFS, dg1000, 8 nodes)");
    let mut chart = BreakdownChart::new();
    let mut rows = Vec::new();

    for platform in [Platform::Giraph, Platform::PowerGraph, Platform::GraphMat] {
        println!("running {} ...", platform.name());
        let result = dg1000(platform);
        let archive = &result.report.archive;
        let mut row = BreakdownRow::new(platform.name(), result.breakdown.total_us);
        for kind in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            let d = archive.total_duration_of_us(kind);
            if d > 0 {
                row = row.with_segment(kind, d);
            }
        }
        chart.add_row(row);
        rows.push((platform, result));
    }

    println!();
    println!(
        "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>7} {:>10}",
        "platform", "total", "setup%", "io%", "proc%", "iters", "validation"
    );
    for (platform, result) in &rows {
        let b = &result.breakdown;
        println!(
            "  {:<12} {:>8.1}s {:>8.1}% {:>8.1}% {:>8.1}% {:>7} {:>10}",
            platform.name(),
            b.total_s(),
            100.0 * b.fraction(Phase::Setup),
            100.0 * b.fraction(Phase::InputOutput),
            100.0 * b.fraction(Phase::Processing),
            result.run.iterations,
            if result.report.validation.is_clean() {
                "clean"
            } else {
                "issues"
            },
        );
    }

    println!("\n{}", chart.render_text(72));
    save_figure("extension_graphmat.svg", &chart.render_svg());

    // Processing-time ranking: the coarse conclusion a benchmark would draw.
    let mut proc_rank: Vec<(&str, u64)> = rows
        .iter()
        .map(|(p, r)| (p.name(), r.breakdown.processing_us))
        .collect();
    proc_rank.sort_by_key(|&(_, t)| t);
    println!("ProcessGraph ranking (fastest first):");
    for (name, t) in &proc_rank {
        println!("  {:<12} {:.2}s", name, *t as f64 / 1e6);
    }
    println!(
        "\nthe fine-grained view explains what a black-box total would hide:\n\
         three different loaders (parallel HDFS, sequential shared-FS, parallel\n\
         shared-FS + conversion) dominate three different end-to-end outcomes."
    );
}
