//! The cross-platform choke-point matrix: all four engine paradigms ×
//! {BFS, PageRank} × partitioner, through the identical Granula pipeline.
//!
//! The paper decomposes two platforms; "Experimental Analysis of
//! Distributed Graph Systems" shows the interesting choke points only
//! appear *across* paradigms. This driver runs the vertex-centric
//! (Giraph), GAS (PowerGraph), subgraph-centric (GRAPE, under both its
//! hash and block edge-cut partitioners) and dataflow (GraphX) engines on
//! the same dg1000-scaled workload, reads each archive's dominant domain
//! phase, and renders the matrix as text + SVG.
//!
//! ```text
//! choke_matrix [--vertices N] [--archive-dir DIR] [--json-out FILE]
//!              [--update-fixtures] [--trace-out trace.json]
//! ```
//!
//! * `--vertices N` — logical graph size (default 20 000; volumes are
//!   scaled to dg1000 regardless, so smaller N is a faster smoke run).
//! * `--archive-dir DIR` — write one `.gar` store per engine row, each
//!   holding that row's archived runs (`granula-cli archive fsck`-able).
//! * `--json-out FILE` — machine-readable cells (`BENCH_matrix.json`).
//! * `--update-fixtures` — regenerate `tests/fixtures/history/grape/`,
//!   the six-run history `granula-cli regress` gates the GRAPE headline
//!   against in CI.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use gpsim_platforms::common::reference_output;
use gpsim_platforms::{Algorithm, GrapePartitioner, GrapePlatform};
use granula::calibration;
use granula::experiment::{run_experiment, Platform};
use granula::process::EvaluationProcess;
use granula_archive::{ArchiveStore, JobArchive, JobMeta, RunMeta};
use granula_bench::{header, save_figure};
use granula_regress::scaled_store;
use granula_viz::{MatrixCell, MatrixChart};

const DOMAIN_KINDS: [&str; 5] = [
    "Startup",
    "LoadGraph",
    "ProcessGraph",
    "OffloadGraph",
    "Cleanup",
];

/// Jitter factors for the fixture history, mirroring
/// `tests/regress_history.rs`: real variance for the t-tests, far inside
/// the ±2 % tolerance band.
const JITTER: [f64; 6] = [0.9985, 1.0022, 0.9993, 1.0011, 1.0004, 0.9978];
const T0: u64 = 1_700_000_000_000_000;
const HOUR_US: u64 = 3_600_000_000;

/// One engine row of the matrix.
struct EngineRow {
    platform: Platform,
    /// Partitioner label; also selects GRAPE's partitioner variant.
    partitioner: &'static str,
}

impl EngineRow {
    fn label(&self) -> String {
        format!("{}/{}", self.platform.name(), self.partitioner)
    }
}

/// One evaluated cell, with everything the JSON report needs.
struct CellResult {
    archive: JobArchive,
    cell: MatrixCell,
    iterations: u32,
    validated: bool,
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn grape_fixtures_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/bench; fixtures live at the repo root.
    // The subdirectory keeps this history invisible to the fig5 regress
    // gate (`History::load_dir` is not recursive).
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/history/grape")
}

/// Runs one (engine row, algorithm) job through the full pipeline.
fn run_cell(row: &EngineRow, algorithm: Algorithm, graph: &gpsim_graph::Graph) -> CellResult {
    let scale = 1.03e9 / (graph.num_vertices() as f64 * 10.0);
    let mut cfg = row.platform.dg1000_job();
    cfg.algorithm = algorithm;
    cfg.scale_factor = scale;
    cfg.job_id = format!(
        "matrix-{}-{}-{}",
        row.platform.name().to_lowercase(),
        row.partitioner,
        algorithm.name().to_lowercase()
    );
    // GRAPE's partitioner is a platform knob, so its block-partitioned row
    // runs the platform directly and evaluates through the same process
    // `run_experiment` uses.
    let (archive, run_output, iterations, makespan_us) = if row.platform == Platform::Grape {
        let p = GrapePlatform {
            partitioner: match row.partitioner {
                "block-ec" => GrapePartitioner::Block,
                _ => GrapePartitioner::Hash,
            },
            ..GrapePlatform::default()
        };
        let run = p
            .run(graph, &cfg)
            .expect("matrix simulations are well-formed");
        let report = EvaluationProcess::new(row.platform.model()).evaluate(
            &run,
            JobMeta {
                job_id: cfg.job_id.clone(),
                platform: row.platform.name().into(),
                algorithm: cfg.algorithm.name().into(),
                dataset: cfg.dataset.clone(),
                nodes: cfg.nodes as u32,
                model: String::new(),
            },
        );
        assert!(
            report.assembly_warnings.is_empty(),
            "{}: {:?}",
            cfg.job_id,
            &report.assembly_warnings[..3.min(report.assembly_warnings.len())]
        );
        (report.archive, run.output, run.iterations, run.makespan_us)
    } else {
        let r =
            run_experiment(row.platform, graph, &cfg).expect("matrix simulations are well-formed");
        (
            r.report.archive,
            r.run.output,
            r.run.iterations,
            r.run.makespan_us,
        )
    };
    let validated = run_output.matches(&reference_output(graph, algorithm));
    let total_us = archive.total_runtime_us().unwrap_or(makespan_us);
    let (bottleneck, dominant_us) = DOMAIN_KINDS
        .iter()
        .map(|k| (*k, archive.total_duration_of_us(k)))
        .max_by_key(|(_, us)| *us)
        .expect("five domain kinds");
    CellResult {
        cell: MatrixCell {
            total_us,
            bottleneck: bottleneck.into(),
            bottleneck_frac: dominant_us as f64 / total_us.max(1) as f64,
        },
        archive,
        iterations,
        validated,
    }
}

fn update_grape_fixtures(headline: &JobArchive) {
    let dir = grape_fixtures_dir();
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let mut base = ArchiveStore::new();
    base.upsert(headline.clone());
    for (i, factor) in JITTER.iter().enumerate() {
        let run = RunMeta::new(
            format!("r{}", i + 1),
            T0 + i as u64 * HOUR_US,
            "fixture: grape matrix headline synthetic history",
        );
        let store = scaled_store(&base, *factor).with_run(run);
        let path = dir.join(format!("r{}.gar", i + 1));
        store.save(&path).expect("write fixture store");
        println!("  [fixture: {}]", path.display());
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace = granula_bench::trace_out_flag();
    let vertices: u32 = opt(&args, "--vertices")
        .map(|v| v.parse().expect("--vertices"))
        .unwrap_or(20_000);

    header(&format!(
        "Choke-point matrix — 4 paradigms x {{BFS, PageRank}} x partitioner \
         (dg1000-scaled, 8 nodes, {vertices} vertices)"
    ));
    let (graph, _) = calibration::dg_graph_small(vertices, calibration::DG_SEED);

    let rows = [
        EngineRow {
            platform: Platform::Giraph,
            partitioner: "hash-ec",
        },
        EngineRow {
            platform: Platform::PowerGraph,
            partitioner: "greedy-vc",
        },
        EngineRow {
            platform: Platform::Grape,
            partitioner: "hash-ec",
        },
        EngineRow {
            platform: Platform::Grape,
            partitioner: "block-ec",
        },
        EngineRow {
            platform: Platform::GraphX,
            partitioner: "hash-ec",
        },
    ];
    let algorithms = [
        Algorithm::Bfs { source: 1 },
        Algorithm::PageRank { iterations: 10 },
    ];

    let mut chart = MatrixChart::new(
        rows.iter().map(|r| r.label()).collect::<Vec<_>>(),
        algorithms
            .iter()
            .map(|a| a.name().to_string())
            .collect::<Vec<_>>(),
    );
    let mut results: Vec<(usize, usize, CellResult)> = Vec::new();
    for (r, row) in rows.iter().enumerate() {
        for (c, &algorithm) in algorithms.iter().enumerate() {
            let cell = run_cell(row, algorithm, &graph);
            assert!(
                cell.validated,
                "{} {} output does not match the reference",
                row.label(),
                algorithm.name()
            );
            chart.set(r, c, cell.cell.clone());
            results.push((r, c, cell));
        }
    }

    print!("\n{}", chart.render_text());
    save_figure("choke_matrix.svg", &chart.render_svg());

    println!(
        "\nInterpretation: the same workload chokes differently per paradigm —\n\
         Giraph on its loader+deployment, PowerGraph on its sequential loader,\n\
         GRAPE on per-fragment sequential processing (the partitioner shifts\n\
         the balance), GraphX on shuffle-heavy processing."
    );

    // --json-out: machine-readable cells (BENCH_matrix.json schema).
    if let Some(path) = opt(&args, "--json-out") {
        let mut cells = String::new();
        for (i, (r, c, cell)) in results.iter().enumerate() {
            let sep = if i + 1 == results.len() { "" } else { "," };
            let _ = write!(
                cells,
                "\n    {{\"platform\": \"{}\", \"partitioner\": \"{}\", \"algorithm\": \"{}\", \
                 \"total_us\": {}, \"bottleneck\": \"{}\", \"bottleneck_frac\": {:.4}, \
                 \"iterations\": {}, \"validated\": {}}}{sep}",
                json_escape(rows[*r].platform.name()),
                json_escape(rows[*r].partitioner),
                json_escape(&chart_col(&algorithms, *c)),
                cell.cell.total_us,
                json_escape(&cell.cell.bottleneck),
                cell.cell.bottleneck_frac,
                cell.iterations,
                cell.validated,
            );
        }
        let json = format!(
            "{{\n  \"schema\": 1,\n  \"description\": \"Cross-platform choke-point matrix: \
             engine x algorithm x partitioner on the dg1000-scaled workload; every cell names \
             the dominant domain phase read back from the Granula archive.\",\n  \
             \"vertices\": {vertices},\n  \"nodes\": 8,\n  \"cells\": [{cells}\n  ]\n}}\n"
        );
        std::fs::write(&path, json).expect("write json report");
        println!("  [json: {path}]");
    }

    // --archive-dir: one fsck-able .gar store per engine row.
    if let Some(dir) = opt(&args, "--archive-dir") {
        std::fs::create_dir_all(&dir).expect("create archive dir");
        for (r, row) in rows.iter().enumerate() {
            let mut store = ArchiveStore::new();
            for (cr, _, cell) in results.iter() {
                if cr == &r {
                    store.upsert(cell.archive.clone());
                }
            }
            store = store.with_run(granula_bench::run_meta_from_env());
            let path = Path::new(&dir).join(format!(
                "matrix_{}_{}.gar",
                row.platform.name().to_lowercase(),
                row.partitioner
            ));
            store.save(&path).expect("write archive store");
            println!(
                "  [archive store: {} jobs -> {}]",
                store.len(),
                path.display()
            );
        }
    }

    // --update-fixtures: the GRAPE/hash-ec BFS cell is the headline run
    // the committed regress history tracks.
    if args.iter().any(|a| a == "--update-fixtures") {
        let headline = results
            .iter()
            .find(|(r, c, _)| *r == 2 && *c == 0)
            .expect("grape hash-ec BFS cell");
        update_grape_fixtures(&headline.2.archive);
    }

    granula_bench::write_trace(&trace);
}

fn chart_col(algorithms: &[Algorithm], c: usize) -> String {
    algorithms[c].name().to_string()
}
