//! Regenerates **Figure 1**: the Granula performance model — a job as a
//! hierarchy of operations (actor × mission), each with an information set.
//!
//! The figure is conceptual; we instantiate it by archiving a real
//! (simulated, small-scale) Giraph job and rendering its operation tree
//! with infos.

use granula::experiment::{dg1000_quick, Platform};
use granula_bench::header;
use granula_viz::tree::render_operation_tree;

fn main() {
    header("Figure 1 — The Granula performance model (instantiated)");
    let result = dg1000_quick(Platform::Giraph, 4_000);
    let archive = &result.report.archive;
    println!(
        "Job archive `{}`: {} operations, {} infos\n",
        archive.meta.job_id,
        archive.num_operations(),
        archive.num_infos()
    );
    print!("{}", render_operation_tree(&archive.tree, 2));
    println!("\nInformation set of one operation (the job root):");
    if let Some(job) = archive.job() {
        for info in &job.infos {
            let provenance = if info.is_derived() { "derived" } else { "raw" };
            println!("  Info [{}] = {:?}  ({provenance})", info.name, info.value);
        }
    }
}
