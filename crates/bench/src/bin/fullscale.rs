//! The dg1000 headline experiment at **full scale**: Giraph BFS on the
//! real dataset volume — 103 M vertices + 927 M edges = 1.03e9 elements —
//! with `scale_factor = 1.0`. No down-sampling, no demand scaling: the
//! streamed generator materialises the out-CSR directly and the flat
//! frontier engine traverses it, so this binary demonstrates that the
//! arena/parallel simulation core carries the paper's experiment at the
//! paper's scale.
//!
//! ```text
//! fullscale [--check] [--vertices N] [--archive-out store.gar]
//!           [--trace-out trace.json] [--update-fixtures]
//! ```
//!
//! * `--check` — exit non-zero unless the measured makespan lands within
//!   ±5 % of the paper's 81.59 s Giraph total (the CI acceptance band).
//! * `--vertices N` — smoke variant: same streaming + flat-BFS path on a
//!   smaller graph, scale factor re-adjusted to keep emulating dg1000.
//! * `--update-fixtures` — regenerate `tests/fixtures/history-full/`, the
//!   six-run synthetic history `granula-cli regress` checks full-scale
//!   archives against.

use std::path::{Path, PathBuf};
use std::time::Instant;

use granula::calibration::{DG_FULL_EDGES, DG_FULL_VERTICES, PAPER};
use granula::experiment::{dg1000_full_sized, ExperimentResult};
use granula::metrics::Phase;
use granula_archive::{ArchiveStore, RunMeta};
use granula_bench::{compare, header};
use granula_regress::scaled_store;

/// CI acceptance band around the paper's Figure 5 total.
const ANCHOR_BAND: f64 = 0.05;

/// Sub-band jitter factors for the fixture history, mirroring
/// `tests/regress_history.rs`: real variance for the t-tests, far inside
/// the ±2 % tolerance band.
const JITTER: [f64; 6] = [0.9985, 1.0022, 0.9993, 1.0011, 1.0004, 0.9978];
const T0: u64 = 1_700_000_000_000_000;
const HOUR_US: u64 = 3_600_000_000;

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn fixtures_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/bench; fixtures live at the repo root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/history-full")
}

fn update_fixtures(result: &ExperimentResult) {
    let dir = fixtures_dir();
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let mut base = ArchiveStore::new();
    base.upsert(result.report.archive.clone());
    for (i, factor) in JITTER.iter().enumerate() {
        let run = RunMeta::new(
            format!("r{}", i + 1),
            T0 + i as u64 * HOUR_US,
            "fixture: full-scale dg1000 synthetic history",
        );
        let store = scaled_store(&base, *factor).with_run(run);
        let path = dir.join(format!("r{}.gar", i + 1));
        store.save(&path).expect("write fixture store");
        println!("  [fixture: {}]", path.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace = granula_bench::trace_out_flag();
    let archive_out = granula_bench::archive_out_flag();
    let check = flag(&args, "--check");
    let vertices: u32 = opt(&args, "--vertices")
        .map(|v| v.parse().expect("--vertices takes an integer"))
        .unwrap_or(DG_FULL_VERTICES);
    let full = vertices == DG_FULL_VERTICES;

    header("Full-scale dg1000 — Giraph BFS at scale_factor = 1.0 (8 nodes)");
    println!(
        "graph: {} vertices + {} edges ({})",
        vertices,
        vertices as u64 * 9,
        if full {
            format!(
                "the paper's dg1000 volume: {} elements",
                DG_FULL_VERTICES as u64 + DG_FULL_EDGES
            )
        } else {
            "smoke variant, demand rescaled to dg1000".into()
        }
    );

    let wall = Instant::now();
    let result = dg1000_full_sized(vertices);
    let wall = wall.elapsed();

    let b = &result.breakdown;
    println!(
        "\nwall-clock {:.1} s, simulated makespan {:.2} s over {} supersteps\n",
        wall.as_secs_f64(),
        b.total_s(),
        result.run.iterations
    );
    compare("total runtime", PAPER.giraph_total_s, b.total_s(), "s");
    compare(
        "setup fraction",
        100.0 * PAPER.giraph_fractions[0],
        100.0 * b.fraction(Phase::Setup),
        "%",
    );
    compare(
        "input/output fraction",
        100.0 * PAPER.giraph_fractions[1],
        100.0 * b.fraction(Phase::InputOutput),
        "%",
    );
    compare(
        "processing fraction",
        100.0 * PAPER.giraph_fractions[2],
        100.0 * b.fraction(Phase::Processing),
        "%",
    );
    println!();

    if flag(&args, "--update-fixtures") {
        update_fixtures(&result);
    }
    granula_bench::write_archive_store(&archive_out, [&result.report.archive]);
    granula_bench::write_trace(&trace);

    if check {
        let err = b.total_s() / PAPER.giraph_total_s - 1.0;
        if err.abs() < ANCHOR_BAND {
            println!(
                "CHECK OK: within ±{:.0}% of the {:.2} s anchor ({:+.2}%)",
                100.0 * ANCHOR_BAND,
                PAPER.giraph_total_s,
                100.0 * err
            );
        } else {
            eprintln!(
                "CHECK FAILED: {:.2} s is {:+.2}% off the {:.2} s anchor (band ±{:.0}%)",
                b.total_s(),
                100.0 * err,
                PAPER.giraph_total_s,
                100.0 * ANCHOR_BAND
            );
            std::process::exit(1);
        }
    }
}
