//! Ablation: dataset-scale sweep — where is the Giraph/PowerGraph
//! crossover?
//!
//! The paper evaluates one dataset (dg1000), where PowerGraph's sequential
//! loader loses badly. But Giraph pays a ~24 s fixed YARN deployment cost,
//! so at *small* scales PowerGraph's cheap MPI setup wins the end-to-end
//! comparison. The decomposition names the crossover's cause: the loader's
//! linear term overtakes the deployment's constant term.

use granula::calibration;
use granula::datasets::datagen_family;
use granula::experiment::{run_experiment, Platform};
use granula::metrics::Phase;
use granula_bench::header;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Ablation — dataset-scale sweep (BFS, 8 nodes): the setup/loader crossover");
    let (graph, _) = calibration::dg_graph_small(20_000, calibration::DG_SEED);

    println!(
        "  {:<9} {:>12} {:>12} {:>12}   winner (end-to-end)",
        "dataset", "Giraph", "PowerGraph", "GraphMat"
    );
    for dataset in datagen_family() {
        let scale = dataset.scale_factor(graph.num_vertices());
        let mut totals = Vec::new();
        for platform in [Platform::Giraph, Platform::PowerGraph, Platform::GraphMat] {
            let mut cfg = platform.dg1000_job();
            cfg.scale_factor = scale;
            cfg.dataset = dataset.name.to_string();
            cfg.job_id = format!("{}-{}", platform.name().to_lowercase(), dataset.name);
            let r = run_experiment(platform, &graph, &cfg)?;
            totals.push((platform.name(), r.breakdown.total_s(), r.breakdown));
        }
        let winner = totals
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty");
        println!(
            "  {:<9} {:>11.1}s {:>11.1}s {:>11.1}s   {}",
            dataset.name, totals[0].1, totals[1].1, totals[2].1, winner.0
        );
    }

    // Name the crossover's cause via the decomposition at the extremes.
    println!("\nDecomposition at the extremes (Giraph vs PowerGraph):");
    for name in ["dg10", "dg1000"] {
        let dataset = granula::datasets::by_name(name).expect("in catalog");
        let scale = dataset.scale_factor(graph.num_vertices());
        for platform in [Platform::Giraph, Platform::PowerGraph] {
            let mut cfg = platform.dg1000_job();
            cfg.scale_factor = scale;
            let r = run_experiment(platform, &graph, &cfg)?;
            let b = &r.breakdown;
            println!(
                "  {:<8} {:<12} setup {:>6.1}s  io {:>7.1}s  proc {:>6.1}s",
                name,
                platform.name(),
                b.phase_us(Phase::Setup) as f64 / 1e6,
                b.phase_us(Phase::InputOutput) as f64 / 1e6,
                b.phase_us(Phase::Processing) as f64 / 1e6,
            );
        }
    }
    println!(
        "\nInterpretation: below the crossover Giraph's constant YARN deployment\n\
         dominates and PowerGraph wins; above it PowerGraph's linear sequential\n\
         loader dominates and Giraph wins — a crossover only the fine-grained\n\
         decomposition can attribute."
    );
    Ok(())
}
