//! Ablation: straggler detection — a degraded node found from the archive
//! alone.
//!
//! One node of the cluster runs at a fraction of its capacity (thermal
//! throttling, a noisy neighbour, failing DIMMs). Coarse-grained timing
//! only shows "the job got slower"; the Granula archive names the node:
//! per-worker Compute durations skew, the imbalance choke-point fires, and
//! the slowest worker maps to the degraded node.

use gpsim_cluster::ClusterSpec;
use granula::analysis::{find_choke_points, ChokePointConfig, ChokePointKind};
use granula::calibration;
use granula::experiment::{run_experiment_on, Platform};
use granula::metrics::worker_imbalance;
use granula_bench::header;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Ablation — straggler detection (Giraph, BFS, dg1000, 8 nodes)");
    let (graph, scale) = calibration::dg_graph_small(20_000, calibration::DG_SEED);
    let mut cfg = calibration::giraph_dg1000_job();
    cfg.scale_factor = scale;

    for (label, straggler) in [
        ("healthy cluster", None),
        ("node305 at 1/4 capacity", Some(5u16)),
    ] {
        let mut cluster = ClusterSpec::das5(8);
        if let Some(i) = straggler {
            cluster.nodes[i as usize].cores /= 4;
        }
        let result = run_experiment_on(Platform::Giraph, &graph, &cfg, &cluster)?;
        println!("\n--- {label} ---");
        println!("total runtime: {:.2}s", result.breakdown.total_s());

        // Worst imbalance across supersteps, and who causes it.
        let stats = worker_imbalance(&result.report.archive, "Compute");
        let worst = stats
            .iter()
            .filter(|s| s.mean_us > 1e5) // ignore trivial supersteps
            .max_by(|a, b| a.imbalance.total_cmp(&b.imbalance));
        if let Some(w) = worst {
            println!(
                "worst Compute imbalance: superstep {} at max/mean {:.2}",
                w.iteration, w.imbalance
            );
        }

        // The imbalance choke points name the slow worker.
        let findings = find_choke_points(&result.report.archive, &ChokePointConfig::default());
        let imbalances: Vec<_> = findings
            .iter()
            .filter(|c| matches!(c.kind, ChokePointKind::Imbalance { .. }))
            .take(3)
            .collect();
        if imbalances.is_empty() {
            println!("no imbalance choke points (workers healthy)");
        } else {
            println!("imbalance choke points (slowest actor named):");
            for c in &imbalances {
                println!("  severity {:>5.1}%  {}", c.severity * 100.0, c.label);
            }
        }
    }
    println!(
        "\nInterpretation: the slow node never appears in any configuration\n\
         file — Granula's archive identifies it from per-worker operation\n\
         durations alone, turning `the job got slower` into `node305 is sick`."
    );
    Ok(())
}
