//! Regenerates **Figure 5**: domain-level job decomposition of BFS on
//! dg1000 over 8 nodes — Giraph vs PowerGraph.
//!
//! Paper reference (§4.2): Giraph spends 30.9 % in setup, 43.3 % in
//! input/output and 25.8 % in processing of an 81.59 s run; PowerGraph
//! spends 94.8 % in input/output and under 3.1 % in processing of a
//! 400.38 s run.

use granula::calibration::PAPER;
use granula::experiment::{default_threads, dg1000, par_map, Platform};
use granula::metrics::Phase;
use granula_bench::{compare, header, save_figure};
use granula_viz::{BreakdownChart, BreakdownRow};

fn main() {
    let trace = granula_bench::trace_out_flag();
    let archive_out = granula_bench::archive_out_flag();
    header("Figure 5 — Domain-level job decomposition (BFS, dg1000, 8 nodes)");
    let mut chart = BreakdownChart::new();

    // Both platforms simulate concurrently; results are deterministic and
    // reported in input order.
    let platforms = [Platform::Giraph, Platform::PowerGraph];
    println!("running {} ...", platforms.map(Platform::name).join(" ∥ "));
    let results = par_map(&platforms, default_threads(), |p| dg1000(*p));

    for (platform, result) in platforms.into_iter().zip(&results) {
        let b = &result.breakdown;
        let mut row = BreakdownRow::new(platform.name(), b.total_us);
        let archive = &result.report.archive;
        for kind in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            let d = archive.total_duration_of_us(kind);
            if d > 0 {
                row = row.with_segment(kind, d);
            }
        }
        chart.add_row(row);

        println!("\n{} measured vs paper:", platform.name());
        match platform {
            Platform::Giraph => {
                compare("total runtime", PAPER.giraph_total_s, b.total_s(), "s");
                compare(
                    "setup fraction",
                    100.0 * PAPER.giraph_fractions[0],
                    100.0 * b.fraction(Phase::Setup),
                    "%",
                );
                compare(
                    "input/output fraction",
                    100.0 * PAPER.giraph_fractions[1],
                    100.0 * b.fraction(Phase::InputOutput),
                    "%",
                );
                compare(
                    "processing fraction",
                    100.0 * PAPER.giraph_fractions[2],
                    100.0 * b.fraction(Phase::Processing),
                    "%",
                );
            }
            Platform::GraphMat | Platform::Grape | Platform::GraphX => {
                unreachable!("fig5 compares the paper's two platforms")
            }
            Platform::PowerGraph => {
                compare("total runtime", PAPER.powergraph_total_s, b.total_s(), "s");
                compare(
                    "input/output fraction",
                    100.0 * PAPER.powergraph_io_fraction,
                    100.0 * b.fraction(Phase::InputOutput),
                    "%",
                );
                println!(
                    "  {:<34} paper   < {:>6.2}%   measured {:>9.2}%",
                    "processing fraction",
                    100.0 * PAPER.powergraph_processing_max,
                    100.0 * b.fraction(Phase::Processing)
                );
            }
        }
        println!();
    }

    println!("{}", chart.render_text(72));
    save_figure("fig5_decomposition.svg", &chart.render_svg());
    granula_bench::write_archive_store(&archive_out, results.iter().map(|r| &r.report.archive));
    granula_bench::write_trace(&trace);
}
