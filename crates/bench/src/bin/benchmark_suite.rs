//! Extension: a Graphalytics-style benchmark suite over the three
//! platforms and five algorithms, with every output validated against the
//! sequential references — the coarse ranking Granula's fine-grained
//! analysis complements (paper §5).

use granula::benchmark::BenchmarkSuite;
use granula_bench::header;

fn main() {
    header("Extension — Graphalytics-style suite (3 platforms × 5 algorithms, dg1000 scale)");
    let suite = BenchmarkSuite {
        vertices: 20_000,
        ..Default::default()
    };
    println!(
        "running {} jobs ...\n",
        suite.platforms.len() * suite.algorithms.len()
    );
    let report = suite.run();
    print!("{}", report.render_text());

    println!("\nRankings (winner by metric):");
    println!(
        "  {:<10} {:>16} {:>16}",
        "algorithm", "processing (Tp)", "end-to-end"
    );
    for algorithm in ["BFS", "PageRank", "WCC", "CDLP", "SSSP"] {
        println!(
            "  {:<10} {:>16} {:>16}",
            algorithm,
            report.winner(algorithm, |r| r.processing_us).unwrap_or("-"),
            report.winner(algorithm, |r| r.total_us).unwrap_or("-"),
        );
    }

    // The paper's pair: the processing vs end-to-end split in isolation.
    println!("\nGiraph vs PowerGraph (the paper's comparison):");
    for algorithm in ["BFS", "PageRank", "WCC", "CDLP", "SSSP"] {
        let of = |platform: &str, metric: fn(&granula::BenchmarkRow) -> u64| {
            report
                .rows
                .iter()
                .find(|r| r.platform == platform && r.algorithm == algorithm)
                .map(metric)
                .unwrap_or(0)
        };
        let proc_winner =
            if of("PowerGraph", |r| r.processing_us) < of("Giraph", |r| r.processing_us) {
                "PowerGraph"
            } else {
                "Giraph"
            };
        let total_winner = if of("PowerGraph", |r| r.total_us) < of("Giraph", |r| r.total_us) {
            "PowerGraph"
        } else {
            "Giraph"
        };
        println!(
            "  {:<10} processing: {:<11} end-to-end: {}",
            algorithm, proc_winner, total_winner
        );
    }
    println!(
        "\nPowerGraph wins every processing comparison yet loses every\n\
         end-to-end one — the paper's thesis in one table: coarse benchmarking\n\
         quantifies, fine-grained analysis explains. Every archive behind this\n\
         table is queryable for the explanation."
    );
}
