//! Regenerates **Figure 6**: cumulative CPU usage of the 8 compute nodes
//! mapped onto the Giraph job's operations.
//!
//! Paper observations (§4.3): setup is not compute-intensive; LoadGraph is
//! surprisingly CPU-heavy (a compute-intensive data loading mechanism);
//! ProcessGraph shows spiky, generally under-utilized CPU; peak cumulative
//! usage ≈ 190.30 CPU-time/second.

use granula::calibration::PAPER;
use granula::experiment::{dg1000, Platform};
use granula_bench::{compare, header, save_figure};
use granula_monitor::ResourceKind;
use granula_viz::TimelineChart;

fn main() {
    let trace = granula_bench::trace_out_flag();
    let archive_out = granula_bench::archive_out_flag();
    header("Figure 6 — CPU utilization of Giraph operations (BFS, dg1000, 8 nodes)");
    println!("running Giraph ...");
    let result = dg1000(Platform::Giraph);
    let archive = &result.report.archive;
    let env = &result.report.env;

    let mut chart = TimelineChart::new(env, ResourceKind::Cpu);
    let root = archive.tree.root().expect("archived job has a root");
    for kind in [
        "Startup",
        "LoadGraph",
        "ProcessGraph",
        "OffloadGraph",
        "Cleanup",
    ] {
        if let Some(id) = archive.tree.child_by_mission(root, kind) {
            let op = archive.tree.op(id);
            if let (Some(s), Some(e)) = (op.start_us(), op.end_us()) {
                chart = chart.with_phase(kind, s, e);
            }
        }
    }
    println!("{}", chart.render_text(96, 14));
    save_figure("fig6_giraph_cpu.svg", &chart.render_svg());

    let peak = env
        .cumulative(ResourceKind::Cpu)
        .into_iter()
        .map(|(_, v)| v)
        .fold(0.0f64, f64::max);
    compare("peak cumulative CPU", PAPER.giraph_cpu_peak, peak, " cpu/s");

    // The paper's qualitative claims, checked quantitatively.
    let phase_mean = |kind: &str| -> f64 {
        archive
            .tree
            .child_by_mission(root, kind)
            .and_then(|id| archive.tree.op(id).info_f64("CpuMean"))
            .unwrap_or(0.0)
    };
    println!("\nMean CPU on the operation's node (mapped by Granula):");
    for kind in ["Startup", "LoadGraph", "ProcessGraph", "Cleanup"] {
        println!("  {kind:<14} {:>8.1} cpu/s", phase_mean(kind));
    }
    let (setup, load, proc_) = (
        phase_mean("Startup"),
        phase_mean("LoadGraph"),
        phase_mean("ProcessGraph"),
    );
    println!("\nPaper's observations hold:");
    println!("  setup not compute-intensive:   {}", setup < 0.1 * load);
    println!("  LoadGraph CPU-heavy:           {}", load > proc_);
    println!("  ProcessGraph under-utilized:   {}", proc_ < 0.5 * 256.0);
    granula_bench::write_archive_store(&archive_out, [&result.report.archive]);
    granula_bench::write_trace(&trace);
}
