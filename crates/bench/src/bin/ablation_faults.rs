//! Ablation: fault injection — decomposing the cost of a crash from the
//! archive alone.
//!
//! The same dg1000 BFS job runs healthy and with one node crashed at 40%
//! of the healthy makespan, on all four platforms. Coarse-grained timing
//! only shows "the faulty run is slower"; the Granula archive decomposes
//! that slowdown into checkpointing, re-provisioning (detection +
//! container / rank restart + state reload) and replayed work, and the
//! `RecoveryOverhead` choke point names the lost node. The four recovery
//! styles stay directly comparable because they all emit the same op
//! vocabulary: Giraph replays from its last checkpoint, PowerGraph
//! fail-stop restarts the whole job, GRAPE reloads and replays only the
//! lost fragment, and GraphX recomputes the lost partition's lineage.

use gpsim_cluster::{FaultPlan, NodeId};
use granula::analysis::{find_choke_points, ChokePointConfig, ChokePointKind};
use granula::calibration;
use granula::experiment::{run_experiment, run_experiment_with_faults, Platform};
use granula_archive::JobArchive;
use granula_bench::header;

/// Where the recovery time went, in µs, read back from the archive.
struct RecoveryBreakdown {
    checkpoint_us: u64,
    reprovision_us: u64,
    replay_us: u64,
}

impl RecoveryBreakdown {
    fn total_us(&self) -> u64 {
        self.checkpoint_us + self.reprovision_us + self.replay_us
    }
}

fn sum_kind(archive: &JobArchive, kind: &str) -> u64 {
    archive
        .tree
        .by_mission_kind(kind)
        .filter_map(|op| op.duration_us())
        .sum()
}

/// Decomposes the fault overhead of one archive. Giraph spends the time in
/// checkpoints, YARN re-provisioning and superstep replay; PowerGraph
/// (fail-stop, no checkpoints) spends it in the MPI respawn plus the whole
/// wasted first attempt, which the `Recover` op reports as `WastedUs`;
/// GRAPE's re-provisioning is the fragment reload and its replay is
/// fragment-local; GraphX's re-provisioning is the executor relaunch +
/// task rescheduling and its "replay" is the lineage recomputation.
fn decompose(archive: &JobArchive) -> RecoveryBreakdown {
    let reprovision_us = [
        "DetectFailure",
        "Provision",
        "LoadCheckpoint",
        "Respawn",
        "ReloadFragment",
        "Reschedule",
    ]
    .iter()
    .map(|k| sum_kind(archive, k))
    .sum();
    let wasted_us: u64 = archive
        .tree
        .by_mission_kind("Recover")
        .filter_map(|op| op.info_f64("WastedUs"))
        .sum::<f64>()
        .round() as u64;
    RecoveryBreakdown {
        checkpoint_us: sum_kind(archive, "Checkpoint"),
        reprovision_us,
        replay_us: sum_kind(archive, "Replay") + sum_kind(archive, "Recompute") + wasted_us,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = granula_bench::trace_out_flag();
    header("Ablation — fault injection (BFS, dg1000, 8 nodes, crash at 40%)");
    let (graph, scale) = calibration::dg_graph_small(20_000, calibration::DG_SEED);

    for platform in [
        Platform::Giraph,
        Platform::PowerGraph,
        Platform::Grape,
        Platform::GraphX,
    ] {
        let mut cfg = platform.dg1000_job();
        cfg.scale_factor = scale;

        let healthy = run_experiment(platform, &graph, &cfg)?;
        let crash_at = healthy.run.makespan_us as f64 * 0.4;
        let plan = FaultPlan::new().crash(NodeId(2), crash_at);
        // Giraph checkpoints every 2 supersteps; PowerGraph has none.
        let interval = (platform == Platform::Giraph).then_some(2);
        let faulty = run_experiment_with_faults(platform, &graph, &cfg, &plan, interval)?;

        let delta_us = faulty.run.makespan_us - healthy.run.makespan_us;
        let b = decompose(&faulty.report.archive);
        println!("\n--- {} ---", platform.name());
        println!(
            "healthy {:.2}s, node302 crashed at {:.2}s -> faulty {:.2}s (delta {:.2}s)",
            healthy.breakdown.total_s(),
            crash_at / 1e6,
            faulty.breakdown.total_s(),
            delta_us as f64 / 1e6
        );
        println!("slowdown decomposed from the archive:");
        for (label, us) in [
            ("checkpointing", b.checkpoint_us),
            ("re-provisioning", b.reprovision_us),
            ("replayed work", b.replay_us),
        ] {
            println!(
                "  {label:<16} {:>7.2}s  ({:.0}% of delta)",
                us as f64 / 1e6,
                100.0 * us as f64 / delta_us as f64
            );
        }
        let covered = b.total_us() as f64 / delta_us as f64;
        println!("  covered          {:>6.0}%", covered * 100.0);
        assert!(
            covered >= 0.90,
            "{}: decomposition covers only {:.0}% of the slowdown",
            platform.name(),
            covered * 100.0
        );

        // The choke-point analysis names the lost node.
        let findings = find_choke_points(&faulty.report.archive, &ChokePointConfig::default());
        let recovery = findings
            .iter()
            .find_map(|c| match &c.kind {
                ChokePointKind::RecoveryOverhead { worker, wasted_us } => {
                    Some((c.severity, worker.clone(), *wasted_us))
                }
                _ => None,
            })
            .ok_or("no RecoveryOverhead choke point in the faulty archive")?;
        println!(
            "choke point: recovery after losing {} (severity {:.1}%, {:.2}s wasted)",
            recovery.1,
            recovery.0 * 100.0,
            recovery.2 as f64 / 1e6
        );
        assert_eq!(recovery.1, "node302", "{}", platform.name());
    }
    println!(
        "\nInterpretation: all four platforms lose the same node at the same\n\
         moment, but the archive shows *where* the lost time goes — Giraph\n\
         pays for checkpoints plus a bounded replay from the last one;\n\
         fail-stop PowerGraph re-runs the whole job and the wasted first\n\
         attempt dwarfs the respawn itself; GRAPE reloads and replays only\n\
         the lost fragment, so its overhead is the smallest; GraphX pays an\n\
         executor relaunch plus a lineage recomputation bounded by the\n\
         committed stages on the lost partition."
    );
    granula_bench::write_trace(&trace);
    Ok(())
}
