//! Regenerates **Figure 4**: the 4-level Granula performance model of
//! Giraph (domain → system → implementation levels), plus the PowerGraph
//! model built with the same methodology.

use granula::models::{giraph_model, powergraph_model};
use granula_bench::header;
use granula_model::AbstractionLevel;
use granula_viz::tree::{render_level, render_model};

fn main() {
    header("Figure 4 — A Granula performance model of Giraph (4 levels)");
    print!("{}", render_model(&giraph_model()));

    println!("\nPer-level view (the incremental-refinement axis):");
    for depth in 1..=4 {
        print!(
            "{}",
            render_level(&giraph_model(), AbstractionLevel::from_depth(depth))
        );
    }

    header("The PowerGraph model, built with the same methodology");
    print!("{}", render_model(&powergraph_model()));
}
