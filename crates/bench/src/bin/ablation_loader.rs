//! Ablation: PowerGraph's sequential loader vs hypothetical parallel
//! loaders.
//!
//! Figure 7's diagnosis — "the data loading mechanism of PowerGraph, which
//! loads input sequentially from the storage system, is not a good fit for
//! the distributed execution environment" — implies a fix. This ablation
//! quantifies it: increasing the loader's parse parallelism shrinks
//! LoadGraph until the shared-filesystem/NIC bandwidth becomes the
//! bottleneck.

use gpsim_platforms::PowerGraphPlatform;
use granula::calibration;
use granula::metrics::DomainBreakdown;
use granula::models::powergraph_model;
use granula::process::EvaluationProcess;
use granula_archive::JobMeta;
use granula_bench::header;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Ablation — PowerGraph loader parallelism (BFS, dg1000, 8 nodes)");
    let (graph, scale) = calibration::dg_graph_small(20_000, calibration::DG_SEED);
    let mut cfg = calibration::powergraph_dg1000_job();
    cfg.scale_factor = scale;

    println!(
        "  {:<16} {:>12} {:>12} {:>12} {:>10}",
        "loader threads", "LoadGraph", "total", "I/O frac", "speedup"
    );
    let mut baseline_total = None;
    for threads in [1u32, 2, 4, 8, 16, 32] {
        let platform = PowerGraphPlatform {
            loader_threads: threads,
            ..Default::default()
        };
        let run = platform.run(&graph, &cfg)?;
        let report = EvaluationProcess::new(powergraph_model()).evaluate(
            &run,
            JobMeta {
                job_id: format!("loader-{threads}"),
                platform: "PowerGraph".into(),
                algorithm: "BFS".into(),
                dataset: "dg1000".into(),
                nodes: 8,
                model: String::new(),
            },
        );
        let b = DomainBreakdown::from_archive(&report.archive).expect("runtime present");
        let baseline = *baseline_total.get_or_insert(b.total_us);
        println!(
            "  {:<16} {:>10.1}s {:>10.1}s {:>11.1}% {:>9.2}x",
            threads,
            b.io_us as f64 / 1e6,
            b.total_s(),
            100.0 * b.fraction(granula::metrics::Phase::InputOutput),
            baseline as f64 / b.total_us as f64,
        );
    }
    println!(
        "\nInterpretation: parsing parallelism alone recovers most of the\n\
         paper-reported 4.9x end-to-end gap to Giraph; beyond ~8 threads the\n\
         single reader's NIC/shared-FS bandwidth dominates."
    );
    Ok(())
}
