//! Ablation: edge-cut (Pregel family) vs vertex-cut (GAS family)
//! partitioning across graph families.
//!
//! Table 1 distinguishes the studied platforms by data layout; this
//! ablation quantifies why: on power-law graphs the greedy vertex-cut keeps
//! the replication factor low while the hash edge-cut cuts most edges —
//! PowerGraph's design premise.

use gpsim_graph::gen::{datagen_like, rmat, uniform, GenConfig};
use gpsim_graph::{DegreeStats, EdgeCutPartition, Graph, VertexCutPartition};
use granula_bench::header;

fn row(name: &str, g: &Graph, k: u16) {
    let ec = EdgeCutPartition::hash(g.num_vertices(), k);
    let vc = VertexCutPartition::greedy(g, k);
    let cut_frac = ec.cut_edges(g) as f64 / g.num_edges() as f64;
    let sizes = vc.sizes();
    let max = *sizes.iter().max().expect("k > 0") as f64;
    let mean = g.num_edges() as f64 / k as f64;
    let in_stats = DegreeStats::in_degrees(g);
    println!(
        "  {:<10} {:>9} {:>9} {:>8.2} {:>12.1}% {:>12.2} {:>12.2}",
        name,
        g.num_vertices(),
        g.num_edges(),
        in_stats.gini,
        100.0 * cut_frac,
        vc.replication_factor(),
        max / mean,
    );
}

fn main() {
    header("Ablation — edge-cut vs vertex-cut across graph families (k = 8)");
    println!(
        "  {:<10} {:>9} {:>9} {:>8} {:>13} {:>12} {:>12}",
        "graph", "|V|", "|E|", "skew", "edge-cut %", "repl.factor", "vc imbalance"
    );
    let n = 30_000u32;
    row("datagen", &datagen_like(&GenConfig::datagen(n, 7)), 8);
    row("rmat", &rmat(15, n as u64 * 9, 7), 8);
    row("uniform", &uniform(n, n as u64 * 9, 7), 8);

    println!("\nScaling the machine count on the datagen graph:");
    println!(
        "  {:<10} {:>13} {:>12}",
        "machines", "edge-cut %", "repl.factor"
    );
    let g = datagen_like(&GenConfig::datagen(n, 7));
    for k in [2u16, 4, 8, 16, 32] {
        let ec = EdgeCutPartition::hash(g.num_vertices(), k);
        let vc = VertexCutPartition::greedy(&g, k);
        println!(
            "  {:<10} {:>12.1}% {:>12.2}",
            k,
            100.0 * ec.cut_edges(&g) as f64 / g.num_edges() as f64,
            vc.replication_factor(),
        );
    }
    println!(
        "\nInterpretation: hash edge-cuts cut (k-1)/k of all edges regardless\n\
         of structure; the greedy vertex-cut's replication factor grows only\n\
         slowly with k, and more slowly on skewed graphs — the reason the GAS\n\
         family wins on power-law inputs."
    );
}
