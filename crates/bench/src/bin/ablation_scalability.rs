//! Ablation: horizontal scalability — the same dg1000 BFS job on 2–32
//! nodes.
//!
//! The fine-grained decomposition explains the scaling curves: Giraph's
//! parallel loader and compute scale with nodes while its YARN setup cost
//! *grows*; PowerGraph barely scales at all because the sequential loader
//! is a fixed serial term (Amdahl in the flesh); GraphMat scales until the
//! shared-filesystem server saturates.

use granula::calibration;
use granula::experiment::{run_experiments, Platform};
use granula::metrics::Phase;
use granula_bench::header;

const NODE_COUNTS: [u16; 5] = [2, 4, 8, 16, 32];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("Ablation — horizontal scalability (BFS, dg1000 scale)");
    let (graph, scale) = calibration::dg_graph_small(20_000, calibration::DG_SEED);

    // All 15 (platform × node-count) runs are independent: simulate them in
    // parallel, then print the table in order.
    let platforms = [Platform::Giraph, Platform::PowerGraph, Platform::GraphMat];
    let jobs: Vec<_> = platforms
        .into_iter()
        .flat_map(|platform| {
            NODE_COUNTS.into_iter().map(move |nodes| {
                let mut cfg = platform.dg1000_job();
                cfg.nodes = nodes;
                cfg.scale_factor = scale;
                cfg.job_id = format!("{}-n{}", platform.name().to_lowercase(), nodes);
                (platform, cfg)
            })
        })
        .collect();
    let results = run_experiments(&jobs, &graph);

    for (platform, chunk) in platforms.into_iter().zip(results.chunks(NODE_COUNTS.len())) {
        println!("\n{}:", platform.name());
        println!(
            "  {:<7} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "nodes", "total", "setup", "io", "proc", "speedup"
        );
        let mut base: Option<f64> = None;
        for (nodes, r) in NODE_COUNTS.into_iter().zip(chunk) {
            let r = r.as_ref().map_err(Clone::clone)?;
            let b = &r.breakdown;
            let baseline = *base.get_or_insert(b.total_s());
            println!(
                "  {:<7} {:>8.1}s {:>8.1}s {:>8.1}s {:>8.1}s {:>8.2}x",
                nodes,
                b.total_s(),
                b.phase_us(Phase::Setup) as f64 / 1e6,
                b.phase_us(Phase::InputOutput) as f64 / 1e6,
                b.phase_us(Phase::Processing) as f64 / 1e6,
                baseline / b.total_s(),
            );
        }
    }
    println!(
        "\nInterpretation: end-to-end speedups diverge from processing speedups\n\
         because each platform's fixed terms (YARN deployment, the sequential\n\
         loader, the shared-FS server) scale differently — exactly the\n\
         distinction a coarse-grained benchmark cannot draw."
    );
    Ok(())
}
