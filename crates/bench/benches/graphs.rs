//! Criterion benches of the graph substrate and the platform engines:
//! generation, partitioning, and distributed-algorithm emulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gpsim_graph::gen::{datagen_like, GenConfig};
use gpsim_graph::{algos, EdgeCutPartition, VertexCutPartition};
use gpsim_platforms::pregel::{self, BfsProgram, PageRankProgram};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen_like");
    group.sample_size(10);
    for &n in &[10_000u32, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(datagen_like(&GenConfig::datagen(n, 7)).num_edges()))
        });
    }
    group.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let g = datagen_like(&GenConfig::datagen(50_000, 7));
    c.bench_function("edge_cut_hash_450k_edges", |b| {
        b.iter(|| black_box(EdgeCutPartition::hash(g.num_vertices(), 8).cut_edges(&g)))
    });
    let mut group = c.benchmark_group("vertex_cut_greedy");
    group.sample_size(10);
    group.bench_function("450k_edges", |b| {
        b.iter(|| black_box(VertexCutPartition::greedy(&g, 8).replication_factor()))
    });
    group.finish();
}

fn bench_reference_algos(c: &mut Criterion) {
    let g = datagen_like(&GenConfig::datagen(50_000, 7));
    c.bench_function("reference_bfs_450k", |b| {
        b.iter(|| black_box(algos::bfs(&g, 1)[100]))
    });
    c.bench_function("reference_pagerank10_450k", |b| {
        b.iter(|| black_box(algos::pagerank(&g, 10, 0.85)[100]))
    });
    c.bench_function("reference_wcc_450k", |b| {
        b.iter(|| black_box(algos::wcc(&g)[100]))
    });
}

fn bench_pregel_engine(c: &mut Criterion) {
    let g = datagen_like(&GenConfig::datagen(50_000, 7));
    let part = EdgeCutPartition::hash(g.num_vertices(), 8);
    let mut group = c.benchmark_group("pregel_engine");
    group.sample_size(10);
    group.bench_function("bfs_450k", |b| {
        b.iter(|| {
            let out = pregel::run(&g, &part, &BfsProgram { source: 1 }, 10_000);
            black_box(out.supersteps.len())
        })
    });
    group.bench_function("pagerank10_450k", |b| {
        b.iter(|| {
            let out = pregel::run(
                &g,
                &part,
                &PageRankProgram {
                    iterations: 10,
                    damping: 0.85,
                },
                10_000,
            );
            black_box(out.values[100])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_partitioning,
    bench_reference_algos,
    bench_pregel_engine
);
criterion_main!(benches);
