//! Archive query microbenchmarks: the indexed [`QueryEngine`] against the
//! linear scans of `granula_archive::query`.
//!
//! Two archives:
//!
//! - `fig5`: the Giraph dg1000 archive the `fig5` binary persists via
//!   `--archive-out` (hundreds of operations);
//! - `cluster`: a synthetic 200-superstep × 64-worker job (~13k
//!   operations) — the shape one paper-scale experiment on a larger
//!   cluster archives;
//! - `tiny`: an 8 × 8 job (74 operations) sitting under the planner's
//!   `SCAN_THRESHOLD` — the crossover regime where PR 5 measured
//!   `indexed` slower than `scan` and `plan_for` now falls back to the
//!   scan, so `indexed` must track `scan` to within planning overhead.
//!
//! Three access paths per query shape:
//!
//! - `scan`: `Query::select`/`find_all` walking every operation;
//! - `indexed`: `QueryEngine::evaluate` — planner + candidate-list
//!   evaluation, no result cache;
//! - `cached`: `QueryEngine::query` in steady state, i.e. an analyst
//!   re-running the same queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use granula::experiment::{dg1000_quick, Platform};
use granula_archive::{JobArchive, JobMeta, Query, QueryEngine, QueryMode};
use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

/// A synthetic paper-scale archive: `supersteps` × `workers` compute
/// operations under a superstep layer, every operation timestamped.
fn cluster_archive(supersteps: u64, workers: u64) -> JobArchive {
    let mut tree = OperationTree::new();
    let job = tree
        .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
        .expect("fresh tree");
    let proc_ = tree
        .add_child(
            job,
            Actor::new("Job", "0"),
            Mission::new("ProcessGraph", "0"),
        )
        .expect("parent exists");
    for s in 0..supersteps {
        let ss = tree
            .add_child(
                proc_,
                Actor::new("Job", "0"),
                Mission::new("Superstep", s.to_string()),
            )
            .expect("parent exists");
        tree.set_info(
            ss,
            Info::raw(names::START_TIME, InfoValue::Int((s * 100_000) as i64)),
        )
        .expect("id exists");
        for w in 0..workers {
            let c = tree
                .add_child(
                    ss,
                    Actor::new("Worker", w.to_string()),
                    Mission::new("Compute", s.to_string()),
                )
                .expect("parent exists");
            tree.set_info(
                c,
                Info::raw(
                    names::START_TIME,
                    InfoValue::Int((s * 100_000 + w * 10) as i64),
                ),
            )
            .expect("id exists");
        }
    }
    JobArchive::new(
        JobMeta {
            job_id: "cluster".into(),
            platform: "Giraph".into(),
            algorithm: "BFS".into(),
            dataset: "synthetic".into(),
            nodes: workers as u32,
            model: "giraph-v4".into(),
        },
        tree,
    )
}

/// `(label, query, mode)` shapes covering each planner access path, all
/// selective — the queries analysts actually issue against an archive.
fn shapes() -> Vec<(&'static str, Query, QueryMode)> {
    [
        // Mission-kind index: one superstep out of the whole tree.
        (
            "one_superstep",
            "GiraphJob/ProcessGraph/Superstep-3",
            QueryMode::Select,
        ),
        // Mission-kind index with an anchor chain above the hit.
        ("supersteps", "ProcessGraph/Superstep", QueryMode::FindAll),
        // Interval index: a narrow window over the run.
        ("window", "*[200000..300000]", QueryMode::FindAll),
        // Actor-kind index via a wildcard mission.
        (
            "one_worker_sliced",
            "Compute@Worker-7[0..400000]",
            QueryMode::FindAll,
        ),
    ]
    .into_iter()
    .map(|(label, text, mode)| (label, Query::parse(text).expect("valid query"), mode))
    .collect()
}

fn scan(tree: &OperationTree, q: &Query, mode: QueryMode) -> Vec<granula_model::OpId> {
    match mode {
        QueryMode::Select => q.select(tree),
        QueryMode::FindAll => q.find_all(tree),
    }
}

fn bench_archive(c: &mut Criterion, group_name: &str, archive: JobArchive) {
    let job_id = archive.meta.job_id.clone();
    let tree = archive.tree.clone();
    println!("{group_name}: {} operations", tree.len());
    let mut engine = QueryEngine::new();
    engine.add(archive).expect("fresh id");

    let mut group = c.benchmark_group(group_name);
    group.sample_size(20);
    for (label, query, mode) in shapes() {
        group.bench_with_input(BenchmarkId::new("scan", label), &query, |b, q| {
            b.iter(|| scan(&tree, q, mode))
        });
        group.bench_with_input(BenchmarkId::new("indexed", label), &query, |b, q| {
            b.iter(|| engine.evaluate(&job_id, q, mode).expect("job held"))
        });
        group.bench_with_input(BenchmarkId::new("cached", label), &query, |b, q| {
            b.iter(|| engine.query(&job_id, q, mode).expect("job held"))
        });
    }
    group.finish();
}

fn archive_query(c: &mut Criterion) {
    bench_archive(
        c,
        "archive_query_fig5",
        dg1000_quick(Platform::Giraph, 8_000).report.archive,
    );
    bench_archive(c, "archive_query_cluster", cluster_archive(200, 64));
    bench_archive(c, "archive_query_tiny", cluster_archive(8, 8));
}

criterion_group!(benches, archive_query);
criterion_main!(benches);
