//! Criterion benches of the end-to-end experiment pipeline: platform
//! emulation + DAG simulation + Granula evaluation, per platform.
//!
//! These measure the *reproduction harness* itself — how expensive it is to
//! regenerate a paper figure — not the simulated platforms' virtual time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gpsim_platforms::GiraphPlatform;
use granula::calibration;
use granula::experiment::{run_experiment, Platform};
use granula::models::giraph_model;
use granula::process::EvaluationProcess;
use granula_archive::JobMeta;

fn bench_full_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_experiment_4k_vertices");
    group.sample_size(10);
    let (graph, scale) = calibration::dg_graph_small(4_000, calibration::DG_SEED);
    for platform in [Platform::Giraph, Platform::PowerGraph, Platform::GraphMat] {
        let mut cfg = platform.dg1000_job();
        cfg.scale_factor = scale;
        group.bench_with_input(
            BenchmarkId::from_parameter(platform.name()),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let r =
                        run_experiment(platform, black_box(&graph), cfg).expect("simulation runs");
                    black_box(r.breakdown.total_us)
                })
            },
        );
    }
    group.finish();
}

fn bench_evaluation_only(c: &mut Criterion) {
    // Isolate P3 (archiving): the platform run is produced once, evaluation
    // repeats.
    let (graph, scale) = calibration::dg_graph_small(4_000, calibration::DG_SEED);
    let mut cfg = calibration::giraph_dg1000_job();
    cfg.scale_factor = scale;
    let run = GiraphPlatform::default()
        .run(&graph, &cfg)
        .expect("simulation runs");
    let meta = JobMeta {
        job_id: "bench".into(),
        platform: "Giraph".into(),
        algorithm: "BFS".into(),
        dataset: "dg1000".into(),
        nodes: 8,
        model: String::new(),
    };
    c.bench_function("evaluation_pipeline_only", |b| {
        let process = EvaluationProcess::new(giraph_model());
        b.iter(|| {
            let report = process.evaluate(black_box(&run), meta.clone());
            black_box(report.archive.num_operations())
        })
    });
}

criterion_group!(benches, bench_full_experiment, bench_evaluation_only);
criterion_main!(benches);
