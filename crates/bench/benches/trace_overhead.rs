//! Overhead of the self-observability layer (`granula-trace`).
//!
//! The tentpole claim: with tracing **compiled in but disabled** the
//! instrumented pipeline runs within 2% of its throughput — the `span!`
//! macro costs one relaxed atomic load per site and the engine's hot-loop
//! counters stay in registers until the final (skipped) flush. The
//! `enabled` group quantifies the price actually paid when a trace is
//! being collected.

use criterion::{criterion_group, criterion_main, Criterion};
use gpsim_cluster::{ActivityGraph, ActivityKind, ClusterSpec, NodeId, Simulation};
use gpsim_graph::gen::{datagen_like, GenConfig};
use gpsim_platforms::{Algorithm, CostModel, GiraphPlatform, JobConfig};

/// The BSP-shaped scheduler workload: dense events, heavy span traffic in
/// the platform builders when enabled.
fn barrier_chain_graph(rounds: usize, width: usize) -> (ClusterSpec, ActivityGraph) {
    let cluster = ClusterSpec::das5(8);
    let mut g = ActivityGraph::new();
    let mut gate = None;
    for round in 0..rounds {
        let deps: Vec<_> = gate.into_iter().collect();
        let steps: Vec<_> = (0..width)
            .map(|w| {
                g.add(
                    ActivityKind::Compute {
                        node: NodeId((w % 8) as u16),
                        work_core_us: 1e5 * (1.0 + 0.1 * w as f64),
                        parallelism: 4,
                    },
                    &deps,
                    format!("step/{round}/{w}"),
                )
            })
            .collect();
        gate = Some(g.barrier(&steps, format!("sync/{round}")));
    }
    (cluster, g)
}

fn engine_disabled_overhead(c: &mut Criterion) {
    granula_trace::disable();
    granula_trace::reset();
    let (cluster, graph) = barrier_chain_graph(200, 16);
    let sim = Simulation::new(cluster);
    let mut g = c.benchmark_group("trace_overhead/engine");
    g.sample_size(10);
    g.bench_function("disabled", |b| b.iter(|| sim.run(&graph).unwrap()));
    g.bench_function("enabled", |b| {
        granula_trace::enable();
        b.iter(|| sim.run(&graph).unwrap());
        granula_trace::disable();
        granula_trace::reset();
    });
    g.finish();
}

fn platform_disabled_overhead(c: &mut Criterion) {
    granula_trace::disable();
    granula_trace::reset();
    let graph = datagen_like(&GenConfig::datagen(5_000, 42));
    let cfg = JobConfig::new(
        "bench-trace",
        "dg",
        Algorithm::Bfs { source: 1 },
        8,
        CostModel::giraph_like(),
    );
    let mut g = c.benchmark_group("trace_overhead/platform");
    g.sample_size(10);
    g.bench_function("disabled", |b| {
        b.iter(|| GiraphPlatform::default().run(&graph, &cfg).unwrap())
    });
    g.bench_function("enabled", |b| {
        granula_trace::enable();
        b.iter(|| GiraphPlatform::default().run(&graph, &cfg).unwrap());
        granula_trace::disable();
        granula_trace::reset();
    });
    g.finish();
}

criterion_group!(
    benches,
    engine_disabled_overhead,
    platform_disabled_overhead
);
criterion_main!(benches);
