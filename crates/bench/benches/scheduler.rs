//! Scheduler microbenchmarks: the incremental engine (`Simulation::run`)
//! against the naive reference engine (`Simulation::run_reference`) on the
//! workload shapes that separate them.
//!
//! - `wide_contention`: hundreds of readers on one saturated disk next to
//!   hundreds of unrelated computes. Every reader completion dirties only
//!   the disk's component; the reference engine refills and rescans *all*
//!   running activities per event.
//! - `barrier_chain`: long chains of supersteps joined by barriers — the
//!   BSP shape. Events are dense but components are small.
//! - `mixed`: per-node read → compute → shuffle rounds at 8 and 32 nodes,
//!   the simulator's steady-state diet.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpsim_cluster::{ActivityGraph, ActivityKind, ClusterSpec, NodeId, Simulation};

/// 32 nodes; node 0 serves `readers` disk reads with well-separated sizes
/// while every other node runs 32 long computes.
fn wide_contention_graph(readers: usize) -> (ClusterSpec, ActivityGraph) {
    let cluster = ClusterSpec::das5(32);
    let mut g = ActivityGraph::new();
    for i in 0..readers {
        g.add(
            ActivityKind::DiskRead {
                node: NodeId(0),
                bytes: 1e6 * (1.0 + 0.37 * i as f64),
            },
            &[],
            format!("read/{i}"),
        );
    }
    for node in 1..32u16 {
        for k in 0..32 {
            g.add(
                ActivityKind::Compute {
                    node: NodeId(node),
                    work_core_us: 2e9 + 1e6 * k as f64,
                    parallelism: 1,
                },
                &[],
                format!("work/{node}/{k}"),
            );
        }
    }
    (cluster, g)
}

/// `rounds` supersteps of `width` computes on 8 nodes, each round joined
/// by a barrier before the next starts.
fn barrier_chain_graph(rounds: usize, width: usize) -> (ClusterSpec, ActivityGraph) {
    let cluster = ClusterSpec::das5(8);
    let mut g = ActivityGraph::new();
    let mut gate = None;
    for round in 0..rounds {
        let deps: Vec<_> = gate.into_iter().collect();
        let steps: Vec<_> = (0..width)
            .map(|w| {
                g.add(
                    ActivityKind::Compute {
                        node: NodeId((w % 8) as u16),
                        work_core_us: 1e5 * (1.0 + 0.1 * w as f64),
                        parallelism: 4,
                    },
                    &deps,
                    format!("step/{round}/{w}"),
                )
            })
            .collect();
        gate = Some(g.barrier(&steps, format!("sync/{round}")));
    }
    (cluster, g)
}

/// Per-node read → compute → shuffle-to-next-node rounds: CPU, disk, and
/// NIC all active at once.
fn mixed_graph(nodes: u16, rounds: usize) -> (ClusterSpec, ActivityGraph) {
    let cluster = ClusterSpec::das5(nodes);
    let mut g = ActivityGraph::new();
    let mut gate = None;
    for round in 0..rounds {
        let deps: Vec<_> = gate.into_iter().collect();
        let mut joins = Vec::new();
        for node in 0..nodes {
            let read = g.add(
                ActivityKind::DiskRead {
                    node: NodeId(node),
                    bytes: 4e6 * (1.0 + 0.05 * node as f64),
                },
                &deps,
                format!("read/{round}/{node}"),
            );
            let work = g.add(
                ActivityKind::Compute {
                    node: NodeId(node),
                    work_core_us: 8e5,
                    parallelism: 8,
                },
                &[read],
                format!("work/{round}/{node}"),
            );
            let ship = g.add(
                ActivityKind::Transfer {
                    src: NodeId(node),
                    dst: NodeId((node + 1) % nodes),
                    bytes: 2e6,
                },
                &[work],
                format!("ship/{round}/{node}"),
            );
            joins.push(ship);
        }
        gate = Some(g.barrier(&joins, format!("sync/{round}")));
    }
    (cluster, g)
}

fn bench_engines(
    c: &mut Criterion,
    group: &str,
    param: impl std::fmt::Display,
    cluster: &ClusterSpec,
    graph: &ActivityGraph,
) {
    let sim = Simulation::new(cluster.clone());
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new("incremental", &param),
        graph,
        |b, graph| b.iter(|| sim.run(graph).unwrap()),
    );
    g.bench_with_input(BenchmarkId::new("reference", &param), graph, |b, graph| {
        b.iter(|| sim.run_reference(graph).unwrap())
    });
    g.finish();
}

fn wide_contention(c: &mut Criterion) {
    for readers in [64usize, 256] {
        let (cluster, graph) = wide_contention_graph(readers);
        bench_engines(c, "wide_contention", readers, &cluster, &graph);
    }
}

fn barrier_chain(c: &mut Criterion) {
    let (cluster, graph) = barrier_chain_graph(200, 16);
    bench_engines(c, "barrier_chain", "200x16", &cluster, &graph);
}

fn mixed(c: &mut Criterion) {
    for nodes in [8u16, 32] {
        let (cluster, graph) = mixed_graph(nodes, 40);
        bench_engines(c, "mixed", format!("{nodes}nodes"), &cluster, &graph);
    }
}

criterion_group!(benches, wide_contention, barrier_chain, mixed);
criterion_main!(benches);
