//! Criterion benches of the Granula pipeline itself: log assembly, rule
//! derivation, path queries, archive serialization.
//!
//! These quantify Issue 4 (the *cost* of fine-grained evaluation): how much
//! archiving work a given monitoring volume causes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use granula::models::giraph_model;
use granula_archive::{from_json, to_json, JobArchive, JobMeta, Query};
use granula_model::{rules::derive_all_durations, RuleEngine};
use granula_model::{Actor, Mission};
use granula_monitor::{Assembler, LogEvent};

/// Synthesizes a well-formed event stream: `supersteps x workers` compute
/// operations under a job/process hierarchy.
fn synth_events(supersteps: u32, workers: u32) -> Vec<LogEvent> {
    let job = (Actor::new("Job", "0"), Mission::new("GiraphJob", "0"));
    let proc_ = (Actor::new("Job", "0"), Mission::new("ProcessGraph", "0"));
    let mut events = Vec::new();
    let mut t = 0u64;
    events.push(LogEvent::start(
        t,
        "n0",
        "client",
        job.0.clone(),
        job.1.clone(),
        None,
    ));
    events.push(LogEvent::start(
        t,
        "n0",
        "client",
        proc_.0.clone(),
        proc_.1.clone(),
        Some(job.clone()),
    ));
    for s in 0..supersteps {
        let ss = (
            Actor::new("Job", "0"),
            Mission::new("Superstep", s.to_string()),
        );
        events.push(LogEvent::start(
            t,
            "n0",
            "master",
            ss.0.clone(),
            ss.1.clone(),
            Some(proc_.clone()),
        ));
        for w in 0..workers {
            let c = (
                Actor::new("Worker", w.to_string()),
                Mission::new("Compute", s.to_string()),
            );
            let node = format!("n{}", w % 8);
            events.push(LogEvent::start(
                t,
                &node,
                "worker",
                c.0.clone(),
                c.1.clone(),
                Some(ss.clone()),
            ));
            events.push(LogEvent::info(
                t,
                &node,
                "worker",
                c.0.clone(),
                c.1.clone(),
                "EdgesScanned",
                granula_model::InfoValue::Int((s * w) as i64),
            ));
            t += 1_000;
            events.push(LogEvent::end(t, &node, "worker", c.0, c.1));
        }
        t += 10_000;
        events.push(LogEvent::end(t, "n0", "master", ss.0, ss.1));
    }
    events.push(LogEvent::end(t, "n0", "client", proc_.0, proc_.1));
    events.push(LogEvent::end(t, "n0", "client", job.0, job.1));
    events
}

fn assembled(supersteps: u32, workers: u32) -> JobArchive {
    let outcome = Assembler::new().assemble(synth_events(supersteps, workers));
    JobArchive::new(JobMeta::default(), outcome.tree)
}

fn bench_assembly(c: &mut Criterion) {
    let mut group = c.benchmark_group("assemble");
    for &(s, w) in &[(10u32, 8u32), (50, 8), (50, 64)] {
        let events = synth_events(s, w);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}events", events.len())),
            &events,
            |b, events| {
                b.iter(|| {
                    let outcome = Assembler::new().assemble(black_box(events.clone()));
                    black_box(outcome.tree.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_parse_lines(c: &mut Criterion) {
    let lines: Vec<String> = synth_events(50, 8).iter().map(|e| e.to_line()).collect();
    c.bench_function("parse_log_lines_1700", |b| {
        b.iter(|| {
            let n = lines
                .iter()
                .filter_map(|l| granula_monitor::parse_line(l))
                .count();
            black_box(n)
        })
    });
}

fn bench_rules(c: &mut Criterion) {
    let archive = assembled(50, 64);
    let model = giraph_model();
    c.bench_function("derive_rules_3k_ops", |b| {
        b.iter(|| {
            let mut tree = archive.tree.clone();
            let n = derive_all_durations(&mut tree) + RuleEngine::apply(&model, &mut tree);
            black_box(n)
        })
    });
}

fn bench_query(c: &mut Criterion) {
    let mut archive = assembled(50, 64);
    derive_all_durations(&mut archive.tree);
    let q = Query::parse("GiraphJob/ProcessGraph/Superstep/Compute@Worker-7").unwrap();
    c.bench_function("path_query_3k_ops", |b| {
        b.iter(|| black_box(q.select(&archive.tree).len()))
    });
    let find = Query::parse("Compute").unwrap();
    c.bench_function("find_all_3k_ops", |b| {
        b.iter(|| black_box(find.find_all(&archive.tree).len()))
    });
}

fn bench_archive_json(c: &mut Criterion) {
    let archive = assembled(50, 8);
    let json = to_json(&archive).unwrap();
    c.bench_function("archive_to_json", |b| {
        b.iter(|| black_box(to_json(black_box(&archive)).unwrap().len()))
    });
    c.bench_function("archive_from_json", |b| {
        b.iter(|| black_box(from_json(black_box(&json)).unwrap().num_operations()))
    });
}

criterion_group!(
    benches,
    bench_assembly,
    bench_parse_lines,
    bench_rules,
    bench_query,
    bench_archive_json
);
criterion_main!(benches);
