//! Criterion benches of the cluster-simulator substrate: DAG execution
//! throughput and the max-min fair-sharing solver under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gpsim_cluster::{ActivityGraph, ActivityKind, ClusterSpec, NodeId, Simulation};

/// A BSP-shaped DAG: `rounds` fork-join stages of `width` compute +
/// transfer activities over 8 nodes.
fn bsp_dag(rounds: u32, width: u32) -> ActivityGraph {
    let mut g = ActivityGraph::new();
    let mut barrier = g.barrier(&[], "start");
    for r in 0..rounds {
        let mut stage = Vec::with_capacity(width as usize);
        for i in 0..width {
            let node = NodeId((i % 8) as u16);
            let c = g.add(
                ActivityKind::Compute {
                    node,
                    work_core_us: 5e5,
                    parallelism: 4,
                },
                &[barrier],
                format!("r{r}/c{i}"),
            );
            let t = g.add(
                ActivityKind::Transfer {
                    src: node,
                    dst: NodeId(((i + 1) % 8) as u16),
                    bytes: 1e6,
                },
                &[c],
                format!("r{r}/t{i}"),
            );
            stage.push(t);
        }
        barrier = g.barrier(&stage, format!("r{r}/join"));
    }
    g
}

fn bench_dag_execution(c: &mut Criterion) {
    let cluster = ClusterSpec::das5(8);
    let mut group = c.benchmark_group("simulate_bsp_dag");
    for &(rounds, width) in &[(10u32, 32u32), (50, 32), (50, 128)] {
        let dag = bsp_dag(rounds, width);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}acts", dag.len())),
            &dag,
            |b, dag| {
                let sim = Simulation::new(cluster.clone());
                b.iter(|| black_box(sim.run(black_box(dag)).unwrap().makespan_us))
            },
        );
    }
    group.finish();
}

fn bench_contention(c: &mut Criterion) {
    // Many concurrent activities on one node: stresses progressive filling.
    let cluster = ClusterSpec::das5(8);
    let mut group = c.benchmark_group("fair_share_contention");
    for &n in &[64u32, 512] {
        let mut g = ActivityGraph::new();
        for i in 0..n {
            g.add(
                ActivityKind::Compute {
                    node: NodeId(0),
                    work_core_us: 1e5 + i as f64,
                    parallelism: 1 + (i % 8),
                },
                &[],
                format!("c{i}"),
            );
            g.add(
                ActivityKind::DiskRead {
                    node: NodeId(0),
                    bytes: 1e6 + i as f64,
                },
                &[],
                format!("d{i}"),
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            let sim = Simulation::new(cluster.clone());
            b.iter(|| black_box(sim.run(black_box(g)).unwrap().makespan_us))
        });
    }
    group.finish();
}

fn bench_trace_sampling(c: &mut Criterion) {
    // Long-running activities spanning many one-second buckets.
    let cluster = ClusterSpec::das5(8);
    let mut g = ActivityGraph::new();
    for i in 0..64u32 {
        g.add(
            ActivityKind::Compute {
                node: NodeId((i % 8) as u16),
                work_core_us: 4e8, // ~100 s at 4 cores
                parallelism: 4,
            },
            &[],
            format!("c{i}"),
        );
    }
    c.bench_function("usage_trace_100s_64acts", |b| {
        let sim = Simulation::new(cluster.clone());
        b.iter(|| {
            let res = sim.run(black_box(&g)).unwrap();
            black_box(
                res.trace
                    .cumulative(gpsim_cluster::trace::Channel::Cpu)
                    .len(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_dag_execution,
    bench_contention,
    bench_trace_sampling
);
criterion_main!(benches);
