//! The scale sweep behind the full-scale dg1000 claim: island-structured
//! DAGs from 1 k to 5 M activities over a 256-node cluster, comparing the
//! auto-dispatched engine (dense below the cutover, partitioned above)
//! against the seed dense engine, plus thread-count scaling of the
//! partitioned core on a million-activity DAG.
//!
//! Islands mirror what platform drivers emit: bursts of concurrent
//! same-node work (loaders, compute threads, spills) joined by barriers.
//! The dense engine re-solves fair shares over *every* running activity
//! per event — cost grows with `islands × width` — while the partitioned
//! engine touches only the island whose event fired.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gpsim_cluster::{ActivityGraph, ActivityKind, ClusterSpec, NodeId, Simulation};

/// One island per node: `waves` generations of `width` concurrent
/// activities (a disk read every 8th, computes otherwise) joined by a
/// barrier, no cross-island edges. Work amounts vary per island *and*
/// per wave (straggler-style heterogeneity), so completions land at
/// distinct instants instead of degenerating into lock-step batches.
/// Static tags keep the interner table at three entries regardless of
/// DAG size.
fn island_dag(islands: u16, waves: u32, width: u32) -> ActivityGraph {
    let total = (islands as usize) * (waves as usize) * (width as usize + 1);
    let mut g = ActivityGraph::with_capacity(total, 2 * total);
    for n in 0..islands {
        let node = NodeId(n);
        let mut barrier = None;
        for w in 0..waves {
            let deps: Vec<_> = barrier.into_iter().collect();
            let mut wave = Vec::with_capacity(width as usize);
            for i in 0..width {
                let jitter = (n as u32 * 131 + w * 31 + i * 7) % 401;
                let kind = if i % 8 == 7 {
                    ActivityKind::DiskRead {
                        node,
                        bytes: 3.0e5 + jitter as f64 * 500.0,
                    }
                } else {
                    ActivityKind::Compute {
                        node,
                        work_core_us: 700.0 + jitter as f64,
                        parallelism: 1 + (i % 4),
                    }
                };
                let tag = if i % 8 == 7 {
                    "island/disk"
                } else {
                    "island/compute"
                };
                wave.push(g.add(kind, &deps, tag));
            }
            barrier = Some(g.barrier(&wave, "island/join"));
        }
    }
    g
}

/// Sweep points: (islands, waves, width, label). Activity totals run from
/// ~1 k (below the dispatch cutover: both variants take the dense path)
/// to ~5 M — the order of magnitude a per-vertex-granularity full-scale
/// model needs. 128 islands × width 8 ≈ one thousand concurrently
/// running activities for every large point.
const SWEEP: [(u16, u32, u32, &str); 5] = [
    (16, 8, 8, "1k"),
    (128, 16, 8, "16k"),
    (128, 128, 8, "131k"),
    (128, 1024, 8, "1M"),
    (128, 5120, 8, "5M"),
];

fn bench_scale(c: &mut Criterion) {
    let cluster = ClusterSpec::das5(256);
    let mut group = c.benchmark_group("simulator_scale");
    for &(islands, waves, width, label) in &SWEEP {
        let dag = island_dag(islands, waves, width);
        // Large DAGs: fewer samples, each iteration is itself long.
        group.sample_size(if dag.len() >= 2_000_000 {
            2
        } else if dag.len() >= 500_000 {
            3
        } else {
            10
        });
        group.bench_with_input(BenchmarkId::new("auto", label), &dag, |b, dag| {
            let sim = Simulation::new(cluster.clone());
            b.iter(|| black_box(sim.run(black_box(dag)).unwrap().makespan_us))
        });
        group.bench_with_input(BenchmarkId::new("seed", label), &dag, |b, dag| {
            let sim = Simulation::new(cluster.clone()).with_cutover(usize::MAX);
            b.iter(|| black_box(sim.run(black_box(dag)).unwrap().makespan_us))
        });
    }
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    let cluster = ClusterSpec::das5(256);
    let dag = island_dag(128, 1024, 8);
    let mut group = c.benchmark_group("simulator_scale_threads");
    group.sample_size(3);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("1M", threads), &dag, |b, dag| {
            let sim = Simulation::new(cluster.clone())
                .with_cutover(0)
                .with_threads(threads);
            b.iter(|| black_box(sim.run(black_box(dag)).unwrap().makespan_us))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scale, bench_threads);
criterion_main!(benches);
