//! Differential property tests: three execution models, one semantics.
//!
//! The Pregel, GAS and SpMV engines implement the same algorithms over
//! completely different execution structures (message passing over an
//! edge-cut, gather/apply/scatter over a vertex-cut, semiring products over
//! row blocks). For every random graph they must all agree with the
//! sequential references — and with each other, bit for bit where the
//! algorithm is deterministic.

use proptest::prelude::*;

use gpsim_graph::{algos, BlockPartition, EdgeCutPartition, Graph, VertexCutPartition};
use gpsim_platforms::gas::{self, IterationMode};
use gpsim_platforms::{pregel, spmv};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        2u32..60,
        prop::collection::vec((0u32..60, 0u32..60), 1..250),
    )
        .prop_map(|(n, edges)| {
            let edges: Vec<(u32, u32)> = edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
            Graph::from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BFS: all three engines match the reference on arbitrary graphs.
    #[test]
    fn bfs_differential(g in arb_graph(), src_pick in any::<u32>(), k in 1u16..6) {
        let src = src_pick % g.num_vertices();
        let reference = algos::bfs(&g, src);

        let ec = EdgeCutPartition::hash(g.num_vertices(), k);
        let p = pregel::run(&g, &ec, &pregel::BfsProgram { source: src }, 10_000);
        prop_assert_eq!(&p.values, &reference, "pregel");

        let vc = VertexCutPartition::greedy(&g, k);
        let gas_out = gas::run(
            &g,
            &vc,
            &mut gas::BfsGas { source: src },
            IterationMode::Converge { max: 10_000 },
        );
        prop_assert_eq!(&gas_out.values, &reference, "gas");

        let bp = BlockPartition::by_edges(&g, k);
        let s = spmv::run(
            &g,
            &bp,
            &mut spmv::BfsSpmv { source: src },
            IterationMode::Converge { max: 10_000 },
        );
        prop_assert_eq!(&s.values, &reference, "spmv");
    }

    /// WCC: all three engines match the reference.
    #[test]
    fn wcc_differential(g in arb_graph(), k in 1u16..6) {
        let reference = algos::wcc(&g);

        let ec = EdgeCutPartition::hash(g.num_vertices(), k);
        let p = pregel::run(&g, &ec, &pregel::WccProgram, 10_000);
        prop_assert_eq!(&p.values, &reference, "pregel");

        let vc = VertexCutPartition::greedy(&g, k);
        let gas_out =
            gas::run(&g, &vc, &mut gas::WccGas, IterationMode::Converge { max: 10_000 });
        prop_assert_eq!(&gas_out.values, &reference, "gas");

        let bp = BlockPartition::by_edges(&g, k);
        let s = spmv::run(&g, &bp, &mut spmv::WccSpmv, IterationMode::Converge { max: 10_000 });
        prop_assert_eq!(&s.values, &reference, "spmv");
    }

    /// PageRank: bit-identical across the synchronous engines.
    #[test]
    fn pagerank_differential(g in arb_graph(), iters in 1u32..8, k in 1u16..6) {
        let reference = algos::pagerank(&g, iters, 0.85);
        let close = |a: &[f64]| a.iter().zip(&reference).all(|(x, y)| (x - y).abs() < 1e-12);

        let ec = EdgeCutPartition::hash(g.num_vertices(), k);
        let p = pregel::run(
            &g,
            &ec,
            &pregel::PageRankProgram { iterations: iters, damping: 0.85 },
            10_000,
        );
        prop_assert!(close(&p.values), "pregel");

        let vc = VertexCutPartition::greedy(&g, k);
        let gas_out = gas::run_pagerank_gas(&g, &vc, iters, 0.85);
        prop_assert!(close(&gas_out.values), "gas");

        let bp = BlockPartition::by_edges(&g, k);
        let mut prog = spmv::PageRankSpmv::new(&g, 0.85);
        let s = spmv::run(&g, &bp, &mut prog, IterationMode::Fixed(iters));
        prop_assert!(close(&s.values), "spmv");
    }

    /// CDLP: fixed-iteration engines agree exactly.
    #[test]
    fn cdlp_differential(g in arb_graph(), iters in 1u32..5, k in 1u16..6) {
        let reference = algos::cdlp(&g, iters);

        let ec = EdgeCutPartition::hash(g.num_vertices(), k);
        let p = pregel::run(&g, &ec, &pregel::CdlpProgram { iterations: iters }, 10_000);
        prop_assert_eq!(&p.values, &reference, "pregel");

        let vc = VertexCutPartition::greedy(&g, k);
        let gas_out = gas::run(&g, &vc, &mut gas::CdlpGas, IterationMode::Fixed(iters));
        prop_assert_eq!(&gas_out.values, &reference, "gas");

        let bp = BlockPartition::by_edges(&g, k);
        let s = spmv::run(&g, &bp, &mut spmv::CdlpSpmv, IterationMode::Fixed(iters));
        prop_assert_eq!(&s.values, &reference, "spmv");
    }

    /// Engine counters are internally consistent for arbitrary inputs.
    #[test]
    fn engine_counters_consistent(g in arb_graph(), src_pick in any::<u32>(), k in 1u16..6) {
        let src = src_pick % g.num_vertices();
        let ec = EdgeCutPartition::hash(g.num_vertices(), k);
        let p = pregel::run(&g, &ec, &pregel::BfsProgram { source: src }, 10_000);
        for ss in &p.supersteps {
            let sent: u64 = ss.per_worker.iter().map(|w| w.messages_sent).sum();
            let matrix: u64 = ss.remote_messages.iter().flatten().sum();
            prop_assert_eq!(sent, matrix);
            prop_assert!(ss.total_active() <= g.num_vertices() as u64);
        }

        let bp = BlockPartition::by_edges(&g, k);
        let s = spmv::run(
            &g,
            &bp,
            &mut spmv::BfsSpmv { source: src },
            IterationMode::Converge { max: 10_000 },
        );
        for it in &s.iterations {
            let sent: u64 = it.per_machine.iter().map(|m| m.messages_sent).sum();
            let recv: u64 = it.per_machine.iter().map(|m| m.messages_received).sum();
            prop_assert_eq!(sent, recv);
        }
    }
}
