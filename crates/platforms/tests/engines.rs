//! Differential engine properties: four platform paradigms, one
//! instrumentation contract.
//!
//! The Giraph-like, PowerGraph-like, GRAPE-like and GraphX-like engines
//! build completely different execution layouts (checkpointed supersteps,
//! gather/apply/scatter, fragment rounds, lineage stages), but every run
//! must produce the same kind of artifact: a structurally valid Granula
//! operation tree. These properties pin that contract down for arbitrary
//! graphs, algorithms, cluster widths and fault schedules:
//!
//! * every emitted op tree is dependency-closed (each `parent=` reference
//!   resolves to an emitted op), single-rooted, and has monotone
//!   timestamps with children nested inside their parents;
//! * an empty `FaultPlan` is indistinguishable from no plan at all, bit
//!   for bit, across repeated invocations;
//! * GRAPE and GraphX crash recovery neither loses nor duplicates a
//!   round/stage: the committed ops plus the failed attempt cover each
//!   superstep exactly once, and the replayed/recomputed lineage covers
//!   exactly the committed prefix plus the interrupted unit.
//!
//! Together with `prop.rs` (which checks the algorithm *values*), this
//! file is the differential layer ISSUE 10 adds over the new engines.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use gpsim_cluster::FaultPlan;
use gpsim_graph::Graph;
use gpsim_platforms::{
    Algorithm, CostModel, GiraphPlatform, GrapePlatform, GraphXPlatform, JobConfig, PlatformRun,
    PowerGraphPlatform,
};
use granula_monitor::{EventPayload, LogEvent};

// ------------------------------------------------------------- strategies

fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        8u32..48,
        prop::collection::vec((0u32..48, 0u32..48), 4..160),
    )
        .prop_map(|(n, edges)| {
            let edges: Vec<(u32, u32)> = edges.into_iter().map(|(a, b)| (a % n, b % n)).collect();
            Graph::from_edges(n, &edges)
        })
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        any::<u32>().prop_map(|s| Algorithm::Bfs { source: s % 8 }),
        (1u32..4).prop_map(|iterations| Algorithm::PageRank { iterations }),
        Just(Algorithm::Wcc),
    ]
}

fn cfg(algorithm: Algorithm, nodes: u16) -> JobConfig {
    JobConfig::new(
        "engines-prop",
        "prop",
        algorithm,
        nodes,
        CostModel::giraph_like(),
    )
}

// ----------------------------------------------------------- tree checks

type OpKey = (String, String, String, String);

fn key(actor: &granula_model::Actor, mission: &granula_model::Mission) -> OpKey {
    (
        actor.kind.clone(),
        actor.id.clone(),
        mission.kind.clone(),
        mission.id.clone(),
    )
}

struct OpSpan {
    start_us: u64,
    end_us: Option<u64>,
    parent: Option<OpKey>,
}

/// Indexes the event stream and enforces the structural contract: every
/// op starts exactly once and ends exactly once after it started, every
/// parent reference resolves to an emitted op whose span contains the
/// child's, info events attach to started ops, and the parent links form
/// a single tree rooted at the job op.
fn check_op_tree(run: &PlatformRun) -> Result<(), TestCaseError> {
    let mut ops: HashMap<OpKey, OpSpan> = HashMap::new();
    for ev in &run.events {
        match &ev.payload {
            EventPayload::OpStart {
                actor,
                mission,
                parent,
            } => {
                let k = key(actor, mission);
                prop_assert!(!ops.contains_key(&k), "duplicate START for {k:?}");
                ops.insert(
                    k,
                    OpSpan {
                        start_us: ev.time_us,
                        end_us: None,
                        parent: parent.as_ref().map(|(a, m)| key(a, m)),
                    },
                );
            }
            EventPayload::OpEnd { actor, mission } => {
                let k = key(actor, mission);
                let op = ops.get_mut(&k);
                prop_assert!(op.is_some(), "END before START for {k:?}");
                let op = op.unwrap();
                prop_assert!(op.end_us.is_none(), "duplicate END for {k:?}");
                prop_assert!(
                    ev.time_us >= op.start_us,
                    "non-monotone span for {k:?}: start {} > end {}",
                    op.start_us,
                    ev.time_us
                );
                op.end_us = Some(ev.time_us);
            }
            EventPayload::OpInfo { actor, mission, .. } => {
                let k = key(actor, mission);
                prop_assert!(ops.contains_key(&k), "INFO for unknown op {k:?}");
            }
        }
    }
    prop_assert!(!ops.is_empty(), "run emitted no operations");

    let mut roots = 0usize;
    for (k, op) in &ops {
        prop_assert!(op.end_us.is_some(), "op never ended: {k:?}");
        match &op.parent {
            None => roots += 1,
            Some(pk) => {
                let parent = ops.get(pk);
                prop_assert!(
                    parent.is_some(),
                    "dangling parent reference {pk:?} from {k:?}"
                );
                let parent = parent.unwrap();
                prop_assert!(
                    parent.start_us <= op.start_us && op.end_us.unwrap() <= parent.end_us.unwrap(),
                    "child {k:?} [{}, {}] escapes parent {pk:?} [{}, {}]",
                    op.start_us,
                    op.end_us.unwrap(),
                    parent.start_us,
                    parent.end_us.unwrap()
                );
            }
        }
    }
    prop_assert_eq!(roots, 1, "op tree must have exactly one root");

    // Every parent chain terminates at the root without cycles.
    for (k, op) in &ops {
        let mut cursor = op.parent.clone();
        let mut hops = 0usize;
        while let Some(pk) = cursor {
            hops += 1;
            prop_assert!(hops <= ops.len(), "parent cycle through {k:?}");
            cursor = ops[&pk].parent.clone();
        }
    }
    Ok(())
}

/// Mission ids of the given kind, in emission order.
fn ids_of_kind(events: &[LogEvent], kind: &str) -> Vec<String> {
    events
        .iter()
        .filter_map(|ev| match &ev.payload {
            EventPayload::OpStart { mission, .. } if mission.kind == kind => {
                Some(mission.id.clone())
            }
            _ => None,
        })
        .collect()
}

fn unique<T: std::hash::Hash + Eq + Clone>(items: &[T]) -> bool {
    items.iter().cloned().collect::<HashSet<_>>().len() == items.len()
}

/// Checks the no-loss / no-duplication ledger for a crash-recovering run:
/// committed `unit_kind` ops plus the single `failed_kind` op must cover
/// every superstep id exactly once, and the `replay_kind` lineage must be
/// exactly the committed prefix before the failure plus the interrupted
/// unit itself.
fn check_recovery_ledger(
    faulted: &PlatformRun,
    healthy_iterations: u32,
    unit_kind: &str,
    failed_kind: &str,
    replay_kind: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        faulted.iterations,
        healthy_iterations,
        "recovery changed the superstep count"
    );
    let committed = ids_of_kind(&faulted.events, unit_kind);
    let failed = ids_of_kind(&faulted.events, failed_kind);
    let replayed = ids_of_kind(&faulted.events, replay_kind);
    prop_assert!(unique(&committed), "duplicated {unit_kind}: {committed:?}");
    prop_assert!(unique(&replayed), "duplicated {replay_kind}: {replayed:?}");
    prop_assert_eq!(failed.len(), 1, "exactly one failed attempt");
    let failed_id: u32 = failed[0].parse().expect("numeric superstep id");

    // Committed units ⊎ the failed attempt = every superstep, exactly once.
    let mut all: Vec<u32> = committed
        .iter()
        .map(|s| s.parse().expect("numeric superstep id"))
        .collect();
    prop_assert!(
        !all.contains(&failed_id),
        "superstep {failed_id} both committed and failed"
    );
    all.push(failed_id);
    all.sort_unstable();
    let expect: Vec<u32> = (0..healthy_iterations).collect();
    prop_assert_eq!(all, expect, "supersteps lost or duplicated");

    // The recovery lineage re-executes the committed prefix and the
    // interrupted unit — nothing after the crash point.
    let mut replayed_ids: Vec<u32> = replayed
        .iter()
        .map(|s| s.parse().expect("numeric superstep id"))
        .collect();
    replayed_ids.sort_unstable();
    let expect_replay: Vec<u32> = (0..=failed_id).collect();
    prop_assert_eq!(replayed_ids, expect_replay, "recovery lineage mismatch");
    Ok(())
}

// ------------------------------------------------------------ properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(280))]

    /// All four engines emit structurally valid op trees for arbitrary
    /// inputs, healthy or degraded.
    #[test]
    fn op_trees_are_structurally_valid(
        g in arb_graph(),
        algorithm in arb_algorithm(),
        k in 2u16..6,
        seed in any::<u64>(),
    ) {
        let cfg = cfg(algorithm, k);
        let runs = [
            GiraphPlatform::default().run(&g, &cfg).unwrap(),
            PowerGraphPlatform::default().run(&g, &cfg).unwrap(),
            GrapePlatform::default().run(&g, &cfg).unwrap(),
            GraphXPlatform::default().run(&g, &cfg).unwrap(),
        ];
        for run in &runs {
            check_op_tree(run)?;
        }
        // The same holds under an arbitrary fault schedule.
        let horizon = runs[2].makespan_us.max(1) as f64;
        let plan = FaultPlan::seeded(seed, k, horizon);
        check_op_tree(&GrapePlatform::default().run_with_faults(&g, &cfg, &plan).unwrap())?;
        check_op_tree(&GraphXPlatform::default().run_with_faults(&g, &cfg, &plan).unwrap())?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(260))]

    /// `run_with_faults` with an empty plan is bit-identical to `run`,
    /// and repeated invocations are bit-identical to each other.
    #[test]
    fn empty_fault_plan_is_bit_identical(
        g in arb_graph(),
        algorithm in arb_algorithm(),
        k in 2u16..6,
    ) {
        let cfg = cfg(algorithm, k);
        for (label, a, b, c) in [
            (
                "grape",
                GrapePlatform::default().run(&g, &cfg).unwrap(),
                GrapePlatform::default().run_with_faults(&g, &cfg, &FaultPlan::default()).unwrap(),
                GrapePlatform::default().run(&g, &cfg).unwrap(),
            ),
            (
                "graphx",
                GraphXPlatform::default().run(&g, &cfg).unwrap(),
                GraphXPlatform::default().run_with_faults(&g, &cfg, &FaultPlan::default()).unwrap(),
                GraphXPlatform::default().run(&g, &cfg).unwrap(),
            ),
        ] {
            prop_assert_eq!(&a.events, &b.events, "{}: empty plan diverged", label);
            prop_assert_eq!(&a.events, &c.events, "{}: reinvocation diverged", label);
            prop_assert_eq!(a.makespan_us, b.makespan_us, "{}", label);
            prop_assert_eq!(a.makespan_us, c.makespan_us, "{}", label);
            prop_assert_eq!(&a.env_samples, &b.env_samples, "{}", label);
            prop_assert!(a.output.matches(&b.output), "{}: output diverged", label);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(260))]

    /// GRAPE's fragment-local replay never loses or duplicates a round.
    #[test]
    fn grape_recovery_preserves_every_round(
        g in arb_graph(),
        algorithm in arb_algorithm(),
        k in 2u16..6,
        seed in any::<u64>(),
    ) {
        let cfg = cfg(algorithm, k);
        let p = GrapePlatform::default();
        let healthy = p.run(&g, &cfg).unwrap();
        let plan = FaultPlan::seeded(seed, k, healthy.makespan_us.max(1) as f64);
        let faulted = p.run_with_faults(&g, &cfg, &plan).unwrap();
        prop_assert!(faulted.output.matches(&healthy.output), "recovery changed the result");
        check_recovery_ledger(&faulted, healthy.iterations, "Round", "FailedRound", "Replay")?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(260))]

    /// GraphX's lineage recomputation never loses or duplicates a stage
    /// iteration.
    #[test]
    fn graphx_recovery_preserves_every_stage(
        g in arb_graph(),
        algorithm in arb_algorithm(),
        k in 2u16..6,
        seed in any::<u64>(),
    ) {
        let cfg = cfg(algorithm, k);
        let p = GraphXPlatform::default();
        let healthy = p.run(&g, &cfg).unwrap();
        let plan = FaultPlan::seeded(seed, k, healthy.makespan_us.max(1) as f64);
        let faulted = p.run_with_faults(&g, &cfg, &plan).unwrap();
        prop_assert!(faulted.output.matches(&healthy.output), "recovery changed the result");
        check_recovery_ledger(
            &faulted,
            healthy.iterations,
            "Iteration",
            "FailedStage",
            "Recompute",
        )?;
    }
}
