//! # gpsim-platforms
//!
//! Simulated large-scale graph-processing platforms: the systems under test.
//!
//! The paper's two platforms, plus three more paradigms grown on top:
//!
//! * [`giraph`] — a Giraph-like platform: Pregel/BSP programming model,
//!   vertex hash-partitioning (edge-cut), YARN-like provisioning, HDFS-like
//!   parallel loading, ZooKeeper-like superstep barriers;
//! * [`powergraph`] — a PowerGraph-like platform: GAS programming model,
//!   greedy vertex-cut partitioning, MPI-like launching and — faithfully to
//!   the paper's headline finding — a *sequential, single-node* graph loader
//!   reading from a shared filesystem;
//! * [`graphmat`] — a GraphMat-like platform: vertex programs mapped onto
//!   semiring sparse matrix-vector products over 1D block rows;
//! * [`grape`] — a GRAPE-like subgraph-centric platform: edge-cut
//!   fragments (hash or contiguous block), a sequential algorithm per
//!   fragment (PEval + incremental IncEval rounds), coordinator-mediated
//!   boundary synchronization, and fragment-local crash recovery;
//! * [`graphx`] — a GraphX/Spark-like dataflow platform: driver/executor
//!   architecture, RDD-style load-then-partitionBy shuffle,
//!   schedule→map→shuffle→reduce stage pairs per iteration, and
//!   lineage-recomputation fault recovery (no checkpoints).
//!
//! Every platform **really executes** the algorithms: the [`pregel`],
//! [`gas`] and [`spmv`] engines run vertex programs on the in-memory graph
//! at partition granularity, producing (a) the algorithm output, validated
//! against `gpsim_graph::algos`, and (b) per-superstep/per-machine counters
//! (active vertices, edges scanned, messages exchanged) that parameterize
//! the platform cost models. The drivers compile those counters into an
//! activity DAG for `gpsim_cluster`, simulate it, and emit Granula
//! instrumentation logs plus environment samples — the exact inputs the
//! Granula pipeline consumes. The differential suites (`tests/prop.rs`,
//! `tests/engines.rs`) hold the engines to one semantics and one
//! instrumentation contract.

pub mod common;
pub mod gas;
pub mod giraph;
pub mod grape;
pub mod graphmat;
pub mod graphx;
pub mod ops;
pub mod powergraph;
pub mod pregel;
pub mod spmv;

pub use common::{Algorithm, AlgorithmOutput, CostModel, JobConfig, PlatformRun};
pub use giraph::GiraphPlatform;
pub use grape::{GrapePartitioner, GrapePlatform};
pub use graphmat::GraphMatPlatform;
pub use graphx::GraphXPlatform;
pub use powergraph::PowerGraphPlatform;
