//! # gpsim-platforms
//!
//! Simulated large-scale graph-processing platforms: the systems under test.
//!
//! Two platforms are modeled after the paper's experiments:
//!
//! * [`giraph`] — a Giraph-like platform: Pregel/BSP programming model,
//!   vertex hash-partitioning (edge-cut), YARN-like provisioning, HDFS-like
//!   parallel loading, ZooKeeper-like superstep barriers;
//! * [`powergraph`] — a PowerGraph-like platform: GAS programming model,
//!   greedy vertex-cut partitioning, MPI-like launching and — faithfully to
//!   the paper's headline finding — a *sequential, single-node* graph loader
//!   reading from a shared filesystem.
//!
//! Both platforms **really execute** the algorithms: the [`pregel`] and
//! [`gas`] engines run vertex programs on the in-memory graph at partition
//! granularity, producing (a) the algorithm output, validated against
//! `gpsim_graph::algos`, and (b) per-superstep/per-machine counters (active
//! vertices, edges scanned, messages exchanged) that parameterize the
//! platform cost models. The drivers compile those counters into an
//! activity DAG for `gpsim_cluster`, simulate it, and emit Granula
//! instrumentation logs plus environment samples — the exact inputs the
//! Granula pipeline consumes.

pub mod common;
pub mod gas;
pub mod giraph;
pub mod graphmat;
pub mod ops;
pub mod powergraph;
pub mod pregel;
pub mod spmv;

pub use common::{Algorithm, AlgorithmOutput, CostModel, JobConfig, PlatformRun};
pub use giraph::GiraphPlatform;
pub use graphmat::GraphMatPlatform;
pub use powergraph::PowerGraphPlatform;
