//! Shared platform types: job configuration, cost models, run outputs.

use gpsim_cluster::trace::Channel;
use gpsim_cluster::UsageTrace;
use gpsim_graph::{Graph, VertexId};
use granula_monitor::{LogEvent, ResourceKind, ResourceSample};

/// The algorithm a job executes (the Graphalytics core set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Breadth-first search from a source vertex.
    Bfs {
        /// Source vertex.
        source: VertexId,
    },
    /// PageRank for a fixed number of iterations.
    PageRank {
        /// Iteration count.
        iterations: u32,
    },
    /// Weakly-connected components.
    Wcc,
    /// Single-source shortest paths (uses edge weights when present).
    Sssp {
        /// Source vertex.
        source: VertexId,
    },
    /// Community detection by label propagation.
    Cdlp {
        /// Iteration count.
        iterations: u32,
    },
}

impl Algorithm {
    /// Canonical short name, e.g. `"BFS"`.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Bfs { .. } => "BFS",
            Algorithm::PageRank { .. } => "PageRank",
            Algorithm::Wcc => "WCC",
            Algorithm::Sssp { .. } => "SSSP",
            Algorithm::Cdlp { .. } => "CDLP",
        }
    }
}

/// The computed per-vertex result of a job, used for validation against the
/// sequential reference implementations.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgorithmOutput {
    /// BFS levels (`u32::MAX` = unreached).
    Levels(Vec<u32>),
    /// PageRank scores.
    Ranks(Vec<f64>),
    /// Component / community labels.
    Labels(Vec<u32>),
    /// Distances (`f64::INFINITY` = unreached).
    Distances(Vec<f64>),
}

/// Cost-model constants translating logical counters into simulated demand.
/// One instance per platform; see [`CostModel::giraph_like`] and
/// [`CostModel::powergraph_like`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// CPU work to parse one byte of input text, core-µs.
    pub parse_cpu_us_per_byte: f64,
    /// CPU work to insert one edge into the in-memory structure, core-µs.
    pub build_cpu_us_per_edge: f64,
    /// CPU work per edge scanned by the vertex program, core-µs.
    pub compute_us_per_edge: f64,
    /// CPU work per active vertex per superstep, core-µs.
    pub compute_us_per_vertex: f64,
    /// Wire size of one message / one mirror-sync, bytes.
    pub bytes_per_message: f64,
    /// Output bytes per vertex written during offload.
    pub bytes_per_vertex_out: f64,
    /// Input bytes per edge in the on-disk encoding.
    pub bytes_per_edge_in: f64,
    /// Resident bytes per edge once loaded (JVM object headers make this
    /// several times larger on Giraph than on the C++ platforms).
    pub bytes_per_edge_mem: f64,
    /// Coordination latency per barrier crossing (ZooKeeper round trip or
    /// MPI allreduce), µs.
    pub barrier_us: f64,
    /// Compute threads per worker process.
    pub worker_threads: u32,
    /// Serialization/deserialization CPU cost per message, core-µs.
    pub serialize_us_per_message: f64,
}

impl CostModel {
    /// A Giraph-like (JVM, Pregel) cost model.
    pub fn giraph_like() -> Self {
        CostModel {
            parse_cpu_us_per_byte: 0.035,
            build_cpu_us_per_edge: 0.55,
            compute_us_per_edge: 0.30,
            compute_us_per_vertex: 0.35,
            bytes_per_message: 16.0,
            bytes_per_vertex_out: 16.0,
            bytes_per_edge_in: 20.0,
            bytes_per_edge_mem: 110.0,
            barrier_us: 180_000.0,
            worker_threads: 8,
            serialize_us_per_message: 0.18,
        }
    }

    /// A PowerGraph-like (C++, GAS) cost model.
    pub fn powergraph_like() -> Self {
        CostModel {
            parse_cpu_us_per_byte: 0.022,
            build_cpu_us_per_edge: 0.18,
            compute_us_per_edge: 0.05,
            compute_us_per_vertex: 0.06,
            bytes_per_message: 12.0,
            bytes_per_vertex_out: 12.0,
            bytes_per_edge_in: 20.0,
            bytes_per_edge_mem: 40.0,
            barrier_us: 25_000.0,
            worker_threads: 16,
            serialize_us_per_message: 0.03,
        }
    }
}

/// One platform job to run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobConfig {
    /// Job identifier, used in archives, e.g. `"giraph-bfs-dg1000-r0"`.
    pub job_id: String,
    /// Dataset name recorded in the archive, e.g. `"dg1000"`.
    pub dataset: String,
    /// The algorithm to execute.
    pub algorithm: Algorithm,
    /// Number of cluster nodes (= worker processes; one worker per node, as
    /// in the paper's deployment).
    pub nodes: u16,
    /// Volume multiplier applied to all data sizes and compute work: the
    /// experiments execute the algorithm on a down-sampled graph but emulate
    /// the full dataset by scaling demand linearly (see DESIGN.md).
    pub scale_factor: f64,
    /// Platform cost model.
    pub costs: CostModel,
}

impl JobConfig {
    /// A convenience config with scale factor 1 and the given cost model.
    pub fn new(
        job_id: impl Into<String>,
        dataset: impl Into<String>,
        algorithm: Algorithm,
        nodes: u16,
        costs: CostModel,
    ) -> Self {
        JobConfig {
            job_id: job_id.into(),
            dataset: dataset.into(),
            algorithm,
            nodes,
            scale_factor: 1.0,
            costs,
        }
    }

    /// Sets the dataset scale factor.
    pub fn with_scale(mut self, scale_factor: f64) -> Self {
        self.scale_factor = scale_factor;
        self
    }
}

/// Everything a platform run produces — the raw material for Granula.
#[derive(Debug, Clone)]
pub struct PlatformRun {
    /// Granula instrumentation events (platform logs).
    pub events: Vec<LogEvent>,
    /// Environment monitor samples (per node, per second).
    pub env_samples: Vec<ResourceSample>,
    /// The algorithm's computed output (for validation).
    pub output: AlgorithmOutput,
    /// Total simulated runtime, microseconds.
    pub makespan_us: u64,
    /// Number of supersteps / GAS iterations executed.
    pub iterations: u32,
}

/// Converts a simulator usage trace into environment-monitor samples.
pub fn trace_to_samples(trace: &UsageTrace) -> Vec<ResourceSample> {
    let mut out = Vec::new();
    for (i, name) in trace.node_names().iter().enumerate() {
        let node = gpsim_cluster::NodeId(i as u16);
        for (t, v) in trace.series(Channel::Cpu, node) {
            out.push(ResourceSample {
                time_us: t,
                node: name.as_str().to_owned(),
                kind: ResourceKind::Cpu,
                value: v,
            });
        }
        for (t, v) in trace.series(Channel::Disk, node) {
            out.push(ResourceSample {
                time_us: t,
                node: name.as_str().to_owned(),
                kind: ResourceKind::Disk,
                value: v,
            });
        }
        for (t, v) in trace.series(Channel::NetIn, node) {
            out.push(ResourceSample {
                time_us: t,
                node: name.as_str().to_owned(),
                kind: ResourceKind::Network,
                value: v,
            });
        }
    }
    out
}

/// One additive component of a node's memory footprint over time: ramps
/// linearly from zero across `[ramp_start_us, ramp_end_us)`, holds at
/// `bytes` until `hold_until_us`, then drops to zero (process exit or
/// buffer release). Several phases per node sum — e.g. PowerGraph's
/// machine 0 holds a whole-graph staging buffer on top of its partition.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryPhase {
    /// Node name.
    pub node: String,
    /// Allocation begins.
    pub ramp_start_us: u64,
    /// Fully resident from here.
    pub ramp_end_us: u64,
    /// Released at this time.
    pub hold_until_us: u64,
    /// Peak bytes of this component.
    pub bytes: f64,
}

/// Synthesizes per-second memory samples from additive phases — the
/// environment monitor's RSS view of the job.
pub fn memory_samples(phases: &[MemoryPhase], makespan_us: u64) -> Vec<ResourceSample> {
    use std::collections::BTreeMap;
    let step = 1_000_000u64;
    let mut per_node: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let buckets = (makespan_us / step + 1) as usize;
    for phase in phases {
        let series = per_node
            .entry(phase.node.as_str())
            .or_insert_with(|| vec![0.0; buckets]);
        for (b, slot) in series.iter_mut().enumerate() {
            let t = b as u64 * step;
            let value = if t < phase.ramp_start_us || t >= phase.hold_until_us {
                0.0
            } else if t >= phase.ramp_end_us {
                phase.bytes
            } else {
                let span = (phase.ramp_end_us - phase.ramp_start_us).max(1) as f64;
                phase.bytes * (t - phase.ramp_start_us) as f64 / span
            };
            *slot += value;
        }
    }
    let mut out = Vec::new();
    for (node, series) in per_node {
        for (b, value) in series.into_iter().enumerate() {
            out.push(ResourceSample {
                time_us: b as u64 * step,
                node: node.to_string(),
                kind: ResourceKind::Memory,
                value,
            });
        }
    }
    out
}

/// Runs the sequential reference implementation for `algorithm` — the
/// ground truth used in validation tests.
pub fn reference_output(g: &Graph, algorithm: Algorithm) -> AlgorithmOutput {
    use gpsim_graph::algos;
    match algorithm {
        Algorithm::Bfs { source } => AlgorithmOutput::Levels(algos::bfs(g, source)),
        Algorithm::PageRank { iterations } => {
            AlgorithmOutput::Ranks(algos::pagerank(g, iterations, 0.85))
        }
        Algorithm::Wcc => AlgorithmOutput::Labels(algos::wcc(g)),
        Algorithm::Sssp { source } => AlgorithmOutput::Distances(algos::sssp(g, source)),
        Algorithm::Cdlp { iterations } => AlgorithmOutput::Labels(algos::cdlp(g, iterations)),
    }
}

impl AlgorithmOutput {
    /// Approximate equality: exact for integer outputs, tolerance `1e-9`
    /// relative for floating-point outputs.
    pub fn matches(&self, other: &AlgorithmOutput) -> bool {
        match (self, other) {
            (AlgorithmOutput::Levels(a), AlgorithmOutput::Levels(b)) => a == b,
            (AlgorithmOutput::Labels(a), AlgorithmOutput::Labels(b)) => a == b,
            (AlgorithmOutput::Ranks(a), AlgorithmOutput::Ranks(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|(x, y)| (x - y).abs() <= 1e-9 * x.abs().max(1.0))
            }
            (AlgorithmOutput::Distances(a), AlgorithmOutput::Distances(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| {
                        (x.is_infinite() && y.is_infinite())
                            || (x - y).abs() <= 1e-6 * x.abs().max(1.0)
                    })
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::Bfs { source: 0 }.name(), "BFS");
        assert_eq!(Algorithm::PageRank { iterations: 5 }.name(), "PageRank");
        assert_eq!(Algorithm::Wcc.name(), "WCC");
    }

    #[test]
    fn output_matching_tolerates_float_noise() {
        let a = AlgorithmOutput::Ranks(vec![0.5, 0.25]);
        let b = AlgorithmOutput::Ranks(vec![0.5 + 1e-12, 0.25]);
        assert!(a.matches(&b));
        let c = AlgorithmOutput::Ranks(vec![0.5 + 1e-3, 0.25]);
        assert!(!a.matches(&c));
    }

    #[test]
    fn output_matching_rejects_kind_mismatch() {
        let a = AlgorithmOutput::Levels(vec![0]);
        let b = AlgorithmOutput::Labels(vec![0]);
        assert!(!a.matches(&b));
    }

    #[test]
    fn memory_phases_ramp_hold_and_release() {
        let phases = vec![MemoryPhase {
            node: "n0".into(),
            ramp_start_us: 2_000_000,
            ramp_end_us: 4_000_000,
            hold_until_us: 8_000_000,
            bytes: 100.0,
        }];
        let samples = memory_samples(&phases, 10_000_000);
        let at = |sec: u64| {
            samples
                .iter()
                .find(|s| s.time_us == sec * 1_000_000)
                .map(|s| s.value)
                .expect("sample present")
        };
        assert_eq!(at(0), 0.0);
        assert_eq!(at(2), 0.0); // ramp start
        assert_eq!(at(3), 50.0); // halfway up
        assert_eq!(at(5), 100.0); // resident
        assert_eq!(at(8), 0.0); // released
    }

    #[test]
    fn memory_phases_are_additive_per_node() {
        let mk = |bytes: f64| MemoryPhase {
            node: "n0".into(),
            ramp_start_us: 0,
            ramp_end_us: 1,
            hold_until_us: 5_000_000,
            bytes,
        };
        let samples = memory_samples(&[mk(10.0), mk(30.0)], 4_000_000);
        assert!(samples
            .iter()
            .filter(|s| s.time_us == 2_000_000)
            .all(|s| s.value == 40.0));
    }

    #[test]
    fn infinite_distances_match() {
        let a = AlgorithmOutput::Distances(vec![f64::INFINITY, 1.0]);
        let b = AlgorithmOutput::Distances(vec![f64::INFINITY, 1.0]);
        assert!(a.matches(&b));
    }
}
