//! Operation specs: how platforms turn simulated activities into Granula
//! instrumentation logs.
//!
//! A driver declares, for every operation it wants to appear in the logs,
//! an [`OpSpec`]: the operation's identity (actor × mission), its parent,
//! and the *tag prefix* of the activities that implement it. After the
//! simulation, [`emit_events`] looks up each spec's activity span and emits
//! the `START`/`END`/`INFO` log lines an instrumented platform would have
//! written. Specs whose activities never ran (e.g. an operation elided for
//! this workload) are skipped, exactly like a real log would simply not
//! contain those lines.

use gpsim_cluster::{ActivityGraph, SimResult};
use granula_model::{Actor, InfoValue, Mission};
use granula_monitor::LogEvent;

/// Declares one operation to be reconstructed from activity spans.
#[derive(Debug, Clone)]
pub struct OpSpec {
    /// Operation actor.
    pub actor: Actor,
    /// Operation mission.
    pub mission: Mission,
    /// Parent operation identity (`None` for the job root).
    pub parent: Option<(Actor, Mission)>,
    /// Tag prefix of the activities implementing the operation. Must be
    /// prefix-free against sibling specs (use a trailing `/`).
    pub tag: String,
    /// Node to attribute the operation to in the logs.
    pub node: String,
    /// Emitting process name.
    pub process: String,
    /// Extra raw infos logged at operation start.
    pub infos: Vec<(String, InfoValue)>,
}

impl OpSpec {
    /// Creates a spec with no extra infos.
    pub fn new(
        actor: Actor,
        mission: Mission,
        parent: Option<(Actor, Mission)>,
        tag: impl Into<String>,
        node: impl Into<String>,
        process: impl Into<String>,
    ) -> Self {
        OpSpec {
            actor,
            mission,
            parent,
            tag: tag.into(),
            node: node.into(),
            process: process.into(),
            infos: Vec::new(),
        }
    }

    /// Attaches an extra info to be logged.
    pub fn with_info(mut self, name: impl Into<String>, value: InfoValue) -> Self {
        self.infos.push((name.into(), value));
        self
    }
}

/// Generates the Granula log events of all specs from the simulated spans.
///
/// Events are emitted parent-before-child for identical timestamps (specs
/// must be ordered parents-first, which the drivers do naturally), so the
/// assembler reconstructs the intended hierarchy.
pub fn emit_events(specs: &[OpSpec], graph: &ActivityGraph, sim: &SimResult) -> Vec<LogEvent> {
    let mut events = Vec::with_capacity(specs.len() * 2);
    for spec in specs {
        let Some((start, end)) = sim.span_of_tag(graph, &spec.tag) else {
            continue;
        };
        let (start_us, end_us) = (start.round() as u64, end.round() as u64);
        events.push(LogEvent::start(
            start_us,
            spec.node.clone(),
            spec.process.clone(),
            spec.actor.clone(),
            spec.mission.clone(),
            spec.parent.clone(),
        ));
        for (name, value) in &spec.infos {
            events.push(LogEvent::info(
                start_us,
                spec.node.clone(),
                spec.process.clone(),
                spec.actor.clone(),
                spec.mission.clone(),
                name.clone(),
                value.clone(),
            ));
        }
        events.push(LogEvent::end(
            end_us,
            spec.node.clone(),
            spec.process.clone(),
            spec.actor.clone(),
            spec.mission.clone(),
        ));
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsim_cluster::{ActivityKind, ClusterSpec, NodeSpec, Simulation};
    use granula_monitor::Assembler;

    fn actor(k: &str, i: &str) -> Actor {
        Actor::new(k, i)
    }
    fn mission(k: &str, i: &str) -> Mission {
        Mission::new(k, i)
    }

    #[test]
    fn specs_reconstruct_hierarchy_through_assembler() {
        let cluster = ClusterSpec::homogeneous(
            1,
            NodeSpec {
                name: "n0".into(),
                cores: 4,
                disk_bps: 1e8,
                nic_bps: 1e8,
                mem_bytes: 1,
            },
        );
        let mut g = ActivityGraph::new();
        let a = g.add(ActivityKind::Delay { duration_us: 1e6 }, &[], "job/load/x");
        g.add(ActivityKind::Delay { duration_us: 5e5 }, &[a], "job/proc/y");
        let sim = Simulation::new(cluster).run(&g).unwrap();

        let job = (actor("Job", "0"), mission("GiraphJob", "0"));
        let specs = vec![
            OpSpec::new(job.0.clone(), job.1.clone(), None, "job/", "n0", "client"),
            OpSpec::new(
                actor("Job", "0"),
                mission("LoadGraph", "0"),
                Some(job.clone()),
                "job/load/",
                "n0",
                "client",
            )
            .with_info("Bytes", InfoValue::Int(42)),
            OpSpec::new(
                actor("Job", "0"),
                mission("ProcessGraph", "0"),
                Some(job.clone()),
                "job/proc/",
                "n0",
                "client",
            ),
            // An op whose activities never existed: skipped.
            OpSpec::new(
                actor("Job", "0"),
                mission("OffloadGraph", "0"),
                Some(job),
                "job/offload/",
                "n0",
                "client",
            ),
        ];
        let events = emit_events(&specs, &g, &sim);
        // 3 ops emitted (offload skipped): 2 events each + 1 info.
        assert_eq!(events.len(), 7);

        let outcome = Assembler::new().assemble(events);
        assert!(outcome.warnings.is_empty(), "{:?}", outcome.warnings);
        let tree = outcome.tree;
        assert_eq!(tree.len(), 3);
        let root = tree.root().unwrap();
        assert_eq!(tree.op(root).mission.kind, "GiraphJob");
        assert_eq!(tree.op(root).children.len(), 2);
        let load = tree.child_by_mission(root, "LoadGraph").unwrap();
        assert_eq!(tree.op(load).info_i64("Bytes"), Some(42));
        assert_eq!(tree.op(load).duration_us(), Some(1_000_000));
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        assert_eq!(tree.op(proc_).start_us(), Some(1_000_000));
    }
}
