//! A Gather-Apply-Scatter (GAS) engine over a vertex-cut partitioning —
//! the PowerGraph execution model.
//!
//! Each iteration processes the active vertices in three minor-steps:
//! **gather** (each machine folds the program's gather function over its
//! local share of the vertex's edges), **apply** (the master replica merges
//! the partial accumulators and updates the value), **scatter** (machines
//! holding the vertex's scatter-direction edges may activate neighbours).
//! Values are snapshot-synchronous: gathers read the previous iteration's
//! values, which makes the fixed-iteration algorithms (PageRank, CDLP)
//! bit-identical to the sequential references.
//!
//! Besides the result, the engine records per-iteration, per-machine
//! counters (gather/scatter edges, applies, replica-sync messages) — the
//! inputs of the PowerGraph cost model.

use std::collections::BTreeMap;

use gpsim_graph::{Graph, VertexCutPartition, VertexId};

/// Which edges a phase touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeDir {
    /// In-edges of the vertex.
    In,
    /// Out-edges of the vertex.
    Out,
    /// Both directions.
    Both,
}

/// How iterations are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationMode {
    /// All vertices active for exactly `n` iterations (PageRank, CDLP).
    Fixed(u32),
    /// Frontier-driven until quiescence, capped at `max` iterations
    /// (BFS, WCC, SSSP).
    Converge {
        /// Iteration cap.
        max: u32,
    },
}

/// A GAS vertex program.
pub trait GasProgram {
    /// Per-vertex state.
    type Value: Clone + PartialEq;
    /// Gather accumulator.
    type Accum: Clone;

    /// Initial value of a vertex.
    fn initial_value(&self, v: VertexId, g: &Graph) -> Self::Value;

    /// Whether the vertex is in the initial frontier (converge mode only).
    fn initially_active(&self, v: VertexId) -> bool;

    /// Direction gathered over.
    fn gather_dir(&self) -> EdgeDir;

    /// Direction scattered over.
    fn scatter_dir(&self) -> EdgeDir;

    /// Maps one edge to an accumulator contribution. `other` is the
    /// neighbour on the far end; `weight` the edge weight (1.0 when
    /// unweighted).
    fn gather(
        &self,
        v: VertexId,
        other: VertexId,
        other_value: &Self::Value,
        weight: f32,
    ) -> Option<Self::Accum>;

    /// Commutative, associative merge of two accumulators.
    fn merge(&self, a: Self::Accum, b: Self::Accum) -> Self::Accum;

    /// Updates the vertex value from the merged accumulator. Returns `true`
    /// when the value changed (drives scatter activation in converge mode).
    fn apply(
        &self,
        v: VertexId,
        value: &mut Self::Value,
        acc: Option<Self::Accum>,
        iteration: u32,
    ) -> bool;

    /// Hook run before each iteration with a snapshot of all values; used
    /// for global aggregates such as PageRank's dangling mass.
    fn pre_iteration(&mut self, _iteration: u32, _values: &[Self::Value], _g: &Graph) {}
}

/// Counters of one machine within one iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineIteration {
    /// Gather-phase edges processed locally.
    pub gather_edges: u64,
    /// Vertices applied (this machine is their master).
    pub apply_vertices: u64,
    /// Scatter-phase edges processed locally.
    pub scatter_edges: u64,
    /// Replica-sync messages sent (partials to masters + values to mirrors).
    pub sync_sent: u64,
    /// Replica-sync messages received.
    pub sync_received: u64,
}

/// Counters of one iteration across machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationStats {
    /// Iteration number.
    pub iteration: u32,
    /// Per-machine counters.
    pub per_machine: Vec<MachineIteration>,
    /// `sync_matrix[from][to]`: replica-sync messages between machines.
    pub sync_matrix: Vec<Vec<u64>>,
    /// Vertices active this iteration.
    pub active_vertices: u64,
}

/// Result of a GAS execution.
#[derive(Debug, Clone)]
pub struct GasOutcome<V> {
    /// Final vertex values.
    pub values: Vec<V>,
    /// Per-iteration counters.
    pub iterations: Vec<IterationStats>,
}

/// Per-vertex `(machine, edge_count)` lists for a direction.
fn owner_counts(g: &Graph, part: &VertexCutPartition, dir: EdgeDir) -> Vec<Vec<(u16, u32)>> {
    let n = g.num_vertices() as usize;
    let mut maps: Vec<BTreeMap<u16, u32>> = vec![BTreeMap::new(); n];
    for (e, (u, v)) in g.edges().enumerate() {
        let owner = part.edge_owner[e];
        match dir {
            EdgeDir::In => *maps[v as usize].entry(owner).or_insert(0) += 1,
            EdgeDir::Out => *maps[u as usize].entry(owner).or_insert(0) += 1,
            EdgeDir::Both => {
                *maps[v as usize].entry(owner).or_insert(0) += 1;
                *maps[u as usize].entry(owner).or_insert(0) += 1;
            }
        }
    }
    maps.into_iter().map(|m| m.into_iter().collect()).collect()
}

/// Executes a GAS program.
pub fn run<P: GasProgram>(
    g: &Graph,
    part: &VertexCutPartition,
    program: &mut P,
    mode: IterationMode,
) -> GasOutcome<P::Value> {
    let n = g.num_vertices() as usize;
    let k = part.k as usize;
    let mut values: Vec<P::Value> = (0..n as u32).map(|v| program.initial_value(v, g)).collect();
    let gather_counts = owner_counts(g, part, program.gather_dir());
    let scatter_counts = owner_counts(g, part, program.scatter_dir());

    let (max_iters, fixed) = match mode {
        IterationMode::Fixed(i) => (i, true),
        IterationMode::Converge { max } => (max, false),
    };
    let mut active: Vec<bool> = if fixed {
        vec![true; n]
    } else {
        (0..n as u32).map(|v| program.initially_active(v)).collect()
    };

    let mut stats = Vec::new();
    for iteration in 0..max_iters {
        if !fixed && !active.iter().any(|&a| a) {
            break;
        }
        program.pre_iteration(iteration, &values, g);
        let mut per_machine = vec![MachineIteration::default(); k];
        let mut sync_matrix = vec![vec![0u64; k]; k];
        let mut next_values = values.clone();
        let mut next_active = vec![false; n];
        let mut active_vertices = 0u64;

        for v in 0..n as u32 {
            if !active[v as usize] {
                continue;
            }
            active_vertices += 1;
            let vi = v as usize;
            let master = part.master_of(v) as usize;

            // Gather: fold over the gather-direction edges, reading the
            // snapshot `values`.
            let mut acc: Option<P::Accum> = None;
            let dir = program.gather_dir();
            if matches!(dir, EdgeDir::In | EdgeDir::Both) {
                let ins = g.in_neighbors(v);
                for (i, &u) in ins.iter().enumerate() {
                    let w = g.in_edge_weights(v).map_or(1.0, |ws| ws[i]);
                    if let Some(c) = program.gather(v, u, &values[u as usize], w) {
                        acc = Some(match acc {
                            None => c,
                            Some(prev) => program.merge(prev, c),
                        });
                    }
                }
            }
            if matches!(dir, EdgeDir::Out | EdgeDir::Both) {
                let outs = g.neighbors(v);
                for (i, &u) in outs.iter().enumerate() {
                    let w = g.edge_weights(v).map_or(1.0, |ws| ws[i]);
                    if let Some(c) = program.gather(v, u, &values[u as usize], w) {
                        acc = Some(match acc {
                            None => c,
                            Some(prev) => program.merge(prev, c),
                        });
                    }
                }
            }

            // Account gather work on the machines owning the edges, and the
            // partial-sync traffic mirror -> master.
            for &(m, cnt) in &gather_counts[vi] {
                per_machine[m as usize].gather_edges += cnt as u64;
                if m as usize != master {
                    per_machine[m as usize].sync_sent += 1;
                    per_machine[master].sync_received += 1;
                    sync_matrix[m as usize][master] += 1;
                }
            }

            // Apply at the master.
            per_machine[master].apply_vertices += 1;
            let changed = program.apply(v, &mut next_values[vi], acc, iteration);

            // Value sync master -> mirrors (every replica gets the new value).
            for &m in &part.replicas[vi] {
                if m as usize != master {
                    per_machine[master].sync_sent += 1;
                    per_machine[m as usize].sync_received += 1;
                    sync_matrix[master][m as usize] += 1;
                }
            }

            // Scatter: activate neighbours when the value changed.
            if changed || fixed {
                for &(m, cnt) in &scatter_counts[vi] {
                    per_machine[m as usize].scatter_edges += cnt as u64;
                }
            }
            if changed && !fixed {
                let dir = program.scatter_dir();
                if matches!(dir, EdgeDir::Out | EdgeDir::Both) {
                    for &t in g.neighbors(v) {
                        next_active[t as usize] = true;
                    }
                }
                if matches!(dir, EdgeDir::In | EdgeDir::Both) {
                    for &t in g.in_neighbors(v) {
                        next_active[t as usize] = true;
                    }
                }
            }
        }

        values = next_values;
        if !fixed {
            active = next_active;
        }
        stats.push(IterationStats {
            iteration,
            per_machine,
            sync_matrix,
            active_vertices,
        });
    }

    GasOutcome {
        values,
        iterations: stats,
    }
}

// ---------------------------------------------------------------------------
// GAS programs for the Graphalytics algorithms.
// ---------------------------------------------------------------------------

/// BFS as pull-style GAS: gather the minimum `level + 1` over in-edges.
pub struct BfsGas {
    /// Source vertex.
    pub source: VertexId,
}

impl GasProgram for BfsGas {
    type Value = u32;
    type Accum = u32;

    fn initial_value(&self, _v: VertexId, _g: &Graph) -> u32 {
        u32::MAX
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.source
    }

    fn gather_dir(&self) -> EdgeDir {
        EdgeDir::In
    }

    fn scatter_dir(&self) -> EdgeDir {
        EdgeDir::Out
    }

    fn gather(&self, _v: VertexId, _other: VertexId, other_value: &u32, _w: f32) -> Option<u32> {
        (*other_value != u32::MAX).then(|| other_value + 1)
    }

    fn merge(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, v: VertexId, value: &mut u32, acc: Option<u32>, _iteration: u32) -> bool {
        let mut candidate = acc.unwrap_or(u32::MAX);
        if v == self.source {
            candidate = 0;
        }
        if candidate < *value {
            *value = candidate;
            true
        } else {
            false
        }
    }
}

/// SSSP as pull-style GAS over weighted in-edges.
pub struct SsspGas {
    /// Source vertex.
    pub source: VertexId,
}

impl GasProgram for SsspGas {
    type Value = f64;
    type Accum = f64;

    fn initial_value(&self, _v: VertexId, _g: &Graph) -> f64 {
        f64::INFINITY
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.source
    }

    fn gather_dir(&self) -> EdgeDir {
        EdgeDir::In
    }

    fn scatter_dir(&self) -> EdgeDir {
        EdgeDir::Out
    }

    fn gather(&self, _v: VertexId, _o: VertexId, other_value: &f64, w: f32) -> Option<f64> {
        other_value.is_finite().then(|| other_value + w as f64)
    }

    fn merge(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }

    fn apply(&self, v: VertexId, value: &mut f64, acc: Option<f64>, _iteration: u32) -> bool {
        let mut candidate = acc.unwrap_or(f64::INFINITY);
        if v == self.source {
            candidate = 0.0;
        }
        if candidate < *value {
            *value = candidate;
            true
        } else {
            false
        }
    }
}

/// WCC: minimum-label propagation over both edge directions.
pub struct WccGas;

impl GasProgram for WccGas {
    type Value = u32;
    type Accum = u32;

    fn initial_value(&self, v: VertexId, _g: &Graph) -> u32 {
        v
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn gather_dir(&self) -> EdgeDir {
        EdgeDir::Both
    }

    fn scatter_dir(&self) -> EdgeDir {
        EdgeDir::Both
    }

    fn gather(&self, _v: VertexId, _o: VertexId, other_value: &u32, _w: f32) -> Option<u32> {
        Some(*other_value)
    }

    fn merge(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, value: &mut u32, acc: Option<u32>, _iteration: u32) -> bool {
        match acc {
            Some(best) if best < *value => {
                *value = best;
                true
            }
            _ => false,
        }
    }
}

/// PageRank as fixed-iteration GAS with dangling redistribution. The gather
/// needs each in-neighbour's out-degree, which the program reads from a
/// borrowed graph, so the implementation lives in a local type.
pub fn run_pagerank_gas(
    g: &Graph,
    part: &VertexCutPartition,
    iterations: u32,
    damping: f64,
) -> GasOutcome<f64> {
    struct Inner<'a> {
        g: &'a Graph,
        damping: f64,
        dangling: f64,
    }
    impl GasProgram for Inner<'_> {
        type Value = f64;
        type Accum = f64;
        fn initial_value(&self, _v: VertexId, g: &Graph) -> f64 {
            1.0 / g.num_vertices() as f64
        }
        fn initially_active(&self, _v: VertexId) -> bool {
            true
        }
        fn gather_dir(&self) -> EdgeDir {
            EdgeDir::In
        }
        fn scatter_dir(&self) -> EdgeDir {
            EdgeDir::Out
        }
        fn gather(&self, _v: VertexId, other: VertexId, val: &f64, _w: f32) -> Option<f64> {
            let deg = self.g.out_degree(other);
            (deg > 0).then(|| val / deg as f64)
        }
        fn merge(&self, a: f64, b: f64) -> f64 {
            a + b
        }
        fn apply(&self, _v: VertexId, value: &mut f64, acc: Option<f64>, _i: u32) -> bool {
            let n = self.g.num_vertices() as f64;
            *value = (1.0 - self.damping) / n
                + self.damping * self.dangling / n
                + self.damping * acc.unwrap_or(0.0);
            true
        }
        fn pre_iteration(&mut self, _i: u32, values: &[f64], g: &Graph) {
            self.dangling = (0..g.num_vertices())
                .filter(|&v| g.out_degree(v) == 0)
                .map(|v| values[v as usize])
                .sum();
        }
    }
    let mut p = Inner {
        g,
        damping,
        dangling: 0.0,
    };
    run(g, part, &mut p, IterationMode::Fixed(iterations))
}

/// CDLP as fixed-iteration GAS: gather the label multiset over both
/// directions, apply the most frequent label (ties to the smallest).
pub struct CdlpGas;

impl GasProgram for CdlpGas {
    type Value = u32;
    type Accum = BTreeMap<u32, u32>;

    fn initial_value(&self, v: VertexId, _g: &Graph) -> u32 {
        v
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn gather_dir(&self) -> EdgeDir {
        EdgeDir::Both
    }

    fn scatter_dir(&self) -> EdgeDir {
        EdgeDir::Both
    }

    fn gather(
        &self,
        _v: VertexId,
        _o: VertexId,
        other_value: &u32,
        _w: f32,
    ) -> Option<BTreeMap<u32, u32>> {
        let mut m = BTreeMap::new();
        m.insert(*other_value, 1);
        Some(m)
    }

    fn merge(&self, mut a: BTreeMap<u32, u32>, b: BTreeMap<u32, u32>) -> BTreeMap<u32, u32> {
        for (l, c) in b {
            *a.entry(l).or_insert(0) += c;
        }
        a
    }

    fn apply(
        &self,
        _v: VertexId,
        value: &mut u32,
        acc: Option<BTreeMap<u32, u32>>,
        _iteration: u32,
    ) -> bool {
        let Some(counts) = acc else { return false };
        let mut best = (*value, 0u32);
        for (&l, &c) in &counts {
            if c > best.1 {
                best = (l, c);
            }
        }
        if best.1 == 0 {
            return false;
        }
        let changed = *value != best.0;
        *value = best.0;
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsim_graph::algos;
    use gpsim_graph::gen::{datagen_like, with_uniform_weights, GenConfig};

    fn graph() -> Graph {
        datagen_like(&GenConfig::datagen(1_500, 77))
    }

    fn part(g: &Graph) -> VertexCutPartition {
        VertexCutPartition::greedy(g, 8)
    }

    #[test]
    fn bfs_matches_reference() {
        let g = graph();
        let p = part(&g);
        let out = run(
            &g,
            &p,
            &mut BfsGas { source: 2 },
            IterationMode::Converge { max: 1_000 },
        );
        assert_eq!(out.values, algos::bfs(&g, 2));
    }

    #[test]
    fn sssp_matches_reference() {
        let g = with_uniform_weights(&graph(), 3.0, 21);
        let p = part(&g);
        let out = run(
            &g,
            &p,
            &mut SsspGas { source: 2 },
            IterationMode::Converge { max: 10_000 },
        );
        let reference = algos::sssp(&g, 2);
        for (a, b) in out.values.iter().zip(&reference) {
            if b.is_infinite() {
                assert!(a.is_infinite());
            } else {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn wcc_matches_reference() {
        let g = graph();
        let p = part(&g);
        let out = run(&g, &p, &mut WccGas, IterationMode::Converge { max: 1_000 });
        assert_eq!(out.values, algos::wcc(&g));
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = graph();
        let p = part(&g);
        let out = run_pagerank_gas(&g, &p, 10, 0.85);
        let reference = algos::pagerank(&g, 10, 0.85);
        for (a, b) in out.values.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn cdlp_matches_reference() {
        let g = graph();
        let p = part(&g);
        let out = run(&g, &p, &mut CdlpGas, IterationMode::Fixed(5));
        assert_eq!(out.values, algos::cdlp(&g, 5));
    }

    #[test]
    fn sync_matrix_consistent_with_counters() {
        let g = graph();
        let p = part(&g);
        let out = run(
            &g,
            &p,
            &mut BfsGas { source: 2 },
            IterationMode::Converge { max: 1_000 },
        );
        for it in &out.iterations {
            let sent: u64 = it.per_machine.iter().map(|m| m.sync_sent).sum();
            let recv: u64 = it.per_machine.iter().map(|m| m.sync_received).sum();
            let matrix: u64 = it.sync_matrix.iter().flatten().sum();
            assert_eq!(sent, recv);
            assert_eq!(sent, matrix);
            // Nothing syncs machine -> itself.
            for (i, row) in it.sync_matrix.iter().enumerate() {
                assert_eq!(row[i], 0);
            }
        }
    }

    #[test]
    fn converge_mode_shrinks_to_quiescence() {
        let g = graph();
        let p = part(&g);
        let out = run(&g, &p, &mut WccGas, IterationMode::Converge { max: 1_000 });
        let last = out.iterations.last().unwrap();
        let first = &out.iterations[0];
        assert!(last.active_vertices < first.active_vertices);
        assert!(out.iterations.len() < 1_000);
    }

    #[test]
    fn fixed_mode_keeps_everything_active() {
        let g = graph();
        let p = part(&g);
        let out = run_pagerank_gas(&g, &p, 3, 0.85);
        assert_eq!(out.iterations.len(), 3);
        for it in &out.iterations {
            assert_eq!(it.active_vertices, g.num_vertices() as u64);
        }
    }
}
