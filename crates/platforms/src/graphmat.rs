//! The GraphMat-like platform driver.
//!
//! SpMV on Intel-MPI-like provisioning with shared-filesystem storage
//! (Table 1 row 3). Structure distilled from GraphMat's published design:
//! every machine loads its block of the edge list *in parallel* (contending
//! on the shared server), then pays the famously expensive conversion into
//! the internal SpMV matrix format; iterations are generalized
//! matrix-vector products with an all-to-all message exchange and an
//! MPI-allreduce barrier.

use gpsim_cluster::{
    ActivityGraph, ActivityId, ActivityKind, ClusterSpec, NodeId, SimError, Simulation,
};
use gpsim_graph::{BlockPartition, Graph};
use granula_model::{Actor, InfoValue, Mission};

use crate::common::{
    memory_samples, trace_to_samples, Algorithm, AlgorithmOutput, JobConfig, MemoryPhase,
    PlatformRun,
};
use crate::gas::IterationMode;
use crate::ops::{emit_events, OpSpec};
use crate::spmv::{self, SpmvIteration};

/// GraphMat-like platform configuration.
#[derive(Debug, Clone)]
pub struct GraphMatPlatform {
    /// `mpiexec` + daemon startup latency, µs.
    pub mpiexec_us: f64,
    /// Per-rank handshake latency, µs.
    pub per_rank_us: f64,
    /// MPI finalize latency, µs.
    pub finalize_us: f64,
    /// CPU work per edge for the format conversion, core-µs (GraphMat's
    /// conversion step is a large constant factor over reading).
    pub convert_us_per_edge: f64,
    /// Iteration cap for convergent algorithms.
    pub max_iterations: u32,
}

impl Default for GraphMatPlatform {
    fn default() -> Self {
        GraphMatPlatform {
            mpiexec_us: 2.0e6,
            per_rank_us: 0.15e6,
            finalize_us: 1.0e6,
            convert_us_per_edge: 0.9,
            max_iterations: 10_000,
        }
    }
}

fn run_program(
    g: &Graph,
    part: &BlockPartition,
    algorithm: Algorithm,
    max_iterations: u32,
) -> (AlgorithmOutput, Vec<SpmvIteration>) {
    match algorithm {
        Algorithm::Bfs { source } => {
            let out = spmv::run(
                g,
                part,
                &mut spmv::BfsSpmv { source },
                IterationMode::Converge {
                    max: max_iterations,
                },
            );
            (AlgorithmOutput::Levels(out.values), out.iterations)
        }
        Algorithm::PageRank { iterations } => {
            let mut prog = spmv::PageRankSpmv::new(g, 0.85);
            let out = spmv::run(g, part, &mut prog, IterationMode::Fixed(iterations));
            (AlgorithmOutput::Ranks(out.values), out.iterations)
        }
        Algorithm::Wcc => {
            let out = spmv::run(
                g,
                part,
                &mut spmv::WccSpmv,
                IterationMode::Converge {
                    max: max_iterations,
                },
            );
            (AlgorithmOutput::Labels(out.values), out.iterations)
        }
        Algorithm::Sssp { source } => {
            let out = spmv::run(
                g,
                part,
                &mut spmv::SsspSpmv { source },
                IterationMode::Converge {
                    max: max_iterations,
                },
            );
            (AlgorithmOutput::Distances(out.values), out.iterations)
        }
        Algorithm::Cdlp { iterations } => {
            let out = spmv::run(
                g,
                part,
                &mut spmv::CdlpSpmv,
                IterationMode::Fixed(iterations),
            );
            (AlgorithmOutput::Labels(out.values), out.iterations)
        }
    }
}

impl GraphMatPlatform {
    /// Runs a job on a DAS5-like cluster with `cfg.nodes` nodes.
    pub fn run(&self, g: &Graph, cfg: &JobConfig) -> Result<PlatformRun, SimError> {
        self.run_on(g, cfg, &ClusterSpec::das5(cfg.nodes))
    }

    /// Runs a job on an explicit cluster.
    pub fn run_on(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        cluster: &ClusterSpec,
    ) -> Result<PlatformRun, SimError> {
        assert!(
            cluster.len() >= cfg.nodes as usize && cfg.nodes > 0,
            "cluster too small for {} ranks",
            cfg.nodes
        );
        let k = cfg.nodes;
        let costs = &cfg.costs;
        let scale = cfg.scale_factor;
        let part = BlockPartition::by_edges(g, k);
        let (output, iterations) = run_program(g, &part, cfg.algorithm, self.max_iterations);

        let edge_sizes = part.edge_sizes(g);
        let vert_sizes: Vec<u64> = (0..k).map(|m| part.range(m).len() as u64).collect();

        let mut dag = ActivityGraph::new();
        let mut specs: Vec<OpSpec> = Vec::new();
        let job_actor = Actor::new("Job", "0");
        let job_mission = Mission::new("GraphMatJob", "0");
        let job_key = (job_actor.clone(), job_mission.clone());
        let node_name = |m: u16| cluster.node(NodeId(m)).name.clone();
        let head = node_name(0);

        specs.push(
            OpSpec::new(
                job_actor.clone(),
                job_mission.clone(),
                None,
                "job/",
                &head,
                "mpiexec",
            )
            .with_info("Platform", InfoValue::Text("GraphMat".into()))
            .with_info("Algorithm", InfoValue::Text(cfg.algorithm.name().into()))
            .with_info("Dataset", InfoValue::Text(cfg.dataset.clone()))
            .with_info("Ranks", InfoValue::Int(k as i64)),
        );
        let domain = |mission: &str| (job_actor.clone(), Mission::new(mission, "0"));

        // -------------------------------------------------- Startup (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("Startup", "0"),
            Some(job_key.clone()),
            "job/startup/",
            &head,
            "mpiexec",
        ));
        let mpiexec = dag.add(
            ActivityKind::Delay {
                duration_us: self.mpiexec_us,
            },
            &[],
            "job/startup/mpi/daemon",
        );
        let mut ranks: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for m in 0..k {
            ranks.push(dag.add(
                ActivityKind::Delay {
                    duration_us: self.per_rank_us,
                },
                &[mpiexec],
                format!("job/startup/mpi/rank-{m}"),
            ));
        }
        specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("MpiSetup", "0"),
            Some(domain("Startup")),
            "job/startup/mpi/",
            &head,
            "mpiexec",
        ));
        let started = dag.barrier(&ranks, "job/startup/ready");

        // ------------------------------------------------ LoadGraph (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("LoadGraph", "0"),
            Some(job_key.clone()),
            "job/load/",
            &head,
            "rank-0",
        ));
        let mut converted: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for m in 0..k {
            let bytes = (vert_sizes[m as usize] as f64 * 10.0
                + edge_sizes[m as usize] as f64 * costs.bytes_per_edge_in)
                * scale;
            let tagp = format!("job/load/m{m}/");
            specs.push(
                OpSpec::new(
                    Actor::new("Machine", m.to_string()),
                    Mission::new("LocalLoad", "0"),
                    Some(domain("LoadGraph")),
                    tagp.clone(),
                    node_name(m),
                    format!("rank-{m}"),
                )
                .with_info("InputBytes", InfoValue::Int(bytes.round() as i64)),
            );
            // Parallel read from the shared server, pipelined with parsing.
            let read = dag.add(
                ActivityKind::SharedRead {
                    node: NodeId(m),
                    bytes,
                },
                &[started],
                format!("{tagp}read"),
            );
            specs.push(OpSpec::new(
                Actor::new("Machine", m.to_string()),
                Mission::new("ReadInput", "0"),
                Some((
                    Actor::new("Machine", m.to_string()),
                    Mission::new("LocalLoad", "0"),
                )),
                format!("{tagp}read"),
                node_name(m),
                format!("rank-{m}"),
            ));
            let parse = dag.add(
                ActivityKind::Compute {
                    node: NodeId(m),
                    work_core_us: bytes * costs.parse_cpu_us_per_byte,
                    parallelism: costs.worker_threads,
                },
                &[read],
                format!("{tagp}parse"),
            );
            // The expensive conversion to the internal SpMV format.
            let convert = dag.add(
                ActivityKind::Compute {
                    node: NodeId(m),
                    work_core_us: edge_sizes[m as usize] as f64 * scale * self.convert_us_per_edge,
                    parallelism: costs.worker_threads,
                },
                &[parse],
                format!("{tagp}convert"),
            );
            specs.push(OpSpec::new(
                Actor::new("Machine", m.to_string()),
                Mission::new("ConvertFormat", "0"),
                Some((
                    Actor::new("Machine", m.to_string()),
                    Mission::new("LocalLoad", "0"),
                )),
                format!("{tagp}convert"),
                node_name(m),
                format!("rank-{m}"),
            ));
            converted.push(convert);
        }
        let all_loaded = dag.barrier(&converted, "job/load/done");

        // ---------------------------------------------- ProcessGraph (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("ProcessGraph", "0"),
            Some(job_key.clone()),
            "job/proc/",
            &head,
            "rank-0",
        ));
        let mut prev_barrier = all_loaded;
        for it in &iterations {
            let t = it.iteration;
            let it_tag = format!("job/proc/it{t}/");
            specs.push(
                OpSpec::new(
                    job_actor.clone(),
                    Mission::new("Iteration", t.to_string()),
                    Some(domain("ProcessGraph")),
                    it_tag.clone(),
                    &head,
                    "rank-0",
                )
                .with_info(
                    "ActiveVertices",
                    InfoValue::Int((it.active_vertices as f64 * scale).round() as i64),
                ),
            );
            let iter_parent = (job_actor.clone(), Mission::new("Iteration", t.to_string()));

            // Multiply (SpMV) phase per machine.
            let mut multiplies: Vec<ActivityId> = Vec::with_capacity(k as usize);
            for m in 0..k {
                let stats = &it.per_machine[m as usize];
                let work = (stats.edges_processed as f64 * costs.compute_us_per_edge
                    + stats.messages_sent as f64 * costs.serialize_us_per_message)
                    * scale;
                let mul = dag.add(
                    ActivityKind::Compute {
                        node: NodeId(m),
                        work_core_us: work.max(300.0),
                        parallelism: costs.worker_threads,
                    },
                    &[prev_barrier],
                    format!("{it_tag}m{m}/multiply"),
                );
                specs.push(
                    OpSpec::new(
                        Actor::new("Machine", m.to_string()),
                        Mission::new("Multiply", t.to_string()),
                        Some(iter_parent.clone()),
                        format!("{it_tag}m{m}/multiply"),
                        node_name(m),
                        format!("rank-{m}"),
                    )
                    .with_info(
                        "EdgesProcessed",
                        InfoValue::Int((stats.edges_processed as f64 * scale).round() as i64),
                    ),
                );
                multiplies.push(mul);
            }

            // All-to-all exchange of cross-block messages.
            let mut transfers: Vec<ActivityId> = Vec::new();
            #[allow(clippy::needless_range_loop)] // machine ids index the matrix
            for a in 0..k as usize {
                for (b, &count) in it.exchange[a].iter().enumerate() {
                    if a == b || count == 0 {
                        continue;
                    }
                    transfers.push(dag.add(
                        ActivityKind::Transfer {
                            src: NodeId(a as u16),
                            dst: NodeId(b as u16),
                            bytes: count as f64 * costs.bytes_per_message * scale,
                        },
                        &[multiplies[a]],
                        format!("{it_tag}ex/a{a}b{b}"),
                    ));
                }
            }
            let exchange_done = if transfers.is_empty() {
                dag.barrier(&multiplies, format!("{it_tag}ex/none"))
            } else {
                let mut deps = transfers.clone();
                deps.extend_from_slice(&multiplies);
                dag.barrier(&deps, format!("{it_tag}ex/join"))
            };
            if !transfers.is_empty() {
                specs.push(OpSpec::new(
                    Actor::new("Master", "0"),
                    Mission::new("Exchange", t.to_string()),
                    Some(iter_parent.clone()),
                    format!("{it_tag}ex/"),
                    &head,
                    "rank-0",
                ));
            }

            // Apply phase per machine, then the allreduce barrier.
            let mut applies: Vec<ActivityId> = Vec::with_capacity(k as usize);
            for m in 0..k {
                let stats = &it.per_machine[m as usize];
                let apply = dag.add(
                    ActivityKind::Compute {
                        node: NodeId(m),
                        work_core_us: (stats.applies as f64 * costs.compute_us_per_vertex * scale)
                            .max(200.0),
                        parallelism: costs.worker_threads,
                    },
                    &[exchange_done],
                    format!("{it_tag}m{m}/apply"),
                );
                specs.push(OpSpec::new(
                    Actor::new("Machine", m.to_string()),
                    Mission::new("Apply", t.to_string()),
                    Some(iter_parent.clone()),
                    format!("{it_tag}m{m}/apply"),
                    node_name(m),
                    format!("rank-{m}"),
                ));
                applies.push(apply);
            }
            let join = dag.barrier(&applies, format!("{it_tag}barrier/join"));
            prev_barrier = dag.add(
                ActivityKind::Delay {
                    duration_us: costs.barrier_us,
                },
                &[join],
                format!("{it_tag}barrier/allreduce"),
            );
        }

        // --------------------------------------------- OffloadGraph (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("OffloadGraph", "0"),
            Some(job_key.clone()),
            "job/offload/",
            &head,
            "rank-0",
        ));
        let mut offloads: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for m in 0..k {
            let bytes = vert_sizes[m as usize] as f64 * costs.bytes_per_vertex_out * scale;
            let write = dag.add(
                ActivityKind::SharedRead {
                    node: NodeId(m),
                    bytes,
                },
                &[prev_barrier],
                format!("job/offload/m{m}/write"),
            );
            specs.push(
                OpSpec::new(
                    Actor::new("Machine", m.to_string()),
                    Mission::new("LocalOffload", "0"),
                    Some(domain("OffloadGraph")),
                    format!("job/offload/m{m}/"),
                    node_name(m),
                    format!("rank-{m}"),
                )
                .with_info("OutputBytes", InfoValue::Int(bytes.round() as i64)),
            );
            offloads.push(write);
        }
        let all_offloaded = dag.barrier(&offloads, "job/offload/done");

        // -------------------------------------------------- Cleanup (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("Cleanup", "0"),
            Some(job_key.clone()),
            "job/cleanup/",
            &head,
            "mpiexec",
        ));
        dag.add(
            ActivityKind::Delay {
                duration_us: self.finalize_us,
            },
            &[all_offloaded],
            "job/cleanup/finalize",
        );
        specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("MpiFinalize", "0"),
            Some(domain("Cleanup")),
            "job/cleanup/finalize",
            &head,
            "mpiexec",
        ));

        // ------------------------------------------------------- Simulate
        let sim = Simulation::new(cluster.clone()).run(&dag)?;
        let events = emit_events(&specs, &dag, &sim);
        let mut env_samples = trace_to_samples(&sim.trace);
        // Memory view: each rank's matrix block becomes resident over its
        // load+convert interval and lives until MPI finalize.
        let release = sim
            .span_of_tag(&dag, "job/cleanup/")
            .map(|(s, _)| s.round() as u64)
            .unwrap_or(sim.makespan_us.round() as u64);
        let mut phases = Vec::with_capacity(k as usize);
        for m in 0..k {
            if let Some((ls, le)) = sim.span_of_tag(&dag, &format!("job/load/m{m}/")) {
                phases.push(MemoryPhase {
                    node: node_name(m),
                    ramp_start_us: ls.round() as u64,
                    ramp_end_us: le.round() as u64,
                    hold_until_us: release,
                    bytes: edge_sizes[m as usize] as f64 * scale * costs.bytes_per_edge_mem,
                });
            }
        }
        env_samples.extend(memory_samples(&phases, sim.makespan_us.round() as u64));
        Ok(PlatformRun {
            events,
            env_samples,
            output,
            makespan_us: sim.makespan_us.round() as u64,
            iterations: iterations.len() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{reference_output, CostModel};
    use gpsim_graph::gen::{datagen_like, GenConfig};
    use granula_monitor::Assembler;

    fn job(algorithm: Algorithm) -> (Graph, JobConfig) {
        let g = datagen_like(&GenConfig::datagen(2_000, 11));
        let mut costs = CostModel::powergraph_like();
        costs.worker_threads = 16;
        let cfg = JobConfig::new("test-job", "dg-test", algorithm, 8, costs);
        (g, cfg)
    }

    #[test]
    fn all_algorithms_validate() {
        for algorithm in [
            Algorithm::Bfs { source: 3 },
            Algorithm::PageRank { iterations: 4 },
            Algorithm::Wcc,
            Algorithm::Cdlp { iterations: 3 },
        ] {
            let (g, cfg) = job(algorithm);
            let run = GraphMatPlatform::default().run(&g, &cfg).unwrap();
            assert!(
                run.output.matches(&reference_output(&g, algorithm)),
                "{algorithm:?}"
            );
        }
    }

    #[test]
    fn events_assemble_into_a_clean_tree() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = GraphMatPlatform::default().run(&g, &cfg).unwrap();
        let outcome = Assembler::new().assemble(run.events);
        assert!(
            outcome.warnings.is_empty(),
            "{:?}",
            &outcome.warnings[..3.min(outcome.warnings.len())]
        );
        let tree = outcome.tree;
        let root = tree.root().unwrap();
        assert_eq!(tree.op(root).mission.kind, "GraphMatJob");
        for m in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            assert!(tree.child_by_mission(root, m).is_some(), "missing {m}");
        }
        // Conversion ops present under LocalLoad.
        assert_eq!(tree.by_mission_kind("ConvertFormat").count(), 8);
    }

    #[test]
    fn load_is_parallel_across_machines() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let cfg = cfg.with_scale(1_000.0);
        let run = GraphMatPlatform::default().run(&g, &cfg).unwrap();
        let tree = Assembler::new().assemble(run.events).tree;
        // All 8 LocalLoads overlap in time (parallel, unlike PowerGraph).
        let loads: Vec<(u64, u64)> = tree
            .by_mission_kind("LocalLoad")
            .map(|o| (o.start_us().unwrap(), o.end_us().unwrap()))
            .collect();
        assert_eq!(loads.len(), 8);
        let max_start = loads.iter().map(|&(s, _)| s).max().unwrap();
        let min_end = loads.iter().map(|&(_, e)| e).min().unwrap();
        assert!(max_start < min_end, "loads should overlap: {loads:?}");
    }
}
