//! The GraphX-like platform driver.
//!
//! Dataflow graph processing in the style of GraphX on Spark: the graph is
//! a pair of hash-partitioned RDDs, every Pregel iteration lowers to a
//! join/aggregate stage pair with a shuffle between them, and the driver
//! schedules every stage. The driver:
//!
//! 1. hash-partitions the vertices over the executors (edge-cut);
//! 2. executes the vertex program with the [`crate::pregel`] engine — the
//!    GraphX Pregel API is BSP, so the per-superstep counters map directly
//!    onto map/shuffle/reduce stages;
//! 3. compiles the job into an activity DAG — driver + executor launches,
//!    HDFS partition reads followed by a `partitionBy` shuffle, per
//!    iteration a driver scheduling delay, map-side stage, all-to-all
//!    shuffle, and reduce-side stage, then offload and context stop;
//! 4. simulates the DAG and emits Granula instrumentation events plus
//!    environment samples.
//!
//! Fault recovery is *lineage recomputation*: no checkpoints and no global
//! restart — the driver reschedules the lost tasks and recomputes only the
//! doomed lineage cut (the lost partition's chain of stages, re-read from
//! the input split, fed by the shuffle outputs surviving on its peers),
//! then re-runs the interrupted stage pair. This contrasts with Giraph's
//! checkpoint/replay and PowerGraph's fail-stop restart.

use gpsim_cluster::{
    ActivityGraph, ActivityId, ActivityKind, ClusterSpec, FaultPlan, FileSystem, NodeCrash, NodeId,
    SimError, Simulation,
};
use gpsim_graph::{EdgeCutPartition, Graph};
use granula_model::{Actor, InfoValue, Mission};

use crate::common::{
    memory_samples, trace_to_samples, Algorithm, AlgorithmOutput, JobConfig, MemoryPhase,
    PlatformRun,
};
use crate::ops::{emit_events, OpSpec};
use crate::pregel::{self, SuperstepStats};

/// GraphX-like platform: configuration knobs beyond the job's cost model.
#[derive(Debug, Clone)]
pub struct GraphXPlatform {
    /// Spark context + driver JVM startup latency, µs.
    pub driver_startup_us: f64,
    /// Per-executor container + JVM launch latency, µs.
    pub executor_launch_us: f64,
    /// Driver task-scheduling latency per stage, µs.
    pub task_sched_us: f64,
    /// HDFS-like storage.
    pub fs: FileSystem,
    /// Iteration cap for convergent algorithms.
    pub max_iterations: u32,
    /// Time for the driver to notice a lost executor (missed heartbeats),
    /// µs.
    pub failure_detect_us: f64,
}

impl Default for GraphXPlatform {
    fn default() -> Self {
        GraphXPlatform {
            driver_startup_us: 3.0e6,
            executor_launch_us: 2.5e6,
            task_sched_us: 120_000.0,
            fs: FileSystem::hdfs(),
            max_iterations: 10_000,
            failure_detect_us: 2.0e6,
        }
    }
}

fn run_program(
    g: &Graph,
    part: &EdgeCutPartition,
    algorithm: Algorithm,
    max_iterations: u32,
) -> (AlgorithmOutput, Vec<SuperstepStats>) {
    match algorithm {
        Algorithm::Bfs { source } => {
            let out = pregel::run_bfs(g, part, source, max_iterations);
            (AlgorithmOutput::Levels(out.values), out.supersteps)
        }
        Algorithm::PageRank { iterations } => {
            let out = pregel::run(
                g,
                part,
                &pregel::PageRankProgram {
                    iterations,
                    damping: 0.85,
                },
                max_iterations,
            );
            (AlgorithmOutput::Ranks(out.values), out.supersteps)
        }
        Algorithm::Wcc => {
            let out = pregel::run(g, part, &pregel::WccProgram, max_iterations);
            (AlgorithmOutput::Labels(out.values), out.supersteps)
        }
        Algorithm::Sssp { source } => {
            let out = pregel::run(g, part, &pregel::SsspProgram { source }, max_iterations);
            (AlgorithmOutput::Distances(out.values), out.supersteps)
        }
        Algorithm::Cdlp { iterations } => {
            let out = pregel::run(g, part, &pregel::CdlpProgram { iterations }, max_iterations);
            (AlgorithmOutput::Labels(out.values), out.supersteps)
        }
    }
}

impl GraphXPlatform {
    /// Runs a job on a DAS5-like cluster with `cfg.nodes` nodes.
    pub fn run(&self, g: &Graph, cfg: &JobConfig) -> Result<PlatformRun, SimError> {
        self.run_on(g, cfg, &ClusterSpec::das5(cfg.nodes))
    }

    /// Runs a job on a DAS5-like cluster under an injected fault plan.
    pub fn run_with_faults(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        plan: &FaultPlan,
    ) -> Result<PlatformRun, SimError> {
        self.run_on_with_faults(g, cfg, &ClusterSpec::das5(cfg.nodes), plan)
    }

    /// Runs a job on an explicit cluster (must have at least `cfg.nodes`
    /// nodes).
    pub fn run_on(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        cluster: &ClusterSpec,
    ) -> Result<PlatformRun, SimError> {
        self.run_on_with_faults(g, cfg, cluster, &FaultPlan::default())
    }

    /// Runs a job on an explicit cluster under an injected fault plan.
    ///
    /// Slowdown windows pass straight through to the simulator. A node
    /// crash triggers Spark's lineage recovery: the driver detects the
    /// lost executor, relaunches it and reschedules the lost tasks, and
    /// the lost partition's lineage is recomputed — its input split
    /// re-read, its stage chain re-executed against the shuffle outputs
    /// surviving on the healthy executors — before the interrupted stage
    /// pair re-runs. The recovery is emitted as first-class Granula
    /// operations (`FailedStage`, `Recover` with `DetectFailure` /
    /// `Reschedule` / `Recompute` children) so the archive can decompose
    /// the slowdown.
    ///
    /// Only the earliest crash in the plan is modeled; later crashes are
    /// dropped from the executed plan (single-failure model, as for the
    /// other platforms).
    pub fn run_on_with_faults(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        cluster: &ClusterSpec,
        plan: &FaultPlan,
    ) -> Result<PlatformRun, SimError> {
        assert!(
            cluster.len() >= cfg.nodes as usize && cfg.nodes > 0,
            "cluster too small for {} executors",
            cfg.nodes
        );
        let k = cfg.nodes;
        let costs = &cfg.costs;
        let scale = cfg.scale_factor;
        let part = EdgeCutPartition::hash(g.num_vertices(), k);
        let (output, iterations) = {
            let _span = granula_trace::span!("platform", "graphx.vertex_program {}", cfg.job_id);
            run_program(g, &part, cfg.algorithm, self.max_iterations)
        };

        // Per-executor data sizes (logical counts; scaled at use sites).
        let mut verts = vec![0u64; k as usize];
        let mut edges = vec![0u64; k as usize];
        for v in 0..g.num_vertices() {
            let w = part.owner_of(v) as usize;
            verts[w] += 1;
            edges[w] += g.out_degree(v) as u64;
        }
        let input_bytes: Vec<f64> = (0..k as usize)
            .map(|w| (verts[w] as f64 * 10.0 + edges[w] as f64 * costs.bytes_per_edge_in) * scale)
            .collect();

        let crash = plan
            .crashes
            .iter()
            .min_by(|a, b| a.at_us.total_cmp(&b.at_us))
            .cloned()
            .filter(|_| !iterations.is_empty());

        let Some(crash) = crash else {
            // Healthy (possibly degraded) layout: no recovery structure.
            let mut b = Build::new(
                self,
                cfg,
                cluster,
                &iterations,
                &verts,
                &edges,
                &input_bytes,
            );
            {
                let _span = granula_trace::span!("platform", "graphx.build_dag {}", cfg.job_id);
                let started = b.startup();
                let mut prev = b.load(started);
                b.process_graph();
                for ii in 0..iterations.len() {
                    prev = b.iteration(ii, prev, "job/proc/", true);
                }
                let offloaded = b.offload(prev);
                b.cleanup(offloaded);
            }
            return b.finish(plan, output);
        };

        // Phase 1: probe run — the same job under the plan's slowdowns only
        // — locates the crash inside the stage schedule.
        let probe_span = granula_trace::span!("platform", "graphx.probe {}", cfg.job_id);
        let slow_plan = FaultPlan {
            crashes: Vec::new(),
            slowdowns: plan.slowdowns.clone(),
        };
        let mut probe = Build::new(
            self,
            cfg,
            cluster,
            &iterations,
            &verts,
            &edges,
            &input_bytes,
        );
        let started = probe.startup();
        let mut prev = probe.load(started);
        probe.process_graph();
        for ii in 0..iterations.len() {
            prev = probe.iteration(ii, prev, "job/proc/", true);
        }
        let offloaded = probe.offload(prev);
        probe.cleanup(offloaded);
        let probe_sim = Simulation::new(cluster.clone()).run_with_faults(&probe.dag, &slow_plan)?;

        let (proc_start, proc_end) = probe_sim
            .span_of_tag(&probe.dag, "job/proc/")
            .expect("jobs run at least one iteration");
        let t_clamped = crash.at_us.clamp(proc_start + 1.0, proc_end - 1.0);
        let mut i_idx = iterations.len() - 1;
        for (ii, it) in iterations.iter().enumerate() {
            let (_, end) = probe_sim
                .span_of_tag(&probe.dag, &format!("job/proc/it{}/", it.superstep))
                .expect("iteration was simulated");
            if t_clamped < end {
                i_idx = ii;
                break;
            }
        }
        let i_star = iterations[i_idx].superstep;
        let (it_start, it_end) = probe_sim
            .span_of_tag(&probe.dag, &format!("job/proc/it{i_star}/"))
            .expect("iteration was simulated");
        let t_eff = t_clamped.clamp(it_start + 1.0, (it_end - 1.0).max(it_start + 1.0));
        // Only the interrupted stage pair's partial work is wasted: the
        // healthy executors keep their cached partitions and shuffle files,
        // and the lost partition is rebuilt from lineage, not re-run
        // globally.
        let wasted_us = t_eff - it_start;
        drop(probe_span);

        // Phase 2: the recovery layout. Prefix (startup, load, iterations
        // before i*) is identical to the probe; the interrupted iteration
        // becomes a doomed attempt killed by the injected crash; detection,
        // rescheduling and lineage recomputation follow under
        // `job/proc/recovery/`.
        let mut b = Build::new(
            self,
            cfg,
            cluster,
            &iterations,
            &verts,
            &edges,
            &input_bytes,
        );
        let recovery_span =
            granula_trace::span!("platform", "graphx.recovery.build {}", cfg.job_id);
        let started = b.startup();
        let mut prev = b.load(started);
        b.process_graph();
        for ii in 0..i_idx {
            prev = b.iteration(ii, prev, "job/proc/", true);
        }
        b.doomed_attempt(i_idx, prev);

        let driver = b.driver_node.clone();
        let lost = crash.node;
        let lw = lost.0 as usize;
        let recover_actor = Actor::new("Driver", "0");
        let recover_key = (recover_actor.clone(), Mission::new("Recover", "0"));
        let proc_domain = b.domain("ProcessGraph");
        b.specs.push(
            OpSpec::new(
                recover_actor.clone(),
                Mission::new("Recover", "0"),
                Some(proc_domain),
                "job/proc/recovery/",
                &driver,
                "driver",
            )
            .with_info(
                "FailedNode",
                InfoValue::Text(cluster.node(lost).name.clone()),
            )
            .with_info("WastedUs", InfoValue::Int(wasted_us.round() as i64)),
        );
        // The crash anchor pins failure detection to the injected instant.
        let anchor = b.dag.add(
            ActivityKind::Delay { duration_us: t_eff },
            &[],
            "job/meta/t-crash",
        );
        let detect = b.dag.add(
            ActivityKind::Delay {
                duration_us: self.failure_detect_us,
            },
            &[anchor],
            "job/proc/recovery/detect",
        );
        b.specs.push(OpSpec::new(
            recover_actor.clone(),
            Mission::new("DetectFailure", "0"),
            Some(recover_key.clone()),
            "job/proc/recovery/detect",
            &driver,
            "driver",
        ));
        // The driver relaunches the executor and reschedules the lost
        // tasks.
        let relaunch = b.dag.add(
            ActivityKind::Delay {
                duration_us: self.executor_launch_us,
            },
            &[detect],
            "job/proc/recovery/resched/exec",
        );
        let resched = b.dag.add(
            ActivityKind::Delay {
                duration_us: self.task_sched_us * 2.0,
            },
            &[relaunch],
            "job/proc/recovery/resched/plan",
        );
        b.specs.push(OpSpec::new(
            recover_actor.clone(),
            Mission::new("Reschedule", "0"),
            Some(recover_key.clone()),
            "job/proc/recovery/resched/",
            &driver,
            "driver",
        ));
        // Lineage recomputation of the doomed cut only: the lost
        // partition's input split is re-read (the lineage root), then its
        // stage chain re-executes, fed by the shuffle outputs surviving on
        // the healthy executors.
        let mut prev_r = resched;
        for (ii, it) in iterations.iter().enumerate().take(i_idx) {
            let t = it.superstep;
            let rtag = format!("job/proc/recovery/recompute/it{t}/");
            let mut deps = vec![prev_r];
            if ii == 0 {
                let reread = self.fs.read(
                    cluster,
                    &mut b.dag,
                    lost,
                    input_bytes[lw],
                    &[prev_r],
                    &format!("{rtag}split/"),
                );
                deps.push(b.dag.add(
                    ActivityKind::Compute {
                        node: lost,
                        work_core_us: input_bytes[lw] * costs.parse_cpu_us_per_byte
                            + edges[lw] as f64 * scale * costs.build_cpu_us_per_edge,
                        parallelism: costs.worker_threads,
                    },
                    &[reread],
                    format!("{rtag}rebuild"),
                ));
            } else {
                for (a, row) in iterations[ii - 1].remote_messages.iter().enumerate() {
                    if a == lw || row[lw] == 0 {
                        continue;
                    }
                    deps.push(b.dag.add(
                        ActivityKind::Transfer {
                            src: NodeId(a as u16),
                            dst: lost,
                            bytes: row[lw] as f64 * costs.bytes_per_message * scale,
                        },
                        &[prev_r],
                        format!("{rtag}fetch/a{a}"),
                    ));
                }
            }
            let stats = &it.per_worker[lw];
            let work = (stats.edges_scanned as f64 * costs.compute_us_per_edge
                + stats.active_vertices as f64 * costs.compute_us_per_vertex
                + (stats.messages_sent + stats.messages_received) as f64
                    * costs.serialize_us_per_message)
                * scale;
            prev_r = b.dag.add(
                ActivityKind::Compute {
                    node: lost,
                    work_core_us: work.max(400.0),
                    parallelism: costs.worker_threads,
                },
                &deps,
                format!("{rtag}tasks"),
            );
            b.specs.push(OpSpec::new(
                recover_actor.clone(),
                Mission::new("Recompute", t.to_string()),
                Some(recover_key.clone()),
                rtag,
                &driver,
                "driver",
            ));
        }
        // The interrupted stage pair never committed: it re-runs in full,
        // covered by the final Recompute op.
        prev = b.iteration(i_idx, prev_r, "job/proc/recovery/recompute/", false);
        b.specs.push(OpSpec::new(
            recover_actor.clone(),
            Mission::new("Recompute", i_star.to_string()),
            Some(recover_key.clone()),
            format!("job/proc/recovery/recompute/it{i_star}/"),
            &driver,
            "driver",
        ));
        for ii in i_idx + 1..iterations.len() {
            prev = b.iteration(ii, prev, "job/proc/", true);
        }
        let offloaded = b.offload(prev);
        b.cleanup(offloaded);
        drop(recovery_span);

        let restart_after = crash.restart_after_us.unwrap_or(self.failure_detect_us);
        let exec_plan = FaultPlan {
            crashes: vec![NodeCrash {
                node: crash.node,
                at_us: t_eff,
                restart_after_us: Some(restart_after),
            }],
            slowdowns: plan.slowdowns.clone(),
        };
        b.finish(&exec_plan, output)
    }
}

/// Incremental DAG + spec builder shared by the healthy and the
/// fault-recovery job layouts.
struct Build<'a> {
    p: &'a GraphXPlatform,
    cfg: &'a JobConfig,
    cluster: &'a ClusterSpec,
    iterations: &'a [SuperstepStats],
    verts: &'a [u64],
    edges: &'a [u64],
    input_bytes: &'a [f64],
    dag: ActivityGraph,
    specs: Vec<OpSpec>,
    job_actor: Actor,
    job_key: (Actor, Mission),
    driver_node: String,
}

impl<'a> Build<'a> {
    fn new(
        p: &'a GraphXPlatform,
        cfg: &'a JobConfig,
        cluster: &'a ClusterSpec,
        iterations: &'a [SuperstepStats],
        verts: &'a [u64],
        edges: &'a [u64],
        input_bytes: &'a [f64],
    ) -> Self {
        let job_actor = Actor::new("Job", "0");
        let job_mission = Mission::new("GraphXJob", "0");
        let job_key = (job_actor.clone(), job_mission.clone());
        let driver_node = cluster.node(NodeId(0)).name.clone();
        let specs: Vec<OpSpec> = vec![OpSpec::new(
            job_actor.clone(),
            job_mission,
            None,
            "job/",
            &driver_node,
            "driver",
        )
        .with_info("Platform", InfoValue::Text("GraphX".into()))
        .with_info("Algorithm", InfoValue::Text(cfg.algorithm.name().into()))
        .with_info("Dataset", InfoValue::Text(cfg.dataset.clone()))
        .with_info("Executors", InfoValue::Int(cfg.nodes as i64))];
        Build {
            p,
            cfg,
            cluster,
            iterations,
            verts,
            edges,
            input_bytes,
            dag: ActivityGraph::new(),
            specs,
            job_actor,
            job_key,
            driver_node,
        }
    }

    fn exec_node(&self, w: u16) -> String {
        self.cluster.node(NodeId(w)).name.clone()
    }

    fn domain(&self, mission: &str) -> (Actor, Mission) {
        (self.job_actor.clone(), Mission::new(mission, "0"))
    }

    // -------------------------------------------------- Startup (L1)
    fn startup(&mut self) -> ActivityId {
        let k = self.cfg.nodes;
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("Startup", "0"),
            Some(self.job_key.clone()),
            "job/startup/",
            &self.driver_node,
            "driver",
        ));
        let driver = self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.driver_startup_us,
            },
            &[],
            "job/startup/driver",
        );
        self.specs.push(OpSpec::new(
            Actor::new("Driver", "0"),
            Mission::new("LaunchDriver", "0"),
            Some(self.domain("Startup")),
            "job/startup/driver",
            &self.driver_node,
            "driver",
        ));
        self.specs.push(OpSpec::new(
            Actor::new("Driver", "0"),
            Mission::new("LaunchExecutors", "0"),
            Some(self.domain("Startup")),
            "job/startup/exec/",
            &self.driver_node,
            "driver",
        ));
        let mut ready: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let launch = self.dag.add(
                ActivityKind::Delay {
                    duration_us: self.p.executor_launch_us * (1.0 + 0.08 * w as f64),
                },
                &[driver],
                format!("job/startup/exec/w{w}"),
            );
            self.specs.push(OpSpec::new(
                Actor::new("Executor", w.to_string()),
                Mission::new("LocalStartup", "0"),
                Some((
                    Actor::new("Driver", "0"),
                    Mission::new("LaunchExecutors", "0"),
                )),
                format!("job/startup/exec/w{w}"),
                self.exec_node(w),
                format!("executor-{w}"),
            ));
            ready.push(launch);
        }
        self.dag.barrier(&ready, "job/startup/all-ready")
    }

    // ------------------------------------------------ LoadGraph (L1)
    fn load(&mut self, started: ActivityId) -> ActivityId {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("LoadGraph", "0"),
            Some(self.job_key.clone()),
            "job/load/",
            &self.driver_node,
            "driver",
        ));
        // Each executor reads and parses its input split...
        let mut parsed: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let node = NodeId(w);
            let tagp = format!("job/load/w{w}/");
            self.specs.push(
                OpSpec::new(
                    Actor::new("Executor", w.to_string()),
                    Mission::new("LocalLoad", "0"),
                    Some(self.domain("LoadGraph")),
                    tagp.clone(),
                    self.exec_node(w),
                    format!("executor-{w}"),
                )
                .with_info(
                    "InputBytes",
                    InfoValue::Int(self.input_bytes[w as usize].round() as i64),
                ),
            );
            let read = self.p.fs.read(
                self.cluster,
                &mut self.dag,
                node,
                self.input_bytes[w as usize],
                &[started],
                &format!("{tagp}hdfs/"),
            );
            self.specs.push(OpSpec::new(
                Actor::new("Executor", w.to_string()),
                Mission::new("ReadPartition", "0"),
                Some((
                    Actor::new("Executor", w.to_string()),
                    Mission::new("LocalLoad", "0"),
                )),
                format!("{tagp}hdfs/"),
                self.exec_node(w),
                format!("executor-{w}"),
            ));
            parsed.push(self.dag.add(
                ActivityKind::Compute {
                    node,
                    work_core_us: self.input_bytes[w as usize] * costs.parse_cpu_us_per_byte,
                    parallelism: costs.worker_threads,
                },
                &[read],
                format!("{tagp}parse"),
            ));
        }
        // ...then `partitionBy` shuffles the edge RDD into its hash layout:
        // roughly (k-1)/k of every split crosses the network.
        let mut shuffled: Vec<Vec<ActivityId>> = vec![Vec::new(); k as usize];
        for a in 0..k {
            for bdst in 0..k {
                if a == bdst {
                    continue;
                }
                shuffled[bdst as usize].push(self.dag.add(
                    ActivityKind::Transfer {
                        src: NodeId(a),
                        dst: NodeId(bdst),
                        bytes: self.input_bytes[a as usize] / k as f64,
                    },
                    &[parsed[a as usize]],
                    format!("job/load/shuffle/a{a}b{bdst}"),
                ));
            }
        }
        self.specs.push(OpSpec::new(
            Actor::new("Driver", "0"),
            Mission::new("PartitionBy", "0"),
            Some(self.domain("LoadGraph")),
            "job/load/shuffle/",
            &self.driver_node,
            "driver",
        ));
        // ...and each executor builds its edge partition.
        let mut built: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let scale = self.cfg.scale_factor;
            let mut deps = shuffled[w as usize].clone();
            deps.push(parsed[w as usize]);
            let build = self.dag.add(
                ActivityKind::Compute {
                    node: NodeId(w),
                    work_core_us: self.edges[w as usize] as f64
                        * scale
                        * costs.build_cpu_us_per_edge,
                    parallelism: costs.worker_threads,
                },
                &deps,
                format!("job/load/w{w}/build"),
            );
            self.specs.push(OpSpec::new(
                Actor::new("Executor", w.to_string()),
                Mission::new("BuildPartition", "0"),
                Some((
                    Actor::new("Executor", w.to_string()),
                    Mission::new("LocalLoad", "0"),
                )),
                format!("job/load/w{w}/build"),
                self.exec_node(w),
                format!("executor-{w}"),
            ));
            built.push(build);
        }
        self.dag.barrier(&built, "job/load/all-loaded")
    }

    // ---------------------------------------------- ProcessGraph (L1)
    fn process_graph(&mut self) {
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("ProcessGraph", "0"),
            Some(self.job_key.clone()),
            "job/proc/",
            &self.driver_node,
            "driver",
        ));
    }

    /// One Pregel iteration lowered to dataflow: driver scheduling, the
    /// map-side stage (join + message generation), the all-to-all shuffle,
    /// and the reduce-side stage (message aggregation + vertex update).
    /// `prefix` places the activities; `with_specs` controls whether the
    /// iteration emits its own Granula operations (recomputations are
    /// covered by a single `Recompute` op pushed by the caller).
    fn iteration(
        &mut self,
        ii: usize,
        prev_barrier: ActivityId,
        prefix: &str,
        with_specs: bool,
    ) -> ActivityId {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let it = &self.iterations[ii];
        let t = it.superstep;
        let it_tag = format!("{prefix}it{t}/");
        if with_specs {
            self.specs.push(
                OpSpec::new(
                    self.job_actor.clone(),
                    Mission::new("Iteration", t.to_string()),
                    Some(self.domain("ProcessGraph")),
                    it_tag.clone(),
                    &self.driver_node,
                    "driver",
                )
                .with_info(
                    "ActiveVertices",
                    InfoValue::Int((it.total_active() as f64 * scale).round() as i64),
                )
                .with_info(
                    "ShuffleRecords",
                    InfoValue::Int((it.total_messages() as f64 * scale).round() as i64),
                ),
            );
        }
        let iter_parent = (
            self.job_actor.clone(),
            Mission::new("Iteration", t.to_string()),
        );
        // The driver plans the stage pair's tasks before executors start.
        let sched = self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.task_sched_us,
            },
            &[prev_barrier],
            format!("{it_tag}sched"),
        );
        if with_specs {
            self.specs.push(OpSpec::new(
                Actor::new("Driver", "0"),
                Mission::new("ScheduleTasks", t.to_string()),
                Some(iter_parent.clone()),
                format!("{it_tag}sched"),
                &self.driver_node,
                "driver",
            ));
        }
        // Map-side stage: join vertex attributes onto edges and emit
        // messages (shuffle write).
        let mut maps: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let stats = &it.per_worker[w as usize];
            let work = (stats.edges_scanned as f64 * costs.compute_us_per_edge
                + stats.messages_sent as f64 * costs.serialize_us_per_message)
                * scale;
            let map = self.dag.add(
                ActivityKind::Compute {
                    node: NodeId(w),
                    work_core_us: work.max(500.0),
                    parallelism: costs.worker_threads,
                },
                &[sched],
                format!("{it_tag}w{w}/map"),
            );
            if with_specs {
                self.specs.push(
                    OpSpec::new(
                        Actor::new("Executor", w.to_string()),
                        Mission::new("MapStage", t.to_string()),
                        Some(iter_parent.clone()),
                        format!("{it_tag}w{w}/map"),
                        self.exec_node(w),
                        format!("executor-{w}"),
                    )
                    .with_info(
                        "EdgesScanned",
                        InfoValue::Int((stats.edges_scanned as f64 * scale).round() as i64),
                    ),
                );
            }
            maps.push(map);
        }
        // Shuffle: cross-executor message blocks.
        let mut fetches: Vec<Vec<ActivityId>> = vec![Vec::new(); k as usize];
        let mut any_shuffle = false;
        for (a, row) in it.remote_messages.iter().enumerate() {
            for (bdst, &count) in row.iter().enumerate() {
                if a == bdst || count == 0 {
                    continue;
                }
                any_shuffle = true;
                fetches[bdst].push(self.dag.add(
                    ActivityKind::Transfer {
                        src: NodeId(a as u16),
                        dst: NodeId(bdst as u16),
                        bytes: count as f64 * costs.bytes_per_message * scale,
                    },
                    &[maps[a]],
                    format!("{it_tag}shuffle/a{a}b{bdst}"),
                ));
            }
        }
        if with_specs && any_shuffle {
            self.specs.push(OpSpec::new(
                Actor::new("Driver", "0"),
                Mission::new("Shuffle", t.to_string()),
                Some(iter_parent.clone()),
                format!("{it_tag}shuffle/"),
                &self.driver_node,
                "driver",
            ));
        }
        // Reduce-side stage: aggregate fetched messages, update vertices.
        let mut reduces: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let stats = &it.per_worker[w as usize];
            let work = (stats.active_vertices as f64 * costs.compute_us_per_vertex
                + stats.messages_received as f64 * costs.serialize_us_per_message)
                * scale;
            let mut deps = fetches[w as usize].clone();
            deps.push(maps[w as usize]);
            let reduce = self.dag.add(
                ActivityKind::Compute {
                    node: NodeId(w),
                    work_core_us: work.max(500.0),
                    parallelism: costs.worker_threads,
                },
                &deps,
                format!("{it_tag}w{w}/reduce"),
            );
            if with_specs {
                self.specs.push(
                    OpSpec::new(
                        Actor::new("Executor", w.to_string()),
                        Mission::new("ReduceStage", t.to_string()),
                        Some(iter_parent.clone()),
                        format!("{it_tag}w{w}/reduce"),
                        self.exec_node(w),
                        format!("executor-{w}"),
                    )
                    .with_info(
                        "ActiveVertices",
                        InfoValue::Int((stats.active_vertices as f64 * scale).round() as i64),
                    ),
                );
            }
            reduces.push(reduce);
        }
        self.dag.barrier(&reduces, format!("{it_tag}done"))
    }

    /// The attempt at iteration `ii` that the crash interrupts: scheduling
    /// and map-side tasks, no shuffle commit — the failure means the stage
    /// pair never completes, and recovery (not this attempt) gates further
    /// work.
    fn doomed_attempt(&mut self, ii: usize, prev_barrier: ActivityId) {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let it = &self.iterations[ii];
        let t = it.superstep;
        let tag = format!("job/proc/it{t}/");
        self.specs.push(OpSpec::new(
            Actor::new("Driver", "0"),
            Mission::new("FailedStage", t.to_string()),
            Some(self.domain("ProcessGraph")),
            tag.clone(),
            &self.driver_node,
            "driver",
        ));
        let sched = self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.task_sched_us,
            },
            &[prev_barrier],
            format!("{tag}try/sched"),
        );
        for w in 0..k {
            let stats = &it.per_worker[w as usize];
            let work = (stats.edges_scanned as f64 * costs.compute_us_per_edge
                + stats.messages_sent as f64 * costs.serialize_us_per_message)
                * scale;
            self.dag.add(
                ActivityKind::Compute {
                    node: NodeId(w),
                    work_core_us: work.max(500.0),
                    parallelism: costs.worker_threads,
                },
                &[sched],
                format!("{tag}try/w{w}/map"),
            );
        }
    }

    // --------------------------------------------- OffloadGraph (L1)
    fn offload(&mut self, prev_barrier: ActivityId) -> ActivityId {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("OffloadGraph", "0"),
            Some(self.job_key.clone()),
            "job/offload/",
            &self.driver_node,
            "driver",
        ));
        let mut offloads: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let tagp = format!("job/offload/w{w}/");
            let bytes = self.verts[w as usize] as f64 * costs.bytes_per_vertex_out * scale;
            let write = self.p.fs.write(
                self.cluster,
                &mut self.dag,
                NodeId(w),
                bytes,
                &[prev_barrier],
                &format!("{tagp}hdfs/"),
            );
            self.specs.push(
                OpSpec::new(
                    Actor::new("Executor", w.to_string()),
                    Mission::new("LocalOffload", "0"),
                    Some(self.domain("OffloadGraph")),
                    tagp.clone(),
                    self.exec_node(w),
                    format!("executor-{w}"),
                )
                .with_info("OutputBytes", InfoValue::Int(bytes.round() as i64)),
            );
            offloads.push(write);
        }
        self.dag.barrier(&offloads, "job/offload/all-done")
    }

    // -------------------------------------------------- Cleanup (L1)
    fn cleanup(&mut self, all_offloaded: ActivityId) {
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("Cleanup", "0"),
            Some(self.job_key.clone()),
            "job/cleanup/",
            &self.driver_node,
            "driver",
        ));
        self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.driver_startup_us * 0.4,
            },
            &[all_offloaded],
            "job/cleanup/stop",
        );
        self.specs.push(OpSpec::new(
            Actor::new("Driver", "0"),
            Mission::new("StopContext", "0"),
            Some(self.domain("Cleanup")),
            "job/cleanup/stop",
            &self.driver_node,
            "driver",
        ));
    }

    // ------------------------------------------------------- Simulate
    fn finish(self, plan: &FaultPlan, output: AlgorithmOutput) -> Result<PlatformRun, SimError> {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let sim = {
            let _span = granula_trace::span!("platform", "graphx.simulate {}", self.cfg.job_id);
            Simulation::new(self.cluster.clone()).run_with_faults(&self.dag, plan)?
        };
        let events = emit_events(&self.specs, &self.dag, &sim);
        let mut env_samples = trace_to_samples(&sim.trace);
        // Memory view: each executor's cached RDD partitions become
        // resident over its load interval and live until the context stops.
        let release = sim
            .span_of_tag(&self.dag, "job/cleanup/")
            .map(|(s, _)| s.round() as u64)
            .unwrap_or(sim.makespan_us.round() as u64);
        let mut phases = Vec::with_capacity(k as usize);
        for w in 0..k {
            if let Some((ls, le)) = sim.span_of_tag(&self.dag, &format!("job/load/w{w}/")) {
                phases.push(MemoryPhase {
                    node: self.exec_node(w),
                    ramp_start_us: ls.round() as u64,
                    ramp_end_us: le.round() as u64,
                    hold_until_us: release,
                    bytes: self.edges[w as usize] as f64 * scale * costs.bytes_per_edge_mem,
                });
            }
        }
        env_samples.extend(memory_samples(&phases, sim.makespan_us.round() as u64));
        Ok(PlatformRun {
            events,
            env_samples,
            output,
            makespan_us: sim.makespan_us.round() as u64,
            iterations: self.iterations.len() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{reference_output, CostModel};
    use gpsim_graph::gen::{datagen_like, GenConfig};
    use granula_monitor::Assembler;

    fn job(algorithm: Algorithm) -> (Graph, JobConfig) {
        let g = datagen_like(&GenConfig::datagen(2_000, 11));
        let cfg = JobConfig::new(
            "test-job",
            "dg-test",
            algorithm,
            8,
            CostModel::giraph_like(),
        );
        (g, cfg)
    }

    #[test]
    fn all_algorithms_validate() {
        for algorithm in [
            Algorithm::Bfs { source: 3 },
            Algorithm::PageRank { iterations: 4 },
            Algorithm::Wcc,
            Algorithm::Sssp { source: 3 },
            Algorithm::Cdlp { iterations: 3 },
        ] {
            let (g, cfg) = job(algorithm);
            let run = GraphXPlatform::default().run(&g, &cfg).unwrap();
            assert!(
                run.output.matches(&reference_output(&g, algorithm)),
                "{algorithm:?}"
            );
        }
    }

    #[test]
    fn events_assemble_into_a_clean_tree() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = GraphXPlatform::default().run(&g, &cfg).unwrap();
        let outcome = Assembler::new().assemble(run.events);
        assert!(
            outcome.warnings.is_empty(),
            "{:?}",
            &outcome.warnings[..5.min(outcome.warnings.len())]
        );
        let tree = outcome.tree;
        let root = tree.root().unwrap();
        assert_eq!(tree.op(root).mission.kind, "GraphXJob");
        for m in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            assert!(tree.child_by_mission(root, m).is_some(), "missing {m}");
        }
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        let n_it = tree
            .children(proc_)
            .filter(|o| o.mission.kind == "Iteration")
            .count();
        assert_eq!(n_it as u32, run.iterations);
        // Every iteration is a map/reduce stage pair on every executor.
        assert_eq!(
            tree.by_mission_kind("MapStage").count(),
            8 * run.iterations as usize
        );
        assert_eq!(
            tree.by_mission_kind("ReduceStage").count(),
            8 * run.iterations as usize
        );
    }

    #[test]
    fn empty_fault_plan_is_identical_to_plain_run() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let p = GraphXPlatform::default();
        let plain = p.run(&g, &cfg).unwrap();
        let faultless = p.run_with_faults(&g, &cfg, &FaultPlan::new()).unwrap();
        assert_eq!(plain.makespan_us, faultless.makespan_us);
        assert_eq!(plain.events, faultless.events);
    }

    #[test]
    fn crash_recovery_recomputes_only_the_lost_lineage() {
        let (g, cfg) = job(Algorithm::PageRank { iterations: 6 });
        let p = GraphXPlatform::default();
        let healthy = p.run(&g, &cfg).unwrap();
        let plan = FaultPlan::new().crash(NodeId(2), healthy.makespan_us as f64 * 0.6);
        let faulty = p.run_with_faults(&g, &cfg, &plan).unwrap();
        assert!(
            faulty.makespan_us > healthy.makespan_us,
            "recovery must cost time: {} vs {}",
            faulty.makespan_us,
            healthy.makespan_us
        );
        let outcome = Assembler::new().assemble(faulty.events);
        assert!(
            outcome.warnings.is_empty(),
            "{:?}",
            &outcome.warnings[..5.min(outcome.warnings.len())]
        );
        let tree = outcome.tree;
        let root = tree.root().unwrap();
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        assert!(tree
            .children(proc_)
            .any(|o| o.mission.kind == "FailedStage"));
        let recover = tree
            .child_by_mission(proc_, "Recover")
            .expect("Recover operation");
        for m in ["DetectFailure", "Reschedule"] {
            assert!(tree.child_by_mission(recover, m).is_some(), "missing {m}");
        }
        let recomputes = tree
            .children(recover)
            .filter(|o| o.mission.kind == "Recompute")
            .count();
        assert!(recomputes >= 1, "the doomed lineage cut must be recomputed");
        let rec_op = tree.op(recover);
        assert!(rec_op
            .infos
            .iter()
            .any(|i| i.name == "FailedNode" && i.value == InfoValue::Text("node302".into())));
        // No iteration is lost or duplicated: the interrupted one moves
        // from the committed sequence into the recompute set.
        let committed = tree
            .children(proc_)
            .filter(|o| o.mission.kind == "Iteration")
            .count();
        assert_eq!(committed + 1, healthy.iterations as usize);
    }

    #[test]
    fn scale_factor_stretches_runtime() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let small = GraphXPlatform::default().run(&g, &cfg).unwrap();
        let big = GraphXPlatform::default()
            .run(&g, &cfg.clone().with_scale(50.0))
            .unwrap();
        assert!(big.makespan_us > small.makespan_us);
    }
}
