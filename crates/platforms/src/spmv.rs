//! A generalized SpMV engine over a 1D block partitioning — the GraphMat
//! execution model.
//!
//! GraphMat maps vertex programs to generalized sparse-matrix ×
//! sparse-vector products: per iteration, every active vertex *sends* a
//! message along its out-edges (a semiring multiply), messages targeting
//! the same vertex are *combined* (the semiring add), and an *apply* step
//! folds the combined message into the vertex state. Vertices live in
//! contiguous blocks per machine (the matrix's row blocks); messages whose
//! target lives in another block cross the network in an all-to-all
//! exchange.
//!
//! As with the other engines, execution is snapshot-synchronous and
//! per-machine counters (edges processed, messages exchanged) are recorded
//! for the cost model.

use gpsim_graph::{BlockPartition, Graph, VertexId};

pub use crate::gas::IterationMode;

/// A generalized SpMV vertex program.
pub trait SpmvProgram {
    /// Per-vertex state.
    type Value: Clone + PartialEq;
    /// Message (semiring element).
    type Msg: Clone;

    /// Initial value of a vertex.
    fn initial_value(&self, v: VertexId, g: &Graph) -> Self::Value;

    /// Whether the vertex starts in the frontier (converge mode).
    fn initially_active(&self, v: VertexId) -> bool;

    /// Also send along in-edges (for undirected semantics such as WCC).
    fn send_both_directions(&self) -> bool {
        false
    }

    /// The semiring multiply: message emitted along one out-edge of `u`.
    fn send(&self, u: VertexId, value: &Self::Value, weight: f32) -> Option<Self::Msg>;

    /// The semiring add: combines two messages for the same target.
    fn combine(&self, a: Self::Msg, b: Self::Msg) -> Self::Msg;

    /// Folds the combined message into the state; returns `true` when the
    /// value changed (drives the frontier in converge mode).
    fn apply(
        &self,
        v: VertexId,
        value: &mut Self::Value,
        msg: Option<&Self::Msg>,
        iteration: u32,
    ) -> bool;

    /// Pre-iteration hook over a snapshot of all values (global aggregates).
    fn pre_iteration(&mut self, _iteration: u32, _values: &[Self::Value], _g: &Graph) {}
}

/// Counters of one machine in one SpMV iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineSpmv {
    /// Out-edges processed by the multiply phase on this machine.
    pub edges_processed: u64,
    /// Messages emitted by this machine.
    pub messages_sent: u64,
    /// Messages combined/applied on this machine.
    pub messages_received: u64,
    /// Vertices whose apply ran on this machine.
    pub applies: u64,
}

/// Counters of one iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmvIteration {
    /// Iteration number.
    pub iteration: u32,
    /// Per-machine counters.
    pub per_machine: Vec<MachineSpmv>,
    /// `exchange[from][to]`: messages crossing block boundaries.
    pub exchange: Vec<Vec<u64>>,
    /// Active (sending) vertices this iteration.
    pub active_vertices: u64,
}

/// Result of an SpMV execution.
#[derive(Debug, Clone)]
pub struct SpmvOutcome<V> {
    /// Final vertex values.
    pub values: Vec<V>,
    /// Per-iteration counters.
    pub iterations: Vec<SpmvIteration>,
}

/// Executes a program over the block partitioning.
pub fn run<P: SpmvProgram>(
    g: &Graph,
    part: &BlockPartition,
    program: &mut P,
    mode: IterationMode,
) -> SpmvOutcome<P::Value> {
    let n = g.num_vertices() as usize;
    let k = part.k() as usize;
    let mut values: Vec<P::Value> = (0..n as u32).map(|v| program.initial_value(v, g)).collect();

    let (max_iters, fixed) = match mode {
        IterationMode::Fixed(i) => (i, true),
        IterationMode::Converge { max } => (max, false),
    };
    let mut active: Vec<bool> = if fixed {
        vec![true; n]
    } else {
        (0..n as u32).map(|v| program.initially_active(v)).collect()
    };

    let mut stats = Vec::new();
    for iteration in 0..max_iters {
        if !fixed && !active.iter().any(|&a| a) {
            break;
        }
        program.pre_iteration(iteration, &values, g);
        let mut per_machine = vec![MachineSpmv::default(); k];
        let mut exchange = vec![vec![0u64; k]; k];
        let mut inbox: Vec<Option<P::Msg>> = vec![None; n];
        let mut active_vertices = 0u64;

        // Multiply phase: active vertices emit along their edges.
        for u in 0..n as u32 {
            if !active[u as usize] {
                continue;
            }
            active_vertices += 1;
            let src_machine = part.owner_of(u) as usize;
            let emit = |target: VertexId,
                        weight: f32,
                        per_machine: &mut Vec<MachineSpmv>,
                        exchange: &mut Vec<Vec<u64>>,
                        inbox: &mut Vec<Option<P::Msg>>| {
                if let Some(msg) = program.send(u, &values[u as usize], weight) {
                    let dst_machine = part.owner_of(target) as usize;
                    per_machine[src_machine].messages_sent += 1;
                    per_machine[dst_machine].messages_received += 1;
                    exchange[src_machine][dst_machine] += 1;
                    inbox[target as usize] = Some(match inbox[target as usize].take() {
                        None => msg,
                        Some(prev) => program.combine(prev, msg),
                    });
                }
            };
            let outs = g.neighbors(u);
            per_machine[src_machine].edges_processed += outs.len() as u64;
            for (i, &t) in outs.iter().enumerate() {
                let w = g.edge_weights(u).map_or(1.0, |ws| ws[i]);
                emit(t, w, &mut per_machine, &mut exchange, &mut inbox);
            }
            if program.send_both_directions() {
                let ins = g.in_neighbors(u);
                per_machine[src_machine].edges_processed += ins.len() as u64;
                for (i, &t) in ins.iter().enumerate() {
                    let w = g.in_edge_weights(u).map_or(1.0, |ws| ws[i]);
                    emit(t, w, &mut per_machine, &mut exchange, &mut inbox);
                }
            }
        }

        // Apply phase.
        let mut next_active = vec![false; n];
        for v in 0..n as u32 {
            let msg = inbox[v as usize].take();
            if msg.is_none() && !fixed {
                continue;
            }
            let machine = part.owner_of(v) as usize;
            per_machine[machine].applies += 1;
            let changed = program.apply(v, &mut values[v as usize], msg.as_ref(), iteration);
            if changed {
                next_active[v as usize] = true;
            }
        }
        if !fixed {
            active = next_active;
        }
        stats.push(SpmvIteration {
            iteration,
            per_machine,
            exchange,
            active_vertices,
        });
    }

    SpmvOutcome {
        values,
        iterations: stats,
    }
}

// ---------------------------------------------------------------------------
// SpMV programs (semirings) for the Graphalytics algorithms.
// ---------------------------------------------------------------------------

/// BFS over the (min, +1) semiring.
pub struct BfsSpmv {
    /// Source vertex.
    pub source: VertexId,
}

impl SpmvProgram for BfsSpmv {
    type Value = u32;
    type Msg = u32;

    fn initial_value(&self, v: VertexId, _g: &Graph) -> u32 {
        if v == self.source {
            0
        } else {
            u32::MAX
        }
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.source
    }

    fn send(&self, _u: VertexId, value: &u32, _w: f32) -> Option<u32> {
        (*value != u32::MAX).then(|| value + 1)
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, value: &mut u32, msg: Option<&u32>, _i: u32) -> bool {
        match msg {
            Some(&m) if m < *value => {
                *value = m;
                true
            }
            _ => false,
        }
    }
}

/// SSSP over the (min, +w) semiring.
pub struct SsspSpmv {
    /// Source vertex.
    pub source: VertexId,
}

impl SpmvProgram for SsspSpmv {
    type Value = f64;
    type Msg = f64;

    fn initial_value(&self, v: VertexId, _g: &Graph) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.source
    }

    fn send(&self, _u: VertexId, value: &f64, w: f32) -> Option<f64> {
        value.is_finite().then(|| value + w as f64)
    }

    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, value: &mut f64, msg: Option<&f64>, _i: u32) -> bool {
        match msg {
            Some(&m) if m < *value => {
                *value = m;
                true
            }
            _ => false,
        }
    }
}

/// WCC over the (min, id) semiring, both directions.
pub struct WccSpmv;

impl SpmvProgram for WccSpmv {
    type Value = u32;
    type Msg = u32;

    fn initial_value(&self, v: VertexId, _g: &Graph) -> u32 {
        v
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn send_both_directions(&self) -> bool {
        true
    }

    fn send(&self, _u: VertexId, value: &u32, _w: f32) -> Option<u32> {
        Some(*value)
    }

    fn combine(&self, a: u32, b: u32) -> u32 {
        a.min(b)
    }

    fn apply(&self, _v: VertexId, value: &mut u32, msg: Option<&u32>, _i: u32) -> bool {
        match msg {
            Some(&m) if m < *value => {
                *value = m;
                true
            }
            _ => false,
        }
    }
}

/// PageRank over the (+, ×) semiring with dangling redistribution.
pub struct PageRankSpmv {
    /// Damping factor.
    pub damping: f64,
    dangling: f64,
    out_degrees: Vec<u32>,
}

impl PageRankSpmv {
    /// Creates the program for a graph (degrees are captured up front, as
    /// GraphMat stores them with the matrix).
    pub fn new(g: &Graph, damping: f64) -> Self {
        PageRankSpmv {
            damping,
            dangling: 0.0,
            out_degrees: (0..g.num_vertices()).map(|v| g.out_degree(v)).collect(),
        }
    }
}

impl SpmvProgram for PageRankSpmv {
    type Value = f64;
    type Msg = f64;

    fn initial_value(&self, _v: VertexId, g: &Graph) -> f64 {
        1.0 / g.num_vertices() as f64
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn send(&self, u: VertexId, value: &f64, _w: f32) -> Option<f64> {
        let deg = self.out_degrees[u as usize];
        (deg > 0).then(|| value / deg as f64)
    }

    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }

    fn apply(&self, _v: VertexId, value: &mut f64, msg: Option<&f64>, _i: u32) -> bool {
        let n = self.out_degrees.len() as f64;
        *value = (1.0 - self.damping) / n
            + self.damping * self.dangling / n
            + self.damping * msg.copied().unwrap_or(0.0);
        true
    }

    fn pre_iteration(&mut self, _i: u32, values: &[f64], g: &Graph) {
        self.dangling = (0..g.num_vertices())
            .filter(|&v| g.out_degree(v) == 0)
            .map(|v| values[v as usize])
            .sum();
    }
}

/// CDLP with label-histogram messages (GraphMat's generalized semiring
/// allows non-scalar message types).
pub struct CdlpSpmv;

impl SpmvProgram for CdlpSpmv {
    type Value = u32;
    type Msg = std::collections::BTreeMap<u32, u32>;

    fn initial_value(&self, v: VertexId, _g: &Graph) -> u32 {
        v
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn send_both_directions(&self) -> bool {
        true
    }

    fn send(&self, _u: VertexId, value: &u32, _w: f32) -> Option<Self::Msg> {
        let mut m = std::collections::BTreeMap::new();
        m.insert(*value, 1);
        Some(m)
    }

    fn combine(&self, mut a: Self::Msg, b: Self::Msg) -> Self::Msg {
        for (l, c) in b {
            *a.entry(l).or_insert(0) += c;
        }
        a
    }

    fn apply(&self, _v: VertexId, value: &mut u32, msg: Option<&Self::Msg>, _i: u32) -> bool {
        let Some(counts) = msg else { return false };
        let mut best = (*value, 0u32);
        for (&l, &c) in counts {
            if c > best.1 {
                best = (l, c);
            }
        }
        if best.1 == 0 {
            return false;
        }
        let changed = *value != best.0;
        *value = best.0;
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsim_graph::algos;
    use gpsim_graph::gen::{datagen_like, with_uniform_weights, GenConfig};

    fn graph() -> Graph {
        datagen_like(&GenConfig::datagen(1_500, 55))
    }

    fn part(g: &Graph) -> BlockPartition {
        BlockPartition::by_edges(g, 8)
    }

    #[test]
    fn bfs_matches_reference() {
        let g = graph();
        let p = part(&g);
        let out = run(
            &g,
            &p,
            &mut BfsSpmv { source: 4 },
            IterationMode::Converge { max: 1_000 },
        );
        assert_eq!(out.values, algos::bfs(&g, 4));
    }

    #[test]
    fn sssp_matches_reference() {
        let g = with_uniform_weights(&graph(), 3.0, 8);
        let p = part(&g);
        let out = run(
            &g,
            &p,
            &mut SsspSpmv { source: 4 },
            IterationMode::Converge { max: 10_000 },
        );
        let reference = algos::sssp(&g, 4);
        for (a, b) in out.values.iter().zip(&reference) {
            if b.is_infinite() {
                assert!(a.is_infinite());
            } else {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn wcc_matches_reference() {
        let g = graph();
        let p = part(&g);
        let out = run(&g, &p, &mut WccSpmv, IterationMode::Converge { max: 1_000 });
        assert_eq!(out.values, algos::wcc(&g));
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = graph();
        let p = part(&g);
        let mut prog = PageRankSpmv::new(&g, 0.85);
        let out = run(&g, &p, &mut prog, IterationMode::Fixed(10));
        let reference = algos::pagerank(&g, 10, 0.85);
        for (a, b) in out.values.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn cdlp_matches_reference() {
        let g = graph();
        let p = part(&g);
        let out = run(&g, &p, &mut CdlpSpmv, IterationMode::Fixed(5));
        assert_eq!(out.values, algos::cdlp(&g, 5));
    }

    #[test]
    fn exchange_matrix_consistent() {
        let g = graph();
        let p = part(&g);
        let out = run(
            &g,
            &p,
            &mut BfsSpmv { source: 4 },
            IterationMode::Converge { max: 1_000 },
        );
        for it in &out.iterations {
            let sent: u64 = it.per_machine.iter().map(|m| m.messages_sent).sum();
            let recv: u64 = it.per_machine.iter().map(|m| m.messages_received).sum();
            let matrix: u64 = it.exchange.iter().flatten().sum();
            assert_eq!(sent, recv);
            assert_eq!(sent, matrix);
        }
    }

    #[test]
    fn first_pagerank_iteration_touches_all_edges() {
        let g = graph();
        let p = part(&g);
        let mut prog = PageRankSpmv::new(&g, 0.85);
        let out = run(&g, &p, &mut prog, IterationMode::Fixed(1));
        let edges: u64 = out.iterations[0]
            .per_machine
            .iter()
            .map(|m| m.edges_processed)
            .sum();
        assert_eq!(edges, g.num_edges());
    }
}
