//! The GRAPE-like platform driver.
//!
//! Subgraph-centric processing in the style of GRAPE / GraphScope's
//! analytical engine: the graph is edge-cut into `k` fragments, each worker
//! runs the *sequential* algorithm on its whole fragment (PEval), and rounds
//! only exchange updates for boundary vertices; subsequent rounds evaluate
//! incrementally (IncEval), touching just the vertices reached by incoming
//! boundary updates. Compared with vertex-centric BSP this trades
//! many-superstep barrier traffic for fewer, coarser sync rounds. The
//! driver:
//!
//! 1. assigns vertices to fragments (hash or contiguous-block edge-cut —
//!    the partitioner is a first-class experiment axis);
//! 2. executes the algorithm with the fragment-local work-list engine in
//!    this module, collecting per-round, per-fragment counters and the
//!    boundary-update matrix;
//! 3. compiles the job into an activity DAG — coordinator + worker
//!    deployment, parallel fragment loads from shared storage, per-round
//!    sequential fragment kernels plus boundary-sync transfers, offload,
//!    and finalization;
//! 4. simulates the DAG and emits Granula instrumentation events plus
//!    environment samples.
//!
//! Fault recovery is *fragment-local replay*: the coordinator detects the
//! lost worker, the replacement re-reads only its own fragment from shared
//! storage, and replays its local evaluations using the boundary updates
//! its peers logged — no global checkpoint (Giraph) and no full restart
//! (PowerGraph).

use std::collections::VecDeque;

use gpsim_cluster::{
    ActivityGraph, ActivityId, ActivityKind, ClusterSpec, FaultPlan, NodeCrash, NodeId, SimError,
    Simulation,
};
use gpsim_graph::{BlockPartition, EdgeCutPartition, Graph, VertexId};
use granula_model::{Actor, InfoValue, Mission};

use crate::common::{
    memory_samples, reference_output, trace_to_samples, Algorithm, AlgorithmOutput, JobConfig,
    MemoryPhase, PlatformRun,
};
use crate::ops::{emit_events, OpSpec};

/// How vertices are assigned to edge-cut fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrapePartitioner {
    /// Murmur-mixed hash of the vertex id: balanced but locality-free, so
    /// almost every round crosses fragment boundaries.
    Hash,
    /// Contiguous vertex ranges balanced by out-edges: high locality on
    /// generator-ordered ids, so local fixpoints absorb most propagation.
    Block,
}

impl GrapePartitioner {
    /// Canonical short name, e.g. `"hash-ec"`.
    pub fn name(&self) -> &'static str {
        match self {
            GrapePartitioner::Hash => "hash-ec",
            GrapePartitioner::Block => "block-ec",
        }
    }

    /// Owner fragment of every vertex.
    pub fn owners(&self, g: &Graph, k: u16) -> Vec<u16> {
        match self {
            GrapePartitioner::Hash => EdgeCutPartition::hash(g.num_vertices(), k).owner,
            GrapePartitioner::Block => {
                let p = BlockPartition::by_edges(g, k);
                (0..g.num_vertices()).map(|v| p.owner_of(v)).collect()
            }
        }
    }
}

/// GRAPE-like platform: configuration knobs beyond the job's cost model.
#[derive(Debug, Clone)]
pub struct GrapePlatform {
    /// Coordinator + metadata-service startup latency, µs.
    pub deploy_us: f64,
    /// Per-worker process spawn latency, µs.
    pub worker_launch_us: f64,
    /// Engine finalization latency, µs.
    pub finalize_us: f64,
    /// Vertex-to-fragment assignment strategy.
    pub partitioner: GrapePartitioner,
    /// Round cap for convergent algorithms.
    pub max_rounds: u32,
    /// Time for the coordinator to notice a lost worker (missed liveness
    /// probes), µs.
    pub failure_detect_us: f64,
}

impl Default for GrapePlatform {
    fn default() -> Self {
        GrapePlatform {
            deploy_us: 1.5e6,
            worker_launch_us: 0.4e6,
            finalize_us: 0.8e6,
            partitioner: GrapePartitioner::Hash,
            max_rounds: 10_000,
            failure_detect_us: 1.5e6,
        }
    }
}

/// Per-fragment counters for one PEval/IncEval round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FragmentRound {
    /// Work-list pops: vertices the sequential kernel evaluated.
    pub active_vertices: u64,
    /// Edges scanned while evaluating them.
    pub edges_scanned: u64,
}

/// One boundary-synchronized round of the subgraph-centric engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    /// Round number (0 = PEval, >0 = IncEval).
    pub round: u32,
    /// Counters per fragment.
    pub per_fragment: Vec<FragmentRound>,
    /// Aggregated boundary updates fragment `a` sent to fragment `b`.
    pub boundary: Vec<Vec<u64>>,
}

impl RoundStats {
    /// Total vertices evaluated across fragments.
    pub fn total_active(&self) -> u64 {
        self.per_fragment.iter().map(|f| f.active_vertices).sum()
    }

    /// Total boundary updates exchanged at the end of the round.
    pub fn total_boundary(&self) -> u64 {
        self.boundary.iter().flatten().sum()
    }
}

/// Fragment-local work-list evaluation with boundary-synchronized rounds:
/// round 0 floods from the seeds inside each fragment to a local fixpoint
/// (PEval); each later round applies the boundary updates received and
/// floods again from just those vertices (IncEval). Monotone `better`
/// guarantees convergence to the global fixpoint.
#[allow(clippy::too_many_arguments)]
fn flood<T, C, B>(
    g: &Graph,
    owner: &[u16],
    k: u16,
    mut values: Vec<T>,
    seeds: Vec<VertexId>,
    undirected: bool,
    max_rounds: u32,
    candidate: C,
    better: B,
) -> (Vec<T>, Vec<RoundStats>)
where
    T: Copy,
    C: Fn(VertexId, usize, T) -> T,
    B: Fn(T, T) -> bool,
{
    let kk = k as usize;
    let mut frontier: Vec<Vec<VertexId>> = vec![Vec::new(); kk];
    for v in seeds {
        frontier[owner[v as usize] as usize].push(v);
    }
    // Best unapplied cross-fragment candidate per vertex.
    let mut pending: Vec<Option<T>> = vec![None; g.num_vertices() as usize];
    let mut rounds: Vec<RoundStats> = Vec::new();
    let mut round = 0u32;
    while round < max_rounds && frontier.iter().any(|f| !f.is_empty()) {
        let mut per_fragment = vec![FragmentRound::default(); kk];
        let mut boundary = vec![vec![0u64; kk]; kk];
        let mut touched: Vec<VertexId> = Vec::new();
        for (f, seeds_f) in frontier.iter_mut().enumerate() {
            let frag = &mut per_fragment[f];
            let mut work: VecDeque<VertexId> = seeds_f.drain(..).collect();
            while let Some(v) = work.pop_front() {
                frag.active_vertices += 1;
                let val = values[v as usize];
                let nbrs = g.neighbors(v);
                frag.edges_scanned += nbrs.len() as u64;
                for (i, &t) in nbrs.iter().enumerate() {
                    let cand = candidate(v, i, val);
                    let to = owner[t as usize] as usize;
                    if to == f {
                        if better(cand, values[t as usize]) {
                            values[t as usize] = cand;
                            work.push_back(t);
                        }
                    } else if better(cand, pending[t as usize].unwrap_or(values[t as usize])) {
                        if pending[t as usize].is_none() {
                            touched.push(t);
                        }
                        pending[t as usize] = Some(cand);
                        boundary[f][to] += 1;
                    }
                }
                if undirected {
                    let inn = g.in_neighbors(v);
                    frag.edges_scanned += inn.len() as u64;
                    for &t in inn {
                        let cand = candidate(v, usize::MAX, val);
                        let to = owner[t as usize] as usize;
                        if to == f {
                            if better(cand, values[t as usize]) {
                                values[t as usize] = cand;
                                work.push_back(t);
                            }
                        } else if better(cand, pending[t as usize].unwrap_or(values[t as usize])) {
                            if pending[t as usize].is_none() {
                                touched.push(t);
                            }
                            pending[t as usize] = Some(cand);
                            boundary[f][to] += 1;
                        }
                    }
                }
            }
        }
        // Boundary sync: apply the aggregated updates; improved vertices
        // seed the next round in their owner fragment.
        for &t in &touched {
            if let Some(cand) = pending[t as usize].take() {
                if better(cand, values[t as usize]) {
                    values[t as usize] = cand;
                    frontier[owner[t as usize] as usize].push(t);
                }
            }
        }
        rounds.push(RoundStats {
            round,
            per_fragment,
            boundary,
        });
        round += 1;
    }
    (values, rounds)
}

/// Round schedule for fixed-iteration synchronous algorithms (PageRank,
/// CDLP): every round is a full sweep of each fragment, and the boundary
/// traffic is the (structural) cut-edge matrix.
fn fixed_rounds(
    g: &Graph,
    owner: &[u16],
    k: u16,
    iterations: u32,
    undirected: bool,
) -> Vec<RoundStats> {
    let kk = k as usize;
    let mut verts = vec![0u64; kk];
    let mut edges = vec![0u64; kk];
    let mut cut = vec![vec![0u64; kk]; kk];
    for v in 0..g.num_vertices() {
        let f = owner[v as usize] as usize;
        verts[f] += 1;
        edges[f] += g.out_degree(v) as u64;
        for &t in g.neighbors(v) {
            let to = owner[t as usize] as usize;
            if to != f {
                cut[f][to] += 1;
            }
        }
        if undirected {
            edges[f] += g.in_degree(v) as u64;
            for &t in g.in_neighbors(v) {
                let to = owner[t as usize] as usize;
                if to != f {
                    cut[f][to] += 1;
                }
            }
        }
    }
    (0..iterations)
        .map(|r| RoundStats {
            round: r,
            per_fragment: (0..kk)
                .map(|f| FragmentRound {
                    active_vertices: verts[f],
                    edges_scanned: edges[f],
                })
                .collect(),
            boundary: cut.clone(),
        })
        .collect()
}

fn run_program(
    g: &Graph,
    owner: &[u16],
    k: u16,
    algorithm: Algorithm,
    max_rounds: u32,
) -> (AlgorithmOutput, Vec<RoundStats>) {
    let n = g.num_vertices() as usize;
    match algorithm {
        Algorithm::Bfs { source } => {
            let mut values = vec![u32::MAX; n];
            values[source as usize] = 0;
            let (values, rounds) = flood(
                g,
                owner,
                k,
                values,
                vec![source],
                false,
                max_rounds,
                |_, _, d| d + 1,
                |cand, cur| cand < cur,
            );
            (AlgorithmOutput::Levels(values), rounds)
        }
        Algorithm::Sssp { source } => {
            let mut values = vec![f64::INFINITY; n];
            values[source as usize] = 0.0;
            let (values, rounds) = flood(
                g,
                owner,
                k,
                values,
                vec![source],
                false,
                max_rounds,
                |v, i, d| d + g.edge_weights(v).map_or(1.0, |ws| ws[i] as f64),
                |cand, cur| cand < cur,
            );
            (AlgorithmOutput::Distances(values), rounds)
        }
        Algorithm::Wcc => {
            let values: Vec<u32> = (0..n as u32).collect();
            let (values, rounds) = flood(
                g,
                owner,
                k,
                values,
                (0..n as u32).collect(),
                true,
                max_rounds,
                |_, _, l| l,
                |cand, cur| cand < cur,
            );
            (AlgorithmOutput::Labels(values), rounds)
        }
        Algorithm::PageRank { iterations } => (
            reference_output(g, algorithm),
            fixed_rounds(g, owner, k, iterations, false),
        ),
        Algorithm::Cdlp { iterations } => (
            reference_output(g, algorithm),
            fixed_rounds(g, owner, k, iterations, true),
        ),
    }
}

impl GrapePlatform {
    /// Runs a job on a DAS5-like cluster with `cfg.nodes` nodes.
    pub fn run(&self, g: &Graph, cfg: &JobConfig) -> Result<PlatformRun, SimError> {
        self.run_on(g, cfg, &ClusterSpec::das5(cfg.nodes))
    }

    /// Runs a job on a DAS5-like cluster under an injected fault plan.
    pub fn run_with_faults(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        plan: &FaultPlan,
    ) -> Result<PlatformRun, SimError> {
        self.run_on_with_faults(g, cfg, &ClusterSpec::das5(cfg.nodes), plan)
    }

    /// Runs a job on an explicit cluster (must have at least `cfg.nodes`
    /// nodes).
    pub fn run_on(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        cluster: &ClusterSpec,
    ) -> Result<PlatformRun, SimError> {
        self.run_on_with_faults(g, cfg, cluster, &FaultPlan::default())
    }

    /// Runs a job on an explicit cluster under an injected fault plan.
    ///
    /// Slowdown windows pass straight through to the simulator. A node
    /// crash triggers GRAPE's fragment-local recovery: the coordinator
    /// detects the lost worker, a replacement re-reads *only the lost
    /// fragment* from shared storage, replays that fragment's evaluations
    /// for the committed rounds using the boundary updates its peers
    /// logged, and the interrupted round re-runs in full. The recovery is
    /// emitted as first-class Granula operations (`FailedRound`, `Recover`
    /// with `DetectFailure` / `ReloadFragment` / `Replay` children) so the
    /// archive can decompose the slowdown.
    ///
    /// Only the earliest crash in the plan is modeled; later crashes are
    /// dropped from the executed plan (single-failure model, as for the
    /// other platforms).
    pub fn run_on_with_faults(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        cluster: &ClusterSpec,
        plan: &FaultPlan,
    ) -> Result<PlatformRun, SimError> {
        assert!(
            cluster.len() >= cfg.nodes as usize && cfg.nodes > 0,
            "cluster too small for {} workers",
            cfg.nodes
        );
        let k = cfg.nodes;
        let costs = &cfg.costs;
        let scale = cfg.scale_factor;
        let owner = self.partitioner.owners(g, k);
        let (output, rounds) = {
            let _span = granula_trace::span!("platform", "grape.eval {}", cfg.job_id);
            run_program(g, &owner, k, cfg.algorithm, self.max_rounds)
        };

        // Per-fragment data sizes (logical counts; scaled at use sites).
        let mut verts = vec![0u64; k as usize];
        let mut edges = vec![0u64; k as usize];
        for v in 0..g.num_vertices() {
            let w = owner[v as usize] as usize;
            verts[w] += 1;
            edges[w] += g.out_degree(v) as u64;
        }
        let input_bytes: Vec<f64> = (0..k as usize)
            .map(|w| (verts[w] as f64 * 10.0 + edges[w] as f64 * costs.bytes_per_edge_in) * scale)
            .collect();

        let crash = plan
            .crashes
            .iter()
            .min_by(|a, b| a.at_us.total_cmp(&b.at_us))
            .cloned()
            .filter(|_| !rounds.is_empty());

        let Some(crash) = crash else {
            // Healthy (possibly degraded) layout: no recovery structure.
            let mut b = Build::new(self, cfg, cluster, &rounds, &verts, &edges, &input_bytes);
            {
                let _span = granula_trace::span!("platform", "grape.build_dag {}", cfg.job_id);
                let started = b.startup();
                let mut prev = b.load(started);
                b.process_graph();
                for ri in 0..rounds.len() {
                    prev = b.round(ri, prev, "job/proc/", true);
                }
                let offloaded = b.offload(prev);
                b.cleanup(offloaded);
            }
            return b.finish(plan, output);
        };

        // Phase 1: probe run — the same job under the plan's slowdowns only
        // — locates the crash inside the round schedule.
        let probe_span = granula_trace::span!("platform", "grape.probe {}", cfg.job_id);
        let slow_plan = FaultPlan {
            crashes: Vec::new(),
            slowdowns: plan.slowdowns.clone(),
        };
        let mut probe = Build::new(self, cfg, cluster, &rounds, &verts, &edges, &input_bytes);
        let started = probe.startup();
        let mut prev = probe.load(started);
        probe.process_graph();
        for ri in 0..rounds.len() {
            prev = probe.round(ri, prev, "job/proc/", true);
        }
        let offloaded = probe.offload(prev);
        probe.cleanup(offloaded);
        let probe_sim = Simulation::new(cluster.clone()).run_with_faults(&probe.dag, &slow_plan)?;

        let (proc_start, proc_end) = probe_sim
            .span_of_tag(&probe.dag, "job/proc/")
            .expect("jobs run at least one round");
        let t_clamped = crash.at_us.clamp(proc_start + 1.0, proc_end - 1.0);
        let mut r_idx = rounds.len() - 1;
        for (ri, rs) in rounds.iter().enumerate() {
            let (_, end) = probe_sim
                .span_of_tag(&probe.dag, &format!("job/proc/r{}/", rs.round))
                .expect("round was simulated");
            if t_clamped < end {
                r_idx = ri;
                break;
            }
        }
        let r_star = rounds[r_idx].round;
        let (r_start, r_end) = probe_sim
            .span_of_tag(&probe.dag, &format!("job/proc/r{r_star}/"))
            .expect("round was simulated");
        let t_eff = t_clamped.clamp(r_start + 1.0, (r_end - 1.0).max(r_start + 1.0));
        // Only the interrupted round's partial work is wasted: committed
        // rounds survive on the healthy fragments and the lost one is
        // reconstructed by fragment-local replay, not re-executed globally.
        let wasted_us = t_eff - r_start;
        drop(probe_span);

        // Phase 2: the recovery layout. Prefix (startup, load, rounds
        // before r*) is identical to the probe; the interrupted round
        // becomes a doomed attempt killed by the injected crash; detection,
        // fragment reload and fragment-local replay follow under
        // `job/proc/recovery/`.
        let mut b = Build::new(self, cfg, cluster, &rounds, &verts, &edges, &input_bytes);
        let recovery_span = granula_trace::span!("platform", "grape.recovery.build {}", cfg.job_id);
        let started = b.startup();
        let mut prev = b.load(started);
        b.process_graph();
        for ri in 0..r_idx {
            prev = b.round(ri, prev, "job/proc/", true);
        }
        b.doomed_attempt(r_idx, prev);

        let coord = b.coord_node.clone();
        let lost = crash.node;
        let recover_actor = Actor::new("Coordinator", "0");
        let recover_key = (recover_actor.clone(), Mission::new("Recover", "0"));
        let proc_domain = b.domain("ProcessGraph");
        b.specs.push(
            OpSpec::new(
                recover_actor.clone(),
                Mission::new("Recover", "0"),
                Some(proc_domain),
                "job/proc/recovery/",
                &coord,
                "coordinator",
            )
            .with_info(
                "FailedNode",
                InfoValue::Text(cluster.node(lost).name.clone()),
            )
            .with_info("WastedUs", InfoValue::Int(wasted_us.round() as i64)),
        );
        // The crash anchor pins failure detection to the injected instant.
        let anchor = b.dag.add(
            ActivityKind::Delay { duration_us: t_eff },
            &[],
            "job/meta/t-crash",
        );
        let detect = b.dag.add(
            ActivityKind::Delay {
                duration_us: self.failure_detect_us,
            },
            &[anchor],
            "job/proc/recovery/detect",
        );
        b.specs.push(OpSpec::new(
            recover_actor.clone(),
            Mission::new("DetectFailure", "0"),
            Some(recover_key.clone()),
            "job/proc/recovery/detect",
            &coord,
            "coordinator",
        ));
        // The replacement worker re-reads only the lost fragment and
        // rebuilds its local index.
        let lw = lost.0 as usize;
        let reread = b.dag.add(
            ActivityKind::SharedRead {
                node: lost,
                bytes: input_bytes[lw],
            },
            &[detect],
            "job/proc/recovery/reload/read",
        );
        let rebuilt = b.dag.add(
            ActivityKind::Compute {
                node: lost,
                work_core_us: edges[lw] as f64 * scale * costs.build_cpu_us_per_edge,
                parallelism: costs.worker_threads,
            },
            &[reread],
            "job/proc/recovery/reload/build",
        );
        b.specs.push(
            OpSpec::new(
                recover_actor.clone(),
                Mission::new("ReloadFragment", "0"),
                Some(recover_key.clone()),
                "job/proc/recovery/reload/",
                &coord,
                "coordinator",
            )
            .with_info("InputBytes", InfoValue::Int(input_bytes[lw].round() as i64)),
        );
        // Fragment-local replay of the committed rounds: the lost fragment
        // re-evaluates its own kernel, fed by the boundary updates its
        // peers logged (resent, never recomputed).
        let mut prev_r = rebuilt;
        for (ri, rs) in rounds.iter().enumerate().take(r_idx) {
            let r = rs.round;
            let rtag = format!("job/proc/recovery/replay/r{r}/");
            let mut deps = vec![prev_r];
            if ri > 0 {
                for (a, row) in rounds[ri - 1].boundary.iter().enumerate() {
                    if a == lw || row[lw] == 0 {
                        continue;
                    }
                    deps.push(b.dag.add(
                        ActivityKind::Transfer {
                            src: NodeId(a as u16),
                            dst: lost,
                            bytes: row[lw] as f64 * costs.bytes_per_message * scale,
                        },
                        &[prev_r],
                        format!("{rtag}in/a{a}"),
                    ));
                }
            }
            let frag = &rs.per_fragment[lw];
            let work = (frag.edges_scanned as f64 * costs.compute_us_per_edge
                + frag.active_vertices as f64 * costs.compute_us_per_vertex)
                * scale;
            prev_r = b.dag.add(
                ActivityKind::Compute {
                    node: lost,
                    work_core_us: work.max(400.0),
                    parallelism: 1,
                },
                &deps,
                format!("{rtag}eval"),
            );
            b.specs.push(OpSpec::new(
                recover_actor.clone(),
                Mission::new("Replay", r.to_string()),
                Some(recover_key.clone()),
                rtag,
                &coord,
                "coordinator",
            ));
        }
        // The interrupted round never committed its sync: it re-runs in
        // full, covered by the final Replay op.
        prev = b.round(r_idx, prev_r, "job/proc/recovery/replay/", false);
        b.specs.push(OpSpec::new(
            recover_actor.clone(),
            Mission::new("Replay", r_star.to_string()),
            Some(recover_key.clone()),
            format!("job/proc/recovery/replay/r{r_star}/"),
            &coord,
            "coordinator",
        ));
        for ri in r_idx + 1..rounds.len() {
            prev = b.round(ri, prev, "job/proc/", true);
        }
        let offloaded = b.offload(prev);
        b.cleanup(offloaded);
        drop(recovery_span);

        let restart_after = crash.restart_after_us.unwrap_or(self.failure_detect_us);
        let exec_plan = FaultPlan {
            crashes: vec![NodeCrash {
                node: crash.node,
                at_us: t_eff,
                restart_after_us: Some(restart_after),
            }],
            slowdowns: plan.slowdowns.clone(),
        };
        b.finish(&exec_plan, output)
    }
}

/// Incremental DAG + spec builder shared by the healthy and the
/// fault-recovery job layouts.
struct Build<'a> {
    p: &'a GrapePlatform,
    cfg: &'a JobConfig,
    cluster: &'a ClusterSpec,
    rounds: &'a [RoundStats],
    verts: &'a [u64],
    edges: &'a [u64],
    input_bytes: &'a [f64],
    dag: ActivityGraph,
    specs: Vec<OpSpec>,
    job_actor: Actor,
    job_key: (Actor, Mission),
    coord_node: String,
}

impl<'a> Build<'a> {
    fn new(
        p: &'a GrapePlatform,
        cfg: &'a JobConfig,
        cluster: &'a ClusterSpec,
        rounds: &'a [RoundStats],
        verts: &'a [u64],
        edges: &'a [u64],
        input_bytes: &'a [f64],
    ) -> Self {
        let job_actor = Actor::new("Job", "0");
        let job_mission = Mission::new("GrapeJob", "0");
        let job_key = (job_actor.clone(), job_mission.clone());
        let coord_node = cluster.node(NodeId(0)).name.clone();
        let specs: Vec<OpSpec> = vec![OpSpec::new(
            job_actor.clone(),
            job_mission,
            None,
            "job/",
            &coord_node,
            "coordinator",
        )
        .with_info("Platform", InfoValue::Text("Grape".into()))
        .with_info("Algorithm", InfoValue::Text(cfg.algorithm.name().into()))
        .with_info("Dataset", InfoValue::Text(cfg.dataset.clone()))
        .with_info("Workers", InfoValue::Int(cfg.nodes as i64))
        .with_info("Partitioner", InfoValue::Text(p.partitioner.name().into()))];
        Build {
            p,
            cfg,
            cluster,
            rounds,
            verts,
            edges,
            input_bytes,
            dag: ActivityGraph::new(),
            specs,
            job_actor,
            job_key,
            coord_node,
        }
    }

    fn worker_node(&self, w: u16) -> String {
        self.cluster.node(NodeId(w)).name.clone()
    }

    fn domain(&self, mission: &str) -> (Actor, Mission) {
        (self.job_actor.clone(), Mission::new(mission, "0"))
    }

    // -------------------------------------------------- Startup (L1)
    fn startup(&mut self) -> ActivityId {
        let k = self.cfg.nodes;
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("Startup", "0"),
            Some(self.job_key.clone()),
            "job/startup/",
            &self.coord_node,
            "coordinator",
        ));
        let deploy = self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.deploy_us,
            },
            &[],
            "job/startup/coordinator",
        );
        self.specs.push(OpSpec::new(
            Actor::new("Coordinator", "0"),
            Mission::new("DeployCoordinator", "0"),
            Some(self.domain("Startup")),
            "job/startup/coordinator",
            &self.coord_node,
            "coordinator",
        ));
        self.specs.push(OpSpec::new(
            Actor::new("Coordinator", "0"),
            Mission::new("DeployWorkers", "0"),
            Some(self.domain("Startup")),
            "job/startup/deploy/",
            &self.coord_node,
            "coordinator",
        ));
        let mut ready: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let launch = self.dag.add(
                ActivityKind::Delay {
                    duration_us: self.p.worker_launch_us * (1.0 + 0.05 * w as f64),
                },
                &[deploy],
                format!("job/startup/deploy/w{w}"),
            );
            self.specs.push(OpSpec::new(
                Actor::new("Worker", w.to_string()),
                Mission::new("LocalStartup", "0"),
                Some((
                    Actor::new("Coordinator", "0"),
                    Mission::new("DeployWorkers", "0"),
                )),
                format!("job/startup/deploy/w{w}"),
                self.worker_node(w),
                format!("worker-{w}"),
            ));
            ready.push(launch);
        }
        self.dag.barrier(&ready, "job/startup/all-ready")
    }

    // ------------------------------------------------ LoadGraph (L1)
    fn load(&mut self, started: ActivityId) -> ActivityId {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("LoadGraph", "0"),
            Some(self.job_key.clone()),
            "job/load/",
            &self.coord_node,
            "coordinator",
        ));
        let mut loaded: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let node = NodeId(w);
            let tagp = format!("job/load/w{w}/");
            self.specs.push(
                OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalLoad", "0"),
                    Some(self.domain("LoadGraph")),
                    tagp.clone(),
                    self.worker_node(w),
                    format!("worker-{w}"),
                )
                .with_info(
                    "InputBytes",
                    InfoValue::Int(self.input_bytes[w as usize].round() as i64),
                ),
            );
            // Parallel read of this worker's fragment from shared storage.
            let read = self.dag.add(
                ActivityKind::SharedRead {
                    node,
                    bytes: self.input_bytes[w as usize],
                },
                &[started],
                format!("{tagp}read"),
            );
            self.specs.push(OpSpec::new(
                Actor::new("Worker", w.to_string()),
                Mission::new("ReadFragment", "0"),
                Some((
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalLoad", "0"),
                )),
                format!("{tagp}read"),
                self.worker_node(w),
                format!("worker-{w}"),
            ));
            let parse = self.dag.add(
                ActivityKind::Compute {
                    node,
                    work_core_us: self.input_bytes[w as usize] * costs.parse_cpu_us_per_byte,
                    parallelism: costs.worker_threads,
                },
                &[read],
                format!("{tagp}parse"),
            );
            let build = self.dag.add(
                ActivityKind::Compute {
                    node,
                    work_core_us: self.edges[w as usize] as f64
                        * scale
                        * costs.build_cpu_us_per_edge,
                    parallelism: costs.worker_threads,
                },
                &[parse],
                format!("{tagp}build"),
            );
            self.specs.push(OpSpec::new(
                Actor::new("Worker", w.to_string()),
                Mission::new("BuildIndex", "0"),
                Some((
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalLoad", "0"),
                )),
                format!("{tagp}build"),
                self.worker_node(w),
                format!("worker-{w}"),
            ));
            loaded.push(build);
        }
        self.dag.barrier(&loaded, "job/load/all-loaded")
    }

    // ---------------------------------------------- ProcessGraph (L1)
    fn process_graph(&mut self) {
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("ProcessGraph", "0"),
            Some(self.job_key.clone()),
            "job/proc/",
            &self.coord_node,
            "coordinator",
        ));
    }

    /// One boundary-synchronized round: per-fragment *sequential* kernel
    /// (parallelism 1 — the defining GRAPE trait), boundary-update
    /// transfers, and the coordinator's sync barrier. `prefix` places the
    /// activities; `with_specs` controls whether the round emits its own
    /// Granula operations (replays are covered by a single `Replay` op
    /// pushed by the caller).
    fn round(
        &mut self,
        ri: usize,
        prev_barrier: ActivityId,
        prefix: &str,
        with_specs: bool,
    ) -> ActivityId {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let rs = &self.rounds[ri];
        let r = rs.round;
        let r_tag = format!("{prefix}r{r}/");
        let eval_kind = if r == 0 { "PEval" } else { "IncEval" };
        if with_specs {
            self.specs.push(
                OpSpec::new(
                    self.job_actor.clone(),
                    Mission::new("Round", r.to_string()),
                    Some(self.domain("ProcessGraph")),
                    r_tag.clone(),
                    &self.coord_node,
                    "coordinator",
                )
                .with_info(
                    "ActiveVertices",
                    InfoValue::Int((rs.total_active() as f64 * scale).round() as i64),
                )
                .with_info(
                    "BoundaryMessages",
                    InfoValue::Int((rs.total_boundary() as f64 * scale).round() as i64),
                ),
            );
        }
        let mut evals: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let frag = &rs.per_fragment[w as usize];
            let work = (frag.edges_scanned as f64 * costs.compute_us_per_edge
                + frag.active_vertices as f64 * costs.compute_us_per_vertex)
                * scale;
            let eval = self.dag.add(
                ActivityKind::Compute {
                    node: NodeId(w),
                    // Idle fragments still tick over the round machinery.
                    work_core_us: work.max(400.0),
                    parallelism: 1,
                },
                &[prev_barrier],
                format!("{r_tag}f{w}/eval"),
            );
            if with_specs {
                self.specs.push(
                    OpSpec::new(
                        Actor::new("Worker", w.to_string()),
                        Mission::new(eval_kind, r.to_string()),
                        Some((self.job_actor.clone(), Mission::new("Round", r.to_string()))),
                        format!("{r_tag}f{w}/"),
                        self.worker_node(w),
                        format!("worker-{w}"),
                    )
                    .with_info(
                        "EdgesScanned",
                        InfoValue::Int((frag.edges_scanned as f64 * scale).round() as i64),
                    )
                    .with_info(
                        "ActiveVertices",
                        InfoValue::Int((frag.active_vertices as f64 * scale).round() as i64),
                    ),
                );
            }
            evals.push(eval);
        }
        // Boundary-update exchange, then the coordinator's sync.
        let mut deps: Vec<ActivityId> = evals.clone();
        for (a, row) in rs.boundary.iter().enumerate() {
            for (bdst, &count) in row.iter().enumerate() {
                if a == bdst || count == 0 {
                    continue;
                }
                deps.push(self.dag.add(
                    ActivityKind::Transfer {
                        src: NodeId(a as u16),
                        dst: NodeId(bdst as u16),
                        bytes: count as f64 * costs.bytes_per_message * scale,
                    },
                    &[evals[a]],
                    format!("{r_tag}sync/a{a}b{bdst}"),
                ));
            }
        }
        let join = self.dag.barrier(&deps, format!("{r_tag}sync/join"));
        let sync = self.dag.add(
            ActivityKind::Delay {
                duration_us: costs.barrier_us,
            },
            &[join],
            format!("{r_tag}sync/coord"),
        );
        if with_specs {
            self.specs.push(OpSpec::new(
                Actor::new("Coordinator", "0"),
                Mission::new("BoundarySync", r.to_string()),
                Some((self.job_actor.clone(), Mission::new("Round", r.to_string()))),
                format!("{r_tag}sync/"),
                &self.coord_node,
                "coordinator",
            ));
        }
        sync
    }

    /// The attempt at round `ri` that the crash interrupts: per-fragment
    /// kernels, no sync — the failure means the round never commits, and
    /// recovery (not this attempt) gates further work.
    fn doomed_attempt(&mut self, ri: usize, prev_barrier: ActivityId) {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let rs = &self.rounds[ri];
        let r = rs.round;
        let tag = format!("job/proc/r{r}/");
        self.specs.push(OpSpec::new(
            Actor::new("Coordinator", "0"),
            Mission::new("FailedRound", r.to_string()),
            Some(self.domain("ProcessGraph")),
            tag.clone(),
            &self.coord_node,
            "coordinator",
        ));
        for w in 0..k {
            let frag = &rs.per_fragment[w as usize];
            let work = (frag.edges_scanned as f64 * costs.compute_us_per_edge
                + frag.active_vertices as f64 * costs.compute_us_per_vertex)
                * scale;
            self.dag.add(
                ActivityKind::Compute {
                    node: NodeId(w),
                    work_core_us: work.max(400.0),
                    parallelism: 1,
                },
                &[prev_barrier],
                format!("{tag}try/f{w}/eval"),
            );
        }
    }

    // --------------------------------------------- OffloadGraph (L1)
    fn offload(&mut self, prev_barrier: ActivityId) -> ActivityId {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("OffloadGraph", "0"),
            Some(self.job_key.clone()),
            "job/offload/",
            &self.coord_node,
            "coordinator",
        ));
        let mut offloads: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let bytes = self.verts[w as usize] as f64 * costs.bytes_per_vertex_out * scale;
            let write = self.dag.add(
                ActivityKind::SharedRead {
                    node: NodeId(w),
                    bytes,
                },
                &[prev_barrier],
                format!("job/offload/w{w}/write"),
            );
            self.specs.push(
                OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalOffload", "0"),
                    Some(self.domain("OffloadGraph")),
                    format!("job/offload/w{w}/"),
                    self.worker_node(w),
                    format!("worker-{w}"),
                )
                .with_info("OutputBytes", InfoValue::Int(bytes.round() as i64)),
            );
            offloads.push(write);
        }
        self.dag.barrier(&offloads, "job/offload/all-done")
    }

    // -------------------------------------------------- Cleanup (L1)
    fn cleanup(&mut self, all_offloaded: ActivityId) {
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("Cleanup", "0"),
            Some(self.job_key.clone()),
            "job/cleanup/",
            &self.coord_node,
            "coordinator",
        ));
        self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.finalize_us,
            },
            &[all_offloaded],
            "job/cleanup/finalize",
        );
        self.specs.push(OpSpec::new(
            Actor::new("Coordinator", "0"),
            Mission::new("Terminate", "0"),
            Some(self.domain("Cleanup")),
            "job/cleanup/finalize",
            &self.coord_node,
            "coordinator",
        ));
    }

    // ------------------------------------------------------- Simulate
    fn finish(self, plan: &FaultPlan, output: AlgorithmOutput) -> Result<PlatformRun, SimError> {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let sim = {
            let _span = granula_trace::span!("platform", "grape.simulate {}", self.cfg.job_id);
            Simulation::new(self.cluster.clone()).run_with_faults(&self.dag, plan)?
        };
        let events = emit_events(&self.specs, &self.dag, &sim);
        let mut env_samples = trace_to_samples(&sim.trace);
        // Memory view: each fragment becomes resident over its load
        // interval and is released when the engine finalizes.
        let release = sim
            .span_of_tag(&self.dag, "job/cleanup/")
            .map(|(s, _)| s.round() as u64)
            .unwrap_or(sim.makespan_us.round() as u64);
        let mut phases = Vec::with_capacity(k as usize);
        for w in 0..k {
            if let Some((ls, le)) = sim.span_of_tag(&self.dag, &format!("job/load/w{w}/")) {
                phases.push(MemoryPhase {
                    node: self.worker_node(w),
                    ramp_start_us: ls.round() as u64,
                    ramp_end_us: le.round() as u64,
                    hold_until_us: release,
                    bytes: self.edges[w as usize] as f64 * scale * costs.bytes_per_edge_mem,
                });
            }
        }
        env_samples.extend(memory_samples(&phases, sim.makespan_us.round() as u64));
        Ok(PlatformRun {
            events,
            env_samples,
            output,
            makespan_us: sim.makespan_us.round() as u64,
            iterations: self.rounds.len() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::CostModel;
    use gpsim_graph::gen::{datagen_like, GenConfig};
    use granula_monitor::Assembler;

    fn job(algorithm: Algorithm) -> (Graph, JobConfig) {
        let g = datagen_like(&GenConfig::datagen(2_000, 11));
        let cfg = JobConfig::new(
            "test-job",
            "dg-test",
            algorithm,
            8,
            CostModel::powergraph_like(),
        );
        (g, cfg)
    }

    #[test]
    fn all_algorithms_validate() {
        for algorithm in [
            Algorithm::Bfs { source: 3 },
            Algorithm::PageRank { iterations: 4 },
            Algorithm::Wcc,
            Algorithm::Sssp { source: 3 },
            Algorithm::Cdlp { iterations: 3 },
        ] {
            for partitioner in [GrapePartitioner::Hash, GrapePartitioner::Block] {
                let (g, cfg) = job(algorithm);
                let p = GrapePlatform {
                    partitioner,
                    ..GrapePlatform::default()
                };
                let run = p.run(&g, &cfg).unwrap();
                assert!(
                    run.output.matches(&reference_output(&g, algorithm)),
                    "{algorithm:?} under {partitioner:?}"
                );
            }
        }
    }

    #[test]
    fn subgraph_rounds_beat_vertex_centric_supersteps() {
        // The subgraph-centric pitch: fragment-local fixpoints absorb
        // propagation, so BFS needs fewer sync rounds than BSP supersteps
        // (which need one per level).
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let grape = GrapePlatform {
            partitioner: GrapePartitioner::Block,
            ..GrapePlatform::default()
        }
        .run(&g, &cfg)
        .unwrap();
        let giraph = crate::giraph::GiraphPlatform::default()
            .run(&g, &cfg)
            .unwrap();
        assert!(
            grape.iterations < giraph.iterations,
            "block-partitioned GRAPE rounds ({}) should undercut BSP supersteps ({})",
            grape.iterations,
            giraph.iterations
        );
    }

    #[test]
    fn events_assemble_into_a_clean_tree() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = GrapePlatform::default().run(&g, &cfg).unwrap();
        let outcome = Assembler::new().assemble(run.events);
        assert!(
            outcome.warnings.is_empty(),
            "{:?}",
            &outcome.warnings[..5.min(outcome.warnings.len())]
        );
        let tree = outcome.tree;
        let root = tree.root().unwrap();
        assert_eq!(tree.op(root).mission.kind, "GrapeJob");
        for m in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            assert!(tree.child_by_mission(root, m).is_some(), "missing {m}");
        }
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        let n_rounds = tree
            .children(proc_)
            .filter(|o| o.mission.kind == "Round")
            .count();
        assert_eq!(n_rounds as u32, run.iterations);
        // Round 0 is PEval; later rounds are IncEval.
        assert_eq!(tree.by_mission_kind("PEval").count(), 8);
        assert!(tree.by_mission_kind("IncEval").count() >= 8);
    }

    #[test]
    fn empty_fault_plan_is_identical_to_plain_run() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let p = GrapePlatform::default();
        let plain = p.run(&g, &cfg).unwrap();
        let faultless = p.run_with_faults(&g, &cfg, &FaultPlan::new()).unwrap();
        assert_eq!(plain.makespan_us, faultless.makespan_us);
        assert_eq!(plain.events, faultless.events);
    }

    #[test]
    fn crash_recovery_reloads_and_replays_only_the_lost_fragment() {
        let (g, cfg) = job(Algorithm::PageRank { iterations: 6 });
        let p = GrapePlatform::default();
        let healthy = p.run(&g, &cfg).unwrap();
        let plan = FaultPlan::new().crash(NodeId(2), healthy.makespan_us as f64 * 0.6);
        let faulty = p.run_with_faults(&g, &cfg, &plan).unwrap();
        assert!(
            faulty.makespan_us > healthy.makespan_us,
            "recovery must cost time: {} vs {}",
            faulty.makespan_us,
            healthy.makespan_us
        );
        let outcome = Assembler::new().assemble(faulty.events);
        assert!(
            outcome.warnings.is_empty(),
            "{:?}",
            &outcome.warnings[..5.min(outcome.warnings.len())]
        );
        let tree = outcome.tree;
        let root = tree.root().unwrap();
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        assert!(tree
            .children(proc_)
            .any(|o| o.mission.kind == "FailedRound"));
        let recover = tree
            .child_by_mission(proc_, "Recover")
            .expect("Recover operation");
        for m in ["DetectFailure", "ReloadFragment"] {
            assert!(tree.child_by_mission(recover, m).is_some(), "missing {m}");
        }
        let n_replay = tree
            .children(recover)
            .filter(|o| o.mission.kind == "Replay")
            .count();
        assert!(n_replay >= 1, "lost rounds must be replayed");
        let rec_op = tree.op(recover);
        assert!(rec_op
            .infos
            .iter()
            .any(|i| i.name == "FailedNode" && i.value == InfoValue::Text("node302".into())));
        // No round is lost or duplicated: the interrupted round moves from
        // the committed sequence into the replay set.
        let committed = tree
            .children(proc_)
            .filter(|o| o.mission.kind == "Round")
            .count();
        let failed = tree
            .children(proc_)
            .filter(|o| o.mission.kind == "FailedRound")
            .count();
        assert_eq!(failed, 1);
        assert_eq!(committed + 1, healthy.iterations as usize);
    }

    #[test]
    fn scale_factor_stretches_runtime() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let small = GrapePlatform::default().run(&g, &cfg).unwrap();
        let big = GrapePlatform::default()
            .run(&g, &cfg.clone().with_scale(50.0))
            .unwrap();
        assert!(big.makespan_us > small.makespan_us);
    }
}
