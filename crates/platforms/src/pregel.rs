//! A Pregel/BSP engine executed at worker (partition) granularity.
//!
//! "Think like a vertex": per superstep, every active vertex consumes the
//! messages sent to it in the previous superstep, updates its value, and
//! sends new messages; a global barrier separates supersteps. The engine
//! additionally records, per superstep and per worker, the counters the
//! Giraph cost model needs: active vertices, edges scanned, and the
//! worker-to-worker message matrix.

use gpsim_graph::{EdgeCutPartition, Graph, VertexId};

/// Per-superstep context handed to vertex programs.
pub struct Context<M> {
    superstep: u32,
    prev_aggregate: f64,
    outbox: Vec<(VertexId, M)>,
    remain_active: bool,
}

impl<M> Context<M> {
    /// Current superstep number (0-based).
    pub fn superstep(&self) -> u32 {
        self.superstep
    }

    /// Value of the global aggregate computed at the end of the previous
    /// superstep (0.0 in superstep 0).
    pub fn prev_aggregate(&self) -> f64 {
        self.prev_aggregate
    }

    /// Sends a message, delivered at the next superstep.
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// Keeps this vertex active next superstep even without incoming
    /// messages (vertices halt by default, Pregel-style).
    pub fn remain_active(&mut self) {
        self.remain_active = true;
    }
}

/// A Pregel vertex program.
pub trait VertexProgram {
    /// Per-vertex state.
    type Value: Clone + PartialEq;
    /// Message type.
    type Message: Clone;

    /// Initial value of a vertex.
    fn initial_value(&self, v: VertexId, g: &Graph) -> Self::Value;

    /// Whether the vertex is active in superstep 0.
    fn initially_active(&self, v: VertexId) -> bool;

    /// One superstep of one vertex.
    fn compute(
        &self,
        ctx: &mut Context<Self::Message>,
        v: VertexId,
        value: &mut Self::Value,
        messages: &[Self::Message],
        g: &Graph,
    );

    /// Contribution of a vertex to the global aggregate (summed over all
    /// vertices after every superstep; visible next superstep).
    fn aggregate(&self, _v: VertexId, _value: &Self::Value, _g: &Graph) -> f64 {
        0.0
    }
}

/// Counters of one worker within one superstep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerSuperstep {
    /// Vertices that executed `compute`.
    pub active_vertices: u64,
    /// Sum of out-degrees of computed vertices.
    pub edges_scanned: u64,
    /// Messages emitted by this worker.
    pub messages_sent: u64,
    /// Messages delivered to this worker (next superstep's inbox).
    pub messages_received: u64,
}

/// Counters of one superstep across all workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperstepStats {
    /// Superstep number.
    pub superstep: u32,
    /// Per-worker counters, indexed by worker id.
    pub per_worker: Vec<WorkerSuperstep>,
    /// `remote_messages[from][to]`: messages crossing worker boundaries
    /// (diagonal = worker-local messages, which never touch the network).
    pub remote_messages: Vec<Vec<u64>>,
}

impl SuperstepStats {
    /// Total active vertices across workers.
    pub fn total_active(&self) -> u64 {
        self.per_worker.iter().map(|w| w.active_vertices).sum()
    }

    /// Total messages sent across workers.
    pub fn total_messages(&self) -> u64 {
        self.per_worker.iter().map(|w| w.messages_sent).sum()
    }
}

/// The result of a Pregel execution.
#[derive(Debug, Clone)]
pub struct PregelOutcome<V> {
    /// Final vertex values.
    pub values: Vec<V>,
    /// Per-superstep counters (length = executed supersteps).
    pub supersteps: Vec<SuperstepStats>,
}

/// Executes a vertex program to convergence (or `max_supersteps`).
pub fn run<P: VertexProgram>(
    g: &Graph,
    partition: &EdgeCutPartition,
    program: &P,
    max_supersteps: u32,
) -> PregelOutcome<P::Value> {
    let n = g.num_vertices() as usize;
    let k = partition.k as usize;
    let mut values: Vec<P::Value> = (0..n as u32).map(|v| program.initial_value(v, g)).collect();
    let mut active: Vec<bool> = (0..n as u32).map(|v| program.initially_active(v)).collect();
    let mut inbox: Vec<Vec<P::Message>> = vec![Vec::new(); n];
    let mut next_inbox: Vec<Vec<P::Message>> = vec![Vec::new(); n];
    let mut supersteps = Vec::new();
    let mut prev_aggregate = 0.0f64;

    for superstep in 0..max_supersteps {
        let any = active.iter().any(|&a| a) || inbox.iter().any(|i| !i.is_empty());
        if !any {
            break;
        }
        let mut per_worker = vec![WorkerSuperstep::default(); k];
        let mut remote = vec![vec![0u64; k]; k];
        let mut next_active = vec![false; n];
        let mut aggregate = 0.0f64;

        for v in 0..n as u32 {
            let has_msgs = !inbox[v as usize].is_empty();
            if !active[v as usize] && !has_msgs {
                aggregate += program.aggregate(v, &values[v as usize], g);
                continue;
            }
            let w = partition.owner_of(v) as usize;
            per_worker[w].active_vertices += 1;
            per_worker[w].edges_scanned += g.out_degree(v) as u64;

            let mut ctx = Context {
                superstep,
                prev_aggregate,
                outbox: Vec::new(),
                remain_active: false,
            };
            let msgs = std::mem::take(&mut inbox[v as usize]);
            program.compute(&mut ctx, v, &mut values[v as usize], &msgs, g);
            aggregate += program.aggregate(v, &values[v as usize], g);

            per_worker[w].messages_sent += ctx.outbox.len() as u64;
            for (to, msg) in ctx.outbox {
                let wt = partition.owner_of(to) as usize;
                remote[w][wt] += 1;
                per_worker[wt].messages_received += 1;
                next_inbox[to as usize].push(msg);
                next_active[to as usize] = true;
            }
            if ctx.remain_active {
                next_active[v as usize] = true;
            }
        }

        std::mem::swap(&mut inbox, &mut next_inbox);
        active = next_active;
        prev_aggregate = aggregate;
        supersteps.push(SuperstepStats {
            superstep,
            per_worker,
            remote_messages: remote,
        });
    }

    PregelOutcome { values, supersteps }
}

/// Vertex count at which [`run_bfs`] switches from the generic engine to
/// the flat frontier engine. The generic engine keeps a `Vec` inbox per
/// vertex — two pointer-width triples each — which at dg1000 scale
/// (103 M vertices) is ~5 GB of mostly-empty vectors plus an allocation
/// per delivered message; the flat engine carries the same information in
/// three dense arrays.
pub const FLAT_BFS_THRESHOLD: u32 = 2_000_000;

/// BFS through the engine best suited to the graph's size: the generic
/// vertex-program engine below [`FLAT_BFS_THRESHOLD`] vertices, the flat
/// frontier engine at or above it. Both produce identical values and
/// identical per-superstep counters (see `flat_bfs_matches_generic_engine`).
pub fn run_bfs(
    g: &Graph,
    partition: &EdgeCutPartition,
    source: VertexId,
    max_supersteps: u32,
) -> PregelOutcome<u32> {
    if g.num_vertices() >= FLAT_BFS_THRESHOLD {
        run_bfs_flat(g, partition, source, max_supersteps)
    } else {
        run(g, partition, &BfsProgram { source }, max_supersteps)
    }
}

/// Level-synchronous BFS over dense arrays, replicating the generic
/// engine's observable behavior exactly:
///
/// - the computed set of superstep `s > 0` is the set of message receivers
///   of superstep `s - 1` (improved or not — a visited vertex that is
///   messaged again still executes, scans its edges, and sends nothing);
/// - all messages of superstep `s` carry level `s`, so a receiver improves
///   iff it is unvisited;
/// - counters (active vertices, edges scanned, messages sent/received, the
///   worker-to-worker matrix) count per message, not per unique receiver.
pub fn run_bfs_flat(
    g: &Graph,
    partition: &EdgeCutPartition,
    source: VertexId,
    max_supersteps: u32,
) -> PregelOutcome<u32> {
    let n = g.num_vertices() as usize;
    let k = partition.k as usize;
    let mut values = vec![u32::MAX; n];
    values[source as usize] = 0;
    let mut computed: Vec<VertexId> = vec![source];
    // Membership stamp for the next frontier: `queued[v] == s + 1` means v
    // is already in superstep s's receiver set.
    let mut queued = vec![0u32; n];
    let mut supersteps = Vec::new();

    for superstep in 0..max_supersteps {
        if computed.is_empty() {
            break;
        }
        let mut per_worker = vec![WorkerSuperstep::default(); k];
        let mut remote = vec![vec![0u64; k]; k];
        let mut next: Vec<VertexId> = Vec::new();
        for &v in &computed {
            let w = partition.owner_of(v) as usize;
            let deg = g.out_degree(v) as u64;
            per_worker[w].active_vertices += 1;
            per_worker[w].edges_scanned += deg;
            let improved = if superstep == 0 {
                v == source
            } else if superstep < values[v as usize] {
                values[v as usize] = superstep;
                true
            } else {
                false
            };
            if improved {
                per_worker[w].messages_sent += deg;
                let row = &mut remote[w];
                for &t in g.neighbors(v) {
                    row[partition.owner_of(t) as usize] += 1;
                    if queued[t as usize] != superstep + 1 {
                        queued[t as usize] = superstep + 1;
                        next.push(t);
                    }
                }
            }
        }
        for row in &remote {
            for (wt, &count) in row.iter().enumerate() {
                per_worker[wt].messages_received += count;
            }
        }
        supersteps.push(SuperstepStats {
            superstep,
            per_worker,
            remote_messages: remote,
        });
        computed = next;
    }
    PregelOutcome { values, supersteps }
}

// ---------------------------------------------------------------------------
// Vertex programs for the Graphalytics algorithms.
// ---------------------------------------------------------------------------

/// Breadth-first search: level propagation along out-edges.
pub struct BfsProgram {
    /// Source vertex.
    pub source: VertexId,
}

impl VertexProgram for BfsProgram {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, v: VertexId, _g: &Graph) -> u32 {
        if v == self.source {
            0
        } else {
            u32::MAX
        }
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.source
    }

    fn compute(
        &self,
        ctx: &mut Context<u32>,
        v: VertexId,
        value: &mut u32,
        messages: &[u32],
        g: &Graph,
    ) {
        let improved = if ctx.superstep() == 0 {
            v == self.source
        } else {
            match messages.iter().min() {
                Some(&best) if best < *value => {
                    *value = best;
                    true
                }
                _ => false,
            }
        };
        if improved {
            let next = *value + 1;
            for &t in g.neighbors(v) {
                ctx.send(t, next);
            }
        }
    }
}

/// PageRank with dangling-mass redistribution via the global aggregate.
pub struct PageRankProgram {
    /// Number of rank updates.
    pub iterations: u32,
    /// Damping factor (0.85 in Graphalytics).
    pub damping: f64,
}

impl VertexProgram for PageRankProgram {
    type Value = f64;
    type Message = f64;

    fn initial_value(&self, _v: VertexId, g: &Graph) -> f64 {
        1.0 / g.num_vertices() as f64
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn compute(
        &self,
        ctx: &mut Context<f64>,
        v: VertexId,
        value: &mut f64,
        messages: &[f64],
        g: &Graph,
    ) {
        let n = g.num_vertices() as f64;
        let s = ctx.superstep();
        if s > 0 {
            let sum: f64 = messages.iter().sum();
            *value = (1.0 - self.damping) / n
                + self.damping * ctx.prev_aggregate() / n
                + self.damping * sum;
        }
        if s < self.iterations {
            let deg = g.out_degree(v);
            if deg > 0 {
                let share = *value / deg as f64;
                for &t in g.neighbors(v) {
                    ctx.send(t, share);
                }
            }
            ctx.remain_active();
        }
    }

    fn aggregate(&self, v: VertexId, value: &f64, g: &Graph) -> f64 {
        // Dangling mass: rank held by vertices without out-edges.
        if g.out_degree(v) == 0 {
            *value
        } else {
            0.0
        }
    }
}

/// Weakly-connected components by min-label propagation (undirected view).
pub struct WccProgram;

impl VertexProgram for WccProgram {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, v: VertexId, _g: &Graph) -> u32 {
        v
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn compute(
        &self,
        ctx: &mut Context<u32>,
        v: VertexId,
        value: &mut u32,
        messages: &[u32],
        g: &Graph,
    ) {
        let improved = if ctx.superstep() == 0 {
            true
        } else {
            match messages.iter().min() {
                Some(&best) if best < *value => {
                    *value = best;
                    true
                }
                _ => false,
            }
        };
        if improved {
            for &t in g.neighbors(v).iter().chain(g.in_neighbors(v)) {
                ctx.send(t, *value);
            }
        }
    }
}

/// Single-source shortest paths (Bellman-Ford-style relaxation).
pub struct SsspProgram {
    /// Source vertex.
    pub source: VertexId,
}

impl VertexProgram for SsspProgram {
    type Value = f64;
    type Message = f64;

    fn initial_value(&self, v: VertexId, _g: &Graph) -> f64 {
        if v == self.source {
            0.0
        } else {
            f64::INFINITY
        }
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.source
    }

    fn compute(
        &self,
        ctx: &mut Context<f64>,
        v: VertexId,
        value: &mut f64,
        messages: &[f64],
        g: &Graph,
    ) {
        let improved = if ctx.superstep() == 0 {
            v == self.source
        } else {
            match messages.iter().copied().fold(f64::INFINITY, f64::min) {
                best if best < *value => {
                    *value = best;
                    true
                }
                _ => false,
            }
        };
        if improved {
            let neighbors = g.neighbors(v);
            for (i, &t) in neighbors.iter().enumerate() {
                let w = g.edge_weights(v).map_or(1.0, |ws| ws[i] as f64);
                ctx.send(t, *value + w);
            }
        }
    }
}

/// Community detection by synchronous label propagation.
pub struct CdlpProgram {
    /// Number of label updates.
    pub iterations: u32,
}

impl VertexProgram for CdlpProgram {
    type Value = u32;
    type Message = u32;

    fn initial_value(&self, v: VertexId, _g: &Graph) -> u32 {
        v
    }

    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    fn compute(
        &self,
        ctx: &mut Context<u32>,
        v: VertexId,
        value: &mut u32,
        messages: &[u32],
        g: &Graph,
    ) {
        let s = ctx.superstep();
        if s > 0 && !messages.is_empty() {
            // Most frequent label, ties towards the smallest.
            let mut sorted = messages.to_vec();
            sorted.sort_unstable();
            let (mut best, mut best_count) = (sorted[0], 0u32);
            let mut i = 0;
            while i < sorted.len() {
                let mut j = i;
                while j < sorted.len() && sorted[j] == sorted[i] {
                    j += 1;
                }
                let count = (j - i) as u32;
                if count > best_count {
                    best = sorted[i];
                    best_count = count;
                }
                i = j;
            }
            *value = best;
        }
        if s < self.iterations {
            // Send the label along out-edges and in-edges: the receiver sees
            // the same multiset of neighbour labels as the reference CDLP.
            for &t in g.neighbors(v).iter().chain(g.in_neighbors(v)) {
                ctx.send(t, *value);
            }
            ctx.remain_active();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsim_graph::gen::{datagen_like, with_uniform_weights, GenConfig};
    use gpsim_graph::{algos, EdgeCutPartition};

    fn graph() -> Graph {
        datagen_like(&GenConfig::datagen(2_000, 99))
    }

    fn partition(g: &Graph) -> EdgeCutPartition {
        EdgeCutPartition::hash(g.num_vertices(), 8)
    }

    #[test]
    fn bfs_matches_reference() {
        let g = graph();
        let p = partition(&g);
        let out = run(&g, &p, &BfsProgram { source: 1 }, 1_000);
        assert_eq!(out.values, algos::bfs(&g, 1));
    }

    #[test]
    fn flat_bfs_matches_generic_engine() {
        // Values AND every per-superstep counter must be identical: the
        // Giraph DAG is built from these counters, so any divergence would
        // change full-scale makespans.
        for (vertices, seed, source) in [(2_000, 99, 1u32), (5_000, 7, 42), (300, 3, 0)] {
            let g = datagen_like(&GenConfig::datagen(vertices, seed));
            let p = EdgeCutPartition::hash(g.num_vertices(), 8);
            let generic = run(&g, &p, &BfsProgram { source }, 1_000);
            let flat = run_bfs_flat(&g, &p, source, 1_000);
            assert_eq!(flat.values, generic.values, "seed {seed}");
            assert_eq!(flat.supersteps, generic.supersteps, "seed {seed}");
        }
    }

    #[test]
    fn flat_bfs_handles_self_loops_and_duplicate_edges() {
        let g = Graph::from_edges(4, &[(0, 0), (0, 1), (0, 1), (1, 2), (2, 0), (3, 3)]);
        let p = EdgeCutPartition::hash(4, 2);
        let generic = run(&g, &p, &BfsProgram { source: 0 }, 100);
        let flat = run_bfs_flat(&g, &p, 0, 100);
        assert_eq!(flat.values, generic.values);
        assert_eq!(flat.supersteps, generic.supersteps);
    }

    #[test]
    fn run_bfs_dispatches_below_threshold() {
        let g = graph();
        let p = partition(&g);
        let via_dispatch = run_bfs(&g, &p, 1, 1_000);
        let generic = run(&g, &p, &BfsProgram { source: 1 }, 1_000);
        assert_eq!(via_dispatch.values, generic.values);
        assert_eq!(via_dispatch.supersteps, generic.supersteps);
    }

    #[test]
    fn flat_bfs_respects_superstep_cap() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = EdgeCutPartition::hash(5, 2);
        let out = run_bfs_flat(&g, &p, 0, 2);
        assert_eq!(out.supersteps.len(), 2);
        assert_eq!(out.values, vec![0, 1, u32::MAX, u32::MAX, u32::MAX]);
    }

    #[test]
    fn bfs_superstep_count_is_depth_plus_one() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let p = EdgeCutPartition::hash(4, 2);
        let out = run(&g, &p, &BfsProgram { source: 0 }, 100);
        // Supersteps 0..=3 propagate the frontier one hop each; vertex 3 has
        // no out-edges, so nothing runs afterwards -> 4 executed supersteps.
        assert_eq!(out.supersteps.len(), 4);
        assert_eq!(out.values, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = graph();
        let p = partition(&g);
        let out = run(
            &g,
            &p,
            &PageRankProgram {
                iterations: 10,
                damping: 0.85,
            },
            100,
        );
        let reference = algos::pagerank(&g, 10, 0.85);
        for (a, b) in out.values.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn wcc_matches_reference() {
        let g = graph();
        let p = partition(&g);
        let out = run(&g, &p, &WccProgram, 1_000);
        assert_eq!(out.values, algos::wcc(&g));
    }

    #[test]
    fn sssp_matches_reference() {
        let g = with_uniform_weights(&graph(), 4.0, 5);
        let p = partition(&g);
        let out = run(&g, &p, &SsspProgram { source: 1 }, 10_000);
        let reference = algos::sssp(&g, 1);
        for (a, b) in out.values.iter().zip(&reference) {
            if b.is_infinite() {
                assert!(a.is_infinite());
            } else {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn cdlp_matches_reference() {
        let g = graph();
        let p = partition(&g);
        let out = run(&g, &p, &CdlpProgram { iterations: 5 }, 100);
        assert_eq!(out.values, algos::cdlp(&g, 5));
    }

    #[test]
    fn superstep_counters_are_consistent() {
        let g = graph();
        let p = partition(&g);
        let out = run(&g, &p, &BfsProgram { source: 1 }, 1_000);
        for ss in &out.supersteps {
            let sent: u64 = ss.per_worker.iter().map(|w| w.messages_sent).sum();
            let received: u64 = ss.per_worker.iter().map(|w| w.messages_received).sum();
            let matrix: u64 = ss.remote_messages.iter().flatten().sum();
            assert_eq!(sent, received);
            assert_eq!(sent, matrix);
        }
        // BFS on a connected-ish social graph: middle supersteps carry the
        // bulk of the frontier.
        let actives: Vec<u64> = out.supersteps.iter().map(|s| s.total_active()).collect();
        let peak = actives.iter().copied().max().unwrap();
        assert!(peak > actives[0], "frontier should grow: {actives:?}");
    }

    #[test]
    fn max_supersteps_caps_execution() {
        let g = graph();
        let p = partition(&g);
        let out = run(
            &g,
            &p,
            &PageRankProgram {
                iterations: 50,
                damping: 0.85,
            },
            3,
        );
        assert_eq!(out.supersteps.len(), 3);
    }

    #[test]
    fn workers_see_disjoint_active_vertices() {
        let g = graph();
        let p = partition(&g);
        let out = run(&g, &p, &WccProgram, 1_000);
        // Superstep 0: every vertex computes exactly once across workers.
        assert_eq!(out.supersteps[0].total_active(), g.num_vertices() as u64);
    }
}
