//! The PowerGraph-like platform driver.
//!
//! GAS on MPI-like provisioning with shared-filesystem storage, modeled
//! after PowerGraph 2.2 as characterized in Table 1. The structural
//! fidelity the paper's analysis depends on is the **loader**: one machine
//! reads and parses the entire input sequentially from the shared
//! filesystem while every other machine idles; only at the end of loading
//! do the others receive their edge partitions and participate in building
//! the in-memory graph (paper §4.3, Figure 7).

use gpsim_cluster::{
    ActivityGraph, ActivityId, ActivityKind, ClusterSpec, FaultPlan, NodeCrash, NodeId, SimError,
    Simulation,
};
use gpsim_graph::{Graph, VertexCutPartition};
use granula_model::{Actor, InfoValue, Mission};

use crate::common::{
    memory_samples, trace_to_samples, Algorithm, AlgorithmOutput, JobConfig, MemoryPhase,
    PlatformRun,
};
use crate::gas::{self, IterationMode, IterationStats};
use crate::ops::{emit_events, OpSpec};

/// Pipeline stages of the sequential loader (read chunk ↔ parse chunk).
const LOAD_CHUNKS: u32 = 16;

/// PowerGraph-like platform configuration.
#[derive(Debug, Clone)]
pub struct PowerGraphPlatform {
    /// `mpirun` + daemon startup latency, µs.
    pub mpirun_us: f64,
    /// Per-rank handshake latency, µs.
    pub per_rank_us: f64,
    /// MPI finalize latency, µs.
    pub finalize_us: f64,
    /// Parallelism of the sequential loader (PowerGraph's text parser is
    /// effectively single-threaded; 1-2 threads).
    pub loader_threads: u32,
    /// Iteration cap for convergent algorithms.
    pub max_iterations: u32,
    /// Time for the MPI runtime to notice a dead rank and abort the job
    /// (fail-stop), µs.
    pub failure_detect_us: f64,
}

impl Default for PowerGraphPlatform {
    fn default() -> Self {
        PowerGraphPlatform {
            mpirun_us: 4.0e6,
            per_rank_us: 0.2e6,
            finalize_us: 3.0e6,
            loader_threads: 2,
            max_iterations: 10_000,
            failure_detect_us: 2.0e6,
        }
    }
}

fn run_program(
    g: &Graph,
    part: &VertexCutPartition,
    algorithm: Algorithm,
    max_iterations: u32,
) -> (AlgorithmOutput, Vec<IterationStats>) {
    match algorithm {
        Algorithm::Bfs { source } => {
            let out = gas::run(
                g,
                part,
                &mut gas::BfsGas { source },
                IterationMode::Converge {
                    max: max_iterations,
                },
            );
            (AlgorithmOutput::Levels(out.values), out.iterations)
        }
        Algorithm::PageRank { iterations } => {
            let out = gas::run_pagerank_gas(g, part, iterations, 0.85);
            (AlgorithmOutput::Ranks(out.values), out.iterations)
        }
        Algorithm::Wcc => {
            let out = gas::run(
                g,
                part,
                &mut gas::WccGas,
                IterationMode::Converge {
                    max: max_iterations,
                },
            );
            (AlgorithmOutput::Labels(out.values), out.iterations)
        }
        Algorithm::Sssp { source } => {
            let out = gas::run(
                g,
                part,
                &mut gas::SsspGas { source },
                IterationMode::Converge {
                    max: max_iterations,
                },
            );
            (AlgorithmOutput::Distances(out.values), out.iterations)
        }
        Algorithm::Cdlp { iterations } => {
            let out = gas::run(g, part, &mut gas::CdlpGas, IterationMode::Fixed(iterations));
            (AlgorithmOutput::Labels(out.values), out.iterations)
        }
    }
}

impl PowerGraphPlatform {
    /// Runs a job on a DAS5-like cluster with `cfg.nodes` nodes.
    pub fn run(&self, g: &Graph, cfg: &JobConfig) -> Result<PlatformRun, SimError> {
        self.run_on(g, cfg, &ClusterSpec::das5(cfg.nodes))
    }

    /// Runs a job on a DAS5-like cluster under an injected fault plan.
    pub fn run_with_faults(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        plan: &FaultPlan,
    ) -> Result<PlatformRun, SimError> {
        self.run_on_with_faults(g, cfg, &ClusterSpec::das5(cfg.nodes), plan)
    }

    /// Runs a job on an explicit cluster.
    pub fn run_on(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        cluster: &ClusterSpec,
    ) -> Result<PlatformRun, SimError> {
        self.run_on_with_faults(g, cfg, cluster, &FaultPlan::default())
    }

    /// Runs a job on an explicit cluster under an injected fault plan.
    ///
    /// PowerGraph has no checkpointing: MPI is fail-stop, so a node crash
    /// aborts the whole job once the runtime notices the dead rank, and the
    /// job is resubmitted from scratch. The aborted attempt keeps its
    /// original operation tags (truncated at the abort), the restart runs
    /// under `job/r1/` with `:r1`-suffixed mission ids, and the abort +
    /// respawn window is emitted as a `Recover` operation (with
    /// `DetectFailure` and `Respawn` children) carrying the lost node and
    /// the wasted first-attempt time.
    ///
    /// Only the earliest crash in the plan is modeled (one restart); later
    /// crashes are dropped from the executed plan.
    pub fn run_on_with_faults(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        cluster: &ClusterSpec,
        plan: &FaultPlan,
    ) -> Result<PlatformRun, SimError> {
        assert!(
            cluster.len() >= cfg.nodes as usize && cfg.nodes > 0,
            "cluster too small for {} machines",
            cfg.nodes
        );
        let k = cfg.nodes;
        let costs = &cfg.costs;
        let scale = cfg.scale_factor;
        let part = VertexCutPartition::greedy(g, k);
        let (output, iterations) = {
            let _span = granula_trace::span!("platform", "powergraph.gas_program {}", cfg.job_id);
            run_program(g, &part, cfg.algorithm, self.max_iterations)
        };

        // Per-machine sizes.
        let edge_sizes = part.sizes();
        let mut masters = vec![0u64; k as usize];
        for v in 0..g.num_vertices() {
            masters[part.master_of(v) as usize] += 1;
        }
        let total_bytes = (g.num_vertices() as f64 * 10.0
            + g.num_edges() as f64 * costs.bytes_per_edge_in)
            * scale;

        let crash = plan
            .crashes
            .iter()
            .min_by(|a, b| a.at_us.total_cmp(&b.at_us))
            .cloned();

        let mut b = PgBuild::new(
            self,
            cfg,
            cluster,
            &iterations,
            &edge_sizes,
            &masters,
            total_bytes,
            part.replication_factor(),
        );
        b.job("job/", "", &[]);

        let Some(crash) = crash else {
            return b.finish(plan, output);
        };

        // Fail-stop: simulate the first attempt under slowdowns only to
        // learn which activities had started when the job aborted.
        let recovery_span =
            granula_trace::span!("platform", "powergraph.recovery.build {}", cfg.job_id);
        let slow_plan = FaultPlan {
            crashes: Vec::new(),
            slowdowns: plan.slowdowns.clone(),
        };
        let probe_sim = Simulation::new(cluster.clone()).run_with_faults(&b.dag, &slow_plan)?;
        let t_eff = crash
            .at_us
            .clamp(1.0, (probe_sim.makespan_us - 1.0).max(1.0));

        // Truncate the first attempt to the activities that had started
        // before the abort. The kept set is dependency-closed (an activity
        // starts only after its dependencies ended), so ids remap cleanly.
        // Specs keep their tags: operations that never started have no span
        // and are skipped at emission.
        let mut kept = ActivityGraph::new();
        let mut map: Vec<Option<ActivityId>> = Vec::with_capacity(b.dag.len());
        for a in b.dag.iter() {
            if probe_sim.results[a.id.0 as usize].start_us >= t_eff {
                map.push(None);
                continue;
            }
            let deps: Vec<ActivityId> = a.deps.iter().filter_map(|d| map[d.0 as usize]).collect();
            map.push(Some(kept.add(*a.kind, &deps, a.tag_symbol())));
        }
        b.dag = kept;

        // Abort + resubmit: detection of the dead rank, then a full MPI
        // respawn, then the whole job again under `job/r1/`.
        let head = b.head.clone();
        let recover_key = (Actor::new("Master", "0"), Mission::new("Recover", "0"));
        b.specs.push(
            OpSpec::new(
                Actor::new("Master", "0"),
                Mission::new("Recover", "0"),
                Some(b.job_key.clone()),
                "job/fail/",
                &head,
                "mpirun",
            )
            .with_info(
                "FailedNode",
                InfoValue::Text(cluster.node(crash.node).name.clone()),
            )
            .with_info("WastedUs", InfoValue::Int(t_eff.round() as i64)),
        );
        // The crash anchor pins failure detection to the injected instant.
        let anchor = b.dag.add(
            ActivityKind::Delay { duration_us: t_eff },
            &[],
            "job/meta/t-crash",
        );
        let detect = b.dag.add(
            ActivityKind::Delay {
                duration_us: self.failure_detect_us,
            },
            &[anchor],
            "job/fail/detect",
        );
        b.specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("DetectFailure", "0"),
            Some(recover_key.clone()),
            "job/fail/detect",
            &head,
            "mpirun",
        ));
        let mpirun = b.dag.add(
            ActivityKind::Delay {
                duration_us: self.mpirun_us,
            },
            &[detect],
            "job/fail/respawn/mpi/daemon",
        );
        let mut ranks: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for m in 0..k {
            ranks.push(b.dag.add(
                ActivityKind::Delay {
                    duration_us: self.per_rank_us,
                },
                &[mpirun],
                format!("job/fail/respawn/mpi/rank-{m}"),
            ));
        }
        let respawned = b.dag.barrier(&ranks, "job/fail/respawn/ready");
        b.specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("Respawn", "0"),
            Some(recover_key),
            "job/fail/respawn/",
            &head,
            "mpirun",
        ));
        b.job("job/r1/", ":r1", &[respawned]);
        drop(recovery_span);

        // Every rank dies with the job at the abort instant and is back for
        // the restart; the lost node itself is replaced within the same
        // window.
        let exec_plan = FaultPlan {
            crashes: (0..k)
                .map(|m| NodeCrash {
                    node: NodeId(m),
                    at_us: t_eff,
                    restart_after_us: Some(self.failure_detect_us),
                })
                .collect(),
            slowdowns: plan.slowdowns.clone(),
        };
        b.finish(&exec_plan, output)
    }
}

/// DAG + spec builder for one full PowerGraph job attempt; the fail-stop
/// path builds two attempts into the same graph.
struct PgBuild<'a> {
    p: &'a PowerGraphPlatform,
    cfg: &'a JobConfig,
    cluster: &'a ClusterSpec,
    iterations: &'a [IterationStats],
    edge_sizes: &'a [u64],
    masters: &'a [u64],
    total_bytes: f64,
    dag: ActivityGraph,
    specs: Vec<OpSpec>,
    job_actor: Actor,
    job_key: (Actor, Mission),
    head: String,
}

impl<'a> PgBuild<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        p: &'a PowerGraphPlatform,
        cfg: &'a JobConfig,
        cluster: &'a ClusterSpec,
        iterations: &'a [IterationStats],
        edge_sizes: &'a [u64],
        masters: &'a [u64],
        total_bytes: f64,
        replication_factor: f64,
    ) -> Self {
        let job_actor = Actor::new("Job", "0");
        let job_mission = Mission::new("PowerGraphJob", "0");
        let job_key = (job_actor.clone(), job_mission.clone());
        let head = cluster.node(NodeId(0)).name.clone();
        let specs: Vec<OpSpec> = vec![OpSpec::new(
            job_actor.clone(),
            job_mission,
            None,
            "job/",
            &head,
            "mpirun",
        )
        .with_info("Platform", InfoValue::Text("PowerGraph".into()))
        .with_info("Algorithm", InfoValue::Text(cfg.algorithm.name().into()))
        .with_info("Dataset", InfoValue::Text(cfg.dataset.clone()))
        .with_info("Machines", InfoValue::Int(cfg.nodes as i64))
        .with_info("ReplicationFactor", InfoValue::Float(replication_factor))];
        PgBuild {
            p,
            cfg,
            cluster,
            iterations,
            edge_sizes,
            masters,
            total_bytes,
            dag: ActivityGraph::new(),
            specs,
            job_actor,
            job_key,
            head,
        }
    }

    fn node_name(&self, m: u16) -> String {
        self.cluster.node(NodeId(m)).name.clone()
    }

    fn domain(&self, mission: &str, suffix: &str) -> (Actor, Mission) {
        (
            self.job_actor.clone(),
            Mission::new(mission, format!("0{suffix}")),
        )
    }

    /// One full job attempt. `prefix` replaces the leading `job/` of every
    /// activity tag (`job/r1/` for the restart); `suffix` is appended to
    /// every mission id so the restarted operations stay distinct in the
    /// archive; `deps` gates the attempt's first activity.
    fn job(&mut self, prefix: &str, suffix: &str, deps: &[ActivityId]) {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let head = self.head.clone();

        // -------------------------------------------------- Startup (L1)
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("Startup", format!("0{suffix}")),
            Some(self.job_key.clone()),
            format!("{prefix}startup/"),
            &head,
            "mpirun",
        ));
        let mpirun = self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.mpirun_us,
            },
            deps,
            format!("{prefix}startup/mpi/daemon"),
        );
        let mut ranks: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for m in 0..k {
            ranks.push(self.dag.add(
                ActivityKind::Delay {
                    duration_us: self.p.per_rank_us,
                },
                &[mpirun],
                format!("{prefix}startup/mpi/rank-{m}"),
            ));
        }
        self.specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("MpiSetup", format!("0{suffix}")),
            Some(self.domain("Startup", suffix)),
            format!("{prefix}startup/mpi/"),
            &head,
            "mpirun",
        ));
        let started = self.dag.barrier(&ranks, format!("{prefix}startup/ready"));

        // ------------------------------------------------ LoadGraph (L1)
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("LoadGraph", format!("0{suffix}")),
            Some(self.job_key.clone()),
            format!("{prefix}load/"),
            &head,
            "machine-0",
        ));
        // Sequential read + parse pipeline, all on machine 0.
        self.specs.push(
            OpSpec::new(
                Actor::new("Machine", "0"),
                Mission::new("SequentialLoad", format!("0{suffix}")),
                Some(self.domain("LoadGraph", suffix)),
                format!("{prefix}load/seq/"),
                &head,
                "machine-0",
            )
            .with_info(
                "InputBytes",
                InfoValue::Int(self.total_bytes.round() as i64),
            ),
        );
        let chunk = self.total_bytes / LOAD_CHUNKS as f64;
        let mut prev_read = started;
        let mut prev_parse: Option<ActivityId> = None;
        for c in 0..LOAD_CHUNKS {
            let read = self.dag.add(
                ActivityKind::SharedRead {
                    node: NodeId(0),
                    bytes: chunk,
                },
                &[prev_read],
                format!("{prefix}load/seq/read/c{c}"),
            );
            // The parser is sequential: chunk c+1 is parsed only after chunk
            // c — reads are pipelined ahead, parsing is the bottleneck.
            let deps: Vec<ActivityId> = match prev_parse {
                Some(p) => vec![read, p],
                None => vec![read],
            };
            let parse = self.dag.add(
                ActivityKind::Compute {
                    node: NodeId(0),
                    work_core_us: chunk * costs.parse_cpu_us_per_byte,
                    parallelism: self.p.loader_threads,
                },
                &deps,
                format!("{prefix}load/seq/parse/c{c}"),
            );
            prev_read = read;
            prev_parse = Some(parse);
        }
        let parsed = self.dag.barrier(
            &[prev_parse.expect("LOAD_CHUNKS > 0")],
            format!("{prefix}load/seq/done"),
        );

        // Distribute edge partitions to the other machines.
        self.specs.push(OpSpec::new(
            Actor::new("Machine", "0"),
            Mission::new("DistributeEdges", format!("0{suffix}")),
            Some(self.domain("LoadGraph", suffix)),
            format!("{prefix}load/dist/"),
            &head,
            "machine-0",
        ));
        let mut finalize_deps: Vec<(u16, ActivityId)> = vec![(0, parsed)];
        for m in 1..k {
            let bytes = self.edge_sizes[m as usize] as f64 * costs.bytes_per_edge_in * scale;
            let xfer = self.dag.add(
                ActivityKind::Transfer {
                    src: NodeId(0),
                    dst: NodeId(m),
                    bytes,
                },
                &[parsed],
                format!("{prefix}load/dist/m{m}"),
            );
            finalize_deps.push((m, xfer));
        }

        // All machines build their local graph structures.
        let mut built: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for (m, dep) in finalize_deps {
            let build = self.dag.add(
                ActivityKind::Compute {
                    node: NodeId(m),
                    work_core_us: self.edge_sizes[m as usize] as f64
                        * scale
                        * costs.build_cpu_us_per_edge,
                    parallelism: costs.worker_threads,
                },
                &[dep],
                format!("{prefix}load/fin/m{m}/build"),
            );
            self.specs.push(
                OpSpec::new(
                    Actor::new("Machine", m.to_string()),
                    Mission::new("FinalizeGraph", format!("0{suffix}")),
                    Some(self.domain("LoadGraph", suffix)),
                    format!("{prefix}load/fin/m{m}/"),
                    self.node_name(m),
                    format!("machine-{m}"),
                )
                .with_info(
                    "LocalEdges",
                    InfoValue::Int((self.edge_sizes[m as usize] as f64 * scale).round() as i64),
                ),
            );
            built.push(build);
        }
        let all_loaded = self.dag.barrier(&built, format!("{prefix}load/all-loaded"));

        // ---------------------------------------------- ProcessGraph (L1)
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("ProcessGraph", format!("0{suffix}")),
            Some(self.job_key.clone()),
            format!("{prefix}proc/"),
            &head,
            "machine-0",
        ));
        let mut prev_barrier = all_loaded;
        for it in self.iterations {
            let t = it.iteration;
            let it_tag = format!("{prefix}proc/it{t}/");
            self.specs.push(
                OpSpec::new(
                    self.job_actor.clone(),
                    Mission::new("Iteration", format!("{t}{suffix}")),
                    Some(self.domain("ProcessGraph", suffix)),
                    it_tag.clone(),
                    &head,
                    "machine-0",
                )
                .with_info(
                    "ActiveVertices",
                    InfoValue::Int((it.active_vertices as f64 * scale).round() as i64),
                ),
            );
            let iter_parent = (
                self.job_actor.clone(),
                Mission::new("Iteration", format!("{t}{suffix}")),
            );

            let _it_span = granula_trace::span!("platform", "powergraph.iteration.build {it_tag}");

            // Gather minor-step on every machine.
            let gather_span = granula_trace::span!("platform", "powergraph.gather.build {it_tag}");
            let mut gathers: Vec<ActivityId> = Vec::with_capacity(k as usize);
            for m in 0..k {
                let stats = &it.per_machine[m as usize];
                let work = (stats.gather_edges as f64 * costs.compute_us_per_edge) * scale;
                let gather = self.dag.add(
                    ActivityKind::Compute {
                        node: NodeId(m),
                        work_core_us: work.max(500.0),
                        parallelism: costs.worker_threads,
                    },
                    &[prev_barrier],
                    format!("{it_tag}m{m}/gather"),
                );
                self.specs.push(
                    OpSpec::new(
                        Actor::new("Machine", m.to_string()),
                        Mission::new("Gather", format!("{t}{suffix}")),
                        Some(iter_parent.clone()),
                        format!("{it_tag}m{m}/gather"),
                        self.node_name(m),
                        format!("machine-{m}"),
                    )
                    .with_info(
                        "GatherEdges",
                        InfoValue::Int((stats.gather_edges as f64 * scale).round() as i64),
                    ),
                );
                gathers.push(gather);
            }

            drop(gather_span);

            // Exchange: replica syncs between machines.
            let exchange_span =
                granula_trace::span!("platform", "powergraph.exchange.build {it_tag}");
            let mut exchanges: Vec<ActivityId> = Vec::new();
            let mut sync_total = 0u64;
            #[allow(clippy::needless_range_loop)] // machine ids index the matrix
            for a in 0..k as usize {
                for b in 0..k as usize {
                    let count = it.sync_matrix[a][b];
                    if count == 0 {
                        continue;
                    }
                    sync_total += count;
                    exchanges.push(self.dag.add(
                        ActivityKind::Transfer {
                            src: NodeId(a as u16),
                            dst: NodeId(b as u16),
                            bytes: count as f64 * costs.bytes_per_message * scale,
                        },
                        &[gathers[a]],
                        format!("{it_tag}ex/a{a}b{b}"),
                    ));
                }
            }
            let exchange_done = if exchanges.is_empty() {
                self.dag.barrier(&gathers, format!("{it_tag}ex/none"))
            } else {
                let mut deps = exchanges.clone();
                deps.extend_from_slice(&gathers);
                self.dag.barrier(&deps, format!("{it_tag}ex/join"))
            };
            if !exchanges.is_empty() {
                self.specs.push(
                    OpSpec::new(
                        Actor::new("Master", "0"),
                        Mission::new("Exchange", format!("{t}{suffix}")),
                        Some(iter_parent.clone()),
                        format!("{it_tag}ex/"),
                        &head,
                        "machine-0",
                    )
                    .with_info(
                        "SyncMessages",
                        InfoValue::Int((sync_total as f64 * scale).round() as i64),
                    ),
                );
            }

            drop(exchange_span);

            // Apply + scatter per machine.
            let apply_span =
                granula_trace::span!("platform", "powergraph.apply_scatter.build {it_tag}");
            let mut scatters: Vec<ActivityId> = Vec::with_capacity(k as usize);
            for m in 0..k {
                let stats = &it.per_machine[m as usize];
                let apply = self.dag.add(
                    ActivityKind::Compute {
                        node: NodeId(m),
                        work_core_us: (stats.apply_vertices as f64
                            * costs.compute_us_per_vertex
                            * scale)
                            .max(200.0),
                        parallelism: costs.worker_threads,
                    },
                    &[exchange_done],
                    format!("{it_tag}m{m}/apply"),
                );
                self.specs.push(OpSpec::new(
                    Actor::new("Machine", m.to_string()),
                    Mission::new("Apply", format!("{t}{suffix}")),
                    Some(iter_parent.clone()),
                    format!("{it_tag}m{m}/apply"),
                    self.node_name(m),
                    format!("machine-{m}"),
                ));
                let scatter = self.dag.add(
                    ActivityKind::Compute {
                        node: NodeId(m),
                        work_core_us: (stats.scatter_edges as f64
                            * costs.compute_us_per_edge
                            * 0.5
                            * scale)
                            .max(200.0),
                        parallelism: costs.worker_threads,
                    },
                    &[apply],
                    format!("{it_tag}m{m}/scatter"),
                );
                self.specs.push(OpSpec::new(
                    Actor::new("Machine", m.to_string()),
                    Mission::new("Scatter", format!("{t}{suffix}")),
                    Some(iter_parent.clone()),
                    format!("{it_tag}m{m}/scatter"),
                    self.node_name(m),
                    format!("machine-{m}"),
                ));
                scatters.push(scatter);
            }
            drop(apply_span);
            let join = self.dag.barrier(&scatters, format!("{it_tag}barrier/join"));
            prev_barrier = self.dag.add(
                ActivityKind::Delay {
                    duration_us: costs.barrier_us,
                },
                &[join],
                format!("{it_tag}barrier/sync"),
            );
        }

        // --------------------------------------------- OffloadGraph (L1)
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("OffloadGraph", format!("0{suffix}")),
            Some(self.job_key.clone()),
            format!("{prefix}offload/"),
            &head,
            "machine-0",
        ));
        let mut offloads: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for m in 0..k {
            let bytes = self.masters[m as usize] as f64 * costs.bytes_per_vertex_out * scale;
            let write = self.dag.add(
                ActivityKind::SharedRead {
                    node: NodeId(m),
                    bytes,
                },
                &[prev_barrier],
                format!("{prefix}offload/m{m}/write"),
            );
            self.specs.push(
                OpSpec::new(
                    Actor::new("Machine", m.to_string()),
                    Mission::new("LocalOffload", format!("0{suffix}")),
                    Some(self.domain("OffloadGraph", suffix)),
                    format!("{prefix}offload/m{m}/"),
                    self.node_name(m),
                    format!("machine-{m}"),
                )
                .with_info("OutputBytes", InfoValue::Int(bytes.round() as i64)),
            );
            offloads.push(write);
        }
        let all_offloaded = self.dag.barrier(&offloads, format!("{prefix}offload/done"));

        // -------------------------------------------------- Cleanup (L1)
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("Cleanup", format!("0{suffix}")),
            Some(self.job_key.clone()),
            format!("{prefix}cleanup/"),
            &head,
            "mpirun",
        ));
        self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.finalize_us,
            },
            &[all_offloaded],
            format!("{prefix}cleanup/finalize"),
        );
        self.specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("MpiFinalize", format!("0{suffix}")),
            Some(self.domain("Cleanup", suffix)),
            format!("{prefix}cleanup/finalize"),
            &head,
            "mpirun",
        ));
    }

    // ------------------------------------------------------- Simulate
    fn finish(self, plan: &FaultPlan, output: AlgorithmOutput) -> Result<PlatformRun, SimError> {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let sim = {
            let _span = granula_trace::span!("platform", "powergraph.simulate {}", self.cfg.job_id);
            Simulation::new(self.cluster.clone()).run_with_faults(&self.dag, plan)?
        };
        let events = {
            let _span =
                granula_trace::span!("platform", "powergraph.emit_events {}", self.cfg.job_id);
            emit_events(&self.specs, &self.dag, &sim)
        };
        let mut env_samples = trace_to_samples(&sim.trace);
        // Memory view. Machine 0 temporarily holds the *entire* parsed edge
        // list as a staging buffer during the sequential load, released once
        // partitions have been distributed — the memory-pressure signature
        // of the single-loader design. Partitions then stay resident until
        // MPI finalize. A restarted attempt repeats the pattern under its
        // own tag prefix.
        let mut phases = Vec::with_capacity(2 * (k as usize + 1));
        for prefix in ["job/", "job/r1/"] {
            if prefix == "job/r1/" && sim.span_of_tag(&self.dag, prefix).is_none() {
                continue;
            }
            let release = sim
                .span_of_tag(&self.dag, &format!("{prefix}cleanup/"))
                .map(|(s, _)| s.round() as u64)
                .unwrap_or(sim.makespan_us.round() as u64);
            if let (Some((ss, se)), Some((_, de))) = (
                sim.span_of_tag(&self.dag, &format!("{prefix}load/seq/")),
                sim.span_of_tag(&self.dag, &format!("{prefix}load/dist/"))
                    .or(sim.span_of_tag(&self.dag, &format!("{prefix}load/seq/"))),
            ) {
                phases.push(MemoryPhase {
                    node: self.head.clone(),
                    ramp_start_us: ss.round() as u64,
                    ramp_end_us: se.round() as u64,
                    hold_until_us: de.round() as u64,
                    bytes: self.total_bytes,
                });
            }
            for m in 0..k {
                if let Some((fs, fe)) =
                    sim.span_of_tag(&self.dag, &format!("{prefix}load/fin/m{m}/"))
                {
                    phases.push(MemoryPhase {
                        node: self.node_name(m),
                        ramp_start_us: fs.round() as u64,
                        ramp_end_us: fe.round() as u64,
                        hold_until_us: release,
                        bytes: self.edge_sizes[m as usize] as f64
                            * scale
                            * costs.bytes_per_edge_mem,
                    });
                }
            }
        }
        env_samples.extend(memory_samples(&phases, sim.makespan_us.round() as u64));
        Ok(PlatformRun {
            events,
            env_samples,
            output,
            makespan_us: sim.makespan_us.round() as u64,
            iterations: self.iterations.len() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{reference_output, CostModel};
    use gpsim_graph::gen::{datagen_like, GenConfig};
    use granula_monitor::{Assembler, ResourceKind};

    fn job(algorithm: Algorithm) -> (Graph, JobConfig) {
        let g = datagen_like(&GenConfig::datagen(2_000, 11));
        let cfg = JobConfig::new(
            "test-job",
            "dg-test",
            algorithm,
            8,
            CostModel::powergraph_like(),
        );
        (g, cfg)
    }

    #[test]
    fn bfs_run_produces_correct_output() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
        assert!(run.output.matches(&reference_output(&g, cfg.algorithm)));
        assert!(run.makespan_us > 0);
    }

    #[test]
    fn events_assemble_into_a_clean_tree() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
        let outcome = Assembler::new().assemble(run.events);
        assert!(
            outcome.warnings.is_empty(),
            "{:?}",
            &outcome.warnings[..5.min(outcome.warnings.len())]
        );
        let tree = outcome.tree;
        let root = tree.root().unwrap();
        assert_eq!(tree.op(root).mission.kind, "PowerGraphJob");
        for m in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            assert!(tree.child_by_mission(root, m).is_some(), "missing {m}");
        }
    }

    #[test]
    fn loading_is_sequential_on_one_machine() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let cfg = cfg.with_scale(1_000.0);
        let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
        let tree = Assembler::new().assemble(run.events.clone()).tree;
        let root = tree.root().unwrap();
        let load = tree.child_by_mission(root, "LoadGraph").unwrap();
        let (ls, le) = (
            tree.op(load).start_us().unwrap(),
            tree.op(load).end_us().unwrap(),
        );
        // During the first 60% of LoadGraph, only machine 0 consumes CPU.
        let cutoff = ls + (le - ls) * 6 / 10;
        let mut busy_others = 0.0f64;
        let mut busy_head = 0.0f64;
        for s in &run.env_samples {
            if s.kind == ResourceKind::Cpu && s.time_us >= ls && s.time_us < cutoff {
                if s.node == "node300" {
                    busy_head += s.value;
                } else {
                    busy_others += s.value;
                }
            }
        }
        assert!(busy_head > 0.0, "head node should be busy parsing");
        assert!(
            busy_others < 0.05 * busy_head,
            "other machines should idle during sequential load: head={busy_head} others={busy_others}"
        );
    }

    #[test]
    fn io_dominates_at_dg1000_scale() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        // Emulate a dg1000-sized input from the small logical graph.
        let cfg = cfg.with_scale(25_000.0);
        let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
        let tree = Assembler::new().assemble(run.events).tree;
        let root = tree.root().unwrap();
        let total = tree.op(root).duration_us().unwrap() as f64;
        let load = tree.child_by_mission(root, "LoadGraph").unwrap();
        let load_frac = tree.op(load).duration_us().unwrap() as f64 / total;
        assert!(load_frac > 0.7, "LoadGraph should dominate: {load_frac}");
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        let proc_frac = tree.op(proc_).duration_us().unwrap() as f64 / total;
        assert!(proc_frac < 0.2, "processing should be small: {proc_frac}");
    }

    #[test]
    fn all_algorithms_validate() {
        for algorithm in [
            Algorithm::PageRank { iterations: 4 },
            Algorithm::Wcc,
            Algorithm::Cdlp { iterations: 3 },
        ] {
            let (g, cfg) = job(algorithm);
            let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
            assert!(
                run.output.matches(&reference_output(&g, algorithm)),
                "{algorithm:?}"
            );
        }
    }

    #[test]
    fn empty_fault_plan_is_identical_to_plain_run() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let p = PowerGraphPlatform::default();
        let plain = p.run(&g, &cfg).unwrap();
        let faulted = p.run_with_faults(&g, &cfg, &FaultPlan::new()).unwrap();
        assert_eq!(plain.makespan_us, faulted.makespan_us);
        assert_eq!(plain.events, faulted.events);
    }

    #[test]
    fn crash_triggers_full_restart() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let p = PowerGraphPlatform::default();
        let healthy = p.run(&g, &cfg).unwrap();
        let plan = FaultPlan::new().crash(NodeId(2), healthy.makespan_us as f64 * 0.5);
        let faulty = p.run_with_faults(&g, &cfg, &plan).unwrap();
        assert!(
            faulty.makespan_us > healthy.makespan_us,
            "fail-stop restart must cost time: {} vs {}",
            faulty.makespan_us,
            healthy.makespan_us
        );
        let outcome = Assembler::new().assemble(faulty.events);
        assert!(
            outcome.warnings.is_empty(),
            "{:?}",
            &outcome.warnings[..5.min(outcome.warnings.len())]
        );
        let tree = outcome.tree;
        let root = tree.root().unwrap();
        let recover = tree
            .child_by_mission(root, "Recover")
            .expect("Recover operation");
        for m in ["DetectFailure", "Respawn"] {
            assert!(tree.child_by_mission(recover, m).is_some(), "missing {m}");
        }
        let rec_op = tree.op(recover);
        assert!(rec_op
            .infos
            .iter()
            .any(|i| i.name == "FailedNode" && i.value == InfoValue::Text("node302".into())));
        assert!(rec_op
            .infos
            .iter()
            .any(|i| i.name == "WastedUs" && i.value.as_i64().is_some_and(|v| v > 0)));
        // The restarted attempt runs as distinct `:r1` operations.
        let restarted = tree
            .children(root)
            .filter(|o| o.mission.id.ends_with(":r1"))
            .map(|o| o.mission.kind.clone())
            .collect::<Vec<_>>();
        for m in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            assert!(
                restarted.iter().any(|k| k == m),
                "missing restarted {m}: {restarted:?}"
            );
        }
        // The restart finishes the job: its cleanup ends at the makespan.
        let cleanup2 = tree
            .children(root)
            .find(|o| o.mission.kind == "Cleanup" && o.mission.id.ends_with(":r1"))
            .unwrap();
        assert!(cleanup2.end_us().unwrap() > healthy.makespan_us);
    }

    #[test]
    fn crash_during_load_wastes_only_partial_load() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let p = PowerGraphPlatform::default();
        let healthy = p.run(&g, &cfg).unwrap();
        // Crash early, while machine 0 is still parsing.
        let plan = FaultPlan::new().crash(NodeId(0), healthy.makespan_us as f64 * 0.1);
        let faulty = p.run_with_faults(&g, &cfg, &plan).unwrap();
        let tree = Assembler::new().assemble(faulty.events).tree;
        let root = tree.root().unwrap();
        // The doomed attempt never reached processing.
        assert!(tree
            .children(root)
            .filter(|o| o.mission.kind == "ProcessGraph")
            .all(|o| o.mission.id.ends_with(":r1")));
        let recover = tree.child_by_mission(root, "Recover").unwrap();
        let wasted = tree
            .op(recover)
            .infos
            .iter()
            .find(|i| i.name == "WastedUs")
            .and_then(|i| i.value.as_i64())
            .unwrap();
        assert!(
            (wasted as u64) < healthy.makespan_us / 4,
            "early crash should waste little: {wasted}"
        );
    }
}
