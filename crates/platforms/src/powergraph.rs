//! The PowerGraph-like platform driver.
//!
//! GAS on MPI-like provisioning with shared-filesystem storage, modeled
//! after PowerGraph 2.2 as characterized in Table 1. The structural
//! fidelity the paper's analysis depends on is the **loader**: one machine
//! reads and parses the entire input sequentially from the shared
//! filesystem while every other machine idles; only at the end of loading
//! do the others receive their edge partitions and participate in building
//! the in-memory graph (paper §4.3, Figure 7).

use gpsim_cluster::{
    ActivityGraph, ActivityId, ActivityKind, ClusterSpec, NodeId, SimError, Simulation,
};
use gpsim_graph::{Graph, VertexCutPartition};
use granula_model::{Actor, InfoValue, Mission};

use crate::common::{
    memory_samples, trace_to_samples, Algorithm, AlgorithmOutput, JobConfig, MemoryPhase,
    PlatformRun,
};
use crate::gas::{self, IterationMode, IterationStats};
use crate::ops::{emit_events, OpSpec};

/// Pipeline stages of the sequential loader (read chunk ↔ parse chunk).
const LOAD_CHUNKS: u32 = 16;

/// PowerGraph-like platform configuration.
#[derive(Debug, Clone)]
pub struct PowerGraphPlatform {
    /// `mpirun` + daemon startup latency, µs.
    pub mpirun_us: f64,
    /// Per-rank handshake latency, µs.
    pub per_rank_us: f64,
    /// MPI finalize latency, µs.
    pub finalize_us: f64,
    /// Parallelism of the sequential loader (PowerGraph's text parser is
    /// effectively single-threaded; 1-2 threads).
    pub loader_threads: u32,
    /// Iteration cap for convergent algorithms.
    pub max_iterations: u32,
}

impl Default for PowerGraphPlatform {
    fn default() -> Self {
        PowerGraphPlatform {
            mpirun_us: 4.0e6,
            per_rank_us: 0.2e6,
            finalize_us: 3.0e6,
            loader_threads: 2,
            max_iterations: 10_000,
        }
    }
}

fn run_program(
    g: &Graph,
    part: &VertexCutPartition,
    algorithm: Algorithm,
    max_iterations: u32,
) -> (AlgorithmOutput, Vec<IterationStats>) {
    match algorithm {
        Algorithm::Bfs { source } => {
            let out = gas::run(
                g,
                part,
                &mut gas::BfsGas { source },
                IterationMode::Converge {
                    max: max_iterations,
                },
            );
            (AlgorithmOutput::Levels(out.values), out.iterations)
        }
        Algorithm::PageRank { iterations } => {
            let out = gas::run_pagerank_gas(g, part, iterations, 0.85);
            (AlgorithmOutput::Ranks(out.values), out.iterations)
        }
        Algorithm::Wcc => {
            let out = gas::run(
                g,
                part,
                &mut gas::WccGas,
                IterationMode::Converge {
                    max: max_iterations,
                },
            );
            (AlgorithmOutput::Labels(out.values), out.iterations)
        }
        Algorithm::Sssp { source } => {
            let out = gas::run(
                g,
                part,
                &mut gas::SsspGas { source },
                IterationMode::Converge {
                    max: max_iterations,
                },
            );
            (AlgorithmOutput::Distances(out.values), out.iterations)
        }
        Algorithm::Cdlp { iterations } => {
            let out = gas::run(g, part, &mut gas::CdlpGas, IterationMode::Fixed(iterations));
            (AlgorithmOutput::Labels(out.values), out.iterations)
        }
    }
}

impl PowerGraphPlatform {
    /// Runs a job on a DAS5-like cluster with `cfg.nodes` nodes.
    pub fn run(&self, g: &Graph, cfg: &JobConfig) -> Result<PlatformRun, SimError> {
        self.run_on(g, cfg, &ClusterSpec::das5(cfg.nodes))
    }

    /// Runs a job on an explicit cluster.
    pub fn run_on(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        cluster: &ClusterSpec,
    ) -> Result<PlatformRun, SimError> {
        assert!(
            cluster.len() >= cfg.nodes as usize && cfg.nodes > 0,
            "cluster too small for {} machines",
            cfg.nodes
        );
        let k = cfg.nodes;
        let costs = &cfg.costs;
        let scale = cfg.scale_factor;
        let part = VertexCutPartition::greedy(g, k);
        let (output, iterations) = run_program(g, &part, cfg.algorithm, self.max_iterations);

        // Per-machine sizes.
        let edge_sizes = part.sizes();
        let mut masters = vec![0u64; k as usize];
        for v in 0..g.num_vertices() {
            masters[part.master_of(v) as usize] += 1;
        }
        let total_bytes = (g.num_vertices() as f64 * 10.0
            + g.num_edges() as f64 * costs.bytes_per_edge_in)
            * scale;

        let mut dag = ActivityGraph::new();
        let mut specs: Vec<OpSpec> = Vec::new();
        let job_actor = Actor::new("Job", "0");
        let job_mission = Mission::new("PowerGraphJob", "0");
        let job_key = (job_actor.clone(), job_mission.clone());
        let node_name = |m: u16| cluster.node(NodeId(m)).name.clone();
        let head = node_name(0);

        specs.push(
            OpSpec::new(
                job_actor.clone(),
                job_mission.clone(),
                None,
                "job/",
                &head,
                "mpirun",
            )
            .with_info("Platform", InfoValue::Text("PowerGraph".into()))
            .with_info("Algorithm", InfoValue::Text(cfg.algorithm.name().into()))
            .with_info("Dataset", InfoValue::Text(cfg.dataset.clone()))
            .with_info("Machines", InfoValue::Int(k as i64))
            .with_info(
                "ReplicationFactor",
                InfoValue::Float(part.replication_factor()),
            ),
        );
        let domain = |mission: &str| (job_actor.clone(), Mission::new(mission, "0"));

        // -------------------------------------------------- Startup (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("Startup", "0"),
            Some(job_key.clone()),
            "job/startup/",
            &head,
            "mpirun",
        ));
        let mpirun = dag.add(
            ActivityKind::Delay {
                duration_us: self.mpirun_us,
            },
            &[],
            "job/startup/mpi/daemon",
        );
        let mut ranks: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for m in 0..k {
            ranks.push(dag.add(
                ActivityKind::Delay {
                    duration_us: self.per_rank_us,
                },
                &[mpirun],
                format!("job/startup/mpi/rank-{m}"),
            ));
        }
        specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("MpiSetup", "0"),
            Some(domain("Startup")),
            "job/startup/mpi/",
            &head,
            "mpirun",
        ));
        let started = dag.barrier(&ranks, "job/startup/ready");

        // ------------------------------------------------ LoadGraph (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("LoadGraph", "0"),
            Some(job_key.clone()),
            "job/load/",
            &head,
            "machine-0",
        ));
        // Sequential read + parse pipeline, all on machine 0.
        specs.push(
            OpSpec::new(
                Actor::new("Machine", "0"),
                Mission::new("SequentialLoad", "0"),
                Some(domain("LoadGraph")),
                "job/load/seq/",
                &head,
                "machine-0",
            )
            .with_info("InputBytes", InfoValue::Int(total_bytes.round() as i64)),
        );
        let chunk = total_bytes / LOAD_CHUNKS as f64;
        let mut prev_read = started;
        let mut prev_parse: Option<ActivityId> = None;
        for c in 0..LOAD_CHUNKS {
            let read = dag.add(
                ActivityKind::SharedRead {
                    node: NodeId(0),
                    bytes: chunk,
                },
                &[prev_read],
                format!("job/load/seq/read/c{c}"),
            );
            // The parser is sequential: chunk c+1 is parsed only after chunk
            // c — reads are pipelined ahead, parsing is the bottleneck.
            let deps: Vec<ActivityId> = match prev_parse {
                Some(p) => vec![read, p],
                None => vec![read],
            };
            let parse = dag.add(
                ActivityKind::Compute {
                    node: NodeId(0),
                    work_core_us: chunk * costs.parse_cpu_us_per_byte,
                    parallelism: self.loader_threads,
                },
                &deps,
                format!("job/load/seq/parse/c{c}"),
            );
            prev_read = read;
            prev_parse = Some(parse);
        }
        let parsed = dag.barrier(&[prev_parse.expect("LOAD_CHUNKS > 0")], "job/load/seq/done");

        // Distribute edge partitions to the other machines.
        specs.push(OpSpec::new(
            Actor::new("Machine", "0"),
            Mission::new("DistributeEdges", "0"),
            Some(domain("LoadGraph")),
            "job/load/dist/",
            &head,
            "machine-0",
        ));
        let mut finalize_deps: Vec<(u16, ActivityId)> = vec![(0, parsed)];
        for m in 1..k {
            let bytes = edge_sizes[m as usize] as f64 * costs.bytes_per_edge_in * scale;
            let xfer = dag.add(
                ActivityKind::Transfer {
                    src: NodeId(0),
                    dst: NodeId(m),
                    bytes,
                },
                &[parsed],
                format!("job/load/dist/m{m}"),
            );
            finalize_deps.push((m, xfer));
        }

        // All machines build their local graph structures.
        let mut built: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for (m, dep) in finalize_deps {
            let build = dag.add(
                ActivityKind::Compute {
                    node: NodeId(m),
                    work_core_us: edge_sizes[m as usize] as f64
                        * scale
                        * costs.build_cpu_us_per_edge,
                    parallelism: costs.worker_threads,
                },
                &[dep],
                format!("job/load/fin/m{m}/build"),
            );
            specs.push(
                OpSpec::new(
                    Actor::new("Machine", m.to_string()),
                    Mission::new("FinalizeGraph", "0"),
                    Some(domain("LoadGraph")),
                    format!("job/load/fin/m{m}/"),
                    node_name(m),
                    format!("machine-{m}"),
                )
                .with_info(
                    "LocalEdges",
                    InfoValue::Int((edge_sizes[m as usize] as f64 * scale).round() as i64),
                ),
            );
            built.push(build);
        }
        let all_loaded = dag.barrier(&built, "job/load/all-loaded");

        // ---------------------------------------------- ProcessGraph (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("ProcessGraph", "0"),
            Some(job_key.clone()),
            "job/proc/",
            &head,
            "machine-0",
        ));
        let mut prev_barrier = all_loaded;
        for it in &iterations {
            let t = it.iteration;
            let it_tag = format!("job/proc/it{t}/");
            specs.push(
                OpSpec::new(
                    job_actor.clone(),
                    Mission::new("Iteration", t.to_string()),
                    Some(domain("ProcessGraph")),
                    it_tag.clone(),
                    &head,
                    "machine-0",
                )
                .with_info(
                    "ActiveVertices",
                    InfoValue::Int((it.active_vertices as f64 * scale).round() as i64),
                ),
            );
            let iter_parent = (job_actor.clone(), Mission::new("Iteration", t.to_string()));

            // Gather minor-step on every machine.
            let mut gathers: Vec<ActivityId> = Vec::with_capacity(k as usize);
            for m in 0..k {
                let stats = &it.per_machine[m as usize];
                let work = (stats.gather_edges as f64 * costs.compute_us_per_edge) * scale;
                let gather = dag.add(
                    ActivityKind::Compute {
                        node: NodeId(m),
                        work_core_us: work.max(500.0),
                        parallelism: costs.worker_threads,
                    },
                    &[prev_barrier],
                    format!("{it_tag}m{m}/gather"),
                );
                specs.push(
                    OpSpec::new(
                        Actor::new("Machine", m.to_string()),
                        Mission::new("Gather", t.to_string()),
                        Some(iter_parent.clone()),
                        format!("{it_tag}m{m}/gather"),
                        node_name(m),
                        format!("machine-{m}"),
                    )
                    .with_info(
                        "GatherEdges",
                        InfoValue::Int((stats.gather_edges as f64 * scale).round() as i64),
                    ),
                );
                gathers.push(gather);
            }

            // Exchange: replica syncs between machines.
            let mut exchanges: Vec<ActivityId> = Vec::new();
            let mut sync_total = 0u64;
            #[allow(clippy::needless_range_loop)] // machine ids index the matrix
            for a in 0..k as usize {
                for b in 0..k as usize {
                    let count = it.sync_matrix[a][b];
                    if count == 0 {
                        continue;
                    }
                    sync_total += count;
                    exchanges.push(dag.add(
                        ActivityKind::Transfer {
                            src: NodeId(a as u16),
                            dst: NodeId(b as u16),
                            bytes: count as f64 * costs.bytes_per_message * scale,
                        },
                        &[gathers[a]],
                        format!("{it_tag}ex/a{a}b{b}"),
                    ));
                }
            }
            let exchange_done = if exchanges.is_empty() {
                dag.barrier(&gathers, format!("{it_tag}ex/none"))
            } else {
                let mut deps = exchanges.clone();
                deps.extend_from_slice(&gathers);
                dag.barrier(&deps, format!("{it_tag}ex/join"))
            };
            if !exchanges.is_empty() {
                specs.push(
                    OpSpec::new(
                        Actor::new("Master", "0"),
                        Mission::new("Exchange", t.to_string()),
                        Some(iter_parent.clone()),
                        format!("{it_tag}ex/"),
                        &head,
                        "machine-0",
                    )
                    .with_info(
                        "SyncMessages",
                        InfoValue::Int((sync_total as f64 * scale).round() as i64),
                    ),
                );
            }

            // Apply + scatter per machine.
            let mut scatters: Vec<ActivityId> = Vec::with_capacity(k as usize);
            for m in 0..k {
                let stats = &it.per_machine[m as usize];
                let apply = dag.add(
                    ActivityKind::Compute {
                        node: NodeId(m),
                        work_core_us: (stats.apply_vertices as f64
                            * costs.compute_us_per_vertex
                            * scale)
                            .max(200.0),
                        parallelism: costs.worker_threads,
                    },
                    &[exchange_done],
                    format!("{it_tag}m{m}/apply"),
                );
                specs.push(OpSpec::new(
                    Actor::new("Machine", m.to_string()),
                    Mission::new("Apply", t.to_string()),
                    Some(iter_parent.clone()),
                    format!("{it_tag}m{m}/apply"),
                    node_name(m),
                    format!("machine-{m}"),
                ));
                let scatter = dag.add(
                    ActivityKind::Compute {
                        node: NodeId(m),
                        work_core_us: (stats.scatter_edges as f64
                            * costs.compute_us_per_edge
                            * 0.5
                            * scale)
                            .max(200.0),
                        parallelism: costs.worker_threads,
                    },
                    &[apply],
                    format!("{it_tag}m{m}/scatter"),
                );
                specs.push(OpSpec::new(
                    Actor::new("Machine", m.to_string()),
                    Mission::new("Scatter", t.to_string()),
                    Some(iter_parent.clone()),
                    format!("{it_tag}m{m}/scatter"),
                    node_name(m),
                    format!("machine-{m}"),
                ));
                scatters.push(scatter);
            }
            let join = dag.barrier(&scatters, format!("{it_tag}barrier/join"));
            prev_barrier = dag.add(
                ActivityKind::Delay {
                    duration_us: costs.barrier_us,
                },
                &[join],
                format!("{it_tag}barrier/sync"),
            );
        }

        // --------------------------------------------- OffloadGraph (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("OffloadGraph", "0"),
            Some(job_key.clone()),
            "job/offload/",
            &head,
            "machine-0",
        ));
        let mut offloads: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for m in 0..k {
            let bytes = masters[m as usize] as f64 * costs.bytes_per_vertex_out * scale;
            let write = dag.add(
                ActivityKind::SharedRead {
                    node: NodeId(m),
                    bytes,
                },
                &[prev_barrier],
                format!("job/offload/m{m}/write"),
            );
            specs.push(
                OpSpec::new(
                    Actor::new("Machine", m.to_string()),
                    Mission::new("LocalOffload", "0"),
                    Some(domain("OffloadGraph")),
                    format!("job/offload/m{m}/"),
                    node_name(m),
                    format!("machine-{m}"),
                )
                .with_info("OutputBytes", InfoValue::Int(bytes.round() as i64)),
            );
            offloads.push(write);
        }
        let all_offloaded = dag.barrier(&offloads, "job/offload/done");

        // -------------------------------------------------- Cleanup (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("Cleanup", "0"),
            Some(job_key.clone()),
            "job/cleanup/",
            &head,
            "mpirun",
        ));
        dag.add(
            ActivityKind::Delay {
                duration_us: self.finalize_us,
            },
            &[all_offloaded],
            "job/cleanup/finalize",
        );
        specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("MpiFinalize", "0"),
            Some(domain("Cleanup")),
            "job/cleanup/finalize",
            &head,
            "mpirun",
        ));

        // ------------------------------------------------------- Simulate
        let sim = Simulation::new(cluster.clone()).run(&dag)?;
        let events = emit_events(&specs, &dag, &sim);
        let mut env_samples = trace_to_samples(&sim.trace);
        // Memory view. Machine 0 temporarily holds the *entire* parsed edge
        // list as a staging buffer during the sequential load, released once
        // partitions have been distributed — the memory-pressure signature
        // of the single-loader design. Partitions then stay resident until
        // MPI finalize.
        let release = sim
            .span_of_tag(&dag, "job/cleanup/")
            .map(|(s, _)| s.round() as u64)
            .unwrap_or(sim.makespan_us.round() as u64);
        let mut phases = Vec::with_capacity(k as usize + 1);
        if let (Some((ss, se)), Some((_, de))) = (
            sim.span_of_tag(&dag, "job/load/seq/"),
            sim.span_of_tag(&dag, "job/load/dist/")
                .or(sim.span_of_tag(&dag, "job/load/seq/")),
        ) {
            phases.push(MemoryPhase {
                node: head.clone(),
                ramp_start_us: ss.round() as u64,
                ramp_end_us: se.round() as u64,
                hold_until_us: de.round() as u64,
                bytes: total_bytes,
            });
        }
        for m in 0..k {
            if let Some((fs, fe)) = sim.span_of_tag(&dag, &format!("job/load/fin/m{m}/")) {
                phases.push(MemoryPhase {
                    node: node_name(m),
                    ramp_start_us: fs.round() as u64,
                    ramp_end_us: fe.round() as u64,
                    hold_until_us: release,
                    bytes: edge_sizes[m as usize] as f64 * scale * costs.bytes_per_edge_mem,
                });
            }
        }
        env_samples.extend(memory_samples(&phases, sim.makespan_us.round() as u64));
        Ok(PlatformRun {
            events,
            env_samples,
            output,
            makespan_us: sim.makespan_us.round() as u64,
            iterations: iterations.len() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{reference_output, CostModel};
    use gpsim_graph::gen::{datagen_like, GenConfig};
    use granula_monitor::{Assembler, ResourceKind};

    fn job(algorithm: Algorithm) -> (Graph, JobConfig) {
        let g = datagen_like(&GenConfig::datagen(2_000, 11));
        let cfg = JobConfig::new(
            "test-job",
            "dg-test",
            algorithm,
            8,
            CostModel::powergraph_like(),
        );
        (g, cfg)
    }

    #[test]
    fn bfs_run_produces_correct_output() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
        assert!(run.output.matches(&reference_output(&g, cfg.algorithm)));
        assert!(run.makespan_us > 0);
    }

    #[test]
    fn events_assemble_into_a_clean_tree() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
        let outcome = Assembler::new().assemble(run.events);
        assert!(
            outcome.warnings.is_empty(),
            "{:?}",
            &outcome.warnings[..5.min(outcome.warnings.len())]
        );
        let tree = outcome.tree;
        let root = tree.root().unwrap();
        assert_eq!(tree.op(root).mission.kind, "PowerGraphJob");
        for m in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            assert!(tree.child_by_mission(root, m).is_some(), "missing {m}");
        }
    }

    #[test]
    fn loading_is_sequential_on_one_machine() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let cfg = cfg.with_scale(1_000.0);
        let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
        let tree = Assembler::new().assemble(run.events.clone()).tree;
        let root = tree.root().unwrap();
        let load = tree.child_by_mission(root, "LoadGraph").unwrap();
        let (ls, le) = (
            tree.op(load).start_us().unwrap(),
            tree.op(load).end_us().unwrap(),
        );
        // During the first 60% of LoadGraph, only machine 0 consumes CPU.
        let cutoff = ls + (le - ls) * 6 / 10;
        let mut busy_others = 0.0f64;
        let mut busy_head = 0.0f64;
        for s in &run.env_samples {
            if s.kind == ResourceKind::Cpu && s.time_us >= ls && s.time_us < cutoff {
                if s.node == "node300" {
                    busy_head += s.value;
                } else {
                    busy_others += s.value;
                }
            }
        }
        assert!(busy_head > 0.0, "head node should be busy parsing");
        assert!(
            busy_others < 0.05 * busy_head,
            "other machines should idle during sequential load: head={busy_head} others={busy_others}"
        );
    }

    #[test]
    fn io_dominates_at_dg1000_scale() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        // Emulate a dg1000-sized input from the small logical graph.
        let cfg = cfg.with_scale(25_000.0);
        let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
        let tree = Assembler::new().assemble(run.events).tree;
        let root = tree.root().unwrap();
        let total = tree.op(root).duration_us().unwrap() as f64;
        let load = tree.child_by_mission(root, "LoadGraph").unwrap();
        let load_frac = tree.op(load).duration_us().unwrap() as f64 / total;
        assert!(load_frac > 0.7, "LoadGraph should dominate: {load_frac}");
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        let proc_frac = tree.op(proc_).duration_us().unwrap() as f64 / total;
        assert!(proc_frac < 0.2, "processing should be small: {proc_frac}");
    }

    #[test]
    fn all_algorithms_validate() {
        for algorithm in [
            Algorithm::PageRank { iterations: 4 },
            Algorithm::Wcc,
            Algorithm::Cdlp { iterations: 3 },
        ] {
            let (g, cfg) = job(algorithm);
            let run = PowerGraphPlatform::default().run(&g, &cfg).unwrap();
            assert!(
                run.output.matches(&reference_output(&g, algorithm)),
                "{algorithm:?}"
            );
        }
    }
}
