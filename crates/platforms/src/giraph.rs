//! The Giraph-like platform driver.
//!
//! Pregel/BSP on YARN-like provisioning with HDFS-like storage, modeled
//! after Apache Giraph 1.2 as characterized in Table 1 and Figure 4 of the
//! paper. The driver:
//!
//! 1. hash-partitions the vertices over the workers (edge-cut);
//! 2. executes the vertex program with the [`crate::pregel`] engine,
//!    collecting per-superstep, per-worker counters;
//! 3. compiles the job into an activity DAG — YARN container negotiation
//!    and JVM launches, pipelined HDFS read + parse + in-memory build per
//!    worker, per-superstep PreStep/Compute/Message/PostStep with a
//!    ZooKeeper-like global barrier, HDFS offload with replication, and the
//!    multi-stage cleanup of Figure 4;
//! 4. simulates the DAG and emits Granula instrumentation events plus
//!    environment samples.

use gpsim_cluster::{
    ActivityGraph, ActivityId, ActivityKind, ClusterSpec, FaultPlan, FileSystem, NodeCrash, NodeId,
    SimError, Simulation, YarnProvisioner,
};
use gpsim_graph::{EdgeCutPartition, Graph};
use granula_model::{Actor, InfoValue, Mission};

use crate::common::{
    memory_samples, trace_to_samples, Algorithm, AlgorithmOutput, JobConfig, MemoryPhase,
    PlatformRun,
};
use crate::ops::{emit_events, OpSpec};
use crate::pregel::{self, SuperstepStats};

/// Number of read→parse pipeline stages per worker during LoadGraph.
const LOAD_CHUNKS: u32 = 8;

/// Giraph-like platform: configuration knobs beyond the job's cost model.
#[derive(Debug, Clone)]
pub struct GiraphPlatform {
    /// Client ↔ ResourceManager negotiation latency, µs.
    pub negotiation_us: f64,
    /// Per-container allocation latency, µs.
    pub container_alloc_us: f64,
    /// JVM startup per worker, µs.
    pub jvm_startup_us: f64,
    /// ZooKeeper registration per worker, µs.
    pub zk_register_us: f64,
    /// Cleanup stage latencies (AbortWorkers, ClientCleanup, ServerCleanup,
    /// ZkCleanup), µs.
    pub cleanup_us: [f64; 4],
    /// HDFS-like storage.
    pub fs: FileSystem,
    /// Superstep cap for convergent algorithms.
    pub max_supersteps: u32,
    /// Checkpoint every K supersteps (`None` disables checkpointing, the
    /// Giraph default). Required for worker-loss recovery: without a
    /// checkpoint the job reloads the input and replays from superstep 0.
    pub checkpoint_interval: Option<u32>,
    /// Time for the master to notice a lost worker (missed ZooKeeper
    /// heartbeats), µs.
    pub failure_detect_us: f64,
}

impl Default for GiraphPlatform {
    fn default() -> Self {
        GiraphPlatform {
            negotiation_us: 2.5e6,
            container_alloc_us: 1.0e6,
            jvm_startup_us: 4.5e6,
            zk_register_us: 1.2e6,
            cleanup_us: [2.0e6, 4.0e6, 5.0e6, 3.0e6],
            fs: FileSystem::hdfs(),
            max_supersteps: 10_000,
            checkpoint_interval: None,
            failure_detect_us: 2.0e6,
        }
    }
}

fn run_program(
    g: &Graph,
    part: &EdgeCutPartition,
    algorithm: Algorithm,
    max_supersteps: u32,
) -> (AlgorithmOutput, Vec<SuperstepStats>) {
    match algorithm {
        Algorithm::Bfs { source } => {
            // Size-dispatched: full-scale graphs take the flat frontier
            // engine, which produces bit-identical counters.
            let out = pregel::run_bfs(g, part, source, max_supersteps);
            (AlgorithmOutput::Levels(out.values), out.supersteps)
        }
        Algorithm::PageRank { iterations } => {
            let out = pregel::run(
                g,
                part,
                &pregel::PageRankProgram {
                    iterations,
                    damping: 0.85,
                },
                max_supersteps,
            );
            (AlgorithmOutput::Ranks(out.values), out.supersteps)
        }
        Algorithm::Wcc => {
            let out = pregel::run(g, part, &pregel::WccProgram, max_supersteps);
            (AlgorithmOutput::Labels(out.values), out.supersteps)
        }
        Algorithm::Sssp { source } => {
            let out = pregel::run(g, part, &pregel::SsspProgram { source }, max_supersteps);
            (AlgorithmOutput::Distances(out.values), out.supersteps)
        }
        Algorithm::Cdlp { iterations } => {
            let out = pregel::run(g, part, &pregel::CdlpProgram { iterations }, max_supersteps);
            (AlgorithmOutput::Labels(out.values), out.supersteps)
        }
    }
}

impl GiraphPlatform {
    /// Runs a job on a DAS5-like cluster with `cfg.nodes` nodes.
    pub fn run(&self, g: &Graph, cfg: &JobConfig) -> Result<PlatformRun, SimError> {
        self.run_on(g, cfg, &ClusterSpec::das5(cfg.nodes))
    }

    /// Runs a job on a DAS5-like cluster under an injected fault plan.
    pub fn run_with_faults(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        plan: &FaultPlan,
    ) -> Result<PlatformRun, SimError> {
        self.run_on_with_faults(g, cfg, &ClusterSpec::das5(cfg.nodes), plan)
    }

    /// Runs a job on an explicit cluster (must have at least `cfg.nodes`
    /// nodes).
    pub fn run_on(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        cluster: &ClusterSpec,
    ) -> Result<PlatformRun, SimError> {
        self.run_on_with_faults(g, cfg, cluster, &FaultPlan::default())
    }

    /// Runs a job on an explicit cluster under an injected fault plan.
    ///
    /// Slowdown windows pass straight through to the simulator. A node
    /// crash triggers the Giraph recovery protocol: the master detects the
    /// lost worker through missed ZooKeeper heartbeats, re-provisions a
    /// YARN container, every worker rolls back to the latest checkpoint
    /// (or the original input when [`GiraphPlatform::checkpoint_interval`]
    /// is `None`), and the lost supersteps are replayed. The recovery is
    /// emitted as first-class Granula operations (`Checkpoint`,
    /// `FailedSuperstep`, `Recover` with `DetectFailure` / `Provision` /
    /// `LoadCheckpoint` / `Replay` children) so the archive can decompose
    /// the slowdown.
    ///
    /// Only the earliest crash in the plan is modeled; Giraph's
    /// single-failure recovery does not compose with further crashes, so
    /// later ones are dropped from the executed plan.
    pub fn run_on_with_faults(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        cluster: &ClusterSpec,
        plan: &FaultPlan,
    ) -> Result<PlatformRun, SimError> {
        assert!(
            cluster.len() >= cfg.nodes as usize && cfg.nodes > 0,
            "cluster too small for {} workers",
            cfg.nodes
        );
        let k = cfg.nodes;
        let costs = &cfg.costs;
        let scale = cfg.scale_factor;
        let part = EdgeCutPartition::hash(g.num_vertices(), k);
        let (output, supersteps) = {
            let _span = granula_trace::span!("platform", "giraph.vertex_program {}", cfg.job_id);
            run_program(g, &part, cfg.algorithm, self.max_supersteps)
        };

        // Per-worker data sizes (logical counts; scaled at use sites).
        let mut verts = vec![0u64; k as usize];
        let mut edges = vec![0u64; k as usize];
        for v in 0..g.num_vertices() {
            let w = part.owner_of(v) as usize;
            verts[w] += 1;
            edges[w] += g.out_degree(v) as u64;
        }
        let input_bytes: Vec<f64> = (0..k as usize)
            .map(|w| (verts[w] as f64 * 10.0 + edges[w] as f64 * costs.bytes_per_edge_in) * scale)
            .collect();

        // The earliest crash drives recovery; later crashes are dropped
        // (single-failure model, see the doc comment).
        let crash = plan
            .crashes
            .iter()
            .min_by(|a, b| a.at_us.total_cmp(&b.at_us))
            .cloned()
            .filter(|_| !supersteps.is_empty());

        let Some(crash) = crash else {
            // Healthy (possibly degraded) layout: no recovery structure.
            let mut b = Build::new(
                self,
                cfg,
                cluster,
                &supersteps,
                &verts,
                &edges,
                &input_bytes,
            );
            {
                let _span = granula_trace::span!("platform", "giraph.build_dag {}", cfg.job_id);
                let started = b.startup();
                let loaded = b.load(started);
                b.process_graph();
                let mut prev = loaded;
                for si in 0..supersteps.len() {
                    prev = b.superstep(si, prev, "job/proc/", true);
                    prev = b.maybe_checkpoint(si, prev);
                }
                let offloaded = b.offload(prev);
                b.cleanup(offloaded);
            }
            return b.finish(plan, output);
        };

        // Phase 1: probe run — the same checkpointed job under the plan's
        // slowdowns only — locates the crash inside the superstep schedule.
        let probe_span = granula_trace::span!("platform", "giraph.probe {}", cfg.job_id);
        let slow_plan = FaultPlan {
            crashes: Vec::new(),
            slowdowns: plan.slowdowns.clone(),
        };
        let mut probe = Build::new(
            self,
            cfg,
            cluster,
            &supersteps,
            &verts,
            &edges,
            &input_bytes,
        );
        let started = probe.startup();
        let loaded = probe.load(started);
        probe.process_graph();
        let mut prev = loaded;
        for si in 0..supersteps.len() {
            prev = probe.superstep(si, prev, "job/proc/", true);
            prev = probe.maybe_checkpoint(si, prev);
        }
        let offloaded = probe.offload(prev);
        probe.cleanup(offloaded);
        let probe_sim = Simulation::new(cluster.clone()).run_with_faults(&probe.dag, &slow_plan)?;

        // Clamp the crash instant into the processing phase and find the
        // superstep it interrupts.
        let (proc_start, proc_end) = probe_sim
            .span_of_tag(&probe.dag, "job/proc/")
            .expect("jobs run at least one superstep");
        let t_clamped = crash.at_us.clamp(proc_start + 1.0, proc_end - 1.0);
        let mut s_idx = supersteps.len() - 1;
        for (si, ss) in supersteps.iter().enumerate() {
            let (_, end) = probe_sim
                .span_of_tag(&probe.dag, &format!("job/proc/ss{}/", ss.superstep))
                .expect("superstep was simulated");
            if t_clamped < end {
                s_idx = si;
                break;
            }
        }
        let s_star = supersteps[s_idx].superstep;
        let (ss_start, ss_end) = probe_sim
            .span_of_tag(&probe.dag, &format!("job/proc/ss{s_star}/"))
            .expect("superstep was simulated");
        let t_eff = t_clamped.clamp(ss_start + 1.0, (ss_end - 1.0).max(ss_start + 1.0));

        // Latest checkpoint before the failed superstep; replay restarts
        // after it, or from superstep 0 off the original input when the job
        // never checkpointed.
        let ckpt_idx: Option<usize> =
            self.checkpoint_interval
                .filter(|&kk| kk > 0)
                .and_then(|kk| {
                    (0..s_idx)
                        .rev()
                        .find(|&si| (supersteps[si].superstep + 1) % kk == 0)
                });
        let replay_from = ckpt_idx.map_or(0, |ci| ci + 1);
        let wasted_since = if replay_from == 0 {
            proc_start
        } else {
            probe_sim
                .span_of_tag(
                    &probe.dag,
                    &format!("job/proc/ss{}/", supersteps[replay_from].superstep),
                )
                .expect("superstep was simulated")
                .0
        };
        let wasted_us = t_eff - wasted_since;
        drop(probe_span);

        // Phase 2: the recovery layout. Prefix (startup, load, supersteps
        // before s*, their checkpoints) is identical to the probe; the
        // failed superstep becomes a doomed attempt killed by the injected
        // crash; detection, container re-provisioning, checkpoint reload
        // and superstep replay follow under `job/proc/recovery/`.
        let mut b = Build::new(
            self,
            cfg,
            cluster,
            &supersteps,
            &verts,
            &edges,
            &input_bytes,
        );
        let recovery_span =
            granula_trace::span!("platform", "giraph.recovery.build {}", cfg.job_id);
        let started = b.startup();
        let loaded = b.load(started);
        b.process_graph();
        let mut prev = loaded;
        for si in 0..s_idx {
            prev = b.superstep(si, prev, "job/proc/", true);
            prev = b.maybe_checkpoint(si, prev);
        }
        b.doomed_attempt(s_idx, prev);

        let master = b.master_node.clone();
        let recover_actor = Actor::new("Master", "0");
        let recover_key = (recover_actor.clone(), Mission::new("Recover", "0"));
        let proc_domain = b.domain("ProcessGraph");
        b.specs.push(
            OpSpec::new(
                recover_actor.clone(),
                Mission::new("Recover", "0"),
                Some(proc_domain),
                "job/proc/recovery/",
                &master,
                "master",
            )
            .with_info(
                "FailedNode",
                InfoValue::Text(cluster.node(crash.node).name.clone()),
            )
            .with_info("WastedUs", InfoValue::Int(wasted_us.round() as i64)),
        );
        // The crash anchor pins failure detection to the injected instant.
        let anchor = b.dag.add(
            ActivityKind::Delay { duration_us: t_eff },
            &[],
            "job/meta/t-crash",
        );
        let detect = b.dag.add(
            ActivityKind::Delay {
                duration_us: self.failure_detect_us,
            },
            &[anchor],
            "job/proc/recovery/detect",
        );
        b.specs.push(OpSpec::new(
            recover_actor.clone(),
            Mission::new("DetectFailure", "0"),
            Some(recover_key.clone()),
            "job/proc/recovery/detect",
            &master,
            "master",
        ));
        let provisioner = YarnProvisioner {
            negotiation_us: self.negotiation_us,
            container_alloc_us: self.container_alloc_us,
            jvm_startup_us: self.jvm_startup_us,
            zk_sync_us: self.zk_register_us,
            ..YarnProvisioner::default()
        };
        let provisioned =
            provisioner.reprovision(&mut b.dag, 1, &[detect], "job/proc/recovery/provision");
        b.specs.push(OpSpec::new(
            recover_actor.clone(),
            Mission::new("Provision", "0"),
            Some(recover_key.clone()),
            "job/proc/recovery/provision/",
            &master,
            "master",
        ));
        // All workers roll back: reload the checkpointed vertex state (or
        // re-read the input when no checkpoint exists).
        let mut reloads: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let bytes = if ckpt_idx.is_some() {
                verts[w as usize] as f64 * costs.bytes_per_vertex_out * scale
            } else {
                input_bytes[w as usize]
            };
            reloads.push(self.fs.read(
                cluster,
                &mut b.dag,
                NodeId(w),
                bytes,
                &[provisioned],
                &format!("job/proc/recovery/reload/w{w}/"),
            ));
        }
        let reloaded = b.dag.barrier(&reloads, "job/proc/recovery/reload/done");
        b.specs.push(OpSpec::new(
            recover_actor.clone(),
            Mission::new("LoadCheckpoint", "0"),
            Some(recover_key.clone()),
            "job/proc/recovery/reload/",
            &master,
            "master",
        ));
        let mut prev = reloaded;
        #[allow(clippy::needless_range_loop)]
        for si in replay_from..=s_idx {
            let s = supersteps[si].superstep;
            prev = b.superstep(si, prev, "job/proc/recovery/replay/", false);
            b.specs.push(OpSpec::new(
                recover_actor.clone(),
                Mission::new("Replay", s.to_string()),
                Some(recover_key.clone()),
                format!("job/proc/recovery/replay/ss{s}/"),
                &master,
                "master",
            ));
        }
        // Checkpointing resumes its normal cadence after recovery.
        prev = b.maybe_checkpoint(s_idx, prev);
        for si in s_idx + 1..supersteps.len() {
            prev = b.superstep(si, prev, "job/proc/", true);
            prev = b.maybe_checkpoint(si, prev);
        }
        let offloaded = b.offload(prev);
        b.cleanup(offloaded);
        drop(recovery_span);

        let restart_after = crash.restart_after_us.unwrap_or(self.failure_detect_us);
        let exec_plan = FaultPlan {
            crashes: vec![NodeCrash {
                node: crash.node,
                at_us: t_eff,
                restart_after_us: Some(restart_after),
            }],
            slowdowns: plan.slowdowns.clone(),
        };
        b.finish(&exec_plan, output)
    }
}

/// Incremental DAG + spec builder shared by the healthy and the
/// fault-recovery job layouts.
struct Build<'a> {
    p: &'a GiraphPlatform,
    cfg: &'a JobConfig,
    cluster: &'a ClusterSpec,
    supersteps: &'a [SuperstepStats],
    verts: &'a [u64],
    edges: &'a [u64],
    input_bytes: &'a [f64],
    dag: ActivityGraph,
    specs: Vec<OpSpec>,
    job_actor: Actor,
    job_key: (Actor, Mission),
    master_node: String,
}

impl<'a> Build<'a> {
    fn new(
        p: &'a GiraphPlatform,
        cfg: &'a JobConfig,
        cluster: &'a ClusterSpec,
        supersteps: &'a [SuperstepStats],
        verts: &'a [u64],
        edges: &'a [u64],
        input_bytes: &'a [f64],
    ) -> Self {
        let job_actor = Actor::new("Job", "0");
        let job_mission = Mission::new("GiraphJob", "0");
        let job_key = (job_actor.clone(), job_mission.clone());
        let master_node = cluster.node(NodeId(0)).name.clone();
        let specs: Vec<OpSpec> = vec![OpSpec::new(
            job_actor.clone(),
            job_mission,
            None,
            "job/",
            &master_node,
            "client",
        )
        .with_info("Platform", InfoValue::Text("Giraph".into()))
        .with_info("Algorithm", InfoValue::Text(cfg.algorithm.name().into()))
        .with_info("Dataset", InfoValue::Text(cfg.dataset.clone()))
        .with_info("Workers", InfoValue::Int(cfg.nodes as i64))];
        Build {
            p,
            cfg,
            cluster,
            supersteps,
            verts,
            edges,
            input_bytes,
            dag: ActivityGraph::new(),
            specs,
            job_actor,
            job_key,
            master_node,
        }
    }

    fn worker_node(&self, w: u16) -> String {
        self.cluster.node(NodeId(w)).name.clone()
    }

    fn domain(&self, mission: &str) -> (Actor, Mission) {
        (self.job_actor.clone(), Mission::new(mission, "0"))
    }

    // -------------------------------------------------- Startup (L1)
    fn startup(&mut self) -> ActivityId {
        let k = self.cfg.nodes;
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("Startup", "0"),
            Some(self.job_key.clone()),
            "job/startup/",
            &self.master_node,
            "client",
        ));
        let negotiate = self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.negotiation_us,
            },
            &[],
            "job/startup/jobstartup/negotiate",
        );
        self.specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("JobStartup", "0"),
            Some(self.domain("Startup")),
            "job/startup/jobstartup/",
            &self.master_node,
            "master",
        ));
        self.specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("LaunchWorkers", "0"),
            Some(self.domain("Startup")),
            "job/startup/launch/",
            &self.master_node,
            "master",
        ));
        let mut worker_ready: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let tagp = format!("job/startup/launch/w{w}/");
            let alloc = self.dag.add(
                ActivityKind::Delay {
                    duration_us: self.p.container_alloc_us * (1.0 + 0.12 * w as f64),
                },
                &[negotiate],
                format!("{tagp}alloc"),
            );
            let jvm = self.dag.add(
                ActivityKind::Delay {
                    duration_us: self.p.jvm_startup_us,
                },
                &[alloc],
                format!("{tagp}jvm"),
            );
            let zk = self.dag.add(
                ActivityKind::Delay {
                    duration_us: self.p.zk_register_us,
                },
                &[jvm],
                format!("{tagp}zk"),
            );
            self.specs.push(OpSpec::new(
                Actor::new("Worker", w.to_string()),
                Mission::new("LocalStartup", "0"),
                Some((
                    Actor::new("Master", "0"),
                    Mission::new("LaunchWorkers", "0"),
                )),
                tagp,
                self.worker_node(w),
                format!("worker-{w}"),
            ));
            worker_ready.push(zk);
        }
        self.dag.barrier(&worker_ready, "job/startup/all-ready")
    }

    // ------------------------------------------------ LoadGraph (L1)
    fn load(&mut self, started: ActivityId) -> ActivityId {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("LoadGraph", "0"),
            Some(self.job_key.clone()),
            "job/load/",
            &self.master_node,
            "client",
        ));
        let mut loaded: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let node = NodeId(w);
            let tagp = format!("job/load/w{w}/");
            self.specs.push(
                OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalLoad", "0"),
                    Some(self.domain("LoadGraph")),
                    tagp.clone(),
                    self.worker_node(w),
                    format!("worker-{w}"),
                )
                .with_info(
                    "InputBytes",
                    InfoValue::Int(self.input_bytes[w as usize].round() as i64),
                ),
            );
            self.specs.push(OpSpec::new(
                Actor::new("Worker", w.to_string()),
                Mission::new("LoadHdfsData", "0"),
                Some((
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalLoad", "0"),
                )),
                format!("{tagp}hdfs/"),
                self.worker_node(w),
                format!("worker-{w}"),
            ));
            // Pipelined chunks: read c -> parse c; read c+1 after read c.
            let chunk_bytes = self.input_bytes[w as usize] / LOAD_CHUNKS as f64;
            let parse_per_chunk = chunk_bytes * costs.parse_cpu_us_per_byte;
            let mut prev_read = started;
            let mut prev_parse: Option<ActivityId> = None;
            for c in 0..LOAD_CHUNKS {
                let read = self.p.fs.read(
                    self.cluster,
                    &mut self.dag,
                    node,
                    chunk_bytes,
                    &[prev_read],
                    &format!("{tagp}hdfs/c{c}/"),
                );
                // The worker's parser pool handles one chunk at a time at
                // `worker_threads` parallelism; reads are pipelined ahead.
                let deps: Vec<ActivityId> = match prev_parse {
                    Some(p) => vec![read, p],
                    None => vec![read],
                };
                let parse = self.dag.add(
                    ActivityKind::Compute {
                        node,
                        work_core_us: parse_per_chunk,
                        parallelism: costs.worker_threads,
                    },
                    &deps,
                    format!("{tagp}parse/c{c}"),
                );
                prev_read = read;
                prev_parse = Some(parse);
            }
            let parsed = self.dag.barrier(
                &[prev_parse.expect("LOAD_CHUNKS > 0")],
                format!("{tagp}parse/done"),
            );
            let build = self.dag.add(
                ActivityKind::Compute {
                    node,
                    work_core_us: self.edges[w as usize] as f64
                        * scale
                        * costs.build_cpu_us_per_edge,
                    parallelism: costs.worker_threads,
                },
                &[parsed],
                format!("{tagp}build"),
            );
            loaded.push(build);
        }
        self.dag.barrier(&loaded, "job/load/all-loaded")
    }

    // ---------------------------------------------- ProcessGraph (L1)
    fn process_graph(&mut self) {
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("ProcessGraph", "0"),
            Some(self.job_key.clone()),
            "job/proc/",
            &self.master_node,
            "client",
        ));
    }

    /// One BSP superstep: per-worker PreStep/Compute/Message/PostStep and
    /// the ZooKeeper-coordinated global barrier. `prefix` places the
    /// activities (`job/proc/` for first attempts, `job/proc/recovery/replay/`
    /// for replays); `with_specs` controls whether the superstep emits its
    /// own Granula operations (replays are covered by a single `Replay` op
    /// pushed by the caller).
    fn superstep(
        &mut self,
        si: usize,
        prev_barrier: ActivityId,
        prefix: &str,
        with_specs: bool,
    ) -> ActivityId {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let ss = &self.supersteps[si];
        let s = ss.superstep;
        let ss_tag = format!("{prefix}ss{s}/");
        let _span = granula_trace::span!("platform", "giraph.superstep.build {ss_tag}");
        if with_specs {
            self.specs.push(
                OpSpec::new(
                    self.job_actor.clone(),
                    Mission::new("Superstep", s.to_string()),
                    Some(self.domain("ProcessGraph")),
                    ss_tag.clone(),
                    &self.master_node,
                    "master",
                )
                .with_info(
                    "ActiveVertices",
                    InfoValue::Int((ss.total_active() as f64 * scale).round() as i64),
                )
                .with_info(
                    "MessagesSent",
                    InfoValue::Int((ss.total_messages() as f64 * scale).round() as i64),
                ),
            );
        }
        let mut worker_posts: Vec<ActivityId> = Vec::with_capacity(k as usize);
        let mut computes: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let node = NodeId(w);
            let stats = &ss.per_worker[w as usize];
            let w_tag = format!("{ss_tag}w{w}/");
            let local_parent = (
                Actor::new("Worker", w.to_string()),
                Mission::new("LocalSuperstep", s.to_string()),
            );
            if with_specs {
                self.specs.push(OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalSuperstep", s.to_string()),
                    Some((
                        self.job_actor.clone(),
                        Mission::new("Superstep", s.to_string()),
                    )),
                    w_tag.clone(),
                    self.worker_node(w),
                    format!("worker-{w}"),
                ));
            }
            let pre = self.dag.add(
                ActivityKind::Delay {
                    duration_us: costs.barrier_us * 0.4,
                },
                &[prev_barrier],
                format!("{w_tag}pre"),
            );
            if with_specs {
                self.specs.push(OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("PreStep", s.to_string()),
                    Some(local_parent.clone()),
                    format!("{w_tag}pre"),
                    self.worker_node(w),
                    format!("worker-{w}"),
                ));
            }
            let work = (stats.edges_scanned as f64 * costs.compute_us_per_edge
                + stats.active_vertices as f64 * costs.compute_us_per_vertex
                + stats.messages_sent as f64 * costs.serialize_us_per_message)
                * scale;
            let compute = self.dag.add(
                ActivityKind::Compute {
                    node,
                    // Idle workers still tick over the barrier machinery.
                    work_core_us: work.max(1_000.0),
                    parallelism: costs.worker_threads,
                },
                &[pre],
                format!("{w_tag}compute"),
            );
            if with_specs {
                self.specs.push(
                    OpSpec::new(
                        Actor::new("Worker", w.to_string()),
                        Mission::new("Compute", s.to_string()),
                        Some(local_parent),
                        format!("{w_tag}compute"),
                        self.worker_node(w),
                        format!("worker-{w}"),
                    )
                    .with_info(
                        "EdgesScanned",
                        InfoValue::Int((stats.edges_scanned as f64 * scale).round() as i64),
                    )
                    .with_info(
                        "ActiveVertices",
                        InfoValue::Int((stats.active_vertices as f64 * scale).round() as i64),
                    ),
                );
            }
            computes.push(compute);
        }
        for w in 0..k {
            let stats = &ss.per_worker[w as usize];
            let w_tag = format!("{ss_tag}w{w}/");
            let local_parent = (
                Actor::new("Worker", w.to_string()),
                Mission::new("LocalSuperstep", s.to_string()),
            );
            // Message flushing: transfers to workers receiving remote
            // messages from this worker.
            let mut flushes: Vec<ActivityId> = Vec::new();
            let mut remote_msgs = 0u64;
            for dst in 0..k {
                let count = ss.remote_messages[w as usize][dst as usize];
                if dst == w || count == 0 {
                    continue;
                }
                remote_msgs += count;
                flushes.push(self.dag.add(
                    ActivityKind::Transfer {
                        src: NodeId(w),
                        dst: NodeId(dst),
                        bytes: count as f64 * costs.bytes_per_message * scale,
                    },
                    &[computes[w as usize]],
                    format!("{w_tag}msg/to{dst}"),
                ));
            }
            if with_specs && !flushes.is_empty() {
                self.specs.push(
                    OpSpec::new(
                        Actor::new("Worker", w.to_string()),
                        Mission::new("Message", s.to_string()),
                        Some(local_parent.clone()),
                        format!("{w_tag}msg/"),
                        self.worker_node(w),
                        format!("worker-{w}"),
                    )
                    .with_info(
                        "RemoteMessages",
                        InfoValue::Int((remote_msgs as f64 * scale).round() as i64),
                    )
                    .with_info(
                        "MessagesSent",
                        InfoValue::Int((stats.messages_sent as f64 * scale).round() as i64),
                    ),
                );
            }
            let mut post_deps = flushes;
            post_deps.push(computes[w as usize]);
            let post = self.dag.add(
                ActivityKind::Delay {
                    duration_us: costs.barrier_us * 0.6,
                },
                &post_deps,
                format!("{w_tag}post"),
            );
            if with_specs {
                self.specs.push(OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("PostStep", s.to_string()),
                    Some(local_parent),
                    format!("{w_tag}post"),
                    self.worker_node(w),
                    format!("worker-{w}"),
                ));
            }
            worker_posts.push(post);
        }
        // ZooKeeper-coordinated global barrier.
        let zk_join = self.dag.barrier(&worker_posts, format!("{ss_tag}zk/join"));
        let zk = self.dag.add(
            ActivityKind::Delay {
                duration_us: costs.barrier_us * 0.3,
            },
            &[zk_join],
            format!("{ss_tag}zk/sync"),
        );
        if with_specs {
            self.specs.push(OpSpec::new(
                Actor::new("Master", "0"),
                Mission::new("SyncZookeeper", s.to_string()),
                Some((
                    self.job_actor.clone(),
                    Mission::new("Superstep", s.to_string()),
                )),
                format!("{ss_tag}zk/"),
                &self.master_node,
                "master",
            ));
        }
        zk
    }

    /// Synchronous checkpoint after superstep `s`: every worker writes its
    /// vertex state to the DFS before the next superstep may start.
    fn checkpoint(&mut self, s: u32, prev: ActivityId) -> ActivityId {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let tag = format!("job/proc/ckpt{s}/");
        self.specs.push(
            OpSpec::new(
                Actor::new("Master", "0"),
                Mission::new("Checkpoint", s.to_string()),
                Some(self.domain("ProcessGraph")),
                tag.clone(),
                &self.master_node,
                "master",
            )
            .with_info(
                "IntervalSupersteps",
                InfoValue::Int(self.p.checkpoint_interval.unwrap_or(0) as i64),
            ),
        );
        let mut writes: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let bytes = self.verts[w as usize] as f64 * costs.bytes_per_vertex_out * scale;
            writes.push(self.p.fs.write(
                self.cluster,
                &mut self.dag,
                NodeId(w),
                bytes,
                &[prev],
                &format!("{tag}w{w}/"),
            ));
        }
        self.dag.barrier(&writes, format!("{tag}done"))
    }

    /// Checkpoint after superstep index `si` when the cadence says so
    /// (never after the final superstep — nothing is left to protect).
    fn maybe_checkpoint(&mut self, si: usize, prev: ActivityId) -> ActivityId {
        match self.p.checkpoint_interval {
            Some(kk)
                if kk > 0
                    && (self.supersteps[si].superstep + 1).is_multiple_of(kk)
                    && si + 1 < self.supersteps.len() =>
            {
                let _span = granula_trace::span!(
                    "platform",
                    "giraph.checkpoint.build ss{}",
                    self.supersteps[si].superstep
                );
                self.checkpoint(self.supersteps[si].superstep, prev)
            }
            _ => prev,
        }
    }

    /// The attempt at superstep `si` that the crash interrupts: per-worker
    /// pre-step and compute, no barrier — the failure means the superstep
    /// never commits, and recovery (not this attempt) gates further work.
    fn doomed_attempt(&mut self, si: usize, prev_barrier: ActivityId) {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let ss = &self.supersteps[si];
        let s = ss.superstep;
        let tag = format!("job/proc/ss{s}/");
        self.specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("FailedSuperstep", s.to_string()),
            Some(self.domain("ProcessGraph")),
            tag.clone(),
            &self.master_node,
            "master",
        ));
        for w in 0..k {
            let node = NodeId(w);
            let stats = &ss.per_worker[w as usize];
            let pre = self.dag.add(
                ActivityKind::Delay {
                    duration_us: costs.barrier_us * 0.4,
                },
                &[prev_barrier],
                format!("{tag}try/w{w}/pre"),
            );
            let work = (stats.edges_scanned as f64 * costs.compute_us_per_edge
                + stats.active_vertices as f64 * costs.compute_us_per_vertex
                + stats.messages_sent as f64 * costs.serialize_us_per_message)
                * scale;
            self.dag.add(
                ActivityKind::Compute {
                    node,
                    work_core_us: work.max(1_000.0),
                    parallelism: costs.worker_threads,
                },
                &[pre],
                format!("{tag}try/w{w}/compute"),
            );
        }
    }

    // --------------------------------------------- OffloadGraph (L1)
    fn offload(&mut self, prev_barrier: ActivityId) -> ActivityId {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("OffloadGraph", "0"),
            Some(self.job_key.clone()),
            "job/offload/",
            &self.master_node,
            "client",
        ));
        let mut offloads: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let tagp = format!("job/offload/w{w}/");
            let bytes = self.verts[w as usize] as f64 * costs.bytes_per_vertex_out * scale;
            let write = self.p.fs.write(
                self.cluster,
                &mut self.dag,
                NodeId(w),
                bytes,
                &[prev_barrier],
                &format!("{tagp}hdfs/"),
            );
            self.specs.push(
                OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalOffload", "0"),
                    Some(self.domain("OffloadGraph")),
                    tagp.clone(),
                    self.worker_node(w),
                    format!("worker-{w}"),
                )
                .with_info("OutputBytes", InfoValue::Int(bytes.round() as i64)),
            );
            self.specs.push(OpSpec::new(
                Actor::new("Worker", w.to_string()),
                Mission::new("OffloadHdfsData", "0"),
                Some((
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalOffload", "0"),
                )),
                format!("{tagp}hdfs/"),
                self.worker_node(w),
                format!("worker-{w}"),
            ));
            offloads.push(write);
        }
        self.dag.barrier(&offloads, "job/offload/all-done")
    }

    // -------------------------------------------------- Cleanup (L1)
    fn cleanup(&mut self, all_offloaded: ActivityId) {
        let k = self.cfg.nodes;
        self.specs.push(OpSpec::new(
            self.job_actor.clone(),
            Mission::new("Cleanup", "0"),
            Some(self.job_key.clone()),
            "job/cleanup/",
            &self.master_node,
            "client",
        ));
        let cleanup_parent = self.domain("Cleanup");
        let mut aborts: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            aborts.push(self.dag.add(
                ActivityKind::Delay {
                    duration_us: self.p.cleanup_us[0],
                },
                &[all_offloaded],
                format!("job/cleanup/abort/w{w}"),
            ));
        }
        let aborted = self.dag.barrier(&aborts, "job/cleanup/abort/join");
        self.specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("AbortWorkers", "0"),
            Some(cleanup_parent.clone()),
            "job/cleanup/abort/",
            &self.master_node,
            "master",
        ));
        let client = self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.cleanup_us[1],
            },
            &[aborted],
            "job/cleanup/client",
        );
        self.specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("ClientCleanup", "0"),
            Some(cleanup_parent.clone()),
            "job/cleanup/client",
            &self.master_node,
            "master",
        ));
        let server = self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.cleanup_us[2],
            },
            &[client],
            "job/cleanup/server",
        );
        self.specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("ServerCleanup", "0"),
            Some(cleanup_parent.clone()),
            "job/cleanup/server",
            &self.master_node,
            "master",
        ));
        self.dag.add(
            ActivityKind::Delay {
                duration_us: self.p.cleanup_us[3],
            },
            &[server],
            "job/cleanup/zk",
        );
        self.specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("ZkCleanup", "0"),
            Some(cleanup_parent),
            "job/cleanup/zk",
            &self.master_node,
            "master",
        ));
    }

    // ------------------------------------------------------- Simulate
    fn finish(self, plan: &FaultPlan, output: AlgorithmOutput) -> Result<PlatformRun, SimError> {
        let k = self.cfg.nodes;
        let costs = &self.cfg.costs;
        let scale = self.cfg.scale_factor;
        let sim = {
            let _span = granula_trace::span!("platform", "giraph.simulate {}", self.cfg.job_id);
            Simulation::new(self.cluster.clone()).run_with_faults(&self.dag, plan)?
        };
        let events = {
            let _span = granula_trace::span!("platform", "giraph.emit_events {}", self.cfg.job_id);
            emit_events(&self.specs, &self.dag, &sim)
        };
        let mut env_samples = trace_to_samples(&sim.trace);
        // Memory view: each worker's partition becomes resident over its
        // load interval and is released when its JVM exits at cleanup.
        let release = sim
            .span_of_tag(&self.dag, "job/cleanup/")
            .map(|(s, _)| s.round() as u64)
            .unwrap_or(sim.makespan_us.round() as u64);
        let mut phases = Vec::with_capacity(k as usize);
        for w in 0..k {
            if let Some((ls, le)) = sim.span_of_tag(&self.dag, &format!("job/load/w{w}/")) {
                phases.push(MemoryPhase {
                    node: self.worker_node(w),
                    ramp_start_us: ls.round() as u64,
                    ramp_end_us: le.round() as u64,
                    hold_until_us: release,
                    bytes: self.edges[w as usize] as f64 * scale * costs.bytes_per_edge_mem,
                });
            }
        }
        env_samples.extend(memory_samples(&phases, sim.makespan_us.round() as u64));
        Ok(PlatformRun {
            events,
            env_samples,
            output,
            makespan_us: sim.makespan_us.round() as u64,
            iterations: self.supersteps.len() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{reference_output, CostModel};
    use gpsim_graph::gen::{datagen_like, GenConfig};
    use granula_monitor::Assembler;

    fn job(algorithm: Algorithm) -> (Graph, JobConfig) {
        let g = datagen_like(&GenConfig::datagen(2_000, 11));
        let cfg = JobConfig::new(
            "test-job",
            "dg-test",
            algorithm,
            8,
            CostModel::giraph_like(),
        );
        (g, cfg)
    }

    #[test]
    fn bfs_run_produces_correct_output() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = GiraphPlatform::default().run(&g, &cfg).unwrap();
        assert!(run.output.matches(&reference_output(&g, cfg.algorithm)));
        assert!(run.makespan_us > 0);
        assert!(run.iterations > 2);
    }

    #[test]
    fn events_assemble_into_a_clean_tree() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = GiraphPlatform::default().run(&g, &cfg).unwrap();
        let outcome = Assembler::new().assemble(run.events);
        assert!(
            outcome.warnings.is_empty(),
            "{:?}",
            &outcome.warnings[..5.min(outcome.warnings.len())]
        );
        let tree = outcome.tree;
        let root = tree.root().unwrap();
        assert_eq!(tree.op(root).mission.kind, "GiraphJob");
        // Domain level: all five operations of Figure 3.
        for m in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            assert!(tree.child_by_mission(root, m).is_some(), "missing {m}");
        }
        // Supersteps appear under ProcessGraph.
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        let n_ss = tree
            .children(proc_)
            .filter(|o| o.mission.kind == "Superstep")
            .count();
        assert_eq!(n_ss as u32, run.iterations);
    }

    #[test]
    fn domain_phases_are_ordered() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = GiraphPlatform::default().run(&g, &cfg).unwrap();
        let tree = Assembler::new().assemble(run.events).tree;
        let root = tree.root().unwrap();
        let phase = |m: &str| {
            let id = tree.child_by_mission(root, m).unwrap();
            (
                tree.op(id).start_us().unwrap(),
                tree.op(id).end_us().unwrap(),
            )
        };
        let startup = phase("Startup");
        let load = phase("LoadGraph");
        let proc_ = phase("ProcessGraph");
        let offload = phase("OffloadGraph");
        let cleanup = phase("Cleanup");
        assert!(startup.1 <= load.0 + 1);
        assert!(load.1 <= proc_.0 + 1);
        assert!(proc_.1 <= offload.0 + 1);
        assert!(offload.1 <= cleanup.0 + 1);
    }

    #[test]
    fn environment_samples_cover_all_nodes() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = GiraphPlatform::default().run(&g, &cfg).unwrap();
        let nodes: std::collections::BTreeSet<&str> =
            run.env_samples.iter().map(|s| s.node.as_str()).collect();
        assert_eq!(nodes.len(), 8);
    }

    #[test]
    fn scale_factor_stretches_runtime() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let small = GiraphPlatform::default().run(&g, &cfg).unwrap();
        let big = GiraphPlatform::default()
            .run(&g, &cfg.clone().with_scale(50.0))
            .unwrap();
        assert!(
            big.makespan_us > small.makespan_us,
            "scaled run should be slower: {} vs {}",
            big.makespan_us,
            small.makespan_us
        );
    }

    #[test]
    fn empty_fault_plan_is_identical_to_plain_run() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let p = GiraphPlatform::default();
        let plain = p.run(&g, &cfg).unwrap();
        let faultless = p.run_with_faults(&g, &cfg, &FaultPlan::new()).unwrap();
        assert_eq!(plain.makespan_us, faultless.makespan_us);
        assert_eq!(plain.events, faultless.events);
    }

    #[test]
    fn checkpoints_appear_at_the_configured_cadence() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let p = GiraphPlatform {
            checkpoint_interval: Some(2),
            ..GiraphPlatform::default()
        };
        let run = p.run(&g, &cfg).unwrap();
        let tree = Assembler::new().assemble(run.events).tree;
        let root = tree.root().unwrap();
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        let n_ckpt = tree
            .children(proc_)
            .filter(|o| o.mission.kind == "Checkpoint")
            .count() as u32;
        // One checkpoint after every 2nd superstep, except the last.
        assert_eq!(n_ckpt, (run.iterations - 1) / 2);
    }

    #[test]
    fn crash_recovery_replays_from_checkpoint() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let p = GiraphPlatform {
            checkpoint_interval: Some(2),
            ..GiraphPlatform::default()
        };
        let healthy = p.run(&g, &cfg).unwrap();
        let plan = FaultPlan::new().crash(NodeId(2), healthy.makespan_us as f64 * 0.5);
        let faulty = p.run_with_faults(&g, &cfg, &plan).unwrap();
        assert!(
            faulty.makespan_us > healthy.makespan_us,
            "recovery must cost time: {} vs {}",
            faulty.makespan_us,
            healthy.makespan_us
        );
        let outcome = Assembler::new().assemble(faulty.events);
        assert!(
            outcome.warnings.is_empty(),
            "{:?}",
            &outcome.warnings[..5.min(outcome.warnings.len())]
        );
        let tree = outcome.tree;
        let root = tree.root().unwrap();
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        assert!(tree.children(proc_).any(|o| o.mission.kind == "Checkpoint"));
        assert!(tree
            .children(proc_)
            .any(|o| o.mission.kind == "FailedSuperstep"));
        let recover = tree
            .child_by_mission(proc_, "Recover")
            .expect("Recover operation");
        for m in ["DetectFailure", "Provision", "LoadCheckpoint"] {
            assert!(tree.child_by_mission(recover, m).is_some(), "missing {m}");
        }
        let n_replay = tree
            .children(recover)
            .filter(|o| o.mission.kind == "Replay")
            .count();
        assert!(n_replay >= 1, "lost supersteps must be replayed");
        // The recovery op names the lost worker.
        let rec_op = tree.op(recover);
        assert!(rec_op
            .infos
            .iter()
            .any(|i| i.name == "FailedNode" && i.value == InfoValue::Text("node302".into())));
    }

    #[test]
    fn crash_without_checkpoints_replays_from_superstep_zero() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let p = GiraphPlatform::default(); // checkpointing disabled
        let healthy = p.run(&g, &cfg).unwrap();
        let plan = FaultPlan::new().crash(NodeId(1), healthy.makespan_us as f64 * 0.6);
        let faulty = p.run_with_faults(&g, &cfg, &plan).unwrap();
        let tree = Assembler::new().assemble(faulty.events).tree;
        let root = tree.root().unwrap();
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        let recover = tree.child_by_mission(proc_, "Recover").unwrap();
        let replays: Vec<String> = tree
            .children(recover)
            .filter(|o| o.mission.kind == "Replay")
            .map(|o| o.mission.id.clone())
            .collect();
        assert!(
            replays.contains(&"0".to_string()),
            "without checkpoints replay starts at superstep 0, got {replays:?}"
        );
        assert!(
            tree.children(proc_).all(|o| o.mission.kind != "Checkpoint"),
            "no checkpoints were configured"
        );
    }

    #[test]
    fn pagerank_and_wcc_also_validate() {
        for algorithm in [Algorithm::PageRank { iterations: 5 }, Algorithm::Wcc] {
            let (g, cfg) = job(algorithm);
            let run = GiraphPlatform::default().run(&g, &cfg).unwrap();
            assert!(
                run.output.matches(&reference_output(&g, algorithm)),
                "{algorithm:?}"
            );
        }
    }
}
