//! The Giraph-like platform driver.
//!
//! Pregel/BSP on YARN-like provisioning with HDFS-like storage, modeled
//! after Apache Giraph 1.2 as characterized in Table 1 and Figure 4 of the
//! paper. The driver:
//!
//! 1. hash-partitions the vertices over the workers (edge-cut);
//! 2. executes the vertex program with the [`crate::pregel`] engine,
//!    collecting per-superstep, per-worker counters;
//! 3. compiles the job into an activity DAG — YARN container negotiation
//!    and JVM launches, pipelined HDFS read + parse + in-memory build per
//!    worker, per-superstep PreStep/Compute/Message/PostStep with a
//!    ZooKeeper-like global barrier, HDFS offload with replication, and the
//!    multi-stage cleanup of Figure 4;
//! 4. simulates the DAG and emits Granula instrumentation events plus
//!    environment samples.

use gpsim_cluster::{
    ActivityGraph, ActivityId, ActivityKind, ClusterSpec, FileSystem, NodeId, SimError, Simulation,
};
use gpsim_graph::{EdgeCutPartition, Graph};
use granula_model::{Actor, InfoValue, Mission};

use crate::common::{
    memory_samples, trace_to_samples, Algorithm, AlgorithmOutput, JobConfig, MemoryPhase,
    PlatformRun,
};
use crate::ops::{emit_events, OpSpec};
use crate::pregel::{self, SuperstepStats};

/// Number of read→parse pipeline stages per worker during LoadGraph.
const LOAD_CHUNKS: u32 = 8;

/// Giraph-like platform: configuration knobs beyond the job's cost model.
#[derive(Debug, Clone)]
pub struct GiraphPlatform {
    /// Client ↔ ResourceManager negotiation latency, µs.
    pub negotiation_us: f64,
    /// Per-container allocation latency, µs.
    pub container_alloc_us: f64,
    /// JVM startup per worker, µs.
    pub jvm_startup_us: f64,
    /// ZooKeeper registration per worker, µs.
    pub zk_register_us: f64,
    /// Cleanup stage latencies (AbortWorkers, ClientCleanup, ServerCleanup,
    /// ZkCleanup), µs.
    pub cleanup_us: [f64; 4],
    /// HDFS-like storage.
    pub fs: FileSystem,
    /// Superstep cap for convergent algorithms.
    pub max_supersteps: u32,
}

impl Default for GiraphPlatform {
    fn default() -> Self {
        GiraphPlatform {
            negotiation_us: 2.5e6,
            container_alloc_us: 1.0e6,
            jvm_startup_us: 4.5e6,
            zk_register_us: 1.2e6,
            cleanup_us: [2.0e6, 4.0e6, 5.0e6, 3.0e6],
            fs: FileSystem::hdfs(),
            max_supersteps: 10_000,
        }
    }
}

fn run_program(
    g: &Graph,
    part: &EdgeCutPartition,
    algorithm: Algorithm,
    max_supersteps: u32,
) -> (AlgorithmOutput, Vec<SuperstepStats>) {
    match algorithm {
        Algorithm::Bfs { source } => {
            let out = pregel::run(g, part, &pregel::BfsProgram { source }, max_supersteps);
            (AlgorithmOutput::Levels(out.values), out.supersteps)
        }
        Algorithm::PageRank { iterations } => {
            let out = pregel::run(
                g,
                part,
                &pregel::PageRankProgram {
                    iterations,
                    damping: 0.85,
                },
                max_supersteps,
            );
            (AlgorithmOutput::Ranks(out.values), out.supersteps)
        }
        Algorithm::Wcc => {
            let out = pregel::run(g, part, &pregel::WccProgram, max_supersteps);
            (AlgorithmOutput::Labels(out.values), out.supersteps)
        }
        Algorithm::Sssp { source } => {
            let out = pregel::run(g, part, &pregel::SsspProgram { source }, max_supersteps);
            (AlgorithmOutput::Distances(out.values), out.supersteps)
        }
        Algorithm::Cdlp { iterations } => {
            let out = pregel::run(g, part, &pregel::CdlpProgram { iterations }, max_supersteps);
            (AlgorithmOutput::Labels(out.values), out.supersteps)
        }
    }
}

impl GiraphPlatform {
    /// Runs a job on a DAS5-like cluster with `cfg.nodes` nodes.
    pub fn run(&self, g: &Graph, cfg: &JobConfig) -> Result<PlatformRun, SimError> {
        self.run_on(g, cfg, &ClusterSpec::das5(cfg.nodes))
    }

    /// Runs a job on an explicit cluster (must have at least `cfg.nodes`
    /// nodes).
    pub fn run_on(
        &self,
        g: &Graph,
        cfg: &JobConfig,
        cluster: &ClusterSpec,
    ) -> Result<PlatformRun, SimError> {
        assert!(
            cluster.len() >= cfg.nodes as usize && cfg.nodes > 0,
            "cluster too small for {} workers",
            cfg.nodes
        );
        let k = cfg.nodes;
        let costs = &cfg.costs;
        let scale = cfg.scale_factor;
        let part = EdgeCutPartition::hash(g.num_vertices(), k);
        let (output, supersteps) = run_program(g, &part, cfg.algorithm, self.max_supersteps);

        // Per-worker data sizes (logical counts; scaled at use sites).
        let mut verts = vec![0u64; k as usize];
        let mut edges = vec![0u64; k as usize];
        for v in 0..g.num_vertices() {
            let w = part.owner_of(v) as usize;
            verts[w] += 1;
            edges[w] += g.out_degree(v) as u64;
        }
        let input_bytes: Vec<f64> = (0..k as usize)
            .map(|w| (verts[w] as f64 * 10.0 + edges[w] as f64 * costs.bytes_per_edge_in) * scale)
            .collect();

        let mut dag = ActivityGraph::new();
        let mut specs: Vec<OpSpec> = Vec::new();
        let job_actor = Actor::new("Job", "0");
        let job_mission = Mission::new("GiraphJob", "0");
        let job_key = (job_actor.clone(), job_mission.clone());
        let master_node = cluster.node(NodeId(0)).name.clone();
        let worker_node = |w: u16| cluster.node(NodeId(w)).name.clone();

        specs.push(
            OpSpec::new(
                job_actor.clone(),
                job_mission.clone(),
                None,
                "job/",
                &master_node,
                "client",
            )
            .with_info("Platform", InfoValue::Text("Giraph".into()))
            .with_info("Algorithm", InfoValue::Text(cfg.algorithm.name().into()))
            .with_info("Dataset", InfoValue::Text(cfg.dataset.clone()))
            .with_info("Workers", InfoValue::Int(k as i64)),
        );
        let domain = |mission: &str| (job_actor.clone(), Mission::new(mission, "0"));

        // -------------------------------------------------- Startup (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("Startup", "0"),
            Some(job_key.clone()),
            "job/startup/",
            &master_node,
            "client",
        ));
        let negotiate = dag.add(
            ActivityKind::Delay {
                duration_us: self.negotiation_us,
            },
            &[],
            "job/startup/jobstartup/negotiate",
        );
        specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("JobStartup", "0"),
            Some(domain("Startup")),
            "job/startup/jobstartup/",
            &master_node,
            "master",
        ));
        specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("LaunchWorkers", "0"),
            Some(domain("Startup")),
            "job/startup/launch/",
            &master_node,
            "master",
        ));
        let mut worker_ready: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let tagp = format!("job/startup/launch/w{w}/");
            let alloc = dag.add(
                ActivityKind::Delay {
                    duration_us: self.container_alloc_us * (1.0 + 0.12 * w as f64),
                },
                &[negotiate],
                format!("{tagp}alloc"),
            );
            let jvm = dag.add(
                ActivityKind::Delay {
                    duration_us: self.jvm_startup_us,
                },
                &[alloc],
                format!("{tagp}jvm"),
            );
            let zk = dag.add(
                ActivityKind::Delay {
                    duration_us: self.zk_register_us,
                },
                &[jvm],
                format!("{tagp}zk"),
            );
            specs.push(OpSpec::new(
                Actor::new("Worker", w.to_string()),
                Mission::new("LocalStartup", "0"),
                Some((
                    Actor::new("Master", "0"),
                    Mission::new("LaunchWorkers", "0"),
                )),
                tagp,
                worker_node(w),
                format!("worker-{w}"),
            ));
            worker_ready.push(zk);
        }
        let started = dag.barrier(&worker_ready, "job/startup/all-ready");

        // ------------------------------------------------ LoadGraph (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("LoadGraph", "0"),
            Some(job_key.clone()),
            "job/load/",
            &master_node,
            "client",
        ));
        let mut loaded: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let node = NodeId(w);
            let tagp = format!("job/load/w{w}/");
            specs.push(
                OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalLoad", "0"),
                    Some(domain("LoadGraph")),
                    tagp.clone(),
                    worker_node(w),
                    format!("worker-{w}"),
                )
                .with_info(
                    "InputBytes",
                    InfoValue::Int(input_bytes[w as usize].round() as i64),
                ),
            );
            specs.push(OpSpec::new(
                Actor::new("Worker", w.to_string()),
                Mission::new("LoadHdfsData", "0"),
                Some((
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalLoad", "0"),
                )),
                format!("{tagp}hdfs/"),
                worker_node(w),
                format!("worker-{w}"),
            ));
            // Pipelined chunks: read c -> parse c; read c+1 after read c.
            let chunk_bytes = input_bytes[w as usize] / LOAD_CHUNKS as f64;
            let parse_per_chunk = chunk_bytes * costs.parse_cpu_us_per_byte;
            let mut prev_read = started;
            let mut prev_parse: Option<ActivityId> = None;
            for c in 0..LOAD_CHUNKS {
                let read = self.fs.read(
                    cluster,
                    &mut dag,
                    node,
                    chunk_bytes,
                    &[prev_read],
                    &format!("{tagp}hdfs/c{c}/"),
                );
                // The worker's parser pool handles one chunk at a time at
                // `worker_threads` parallelism; reads are pipelined ahead.
                let deps: Vec<ActivityId> = match prev_parse {
                    Some(p) => vec![read, p],
                    None => vec![read],
                };
                let parse = dag.add(
                    ActivityKind::Compute {
                        node,
                        work_core_us: parse_per_chunk,
                        parallelism: costs.worker_threads,
                    },
                    &deps,
                    format!("{tagp}parse/c{c}"),
                );
                prev_read = read;
                prev_parse = Some(parse);
            }
            let parsed = dag.barrier(
                &[prev_parse.expect("LOAD_CHUNKS > 0")],
                format!("{tagp}parse/done"),
            );
            let build = dag.add(
                ActivityKind::Compute {
                    node,
                    work_core_us: edges[w as usize] as f64 * scale * costs.build_cpu_us_per_edge,
                    parallelism: costs.worker_threads,
                },
                &[parsed],
                format!("{tagp}build"),
            );
            loaded.push(build);
        }
        let all_loaded = dag.barrier(&loaded, "job/load/all-loaded");

        // ---------------------------------------------- ProcessGraph (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("ProcessGraph", "0"),
            Some(job_key.clone()),
            "job/proc/",
            &master_node,
            "client",
        ));
        let mut prev_barrier = all_loaded;
        for ss in &supersteps {
            let s = ss.superstep;
            let ss_tag = format!("job/proc/ss{s}/");
            specs.push(
                OpSpec::new(
                    job_actor.clone(),
                    Mission::new("Superstep", s.to_string()),
                    Some(domain("ProcessGraph")),
                    ss_tag.clone(),
                    &master_node,
                    "master",
                )
                .with_info(
                    "ActiveVertices",
                    InfoValue::Int((ss.total_active() as f64 * scale).round() as i64),
                )
                .with_info(
                    "MessagesSent",
                    InfoValue::Int((ss.total_messages() as f64 * scale).round() as i64),
                ),
            );
            let mut worker_posts: Vec<ActivityId> = Vec::with_capacity(k as usize);
            let mut computes: Vec<ActivityId> = Vec::with_capacity(k as usize);
            for w in 0..k {
                let node = NodeId(w);
                let stats = &ss.per_worker[w as usize];
                let w_tag = format!("{ss_tag}w{w}/");
                specs.push(OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalSuperstep", s.to_string()),
                    Some((job_actor.clone(), Mission::new("Superstep", s.to_string()))),
                    w_tag.clone(),
                    worker_node(w),
                    format!("worker-{w}"),
                ));
                let local_parent = (
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalSuperstep", s.to_string()),
                );
                let pre = dag.add(
                    ActivityKind::Delay {
                        duration_us: costs.barrier_us * 0.4,
                    },
                    &[prev_barrier],
                    format!("{w_tag}pre"),
                );
                let _ = pre;
                specs.push(OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("PreStep", s.to_string()),
                    Some(local_parent.clone()),
                    format!("{w_tag}pre"),
                    worker_node(w),
                    format!("worker-{w}"),
                ));
                let work = (stats.edges_scanned as f64 * costs.compute_us_per_edge
                    + stats.active_vertices as f64 * costs.compute_us_per_vertex
                    + stats.messages_sent as f64 * costs.serialize_us_per_message)
                    * scale;
                let compute = dag.add(
                    ActivityKind::Compute {
                        node,
                        // Idle workers still tick over the barrier machinery.
                        work_core_us: work.max(1_000.0),
                        parallelism: costs.worker_threads,
                    },
                    &[pre],
                    format!("{w_tag}compute"),
                );
                specs.push(
                    OpSpec::new(
                        Actor::new("Worker", w.to_string()),
                        Mission::new("Compute", s.to_string()),
                        Some(local_parent),
                        format!("{w_tag}compute"),
                        worker_node(w),
                        format!("worker-{w}"),
                    )
                    .with_info(
                        "EdgesScanned",
                        InfoValue::Int((stats.edges_scanned as f64 * scale).round() as i64),
                    )
                    .with_info(
                        "ActiveVertices",
                        InfoValue::Int((stats.active_vertices as f64 * scale).round() as i64),
                    ),
                );
                computes.push(compute);
            }
            for w in 0..k {
                let stats = &ss.per_worker[w as usize];
                let w_tag = format!("{ss_tag}w{w}/");
                let local_parent = (
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalSuperstep", s.to_string()),
                );
                // Message flushing: transfers to workers receiving remote
                // messages from this worker.
                let mut flushes: Vec<ActivityId> = Vec::new();
                let mut remote_msgs = 0u64;
                for dst in 0..k {
                    let count = ss.remote_messages[w as usize][dst as usize];
                    if dst == w || count == 0 {
                        continue;
                    }
                    remote_msgs += count;
                    flushes.push(dag.add(
                        ActivityKind::Transfer {
                            src: NodeId(w),
                            dst: NodeId(dst),
                            bytes: count as f64 * costs.bytes_per_message * scale,
                        },
                        &[computes[w as usize]],
                        format!("{w_tag}msg/to{dst}"),
                    ));
                }
                if !flushes.is_empty() {
                    specs.push(
                        OpSpec::new(
                            Actor::new("Worker", w.to_string()),
                            Mission::new("Message", s.to_string()),
                            Some(local_parent.clone()),
                            format!("{w_tag}msg/"),
                            worker_node(w),
                            format!("worker-{w}"),
                        )
                        .with_info(
                            "RemoteMessages",
                            InfoValue::Int((remote_msgs as f64 * scale).round() as i64),
                        )
                        .with_info(
                            "MessagesSent",
                            InfoValue::Int((stats.messages_sent as f64 * scale).round() as i64),
                        ),
                    );
                }
                let mut post_deps = flushes;
                post_deps.push(computes[w as usize]);
                let post = dag.add(
                    ActivityKind::Delay {
                        duration_us: costs.barrier_us * 0.6,
                    },
                    &post_deps,
                    format!("{w_tag}post"),
                );
                specs.push(OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("PostStep", s.to_string()),
                    Some(local_parent),
                    format!("{w_tag}post"),
                    worker_node(w),
                    format!("worker-{w}"),
                ));
                worker_posts.push(post);
            }
            // ZooKeeper-coordinated global barrier.
            let zk_join = dag.barrier(&worker_posts, format!("{ss_tag}zk/join"));
            let zk = dag.add(
                ActivityKind::Delay {
                    duration_us: costs.barrier_us * 0.3,
                },
                &[zk_join],
                format!("{ss_tag}zk/sync"),
            );
            specs.push(OpSpec::new(
                Actor::new("Master", "0"),
                Mission::new("SyncZookeeper", s.to_string()),
                Some((job_actor.clone(), Mission::new("Superstep", s.to_string()))),
                format!("{ss_tag}zk/"),
                &master_node,
                "master",
            ));
            prev_barrier = zk;
        }

        // --------------------------------------------- OffloadGraph (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("OffloadGraph", "0"),
            Some(job_key.clone()),
            "job/offload/",
            &master_node,
            "client",
        ));
        let mut offloads: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            let tagp = format!("job/offload/w{w}/");
            let bytes = verts[w as usize] as f64 * costs.bytes_per_vertex_out * scale;
            let write = self.fs.write(
                cluster,
                &mut dag,
                NodeId(w),
                bytes,
                &[prev_barrier],
                &format!("{tagp}hdfs/"),
            );
            specs.push(
                OpSpec::new(
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalOffload", "0"),
                    Some(domain("OffloadGraph")),
                    tagp.clone(),
                    worker_node(w),
                    format!("worker-{w}"),
                )
                .with_info("OutputBytes", InfoValue::Int(bytes.round() as i64)),
            );
            specs.push(OpSpec::new(
                Actor::new("Worker", w.to_string()),
                Mission::new("OffloadHdfsData", "0"),
                Some((
                    Actor::new("Worker", w.to_string()),
                    Mission::new("LocalOffload", "0"),
                )),
                format!("{tagp}hdfs/"),
                worker_node(w),
                format!("worker-{w}"),
            ));
            offloads.push(write);
        }
        let all_offloaded = dag.barrier(&offloads, "job/offload/all-done");

        // -------------------------------------------------- Cleanup (L1)
        specs.push(OpSpec::new(
            job_actor.clone(),
            Mission::new("Cleanup", "0"),
            Some(job_key.clone()),
            "job/cleanup/",
            &master_node,
            "client",
        ));
        let cleanup_parent = domain("Cleanup");
        let mut aborts: Vec<ActivityId> = Vec::with_capacity(k as usize);
        for w in 0..k {
            aborts.push(dag.add(
                ActivityKind::Delay {
                    duration_us: self.cleanup_us[0],
                },
                &[all_offloaded],
                format!("job/cleanup/abort/w{w}"),
            ));
        }
        let aborted = dag.barrier(&aborts, "job/cleanup/abort/join");
        specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("AbortWorkers", "0"),
            Some(cleanup_parent.clone()),
            "job/cleanup/abort/",
            &master_node,
            "master",
        ));
        let client = dag.add(
            ActivityKind::Delay {
                duration_us: self.cleanup_us[1],
            },
            &[aborted],
            "job/cleanup/client",
        );
        specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("ClientCleanup", "0"),
            Some(cleanup_parent.clone()),
            "job/cleanup/client",
            &master_node,
            "master",
        ));
        let server = dag.add(
            ActivityKind::Delay {
                duration_us: self.cleanup_us[2],
            },
            &[client],
            "job/cleanup/server",
        );
        specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("ServerCleanup", "0"),
            Some(cleanup_parent.clone()),
            "job/cleanup/server",
            &master_node,
            "master",
        ));
        dag.add(
            ActivityKind::Delay {
                duration_us: self.cleanup_us[3],
            },
            &[server],
            "job/cleanup/zk",
        );
        specs.push(OpSpec::new(
            Actor::new("Master", "0"),
            Mission::new("ZkCleanup", "0"),
            Some(cleanup_parent),
            "job/cleanup/zk",
            &master_node,
            "master",
        ));

        // ------------------------------------------------------- Simulate
        let sim = Simulation::new(cluster.clone()).run(&dag)?;
        let events = emit_events(&specs, &dag, &sim);
        let mut env_samples = trace_to_samples(&sim.trace);
        // Memory view: each worker's partition becomes resident over its
        // load interval and is released when its JVM exits at cleanup.
        let release = sim
            .span_of_tag(&dag, "job/cleanup/")
            .map(|(s, _)| s.round() as u64)
            .unwrap_or(sim.makespan_us.round() as u64);
        let mut phases = Vec::with_capacity(k as usize);
        for w in 0..k {
            if let Some((ls, le)) = sim.span_of_tag(&dag, &format!("job/load/w{w}/")) {
                phases.push(MemoryPhase {
                    node: worker_node(w),
                    ramp_start_us: ls.round() as u64,
                    ramp_end_us: le.round() as u64,
                    hold_until_us: release,
                    bytes: edges[w as usize] as f64 * scale * costs.bytes_per_edge_mem,
                });
            }
        }
        env_samples.extend(memory_samples(&phases, sim.makespan_us.round() as u64));
        Ok(PlatformRun {
            events,
            env_samples,
            output,
            makespan_us: sim.makespan_us.round() as u64,
            iterations: supersteps.len() as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{reference_output, CostModel};
    use gpsim_graph::gen::{datagen_like, GenConfig};
    use granula_monitor::Assembler;

    fn job(algorithm: Algorithm) -> (Graph, JobConfig) {
        let g = datagen_like(&GenConfig::datagen(2_000, 11));
        let cfg = JobConfig::new(
            "test-job",
            "dg-test",
            algorithm,
            8,
            CostModel::giraph_like(),
        );
        (g, cfg)
    }

    #[test]
    fn bfs_run_produces_correct_output() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = GiraphPlatform::default().run(&g, &cfg).unwrap();
        assert!(run.output.matches(&reference_output(&g, cfg.algorithm)));
        assert!(run.makespan_us > 0);
        assert!(run.iterations > 2);
    }

    #[test]
    fn events_assemble_into_a_clean_tree() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = GiraphPlatform::default().run(&g, &cfg).unwrap();
        let outcome = Assembler::new().assemble(run.events);
        assert!(
            outcome.warnings.is_empty(),
            "{:?}",
            &outcome.warnings[..5.min(outcome.warnings.len())]
        );
        let tree = outcome.tree;
        let root = tree.root().unwrap();
        assert_eq!(tree.op(root).mission.kind, "GiraphJob");
        // Domain level: all five operations of Figure 3.
        for m in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            assert!(tree.child_by_mission(root, m).is_some(), "missing {m}");
        }
        // Supersteps appear under ProcessGraph.
        let proc_ = tree.child_by_mission(root, "ProcessGraph").unwrap();
        let n_ss = tree
            .children(proc_)
            .filter(|o| o.mission.kind == "Superstep")
            .count();
        assert_eq!(n_ss as u32, run.iterations);
    }

    #[test]
    fn domain_phases_are_ordered() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = GiraphPlatform::default().run(&g, &cfg).unwrap();
        let tree = Assembler::new().assemble(run.events).tree;
        let root = tree.root().unwrap();
        let phase = |m: &str| {
            let id = tree.child_by_mission(root, m).unwrap();
            (
                tree.op(id).start_us().unwrap(),
                tree.op(id).end_us().unwrap(),
            )
        };
        let startup = phase("Startup");
        let load = phase("LoadGraph");
        let proc_ = phase("ProcessGraph");
        let offload = phase("OffloadGraph");
        let cleanup = phase("Cleanup");
        assert!(startup.1 <= load.0 + 1);
        assert!(load.1 <= proc_.0 + 1);
        assert!(proc_.1 <= offload.0 + 1);
        assert!(offload.1 <= cleanup.0 + 1);
    }

    #[test]
    fn environment_samples_cover_all_nodes() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let run = GiraphPlatform::default().run(&g, &cfg).unwrap();
        let nodes: std::collections::BTreeSet<&str> =
            run.env_samples.iter().map(|s| s.node.as_str()).collect();
        assert_eq!(nodes.len(), 8);
    }

    #[test]
    fn scale_factor_stretches_runtime() {
        let (g, cfg) = job(Algorithm::Bfs { source: 3 });
        let small = GiraphPlatform::default().run(&g, &cfg).unwrap();
        let big = GiraphPlatform::default()
            .run(&g, &cfg.clone().with_scale(50.0))
            .unwrap();
        assert!(
            big.makespan_us > small.makespan_us,
            "scaled run should be slower: {} vs {}",
            big.makespan_us,
            small.makespan_us
        );
    }

    #[test]
    fn pagerank_and_wcc_also_validate() {
        for algorithm in [Algorithm::PageRank { iterations: 5 }, Algorithm::Wcc] {
            let (g, cfg) = job(algorithm);
            let run = GiraphPlatform::default().run(&g, &cfg).unwrap();
            assert!(
                run.output.matches(&reference_output(&g, algorithm)),
                "{algorithm:?}"
            );
        }
    }
}
