//! Cluster topology: nodes and their raw capacities.

use serde::{Deserialize, Serialize};

/// Index of a node within a [`ClusterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

/// Capacities of one compute node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Hostname, e.g. `"node340"`.
    pub name: String,
    /// Hardware threads available to jobs (the sharing unit of the CPU
    /// resource).
    pub cores: u32,
    /// Local disk bandwidth, bytes/second.
    pub disk_bps: f64,
    /// NIC bandwidth (full duplex; same capacity each direction), bytes/second.
    pub nic_bps: f64,
    /// Main memory, bytes. Tracked for archive metadata; the simulator does
    /// not currently model memory pressure.
    pub mem_bytes: u64,
}

/// The simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// All nodes, indexed by [`NodeId`].
    pub nodes: Vec<NodeSpec>,
    /// Aggregate bandwidth of the shared-filesystem server, bytes/second.
    /// Used by [`crate::fs::SharedFsSpec`] reads.
    pub shared_fs_bps: f64,
}

impl ClusterSpec {
    /// A homogeneous cluster of `n` identical nodes.
    pub fn homogeneous(n: u16, spec: NodeSpec) -> Self {
        let nodes = (0..n)
            .map(|i| NodeSpec {
                name: format!("node{:03}", 300 + i),
                ..spec.clone()
            })
            .collect();
        ClusterSpec {
            nodes,
            shared_fs_bps: 1.0e9,
        }
    }

    /// A DAS5-like cluster: dual 8-core Xeon (32 hardware threads), 10 Gbit/s
    /// interconnect, local spinning disks, NFS-style shared storage.
    pub fn das5(n: u16) -> Self {
        let mut c = Self::homogeneous(
            n,
            NodeSpec {
                name: String::new(),
                cores: 32,
                disk_bps: 400.0e6,
                nic_bps: 1.25e9, // 10 Gbit/s
                mem_bytes: 64 << 30,
            },
        );
        c.shared_fs_bps = 1.0e9;
        c
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node spec.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.0 as usize]
    }

    /// Iterate over `(NodeId, &NodeSpec)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeSpec)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u16), n))
    }

    /// Look up a node by name.
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.name == name)
            .map(|i| NodeId(i as u16))
    }

    /// Total core count across the cluster.
    pub fn total_cores(&self) -> u32 {
        self.nodes.iter().map(|n| n.cores).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das5_preset_shape() {
        let c = ClusterSpec::das5(8);
        assert_eq!(c.len(), 8);
        assert_eq!(c.total_cores(), 256);
        assert_eq!(c.node(NodeId(0)).cores, 32);
        assert!(c.nodes.iter().all(|n| n.name.starts_with("node3")));
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let c = ClusterSpec::das5(4);
        for (id, n) in c.iter() {
            assert_eq!(c.by_name(&n.name), Some(id));
        }
        assert_eq!(c.by_name("nosuch"), None);
    }
}
