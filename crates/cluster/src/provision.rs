//! Provisioning models: how workers get deployed on the cluster.
//!
//! Table 1 distinguishes platforms by provisioning: YARN (Giraph, Hadoop),
//! MPI (PowerGraph, GraphMat) or native/OS-only (OpenG, TOTEM). Each model
//! plans the startup activities whose completion means "worker `i` is ready"
//! and the teardown activities of the cleanup phase. The latencies are what
//! makes Giraph's `Startup`/`Cleanup` a third of its runtime in Figure 5
//! while contributing almost nothing for MPI platforms.

use serde::{Deserialize, Serialize};

use crate::activity::{ActivityGraph, ActivityId, ActivityKind};
use crate::topology::NodeId;

/// A deployment mechanism that can plan startup and teardown.
pub trait Provisioner {
    /// Plans worker deployment on `nodes`. Returns one activity per node;
    /// its completion means the worker on that node is ready.
    fn deploy(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> Vec<ActivityId>;

    /// Plans teardown. Returns the activity whose completion means all
    /// resources are released.
    fn teardown(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> ActivityId;
}

/// YARN-like provisioning: a resource-negotiation round trip with the
/// ResourceManager, then per-container allocation + JVM launch, then a
/// ZooKeeper-like service registration barrier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YarnProvisioner {
    /// Client ↔ ResourceManager negotiation, microseconds.
    pub negotiation_us: f64,
    /// Per-container allocation latency, microseconds.
    pub container_alloc_us: f64,
    /// JVM/process start per container, microseconds.
    pub jvm_startup_us: f64,
    /// Service (ZooKeeper) registration sync, microseconds.
    pub zk_sync_us: f64,
    /// Client/AppMaster/ZooKeeper teardown, microseconds.
    pub cleanup_us: f64,
    /// Bound on container (re-)allocation attempts before the application
    /// master gives up; [`YarnProvisioner::reprovision`] clamps to this.
    pub max_attempts: u32,
    /// Base backoff between failed allocation attempts, microseconds;
    /// doubles per further failure (exponential backoff).
    pub retry_backoff_us: f64,
}

impl Default for YarnProvisioner {
    fn default() -> Self {
        // Defaults in the range observed for Giraph-on-YARN deployments.
        YarnProvisioner {
            negotiation_us: 2.5e6,
            container_alloc_us: 1.2e6,
            jvm_startup_us: 4.0e6,
            zk_sync_us: 1.5e6,
            cleanup_us: 6.0e6,
            max_attempts: 3,
            retry_backoff_us: 1.5e6,
        }
    }
}

impl YarnProvisioner {
    /// Plans the re-provisioning of a single replacement container after a
    /// worker loss: renegotiation with the ResourceManager, exponential
    /// backoff for each allocation attempt that already failed (clamped to
    /// [`max_attempts`](YarnProvisioner::max_attempts)), then the usual
    /// allocate → JVM launch → service-registration chain. Returns the
    /// activity whose completion means the replacement worker is ready.
    pub fn reprovision(
        &self,
        g: &mut ActivityGraph,
        failed_attempts: u32,
        deps: &[ActivityId],
        tag: &str,
    ) -> ActivityId {
        let negotiate = g.add(
            ActivityKind::Delay {
                duration_us: self.negotiation_us,
            },
            deps,
            format!("{tag}/renegotiate"),
        );
        let mut prev = negotiate;
        let retries = failed_attempts.min(self.max_attempts.saturating_sub(1));
        for attempt in 0..retries {
            prev = g.add(
                ActivityKind::Delay {
                    duration_us: self.retry_backoff_us * (1u64 << attempt) as f64,
                },
                &[prev],
                format!("{tag}/backoff-{attempt}"),
            );
        }
        let alloc = g.add(
            ActivityKind::Delay {
                duration_us: self.container_alloc_us,
            },
            &[prev],
            format!("{tag}/alloc"),
        );
        let jvm = g.add(
            ActivityKind::Delay {
                duration_us: self.jvm_startup_us,
            },
            &[alloc],
            format!("{tag}/launch"),
        );
        g.add(
            ActivityKind::Delay {
                duration_us: self.zk_sync_us,
            },
            &[jvm],
            format!("{tag}/zk-register"),
        )
    }
}

impl Provisioner for YarnProvisioner {
    fn deploy(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> Vec<ActivityId> {
        let negotiate = g.add(
            ActivityKind::Delay {
                duration_us: self.negotiation_us,
            },
            deps,
            format!("{tag}/negotiate"),
        );
        let mut ready = Vec::with_capacity(nodes.len());
        for (i, _node) in nodes.iter().enumerate() {
            // Containers are allocated with a slight serial component at the
            // ResourceManager: the i-th allocation waits i * 10% extra.
            let alloc = g.add(
                ActivityKind::Delay {
                    duration_us: self.container_alloc_us * (1.0 + 0.1 * i as f64),
                },
                &[negotiate],
                format!("{tag}/alloc-{i}"),
            );
            let jvm = g.add(
                ActivityKind::Delay {
                    duration_us: self.jvm_startup_us,
                },
                &[alloc],
                format!("{tag}/launch-{i}"),
            );
            let zk = g.add(
                ActivityKind::Delay {
                    duration_us: self.zk_sync_us,
                },
                &[jvm],
                format!("{tag}/zk-register-{i}"),
            );
            ready.push(zk);
        }
        ready
    }

    fn teardown(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> ActivityId {
        let mut ends = Vec::with_capacity(nodes.len());
        for (i, _) in nodes.iter().enumerate() {
            ends.push(g.add(
                ActivityKind::Delay {
                    duration_us: self.cleanup_us * 0.25,
                },
                deps,
                format!("{tag}/abort-worker-{i}"),
            ));
        }
        let joined = g.barrier(&ends, format!("{tag}/workers-stopped"));
        g.add(
            ActivityKind::Delay {
                duration_us: self.cleanup_us,
            },
            &[joined],
            format!("{tag}/release"),
        )
    }
}

/// MPI-like provisioning: one `mpirun` startup plus a small per-rank
/// handshake; teardown is nearly free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpiLauncher {
    /// `mpirun` + daemon startup, microseconds.
    pub mpirun_us: f64,
    /// Per-rank handshake, microseconds.
    pub per_rank_us: f64,
    /// Finalize latency, microseconds.
    pub finalize_us: f64,
}

impl Default for MpiLauncher {
    fn default() -> Self {
        MpiLauncher {
            mpirun_us: 1.5e6,
            per_rank_us: 0.15e6,
            finalize_us: 0.8e6,
        }
    }
}

impl Provisioner for MpiLauncher {
    fn deploy(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> Vec<ActivityId> {
        let mpirun = g.add(
            ActivityKind::Delay {
                duration_us: self.mpirun_us,
            },
            deps,
            format!("{tag}/mpirun"),
        );
        nodes
            .iter()
            .enumerate()
            .map(|(i, _)| {
                g.add(
                    ActivityKind::Delay {
                        duration_us: self.per_rank_us,
                    },
                    &[mpirun],
                    format!("{tag}/rank-{i}"),
                )
            })
            .collect()
    }

    fn teardown(
        &self,
        g: &mut ActivityGraph,
        _nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> ActivityId {
        g.add(
            ActivityKind::Delay {
                duration_us: self.finalize_us,
            },
            deps,
            format!("{tag}/finalize"),
        )
    }
}

/// Native (single-node / OS-only) provisioning: no cost at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NativeLauncher;

impl Provisioner for NativeLauncher {
    fn deploy(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> Vec<ActivityId> {
        nodes
            .iter()
            .enumerate()
            .map(|(i, _)| g.barrier(deps, format!("{tag}/spawn-{i}")))
            .collect()
    }

    fn teardown(
        &self,
        g: &mut ActivityGraph,
        _nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> ActivityId {
        g.barrier(deps, format!("{tag}/exit"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::topology::{ClusterSpec, NodeSpec};

    fn cluster(n: u16) -> ClusterSpec {
        ClusterSpec::homogeneous(
            n,
            NodeSpec {
                name: String::new(),
                cores: 8,
                disk_bps: 1e8,
                nic_bps: 1e8,
                mem_bytes: 1,
            },
        )
    }

    fn node_ids(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn yarn_deploy_dominates_mpi() {
        let nodes = node_ids(8);
        let mut gy = ActivityGraph::new();
        let ready = YarnProvisioner::default().deploy(&mut gy, &nodes, &[], "startup");
        gy.barrier(&ready, "all-ready");
        let yarn = Simulation::new(cluster(8)).run(&gy).unwrap().makespan_us;

        let mut gm = ActivityGraph::new();
        let ready = MpiLauncher::default().deploy(&mut gm, &nodes, &[], "startup");
        gm.barrier(&ready, "all-ready");
        let mpi = Simulation::new(cluster(8)).run(&gm).unwrap().makespan_us;

        assert!(yarn > 4.0 * mpi, "yarn={yarn} mpi={mpi}");
    }

    #[test]
    fn yarn_last_container_is_slowest() {
        let nodes = node_ids(4);
        let mut g = ActivityGraph::new();
        let ready = YarnProvisioner::default().deploy(&mut g, &nodes, &[], "s");
        let res = Simulation::new(cluster(4)).run(&g).unwrap();
        let ends: Vec<f64> = ready.iter().map(|&id| res.of(id).end_us).collect();
        assert!(ends.windows(2).all(|w| w[0] < w[1]), "{ends:?}");
    }

    #[test]
    fn native_costs_nothing() {
        let nodes = node_ids(2);
        let mut g = ActivityGraph::new();
        let ready = NativeLauncher.deploy(&mut g, &nodes, &[], "s");
        NativeLauncher.teardown(&mut g, &nodes, &ready, "t");
        let res = Simulation::new(cluster(2)).run(&g).unwrap();
        assert_eq!(res.makespan_us, 0.0);
    }

    #[test]
    fn reprovision_backs_off_exponentially_and_is_bounded() {
        let p = YarnProvisioner::default();
        let chain = |failed: u32| {
            let mut g = ActivityGraph::new();
            let ready = p.reprovision(&mut g, failed, &[], "re");
            let res = Simulation::new(cluster(1)).run(&g).unwrap();
            res.of(ready).end_us
        };
        let base = p.negotiation_us + p.container_alloc_us + p.jvm_startup_us + p.zk_sync_us;
        assert!((chain(0) - base).abs() < 1.0);
        // One failed attempt: one backoff. Two: 1x + 2x the base backoff.
        assert!((chain(1) - base - p.retry_backoff_us).abs() < 1.0);
        assert!((chain(2) - base - 3.0 * p.retry_backoff_us).abs() < 1.0);
        // The attempt count is bounded: further failures add no backoff
        // beyond max_attempts - 1 rounds.
        assert_eq!(chain(7), chain(p.max_attempts - 1));
    }

    #[test]
    fn yarn_teardown_joins_then_releases() {
        let nodes = node_ids(3);
        let mut g = ActivityGraph::new();
        let end = YarnProvisioner::default().teardown(&mut g, &nodes, &[], "cleanup");
        let res = Simulation::new(cluster(3)).run(&g).unwrap();
        let p = YarnProvisioner::default();
        let expected = p.cleanup_us * 0.25 + p.cleanup_us;
        assert!((res.of(end).end_us - expected).abs() < 1.0);
    }
}
