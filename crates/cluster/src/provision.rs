//! Provisioning models: how workers get deployed on the cluster.
//!
//! Table 1 distinguishes platforms by provisioning: YARN (Giraph, Hadoop),
//! MPI (PowerGraph, GraphMat) or native/OS-only (OpenG, TOTEM). Each model
//! plans the startup activities whose completion means "worker `i` is ready"
//! and the teardown activities of the cleanup phase. The latencies are what
//! makes Giraph's `Startup`/`Cleanup` a third of its runtime in Figure 5
//! while contributing almost nothing for MPI platforms.

use serde::{Deserialize, Serialize};

use crate::activity::{ActivityGraph, ActivityId, ActivityKind};
use crate::topology::NodeId;

/// A deployment mechanism that can plan startup and teardown.
pub trait Provisioner {
    /// Plans worker deployment on `nodes`. Returns one activity per node;
    /// its completion means the worker on that node is ready.
    fn deploy(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> Vec<ActivityId>;

    /// Plans teardown. Returns the activity whose completion means all
    /// resources are released.
    fn teardown(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> ActivityId;
}

/// YARN-like provisioning: a resource-negotiation round trip with the
/// ResourceManager, then per-container allocation + JVM launch, then a
/// ZooKeeper-like service registration barrier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YarnProvisioner {
    /// Client ↔ ResourceManager negotiation, microseconds.
    pub negotiation_us: f64,
    /// Per-container allocation latency, microseconds.
    pub container_alloc_us: f64,
    /// JVM/process start per container, microseconds.
    pub jvm_startup_us: f64,
    /// Service (ZooKeeper) registration sync, microseconds.
    pub zk_sync_us: f64,
    /// Client/AppMaster/ZooKeeper teardown, microseconds.
    pub cleanup_us: f64,
}

impl Default for YarnProvisioner {
    fn default() -> Self {
        // Defaults in the range observed for Giraph-on-YARN deployments.
        YarnProvisioner {
            negotiation_us: 2.5e6,
            container_alloc_us: 1.2e6,
            jvm_startup_us: 4.0e6,
            zk_sync_us: 1.5e6,
            cleanup_us: 6.0e6,
        }
    }
}

impl Provisioner for YarnProvisioner {
    fn deploy(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> Vec<ActivityId> {
        let negotiate = g.add(
            ActivityKind::Delay {
                duration_us: self.negotiation_us,
            },
            deps,
            format!("{tag}/negotiate"),
        );
        let mut ready = Vec::with_capacity(nodes.len());
        for (i, _node) in nodes.iter().enumerate() {
            // Containers are allocated with a slight serial component at the
            // ResourceManager: the i-th allocation waits i * 10% extra.
            let alloc = g.add(
                ActivityKind::Delay {
                    duration_us: self.container_alloc_us * (1.0 + 0.1 * i as f64),
                },
                &[negotiate],
                format!("{tag}/alloc-{i}"),
            );
            let jvm = g.add(
                ActivityKind::Delay {
                    duration_us: self.jvm_startup_us,
                },
                &[alloc],
                format!("{tag}/launch-{i}"),
            );
            let zk = g.add(
                ActivityKind::Delay {
                    duration_us: self.zk_sync_us,
                },
                &[jvm],
                format!("{tag}/zk-register-{i}"),
            );
            ready.push(zk);
        }
        ready
    }

    fn teardown(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> ActivityId {
        let mut ends = Vec::with_capacity(nodes.len());
        for (i, _) in nodes.iter().enumerate() {
            ends.push(g.add(
                ActivityKind::Delay {
                    duration_us: self.cleanup_us * 0.25,
                },
                deps,
                format!("{tag}/abort-worker-{i}"),
            ));
        }
        let joined = g.barrier(&ends, format!("{tag}/workers-stopped"));
        g.add(
            ActivityKind::Delay {
                duration_us: self.cleanup_us,
            },
            &[joined],
            format!("{tag}/release"),
        )
    }
}

/// MPI-like provisioning: one `mpirun` startup plus a small per-rank
/// handshake; teardown is nearly free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MpiLauncher {
    /// `mpirun` + daemon startup, microseconds.
    pub mpirun_us: f64,
    /// Per-rank handshake, microseconds.
    pub per_rank_us: f64,
    /// Finalize latency, microseconds.
    pub finalize_us: f64,
}

impl Default for MpiLauncher {
    fn default() -> Self {
        MpiLauncher {
            mpirun_us: 1.5e6,
            per_rank_us: 0.15e6,
            finalize_us: 0.8e6,
        }
    }
}

impl Provisioner for MpiLauncher {
    fn deploy(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> Vec<ActivityId> {
        let mpirun = g.add(
            ActivityKind::Delay {
                duration_us: self.mpirun_us,
            },
            deps,
            format!("{tag}/mpirun"),
        );
        nodes
            .iter()
            .enumerate()
            .map(|(i, _)| {
                g.add(
                    ActivityKind::Delay {
                        duration_us: self.per_rank_us,
                    },
                    &[mpirun],
                    format!("{tag}/rank-{i}"),
                )
            })
            .collect()
    }

    fn teardown(
        &self,
        g: &mut ActivityGraph,
        _nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> ActivityId {
        g.add(
            ActivityKind::Delay {
                duration_us: self.finalize_us,
            },
            deps,
            format!("{tag}/finalize"),
        )
    }
}

/// Native (single-node / OS-only) provisioning: no cost at all.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NativeLauncher;

impl Provisioner for NativeLauncher {
    fn deploy(
        &self,
        g: &mut ActivityGraph,
        nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> Vec<ActivityId> {
        nodes
            .iter()
            .enumerate()
            .map(|(i, _)| g.barrier(deps, format!("{tag}/spawn-{i}")))
            .collect()
    }

    fn teardown(
        &self,
        g: &mut ActivityGraph,
        _nodes: &[NodeId],
        deps: &[ActivityId],
        tag: &str,
    ) -> ActivityId {
        g.barrier(deps, format!("{tag}/exit"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::topology::{ClusterSpec, NodeSpec};

    fn cluster(n: u16) -> ClusterSpec {
        ClusterSpec::homogeneous(
            n,
            NodeSpec {
                name: String::new(),
                cores: 8,
                disk_bps: 1e8,
                nic_bps: 1e8,
                mem_bytes: 1,
            },
        )
    }

    fn node_ids(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn yarn_deploy_dominates_mpi() {
        let nodes = node_ids(8);
        let mut gy = ActivityGraph::new();
        let ready = YarnProvisioner::default().deploy(&mut gy, &nodes, &[], "startup");
        gy.barrier(&ready, "all-ready");
        let yarn = Simulation::new(cluster(8)).run(&gy).unwrap().makespan_us;

        let mut gm = ActivityGraph::new();
        let ready = MpiLauncher::default().deploy(&mut gm, &nodes, &[], "startup");
        gm.barrier(&ready, "all-ready");
        let mpi = Simulation::new(cluster(8)).run(&gm).unwrap().makespan_us;

        assert!(yarn > 4.0 * mpi, "yarn={yarn} mpi={mpi}");
    }

    #[test]
    fn yarn_last_container_is_slowest() {
        let nodes = node_ids(4);
        let mut g = ActivityGraph::new();
        let ready = YarnProvisioner::default().deploy(&mut g, &nodes, &[], "s");
        let res = Simulation::new(cluster(4)).run(&g).unwrap();
        let ends: Vec<f64> = ready.iter().map(|&id| res.of(id).end_us).collect();
        assert!(ends.windows(2).all(|w| w[0] < w[1]), "{ends:?}");
    }

    #[test]
    fn native_costs_nothing() {
        let nodes = node_ids(2);
        let mut g = ActivityGraph::new();
        let ready = NativeLauncher.deploy(&mut g, &nodes, &[], "s");
        NativeLauncher.teardown(&mut g, &nodes, &ready, "t");
        let res = Simulation::new(cluster(2)).run(&g).unwrap();
        assert_eq!(res.makespan_us, 0.0);
    }

    #[test]
    fn yarn_teardown_joins_then_releases() {
        let nodes = node_ids(3);
        let mut g = ActivityGraph::new();
        let end = YarnProvisioner::default().teardown(&mut g, &nodes, &[], "cleanup");
        let res = Simulation::new(cluster(3)).run(&g).unwrap();
        let p = YarnProvisioner::default();
        let expected = p.cleanup_us * 0.25 + p.cleanup_us;
        assert!((res.of(end).end_us - expected).abs() < 1.0);
    }
}
