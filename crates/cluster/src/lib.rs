//! # gpsim-cluster
//!
//! A discrete-event cluster simulator: the substrate standing in for the
//! DAS5 cluster the Granula paper ran on.
//!
//! Platforms compile a job into an [`ActivityGraph`] — a DAG of activities
//! (compute, disk I/O, network transfers, fixed latencies) bound to cluster
//! nodes — and the [`sim::Simulation`] executes it under **max-min fair
//! sharing** of every resource (node cores, disk bandwidth, NIC bandwidth,
//! shared-filesystem server bandwidth). The simulator produces, for every
//! activity, its start/end time, and for every node a per-second
//! resource-usage trace ([`UsageTrace`]) — exactly the two kinds of data
//! (platform logs and environment logs) the Granula monitoring stage
//! consumes.
//!
//! Also provided: filesystem models ([`fs`]) that decompose logical reads
//! into disk/network activities (local, NFS-like shared, HDFS-like
//! distributed), and provisioning models ([`provision`]) for YARN-like and
//! MPI-like worker deployment latencies.

pub mod activity;
pub mod fault;
pub mod fs;
pub mod intern;
pub mod provision;
pub mod resources;
pub(crate) mod sched;
pub mod sim;
pub mod topology;
pub mod trace;

pub use activity::{ActivityGraph, ActivityId, ActivityKind, ActivityRef};
pub use fault::{DegradedChannel, FaultEvent, FaultPlan, NodeCrash, Slowdown};
pub use fs::{DfsSpec, FileSystem, LocalFsSpec, SharedFsSpec};
pub use intern::Symbol;
pub use provision::{MpiLauncher, NativeLauncher, Provisioner, YarnProvisioner};
pub use sim::{ActivityResult, SimError, SimResult, Simulation};
pub use topology::{ClusterSpec, NodeId, NodeSpec};
pub use trace::UsageTrace;
