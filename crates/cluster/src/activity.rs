//! Activity DAGs: the unit of work the simulator executes.
//!
//! An [`Activity`] is a single-resource demand (an amount of compute work,
//! bytes of disk or network traffic, or a fixed latency) bound to nodes and
//! ordered by dependencies. Platforms *tag* activities with the operation
//! they belong to; after simulation, an operation's start/end is the
//! min/max over its tagged activities.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::topology::NodeId;

/// Index of an activity within an [`ActivityGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActivityId(pub u32);

/// What an activity consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActivityKind {
    /// CPU work on one node. `work_core_us` core-microseconds are processed
    /// at a rate of up to `parallelism` cores (further limited by fair
    /// sharing of the node's cores).
    Compute {
        /// Node executing the work.
        node: NodeId,
        /// Total work, core-microseconds.
        work_core_us: f64,
        /// Maximum cores the activity can use at once.
        parallelism: u32,
    },
    /// Read from the node's local disk.
    DiskRead {
        /// Node whose disk is read.
        node: NodeId,
        /// Bytes read.
        bytes: f64,
    },
    /// Write to the node's local disk.
    DiskWrite {
        /// Node whose disk is written.
        node: NodeId,
        /// Bytes written.
        bytes: f64,
    },
    /// Network transfer between two nodes (consumes `src` NIC-out and `dst`
    /// NIC-in). Same-node transfers complete at memory speed and are modeled
    /// as free.
    Transfer {
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Bytes moved.
        bytes: f64,
    },
    /// Read from the shared filesystem server (consumes the server's
    /// aggregate bandwidth and the reader's NIC-in).
    SharedRead {
        /// Node performing the read.
        node: NodeId,
        /// Bytes read.
        bytes: f64,
    },
    /// A fixed latency (resource-manager round-trips, process launches…).
    Delay {
        /// Duration, microseconds.
        duration_us: f64,
    },
    /// Zero-duration synchronization point (barrier / join marker).
    Barrier,
}

impl ActivityKind {
    /// Total amount to process, in the kind's own unit.
    pub fn amount(&self) -> f64 {
        match self {
            ActivityKind::Compute { work_core_us, .. } => *work_core_us,
            ActivityKind::DiskRead { bytes, .. }
            | ActivityKind::DiskWrite { bytes, .. }
            | ActivityKind::SharedRead { bytes, .. } => *bytes,
            ActivityKind::Transfer { src, dst, bytes } => {
                if src == dst {
                    0.0
                } else {
                    *bytes
                }
            }
            ActivityKind::Delay { duration_us } => *duration_us,
            ActivityKind::Barrier => 0.0,
        }
    }
}

/// One node of the activity DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Identity within the graph.
    pub id: ActivityId,
    /// Resource demand.
    pub kind: ActivityKind,
    /// Activities that must complete before this one starts.
    pub deps: Vec<ActivityId>,
    /// Free-form tag linking the activity to a platform operation, e.g.
    /// `"LoadGraph/LocalLoad@Worker-3"`.
    pub tag: String,
}

/// Lazily-built index of activity ids sorted by `(tag, id)`, backing
/// [`ActivityGraph::tagged`]. Cleared on every mutation. A pure function of
/// the activities, so it is ignored by comparison and serialization.
#[derive(Debug, Clone, Default)]
struct TagIndex(OnceLock<Vec<u32>>);

impl PartialEq for TagIndex {
    fn eq(&self, _other: &Self) -> bool {
        // Derived caches never distinguish graphs.
        true
    }
}

/// A DAG of activities.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityGraph {
    acts: Vec<Activity>,
    #[serde(skip)]
    tag_index: TagIndex,
}

impl ActivityGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an activity with dependencies; returns its id.
    ///
    /// # Panics
    /// Panics if a dependency id is not already in the graph (dependencies
    /// must be added first, which also guarantees acyclicity).
    pub fn add(
        &mut self,
        kind: ActivityKind,
        deps: &[ActivityId],
        tag: impl Into<String>,
    ) -> ActivityId {
        let id = ActivityId(self.acts.len() as u32);
        for d in deps {
            assert!(
                (d.0 as usize) < self.acts.len(),
                "dependency {d:?} added after dependent activity"
            );
        }
        self.tag_index.0.take();
        self.acts.push(Activity {
            id,
            kind,
            deps: deps.to_vec(),
            tag: tag.into(),
        });
        id
    }

    /// Adds a barrier joining `deps`; returns its id. Useful as a compact
    /// fan-in point for superstep synchronization.
    pub fn barrier(&mut self, deps: &[ActivityId], tag: impl Into<String>) -> ActivityId {
        self.add(ActivityKind::Barrier, deps, tag)
    }

    /// Number of activities.
    pub fn len(&self) -> usize {
        self.acts.len()
    }

    /// True when the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.acts.is_empty()
    }

    /// Borrows an activity.
    pub fn get(&self, id: ActivityId) -> &Activity {
        &self.acts[id.0 as usize]
    }

    /// Iterates over all activities.
    pub fn iter(&self) -> impl Iterator<Item = &Activity> {
        self.acts.iter()
    }

    /// All activities whose tag starts with `prefix`, in `(tag, id)` order.
    ///
    /// Prefix matches form a contiguous run of the tag-sorted index, so a
    /// lookup is two binary searches plus the matches themselves — no scan
    /// over the whole graph. The index builds lazily on first use and is
    /// invalidated by [`ActivityGraph::add`].
    pub fn tagged<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a Activity> {
        let order = self.tag_index.0.get_or_init(|| {
            let mut order: Vec<u32> = (0..self.acts.len() as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                self.acts[a as usize]
                    .tag
                    .cmp(&self.acts[b as usize].tag)
                    .then(a.cmp(&b))
            });
            order
        });
        let start = order.partition_point(|&i| self.acts[i as usize].tag.as_str() < prefix);
        let end = start
            + order[start..].partition_point(|&i| self.acts[i as usize].tag.starts_with(prefix));
        order[start..end]
            .iter()
            .map(move |&i| &self.acts[i as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assigns_sequential_ids() {
        let mut g = ActivityGraph::new();
        let a = g.add(ActivityKind::Delay { duration_us: 1.0 }, &[], "a");
        let b = g.add(ActivityKind::Delay { duration_us: 1.0 }, &[a], "b");
        assert_eq!(a, ActivityId(0));
        assert_eq!(b, ActivityId(1));
        assert_eq!(g.get(b).deps, vec![a]);
    }

    #[test]
    #[should_panic(expected = "dependency")]
    fn forward_dependency_panics() {
        let mut g = ActivityGraph::new();
        g.add(ActivityKind::Barrier, &[ActivityId(5)], "bad");
    }

    #[test]
    fn same_node_transfer_is_free() {
        let k = ActivityKind::Transfer {
            src: NodeId(1),
            dst: NodeId(1),
            bytes: 1e9,
        };
        assert_eq!(k.amount(), 0.0);
    }

    #[test]
    fn tagged_prefix_lookup() {
        let mut g = ActivityGraph::new();
        g.add(ActivityKind::Barrier, &[], "LoadGraph/a");
        g.add(ActivityKind::Barrier, &[], "LoadGraph/b");
        g.add(ActivityKind::Barrier, &[], "Process/x");
        assert_eq!(g.tagged("LoadGraph").count(), 2);
    }

    #[test]
    fn tagged_index_respects_prefix_boundaries() {
        // "ab" must match "ab" and "abz" but not "aa" or "ac", even though
        // all four are adjacent in sorted tag order.
        let mut g = ActivityGraph::new();
        for tag in ["ac", "ab", "aa", "abz", "ab"] {
            g.add(ActivityKind::Barrier, &[], tag);
        }
        let tags: Vec<&str> = g.tagged("ab").map(|a| a.tag.as_str()).collect();
        assert_eq!(tags, ["ab", "ab", "abz"]);
        assert_eq!(g.tagged("").count(), 5);
        assert_eq!(g.tagged("b").count(), 0);
    }

    #[test]
    fn tagged_index_invalidated_by_add() {
        let mut g = ActivityGraph::new();
        g.add(ActivityKind::Barrier, &[], "x/1");
        assert_eq!(g.tagged("x").count(), 1); // builds the index
        g.add(ActivityKind::Barrier, &[], "x/2");
        assert_eq!(g.tagged("x").count(), 2); // rebuilt after mutation
    }

    #[test]
    fn tagged_ties_iterate_in_id_order() {
        let mut g = ActivityGraph::new();
        let a = g.add(ActivityKind::Barrier, &[], "same");
        let b = g.add(ActivityKind::Barrier, &[], "same");
        let ids: Vec<ActivityId> = g.tagged("same").map(|x| x.id).collect();
        assert_eq!(ids, [a, b]);
    }
}
