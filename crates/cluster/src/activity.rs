//! Activity DAGs: the unit of work the simulator executes.
//!
//! An activity is a single-resource demand (an amount of compute work,
//! bytes of disk or network traffic, or a fixed latency) bound to nodes and
//! ordered by dependencies. Platforms *tag* activities with the operation
//! they belong to; after simulation, an operation's start/end is the
//! min/max over its tagged activities.
//!
//! Storage is a struct-of-arrays arena: kinds, tags and dependency lists
//! live in flat vectors indexed by [`ActivityId`] — no per-activity heap
//! node, no owned `String` per tag. Tags are interned ([`Symbol`]), so
//! building a million-activity graph allocates a handful of vectors, and
//! copying or truncating one is a `memcpy` of plain-old-data rows plus one
//! shared dependency buffer. Dependencies are stored CSR-style: a global
//! id buffer plus per-activity offsets, which the engines walk as
//! contiguous slices. [`ActivityRef`] is the per-activity view handed out
//! by [`ActivityGraph::get`] / [`ActivityGraph::iter`].

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::intern::Symbol;
use crate::topology::NodeId;

/// Index of an activity within an [`ActivityGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ActivityId(pub u32);

/// What an activity consumes. Plain old data (`Copy`): node ids and scalar
/// amounts only, so arena rows move without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ActivityKind {
    /// CPU work on one node. `work_core_us` core-microseconds are processed
    /// at a rate of up to `parallelism` cores (further limited by fair
    /// sharing of the node's cores).
    Compute {
        /// Node executing the work.
        node: NodeId,
        /// Total work, core-microseconds.
        work_core_us: f64,
        /// Maximum cores the activity can use at once.
        parallelism: u32,
    },
    /// Read from the node's local disk.
    DiskRead {
        /// Node whose disk is read.
        node: NodeId,
        /// Bytes read.
        bytes: f64,
    },
    /// Write to the node's local disk.
    DiskWrite {
        /// Node whose disk is written.
        node: NodeId,
        /// Bytes written.
        bytes: f64,
    },
    /// Network transfer between two nodes (consumes `src` NIC-out and `dst`
    /// NIC-in). Same-node transfers complete at memory speed and are modeled
    /// as free.
    Transfer {
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Bytes moved.
        bytes: f64,
    },
    /// Read from the shared filesystem server (consumes the server's
    /// aggregate bandwidth and the reader's NIC-in).
    SharedRead {
        /// Node performing the read.
        node: NodeId,
        /// Bytes read.
        bytes: f64,
    },
    /// A fixed latency (resource-manager round-trips, process launches…).
    Delay {
        /// Duration, microseconds.
        duration_us: f64,
    },
    /// Zero-duration synchronization point (barrier / join marker).
    Barrier,
}

impl ActivityKind {
    /// Total amount to process, in the kind's own unit.
    pub fn amount(&self) -> f64 {
        match self {
            ActivityKind::Compute { work_core_us, .. } => *work_core_us,
            ActivityKind::DiskRead { bytes, .. }
            | ActivityKind::DiskWrite { bytes, .. }
            | ActivityKind::SharedRead { bytes, .. } => *bytes,
            ActivityKind::Transfer { src, dst, bytes } => {
                if src == dst {
                    0.0
                } else {
                    *bytes
                }
            }
            ActivityKind::Delay { duration_us } => *duration_us,
            ActivityKind::Barrier => 0.0,
        }
    }
}

/// Borrowed view of one arena row: id, kind, dependency slice and tag.
#[derive(Debug, Clone, Copy)]
pub struct ActivityRef<'g> {
    /// Identity within the graph.
    pub id: ActivityId,
    /// Resource demand.
    pub kind: &'g ActivityKind,
    /// Activities that must complete before this one starts.
    pub deps: &'g [ActivityId],
    tag: Symbol,
}

impl ActivityRef<'_> {
    /// The tag text linking the activity to a platform operation, e.g.
    /// `"LoadGraph/LocalLoad@Worker-3"`.
    pub fn tag(&self) -> &'static str {
        self.tag.as_str()
    }

    /// The interned tag handle (integer compare, no resolution).
    pub fn tag_symbol(&self) -> Symbol {
        self.tag
    }
}

/// Lazily-built index of activity ids sorted by `(tag, id)`, backing
/// [`ActivityGraph::tagged`]. Cleared on every mutation. A pure function of
/// the activities, so it is ignored by comparison and serialization.
#[derive(Debug, Clone, Default)]
struct TagIndex(OnceLock<Vec<u32>>);

impl PartialEq for TagIndex {
    fn eq(&self, _other: &Self) -> bool {
        // Derived caches never distinguish graphs.
        true
    }
}

/// A DAG of activities in struct-of-arrays arena storage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActivityGraph {
    kinds: Vec<ActivityKind>,
    tags: Vec<Symbol>,
    /// CSR dependency layout: activity `i`'s deps are
    /// `dep_buf[dep_off[i]..dep_off[i + 1]]`.
    dep_off: Vec<u32>,
    dep_buf: Vec<ActivityId>,
    tag_index: TagIndex,
}

impl ActivityGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity for `acts` activities and
    /// `deps` dependency edges, so large builds never re-allocate.
    pub fn with_capacity(acts: usize, deps: usize) -> Self {
        let mut g = ActivityGraph {
            kinds: Vec::with_capacity(acts),
            tags: Vec::with_capacity(acts),
            dep_off: Vec::with_capacity(acts + 1),
            dep_buf: Vec::with_capacity(deps),
            tag_index: TagIndex::default(),
        };
        g.dep_off.push(0);
        g
    }

    /// Adds an activity with dependencies; returns its id. The tag is
    /// interned — pass `&str`, `String`, or a pre-interned [`Symbol`].
    ///
    /// # Panics
    /// Panics if a dependency id is not already in the graph (dependencies
    /// must be added first, which also guarantees acyclicity).
    pub fn add(
        &mut self,
        kind: ActivityKind,
        deps: &[ActivityId],
        tag: impl Into<Symbol>,
    ) -> ActivityId {
        let id = ActivityId(self.kinds.len() as u32);
        for d in deps {
            assert!(
                (d.0 as usize) < self.kinds.len(),
                "dependency {d:?} added after dependent activity"
            );
        }
        self.tag_index.0.take();
        if self.dep_off.is_empty() {
            self.dep_off.push(0);
        }
        self.kinds.push(kind);
        self.tags.push(tag.into());
        self.dep_buf.extend_from_slice(deps);
        self.dep_off.push(self.dep_buf.len() as u32);
        id
    }

    /// Adds a barrier joining `deps`; returns its id. Useful as a compact
    /// fan-in point for superstep synchronization.
    pub fn barrier(&mut self, deps: &[ActivityId], tag: impl Into<Symbol>) -> ActivityId {
        self.add(ActivityKind::Barrier, deps, tag)
    }

    /// Number of activities.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Total dependency-edge count.
    pub fn dep_count(&self) -> usize {
        self.dep_buf.len()
    }

    /// Borrows an activity as a view over its arena row.
    pub fn get(&self, id: ActivityId) -> ActivityRef<'_> {
        let i = id.0 as usize;
        ActivityRef {
            id,
            kind: &self.kinds[i],
            deps: self.deps_of(id),
            tag: self.tags[i],
        }
    }

    /// The kind of one activity (flat-array access for the engines).
    pub fn kind_of(&self, id: ActivityId) -> &ActivityKind {
        &self.kinds[id.0 as usize]
    }

    /// The dependency slice of one activity.
    pub fn deps_of(&self, id: ActivityId) -> &[ActivityId] {
        let i = id.0 as usize;
        &self.dep_buf[self.dep_off[i] as usize..self.dep_off[i + 1] as usize]
    }

    /// The interned tag of one activity.
    pub fn tag_of(&self, id: ActivityId) -> Symbol {
        self.tags[id.0 as usize]
    }

    /// Iterates over all activities in id order.
    pub fn iter(&self) -> impl Iterator<Item = ActivityRef<'_>> {
        (0..self.kinds.len() as u32).map(move |i| self.get(ActivityId(i)))
    }

    fn tag_str(&self, i: u32) -> &'static str {
        self.tags[i as usize].as_str()
    }

    /// All activities whose tag starts with `prefix`, in `(tag, id)` order.
    ///
    /// Prefix matches form a contiguous run of the tag-sorted index, so a
    /// lookup is two binary searches plus the matches themselves — no scan
    /// over the whole graph. The index builds lazily on first use and is
    /// invalidated by [`ActivityGraph::add`].
    pub fn tagged<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = ActivityRef<'a>> {
        let order = self.tag_index.0.get_or_init(|| {
            let mut order: Vec<u32> = (0..self.kinds.len() as u32).collect();
            order.sort_unstable_by(|&a, &b| self.tag_str(a).cmp(self.tag_str(b)).then(a.cmp(&b)));
            order
        });
        let start = order.partition_point(|&i| self.tag_str(i) < prefix);
        let end = start + order[start..].partition_point(|&i| self.tag_str(i).starts_with(prefix));
        order[start..end]
            .iter()
            .map(move |&i| self.get(ActivityId(i)))
    }
}

/// Portable serde mirror: tags as text, deps as explicit lists, so the wire
/// form is identical in meaning to the pre-arena representation.
#[derive(Serialize, Deserialize)]
struct ActivityRow {
    id: ActivityId,
    kind: ActivityKind,
    deps: Vec<ActivityId>,
    tag: String,
}

#[derive(Serialize, Deserialize)]
struct GraphMirror {
    acts: Vec<ActivityRow>,
}

impl Serialize for ActivityGraph {
    fn to_value(&self) -> serde::Value {
        let acts = self
            .iter()
            .map(|a| ActivityRow {
                id: a.id,
                kind: *a.kind,
                deps: a.deps.to_vec(),
                tag: a.tag().to_owned(),
            })
            .collect();
        GraphMirror { acts }.to_value()
    }
}

impl Deserialize for ActivityGraph {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let mirror = GraphMirror::from_value(v)?;
        let mut g = ActivityGraph::with_capacity(mirror.acts.len(), 0);
        for row in mirror.acts {
            g.add(row.kind, &row.deps, row.tag.as_str());
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assigns_sequential_ids() {
        let mut g = ActivityGraph::new();
        let a = g.add(ActivityKind::Delay { duration_us: 1.0 }, &[], "a");
        let b = g.add(ActivityKind::Delay { duration_us: 1.0 }, &[a], "b");
        assert_eq!(a, ActivityId(0));
        assert_eq!(b, ActivityId(1));
        assert_eq!(g.get(b).deps, &[a]);
    }

    #[test]
    #[should_panic(expected = "dependency")]
    fn forward_dependency_panics() {
        let mut g = ActivityGraph::new();
        g.add(ActivityKind::Barrier, &[ActivityId(5)], "bad");
    }

    #[test]
    fn same_node_transfer_is_free() {
        let k = ActivityKind::Transfer {
            src: NodeId(1),
            dst: NodeId(1),
            bytes: 1e9,
        };
        assert_eq!(k.amount(), 0.0);
    }

    #[test]
    fn tagged_prefix_lookup() {
        let mut g = ActivityGraph::new();
        g.add(ActivityKind::Barrier, &[], "LoadGraph/a");
        g.add(ActivityKind::Barrier, &[], "LoadGraph/b");
        g.add(ActivityKind::Barrier, &[], "Process/x");
        assert_eq!(g.tagged("LoadGraph").count(), 2);
    }

    #[test]
    fn tagged_index_respects_prefix_boundaries() {
        // "ab" must match "ab" and "abz" but not "aa" or "ac", even though
        // all four are adjacent in sorted tag order.
        let mut g = ActivityGraph::new();
        for tag in ["ac", "ab", "aa", "abz", "ab"] {
            g.add(ActivityKind::Barrier, &[], tag);
        }
        let tags: Vec<&str> = g.tagged("ab").map(|a| a.tag()).collect();
        assert_eq!(tags, ["ab", "ab", "abz"]);
        assert_eq!(g.tagged("").count(), 5);
        assert_eq!(g.tagged("b").count(), 0);
    }

    #[test]
    fn tagged_index_invalidated_by_add() {
        let mut g = ActivityGraph::new();
        g.add(ActivityKind::Barrier, &[], "x/1");
        assert_eq!(g.tagged("x").count(), 1); // builds the index
        g.add(ActivityKind::Barrier, &[], "x/2");
        assert_eq!(g.tagged("x").count(), 2); // rebuilt after mutation
    }

    #[test]
    fn tagged_ties_iterate_in_id_order() {
        let mut g = ActivityGraph::new();
        let a = g.add(ActivityKind::Barrier, &[], "same");
        let b = g.add(ActivityKind::Barrier, &[], "same");
        let ids: Vec<ActivityId> = g.tagged("same").map(|x| x.id).collect();
        assert_eq!(ids, [a, b]);
    }

    #[test]
    fn symbol_tags_are_shared_not_cloned() {
        let mut g = ActivityGraph::new();
        let s = Symbol::intern("shared/tag");
        let a = g.add(ActivityKind::Barrier, &[], s);
        let b = g.add(ActivityKind::Barrier, &[], s);
        assert_eq!(g.get(a).tag_symbol(), g.get(b).tag_symbol());
        assert_eq!(g.get(a).tag(), "shared/tag");
    }

    #[test]
    fn serde_round_trip_preserves_graph() {
        let mut g = ActivityGraph::new();
        let a = g.add(
            ActivityKind::Compute {
                node: NodeId(1),
                work_core_us: 5.0,
                parallelism: 2,
            },
            &[],
            "c/0",
        );
        g.add(ActivityKind::Delay { duration_us: 3.0 }, &[a], "d/1");
        let json = serde_json::to_string(&g).unwrap();
        let back: ActivityGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.get(ActivityId(1)).tag(), "d/1");
        assert_eq!(back.deps_of(ActivityId(1)), &[a]);
    }
}
