//! Filesystem models: how logical reads/writes decompose into activities.
//!
//! Table 1 of the paper distinguishes platforms by their file system:
//! Giraph/Hadoop use HDFS, PowerGraph/GraphMat use local or shared storage.
//! Each model turns a logical `read(node, bytes)` into the disk and network
//! activities that storage system would actually perform.

use serde::{Deserialize, Serialize};

use crate::activity::{ActivityGraph, ActivityId, ActivityKind};
use crate::topology::{ClusterSpec, NodeId};

/// Local-disk filesystem: every node reads only its own disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LocalFsSpec;

/// NFS-like shared filesystem: all reads go to one server whose aggregate
/// bandwidth is [`ClusterSpec::shared_fs_bps`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SharedFsSpec;

/// HDFS-like distributed filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DfsSpec {
    /// Fraction of a node's read that is satisfied by local replicas
    /// (data-local task placement usually achieves 0.7–0.95).
    pub locality: f64,
    /// Replication factor for writes (HDFS default 3).
    pub replication: u32,
}

impl Default for DfsSpec {
    fn default() -> Self {
        DfsSpec {
            locality: 0.85,
            replication: 3,
        }
    }
}

/// A storage backend that can plan reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FileSystem {
    /// Node-local disks.
    Local(LocalFsSpec),
    /// Single shared server.
    Shared(SharedFsSpec),
    /// HDFS-like distributed store.
    Dfs(DfsSpec),
}

impl FileSystem {
    /// Convenience: an HDFS-like store with default parameters.
    pub fn hdfs() -> Self {
        FileSystem::Dfs(DfsSpec::default())
    }

    /// Plans a logical read of `bytes` on `node`. Returns the activity whose
    /// completion means the read is done (a barrier when the read decomposed
    /// into several parts).
    pub fn read(
        &self,
        cluster: &ClusterSpec,
        g: &mut ActivityGraph,
        node: NodeId,
        bytes: f64,
        deps: &[ActivityId],
        tag: &str,
    ) -> ActivityId {
        match self {
            FileSystem::Local(_) => g.add(ActivityKind::DiskRead { node, bytes }, deps, tag),
            FileSystem::Shared(_) => g.add(ActivityKind::SharedRead { node, bytes }, deps, tag),
            FileSystem::Dfs(spec) => {
                let local_bytes = bytes * spec.locality.clamp(0.0, 1.0);
                let remote_bytes = bytes - local_bytes;
                let local = g.add(
                    ActivityKind::DiskRead {
                        node,
                        bytes: local_bytes,
                    },
                    deps,
                    format!("{tag}/local"),
                );
                if remote_bytes <= 0.0 || cluster.len() < 2 {
                    return local;
                }
                // The nearest replica: deterministic neighbour choice.
                let replica = NodeId(((node.0 as usize + 1) % cluster.len()) as u16);
                let remote_disk = g.add(
                    ActivityKind::DiskRead {
                        node: replica,
                        bytes: remote_bytes,
                    },
                    deps,
                    format!("{tag}/replica-disk"),
                );
                let xfer = g.add(
                    ActivityKind::Transfer {
                        src: replica,
                        dst: node,
                        bytes: remote_bytes,
                    },
                    &[remote_disk],
                    format!("{tag}/replica-xfer"),
                );
                g.barrier(&[local, xfer], format!("{tag}/done"))
            }
        }
    }

    /// Plans a logical write of `bytes` from `node`. For the DFS this builds
    /// the replication pipeline: local write, then transfer + write per
    /// additional replica.
    pub fn write(
        &self,
        cluster: &ClusterSpec,
        g: &mut ActivityGraph,
        node: NodeId,
        bytes: f64,
        deps: &[ActivityId],
        tag: &str,
    ) -> ActivityId {
        match self {
            FileSystem::Local(_) => g.add(ActivityKind::DiskWrite { node, bytes }, deps, tag),
            FileSystem::Shared(_) => {
                // Writing to the shared server crosses the NIC like a read.
                g.add(ActivityKind::SharedRead { node, bytes }, deps, tag)
            }
            FileSystem::Dfs(spec) => {
                let mut last = g.add(
                    ActivityKind::DiskWrite { node, bytes },
                    deps,
                    format!("{tag}/replica0"),
                );
                let mut holder = node;
                for r in 1..spec.replication.max(1) {
                    if cluster.len() < 2 {
                        break;
                    }
                    let next = NodeId(((holder.0 as usize + 1) % cluster.len()) as u16);
                    let xfer = g.add(
                        ActivityKind::Transfer {
                            src: holder,
                            dst: next,
                            bytes,
                        },
                        &[last],
                        format!("{tag}/replica{r}-xfer"),
                    );
                    last = g.add(
                        ActivityKind::DiskWrite { node: next, bytes },
                        &[xfer],
                        format!("{tag}/replica{r}"),
                    );
                    holder = next;
                }
                last
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::topology::NodeSpec;

    fn cluster(n: u16) -> ClusterSpec {
        ClusterSpec::homogeneous(
            n,
            NodeSpec {
                name: String::new(),
                cores: 8,
                disk_bps: 100e6, // 100 B/µs
                nic_bps: 100e6,
                mem_bytes: 1,
            },
        )
    }

    #[test]
    fn local_read_is_one_disk_activity() {
        let c = cluster(2);
        let mut g = ActivityGraph::new();
        let id = FileSystem::Local(LocalFsSpec).read(&c, &mut g, NodeId(0), 1e6, &[], "r");
        assert_eq!(g.len(), 1);
        let res = Simulation::new(c).run(&g).unwrap();
        assert!((res.of(id).end_us - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn shared_reads_contend_on_server() {
        let mut c = cluster(2);
        c.shared_fs_bps = 100e6; // 100 B/µs server
        let mut g = ActivityGraph::new();
        for node in 0..2u16 {
            FileSystem::Shared(SharedFsSpec).read(&c, &mut g, NodeId(node), 1e6, &[], "r");
        }
        let res = Simulation::new(c).run(&g).unwrap();
        // Two 1e6-byte readers share 100 B/µs -> 20_000 µs, vs 10_000 alone.
        assert!(
            (res.makespan_us - 20_000.0).abs() < 10.0,
            "{}",
            res.makespan_us
        );
    }

    #[test]
    fn dfs_read_splits_local_and_remote() {
        let c = cluster(2);
        let fs = FileSystem::Dfs(DfsSpec {
            locality: 0.5,
            replication: 2,
        });
        let mut g = ActivityGraph::new();
        fs.read(&c, &mut g, NodeId(0), 1e6, &[], "r");
        // local disk read + replica disk read + transfer + barrier
        assert_eq!(g.len(), 4);
        let res = Simulation::new(c).run(&g).unwrap();
        // Remote path: 0.5e6 B disk (5_000 µs) + 0.5e6 B transfer (5_000 µs).
        assert!(
            (res.makespan_us - 10_000.0).abs() < 10.0,
            "{}",
            res.makespan_us
        );
    }

    #[test]
    fn dfs_full_locality_has_no_network() {
        let c = cluster(2);
        let fs = FileSystem::Dfs(DfsSpec {
            locality: 1.0,
            replication: 2,
        });
        let mut g = ActivityGraph::new();
        fs.read(&c, &mut g, NodeId(0), 1e6, &[], "r");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn dfs_write_builds_replication_pipeline() {
        let c = cluster(3);
        let fs = FileSystem::Dfs(DfsSpec {
            locality: 1.0,
            replication: 3,
        });
        let mut g = ActivityGraph::new();
        let last = fs.write(&c, &mut g, NodeId(0), 1e6, &[], "w");
        // write + (xfer + write) * 2
        assert_eq!(g.len(), 5);
        let res = Simulation::new(c).run(&g).unwrap();
        // Pipeline is sequential here: 10_000 * 5? No: each stage 10_000 µs,
        // 5 activities in a chain = 50_000 µs.
        assert!(
            (res.of(last).end_us - 50_000.0).abs() < 10.0,
            "{}",
            res.of(last).end_us
        );
    }

    #[test]
    fn single_node_cluster_degrades_gracefully() {
        let c = cluster(1);
        let fs = FileSystem::Dfs(DfsSpec {
            locality: 0.5,
            replication: 3,
        });
        let mut g = ActivityGraph::new();
        fs.read(&c, &mut g, NodeId(0), 1e6, &[], "r");
        fs.write(&c, &mut g, NodeId(0), 1e6, &[], "w");
        // No remote peers available: plain local read + single write.
        assert!(Simulation::new(c).run(&g).is_ok());
    }
}
