//! Per-second resource-usage traces: the simulated "environment logs".
//!
//! The trace plays the role of the `sar`/`/proc` sampling a real Granula
//! deployment runs on every node: per second and per node, how much CPU time
//! was consumed and how many bytes moved through disk and network.

use serde::{Deserialize, Serialize};

use crate::intern::Symbol;
use crate::topology::{ClusterSpec, NodeId};

/// Which channel of the trace to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Busy core-seconds per second (a node with 8 fully-busy cores shows 8.0).
    Cpu,
    /// Disk bytes per second.
    Disk,
    /// Network receive bytes per second.
    NetIn,
    /// Network transmit bytes per second.
    NetOut,
}

/// Accumulated per-node, per-bucket resource usage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageTrace {
    /// Bucket width in microseconds (default: one second).
    pub bucket_us: u64,
    /// Interned node names — `Copy`-cheap records, no per-trace `String`
    /// clones; serde round-trips them as text so archives stay portable.
    node_names: Vec<Symbol>,
    cpu: Vec<Vec<f64>>,
    disk: Vec<Vec<f64>>,
    net_in: Vec<Vec<f64>>,
    net_out: Vec<Vec<f64>>,
}

impl UsageTrace {
    /// An empty trace for `cluster` with one-second buckets.
    pub fn new(cluster: &ClusterSpec) -> Self {
        Self::with_bucket(cluster, 1_000_000)
    }

    /// An empty trace with a custom bucket width.
    pub fn with_bucket(cluster: &ClusterSpec, bucket_us: u64) -> Self {
        assert!(bucket_us > 0, "bucket width must be positive");
        let n = cluster.len();
        UsageTrace {
            bucket_us,
            node_names: cluster
                .nodes
                .iter()
                .map(|s| Symbol::intern(&s.name))
                .collect(),
            cpu: vec![Vec::new(); n],
            disk: vec![Vec::new(); n],
            net_in: vec![Vec::new(); n],
            net_out: vec![Vec::new(); n],
        }
    }

    /// Node names in [`NodeId`] order, as interned symbols
    /// ([`Symbol::as_str`] resolves the text).
    pub fn node_names(&self) -> &[Symbol] {
        &self.node_names
    }

    /// Element-wise sum of `other` into `self`. Used by the partitioned
    /// engine's merge: components never share a `(channel, node)` series,
    /// so every destination slot receives at most one non-zero
    /// contribution and the merge is exact (adding onto 0.0 is bitwise
    /// lossless for the non-negative usage values traces hold).
    pub(crate) fn absorb(&mut self, other: &UsageTrace) {
        debug_assert_eq!(self.bucket_us, other.bucket_us);
        debug_assert_eq!(self.node_names.len(), other.node_names.len());
        fn absorb_series(dst: &mut Vec<f64>, src: &[f64]) {
            if dst.len() < src.len() {
                dst.resize(src.len(), 0.0);
            }
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        for i in 0..self.node_names.len() {
            absorb_series(&mut self.cpu[i], &other.cpu[i]);
            absorb_series(&mut self.disk[i], &other.disk[i]);
            absorb_series(&mut self.net_in[i], &other.net_in[i]);
            absorb_series(&mut self.net_out[i], &other.net_out[i]);
        }
    }

    /// Accumulates a constant-rate usage of `rate` (unit/µs) on `node` over
    /// `[t0_us, t1_us)` into the channel. For CPU the rate is in cores, so a
    /// bucket's value is busy core-seconds within that second.
    pub(crate) fn add(&mut self, ch: Channel, node: NodeId, t0_us: f64, t1_us: f64, rate: f64) {
        if t1_us <= t0_us || rate <= 0.0 {
            return;
        }
        let bucket = self.bucket_us as f64;
        let series = self.series_mut(ch, node);
        let scale = match ch {
            // cores * µs -> core-seconds
            Channel::Cpu => 1e-6,
            // bytes/µs * µs -> bytes; buckets are per second already
            _ => 1.0,
        };
        let first = (t0_us / bucket).floor() as usize;
        let last = ((t1_us / bucket).ceil() as usize).max(first + 1);
        if series.len() < last {
            series.resize(last, 0.0);
        }
        // Slice from `first` directly — a skip() over the full series would
        // cost O(first) per call, which adds up for spans late in long runs.
        for (off, slot) in series[first..last].iter_mut().enumerate() {
            let lo = ((first + off) as f64) * bucket;
            let hi = lo + bucket;
            let overlap = (t1_us.min(hi) - t0_us.max(lo)).max(0.0);
            *slot += rate * overlap * scale;
        }
    }

    fn series_mut(&mut self, ch: Channel, node: NodeId) -> &mut Vec<f64> {
        let i = node.0 as usize;
        match ch {
            Channel::Cpu => &mut self.cpu[i],
            Channel::Disk => &mut self.disk[i],
            Channel::NetIn => &mut self.net_in[i],
            Channel::NetOut => &mut self.net_out[i],
        }
    }

    fn series_ref(&self, ch: Channel, node: NodeId) -> &[f64] {
        let i = node.0 as usize;
        match ch {
            Channel::Cpu => &self.cpu[i],
            Channel::Disk => &self.disk[i],
            Channel::NetIn => &self.net_in[i],
            Channel::NetOut => &self.net_out[i],
        }
    }

    /// The `(bucket_start_us, value)` series of a node and channel.
    pub fn series(&self, ch: Channel, node: NodeId) -> Vec<(u64, f64)> {
        self.series_ref(ch, node)
            .iter()
            .enumerate()
            .map(|(b, &v)| (b as u64 * self.bucket_us, v))
            .collect()
    }

    /// Cluster-wide sum per bucket for a channel (Figures 6–7's cumulative
    /// CPU line).
    pub fn cumulative(&self, ch: Channel) -> Vec<(u64, f64)> {
        let n_buckets = (0..self.node_names.len())
            .map(|i| self.series_ref(ch, NodeId(i as u16)).len())
            .max()
            .unwrap_or(0);
        (0..n_buckets)
            .map(|b| {
                let sum: f64 = (0..self.node_names.len())
                    .map(|i| {
                        self.series_ref(ch, NodeId(i as u16))
                            .get(b)
                            .copied()
                            .unwrap_or(0.0)
                    })
                    .sum();
                (b as u64 * self.bucket_us, sum)
            })
            .collect()
    }

    /// Peak cluster-wide value of a channel.
    pub fn peak(&self, ch: Channel) -> f64 {
        self.cumulative(ch)
            .into_iter()
            .map(|(_, v)| v)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeSpec;

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(
            2,
            NodeSpec {
                name: String::new(),
                cores: 8,
                disk_bps: 1e8,
                nic_bps: 1e8,
                mem_bytes: 1,
            },
        )
    }

    #[test]
    fn cpu_accumulates_core_seconds_per_bucket() {
        let mut t = UsageTrace::new(&cluster());
        // 4 cores busy for 2.5 seconds starting at t=0.
        t.add(Channel::Cpu, NodeId(0), 0.0, 2_500_000.0, 4.0);
        let s = t.series(Channel::Cpu, NodeId(0));
        assert_eq!(s.len(), 3);
        assert!((s[0].1 - 4.0).abs() < 1e-9);
        assert!((s[1].1 - 4.0).abs() < 1e-9);
        assert!((s[2].1 - 2.0).abs() < 1e-9); // half of the third second
    }

    #[test]
    fn spans_crossing_bucket_boundaries_split_proportionally() {
        let mut t = UsageTrace::new(&cluster());
        t.add(Channel::Cpu, NodeId(0), 500_000.0, 1_500_000.0, 2.0);
        let s = t.series(Channel::Cpu, NodeId(0));
        assert!((s[0].1 - 1.0).abs() < 1e-9);
        assert!((s[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_sums_nodes() {
        let mut t = UsageTrace::new(&cluster());
        t.add(Channel::Cpu, NodeId(0), 0.0, 1_000_000.0, 3.0);
        t.add(Channel::Cpu, NodeId(1), 0.0, 1_000_000.0, 5.0);
        let c = t.cumulative(Channel::Cpu);
        assert_eq!(c.len(), 1);
        assert!((c[0].1 - 8.0).abs() < 1e-9);
        assert!((t.peak(Channel::Cpu) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn zero_or_negative_spans_ignored() {
        let mut t = UsageTrace::new(&cluster());
        t.add(Channel::Disk, NodeId(0), 5.0, 5.0, 100.0);
        t.add(Channel::Disk, NodeId(0), 10.0, 5.0, 100.0);
        assert!(t.series(Channel::Disk, NodeId(0)).is_empty());
    }

    #[test]
    fn disk_bytes_accumulate_raw() {
        let mut t = UsageTrace::new(&cluster());
        // 100 bytes/µs over 1s = 1e8 bytes in the bucket.
        t.add(Channel::Disk, NodeId(0), 0.0, 1_000_000.0, 100.0);
        let s = t.series(Channel::Disk, NodeId(0));
        assert!((s[0].1 - 1e8).abs() < 1.0);
    }
}
