//! Max-min fair rate assignment (progressive filling).
//!
//! Every running activity demands one or two resources (node cores, disk
//! bandwidth, NIC in/out, the shared-FS server). Rates are assigned by
//! progressive filling: all unfrozen activities' rates rise together; when a
//! resource saturates, its users freeze; when an activity reaches its own
//! cap (e.g. a compute activity's parallelism), it freezes. The result is
//! the classic max-min fair allocation, which models processor sharing and
//! TCP-like bandwidth sharing closely enough for the phenomena Granula
//! observes (contention, stragglers, sequential bottlenecks).

use crate::activity::ActivityKind;
use crate::topology::{ClusterSpec, NodeId};

/// A resource index in the flattened capacity table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Res {
    Cpu(NodeId),
    Disk(NodeId),
    NicIn(NodeId),
    NicOut(NodeId),
    SharedFs,
}

/// Flattened view of all cluster resources with capacities in unit/µs.
pub(crate) struct ResourceTable {
    /// Capacity per resource index.
    pub(crate) caps: Vec<f64>,
    nodes: usize,
}

impl ResourceTable {
    pub(crate) fn new(cluster: &ClusterSpec) -> Self {
        let n = cluster.len();
        let mut caps = vec![0.0; 4 * n + 1];
        for (id, spec) in cluster.iter() {
            let i = id.0 as usize;
            caps[i] = spec.cores as f64; // cores (core-µs per µs)
            caps[n + i] = spec.disk_bps / 1e6; // bytes per µs
            caps[2 * n + i] = spec.nic_bps / 1e6;
            caps[3 * n + i] = spec.nic_bps / 1e6;
        }
        caps[4 * n] = cluster.shared_fs_bps / 1e6;
        ResourceTable { caps, nodes: n }
    }

    fn index(&self, r: Res) -> usize {
        match r {
            Res::Cpu(n) => n.0 as usize,
            Res::Disk(n) => self.nodes + n.0 as usize,
            Res::NicIn(n) => 2 * self.nodes + n.0 as usize,
            Res::NicOut(n) => 3 * self.nodes + n.0 as usize,
            Res::SharedFs => 4 * self.nodes,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.caps.len()
    }
}

/// The resources and cap of one running activity.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Demand {
    /// Resource indices (0, 1 or 2 entries).
    pub resources: [usize; 2],
    /// Number of valid entries in `resources`.
    pub n_resources: u8,
    /// Per-activity rate cap (f64::INFINITY when only resource-limited).
    pub cap: f64,
}

/// Builds the demand of one activity kind against the table.
pub(crate) fn demand(table: &ResourceTable, kind: &ActivityKind) -> Demand {
    match kind {
        ActivityKind::Compute {
            node, parallelism, ..
        } => Demand {
            resources: [table.index(Res::Cpu(*node)), 0],
            n_resources: 1,
            cap: *parallelism as f64,
        },
        ActivityKind::DiskRead { node, .. } | ActivityKind::DiskWrite { node, .. } => Demand {
            resources: [table.index(Res::Disk(*node)), 0],
            n_resources: 1,
            cap: f64::INFINITY,
        },
        ActivityKind::Transfer { src, dst, .. } => {
            if src == dst {
                Demand {
                    resources: [0, 0],
                    n_resources: 0,
                    cap: f64::INFINITY,
                }
            } else {
                Demand {
                    resources: [
                        table.index(Res::NicOut(*src)),
                        table.index(Res::NicIn(*dst)),
                    ],
                    n_resources: 2,
                    cap: f64::INFINITY,
                }
            }
        }
        ActivityKind::SharedRead { node, .. } => Demand {
            resources: [table.index(Res::SharedFs), table.index(Res::NicIn(*node))],
            n_resources: 2,
            cap: f64::INFINITY,
        },
        // A delay progresses at exactly 1 µs/µs.
        ActivityKind::Delay { .. } => Demand {
            resources: [0, 0],
            n_resources: 0,
            cap: 1.0,
        },
        ActivityKind::Barrier => Demand {
            resources: [0, 0],
            n_resources: 0,
            cap: f64::INFINITY,
        },
    }
}

/// Progressive-filling max-min fair allocation. Returns one rate per demand.
pub(crate) fn assign_rates(table: &ResourceTable, demands: &[Demand]) -> Vec<f64> {
    let m = demands.len();
    let mut rate = vec![0.0f64; m];
    let mut frozen = vec![false; m];
    let mut remaining = table.caps.clone();
    let mut users = vec![0u32; table.len()];

    for d in demands {
        for r in &d.resources[..d.n_resources as usize] {
            users[*r] += 1;
        }
    }
    // Items with no resources jump straight to their cap (delays) or stay
    // unconstrained (they are completed instantly by the caller when their
    // amount is zero).
    for (i, d) in demands.iter().enumerate() {
        if d.n_resources == 0 {
            rate[i] = if d.cap.is_finite() { d.cap } else { 1.0 };
            frozen[i] = true;
        }
    }

    const EPS: f64 = 1e-12;
    loop {
        // Smallest headroom: per-resource equal share, per-item cap distance.
        let mut delta = f64::INFINITY;
        for (r, &rem) in remaining.iter().enumerate() {
            if users[r] > 0 {
                delta = delta.min(rem / users[r] as f64);
            }
        }
        for (i, d) in demands.iter().enumerate() {
            if !frozen[i] {
                delta = delta.min(d.cap - rate[i]);
            }
        }
        if !delta.is_finite() || delta < 0.0 {
            break; // nothing left to fill
        }

        let mut any_unfrozen = false;
        for (i, d) in demands.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            any_unfrozen = true;
            rate[i] += delta;
            for r in &d.resources[..d.n_resources as usize] {
                remaining[*r] -= delta;
            }
        }
        if !any_unfrozen {
            break;
        }

        // Freeze items at their cap, and items using a saturated resource.
        for (i, d) in demands.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let capped = rate[i] >= d.cap - EPS;
            let saturated = d.resources[..d.n_resources as usize]
                .iter()
                .any(|&r| remaining[r] <= EPS * table.caps[r].max(1.0));
            if capped || saturated {
                frozen[i] = true;
                for r in &d.resources[..d.n_resources as usize] {
                    users[*r] -= 1;
                }
            }
        }
        if frozen.iter().all(|&f| f) {
            break;
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeSpec;

    fn cluster() -> ClusterSpec {
        ClusterSpec::homogeneous(
            2,
            NodeSpec {
                name: String::new(),
                cores: 8,
                disk_bps: 100e6,
                nic_bps: 10e6,
                mem_bytes: 1 << 30,
            },
        )
    }

    fn rates(kinds: &[ActivityKind]) -> Vec<f64> {
        let c = cluster();
        let table = ResourceTable::new(&c);
        let demands: Vec<Demand> = kinds.iter().map(|k| demand(&table, k)).collect();
        assign_rates(&table, &demands)
    }

    #[test]
    fn single_compute_capped_by_parallelism() {
        let r = rates(&[ActivityKind::Compute {
            node: NodeId(0),
            work_core_us: 1.0,
            parallelism: 4,
        }]);
        assert!((r[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn compute_shares_cores_fairly_with_spillover() {
        // Two activities on an 8-core node: caps 2 and 16. The small one gets
        // its 2 cores; the big one takes the remaining 6.
        let r = rates(&[
            ActivityKind::Compute {
                node: NodeId(0),
                work_core_us: 1.0,
                parallelism: 2,
            },
            ActivityKind::Compute {
                node: NodeId(0),
                work_core_us: 1.0,
                parallelism: 16,
            },
        ]);
        assert!((r[0] - 2.0).abs() < 1e-9, "{r:?}");
        assert!((r[1] - 6.0).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn compute_on_different_nodes_does_not_contend() {
        let r = rates(&[
            ActivityKind::Compute {
                node: NodeId(0),
                work_core_us: 1.0,
                parallelism: 8,
            },
            ActivityKind::Compute {
                node: NodeId(1),
                work_core_us: 1.0,
                parallelism: 8,
            },
        ]);
        assert!((r[0] - 8.0).abs() < 1e-9 && (r[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn disk_readers_split_bandwidth() {
        let r = rates(&[
            ActivityKind::DiskRead {
                node: NodeId(0),
                bytes: 1.0,
            },
            ActivityKind::DiskRead {
                node: NodeId(0),
                bytes: 1.0,
            },
        ]);
        // 100 MB/s = 100 bytes/µs split two ways.
        assert!((r[0] - 50.0).abs() < 1e-6, "{r:?}");
        assert!((r[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn transfer_limited_by_both_nics() {
        // Two transfers into node 1 from node 0: they share node0 NIC-out
        // and node1 NIC-in (both 10 bytes/µs) -> 5 each.
        let r = rates(&[
            ActivityKind::Transfer {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 1.0,
            },
            ActivityKind::Transfer {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 1.0,
            },
        ]);
        assert!((r[0] - 5.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn delay_progresses_at_unit_rate() {
        let r = rates(&[ActivityKind::Delay { duration_us: 100.0 }]);
        assert!((r[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_fs_single_reader_gets_full_server_bw() {
        let c = cluster(); // shared_fs_bps = 1e9 -> 1000 bytes/µs, NIC 10
        let table = ResourceTable::new(&c);
        let demands = vec![demand(
            &table,
            &ActivityKind::SharedRead {
                node: NodeId(0),
                bytes: 1.0,
            },
        )];
        let r = assign_rates(&table, &demands);
        // Limited by the reader's NIC (10 bytes/µs), not the 1000 of the server.
        assert!((r[0] - 10.0).abs() < 1e-6, "{r:?}");
    }

    #[test]
    fn mixed_unrelated_resources_fill_independently() {
        let r = rates(&[
            ActivityKind::Compute {
                node: NodeId(0),
                work_core_us: 1.0,
                parallelism: 8,
            },
            ActivityKind::DiskRead {
                node: NodeId(0),
                bytes: 1.0,
            },
        ]);
        assert!((r[0] - 8.0).abs() < 1e-9);
        assert!((r[1] - 100.0).abs() < 1e-6);
    }
}
