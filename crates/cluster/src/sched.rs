//! Incremental max-min scheduler: the engine behind [`crate::sim::Simulation::run`].
//!
//! The reference engine ([`crate::sim::Simulation::run_reference`]) rebuilds
//! the whole allocation at every event: it re-runs progressive filling over
//! *all* running activities, rescans them for the earliest completion, and
//! emits a trace span per activity per step. That is O(running) work per
//! event even when the event touches a single disk on a single node.
//!
//! This module exploits the component structure of max-min fairness: the
//! progressive-filling fixpoint decomposes over connected components of the
//! bipartite activity↔resource graph, so an arrival or departure can only
//! change the rates of activities *transitively coupled to it through shared
//! resources*. The engine therefore keeps, per event:
//!
//! - **dirty resources** — resources where the user set changed;
//! - an **affected set** — the transitive closure of the dirty resources
//!   over `resource → users → their resources`, found by BFS;
//! - a **component-local refill** — progressive filling restricted to the
//!   affected activities (the closure contains every user of every involved
//!   resource, so filling it against full capacities reproduces exactly the
//!   joint fixpoint for those activities);
//! - a **lazy completion heap** — a binary heap of `(projected finish, slot,
//!   generation)` entries. A slot's generation bumps whenever its rate
//!   changes, invalidating stale heap entries, which are skipped on pop
//!   instead of being removed eagerly.
//!
//! Remaining work is accounted lazily: each slot stores `(anchor_us,
//! remaining-at-anchor, rate)` and is only re-anchored when its rate
//! actually changes. Usage-trace spans are flushed at the same boundaries
//! and merged per `(channel, node, span start)` so that e.g. 200 readers on
//! one disk produce one [`UsageTrace`] accumulation per step, not 200.
//!
//! All scratch state (fill buffers, BFS marks, the flush accumulator) is
//! owned by the run and reused across steps: the steady-state loop performs
//! no allocation beyond occasional `Vec` growth.
//!
//! Determinism: iteration orders (ready stack, BFS discovery, heap
//! tie-breaks by slot index) are pure functions of the input graph, so a
//! given `(cluster, graph)` pair always produces bit-identical results.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::activity::{ActivityGraph, ActivityId, ActivityKind};
use crate::fault::{FaultClock, FaultEvent, FaultPlan};
use crate::resources::{demand, Demand, ResourceTable};
use crate::sim::{ActivityResult, SimError, SimResult};
use crate::topology::{ClusterSpec, NodeId};
use crate::trace::{Channel, UsageTrace};

/// One pending completion: `slot` is projected to finish at `finish_us`
/// under the rate it had at generation `gen`. Entries whose generation no
/// longer matches the slot's are stale and skipped on pop.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    finish_us: f64,
    slot: u32,
    gen: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the std max-heap pops the earliest finish; ties break
        // toward the lowest slot index for determinism.
        other
            .finish_us
            .total_cmp(&self.finish_us)
            .then_with(|| other.slot.cmp(&self.slot))
            .then_with(|| other.gen.cmp(&self.gen))
    }
}

/// Where a slot's usage is charged (up to two `(channel, node)` targets).
#[derive(Debug, Clone, Copy)]
struct TraceTargets {
    ch: [(Channel, NodeId); 2],
    n: u8,
}

fn trace_targets(kind: &ActivityKind) -> TraceTargets {
    let mut t = TraceTargets {
        ch: [(Channel::Cpu, NodeId(0)); 2],
        n: 0,
    };
    match kind {
        ActivityKind::Compute { node, .. } => {
            t.ch[0] = (Channel::Cpu, *node);
            t.n = 1;
        }
        ActivityKind::DiskRead { node, .. } | ActivityKind::DiskWrite { node, .. } => {
            t.ch[0] = (Channel::Disk, *node);
            t.n = 1;
        }
        ActivityKind::Transfer { src, dst, .. } => {
            t.ch[0] = (Channel::NetOut, *src);
            t.ch[1] = (Channel::NetIn, *dst);
            t.n = 2;
        }
        ActivityKind::SharedRead { node, .. } => {
            t.ch[0] = (Channel::NetIn, *node);
            t.n = 1;
        }
        ActivityKind::Delay { .. } | ActivityKind::Barrier => {}
    }
    t
}

/// A running activity. `remaining` is the work left at `anchor_us`; the
/// pair is only updated ("re-anchored") when the rate changes, so projected
/// completion is `anchor_us + remaining / rate`.
#[derive(Debug)]
struct Slot {
    id: ActivityId,
    demand: Demand,
    rate: f64,
    anchor_us: f64,
    remaining: f64,
    /// Completion tolerance in work units (`1e-6 × amount`, floored at
    /// `1e-6`), matching the reference engine's epsilon grouping.
    eps_work: f64,
    gen: u32,
    live: bool,
    trace: TraceTargets,
    /// Position of this slot inside each of its resources' user lists,
    /// kept in sync by the O(1) swap-remove on completion.
    res_pos: [u32; 2],
}

impl Slot {
    fn vacant() -> Self {
        Slot {
            id: ActivityId(0),
            demand: Demand {
                resources: [0, 0],
                n_resources: 0,
                cap: 0.0,
            },
            rate: 0.0,
            anchor_us: 0.0,
            remaining: 0.0,
            eps_work: 0.0,
            gen: 0,
            live: false,
            trace: TraceTargets {
                ch: [(Channel::Cpu, NodeId(0)); 2],
                n: 0,
            },
            res_pos: [0; 2],
        }
    }
}

/// Dense per-`(channel, node)` accumulator batching [`UsageTrace`] spans.
///
/// Within one flush wave every pushed span ends at the same boundary, so
/// spans sharing `(channel, node, start)` — the common case when a whole
/// component re-anchors at once — merge into a single `UsageTrace::add`.
pub(crate) struct FlushWave {
    t0: Vec<f64>,
    rate: Vec<f64>,
    on: Vec<bool>,
    touched: Vec<u32>,
    nodes: usize,
}

fn channel_index(ch: Channel) -> usize {
    match ch {
        Channel::Cpu => 0,
        Channel::Disk => 1,
        Channel::NetIn => 2,
        Channel::NetOut => 3,
    }
}

fn channel_of(i: usize) -> Channel {
    match i {
        0 => Channel::Cpu,
        1 => Channel::Disk,
        2 => Channel::NetIn,
        _ => Channel::NetOut,
    }
}

impl FlushWave {
    pub(crate) fn new(nodes: usize) -> Self {
        FlushWave {
            t0: vec![0.0; 4 * nodes],
            rate: vec![0.0; 4 * nodes],
            on: vec![false; 4 * nodes],
            touched: Vec::new(),
            nodes,
        }
    }

    fn slot_index(&self, ch: Channel, node: NodeId) -> usize {
        channel_index(ch) * self.nodes + node.0 as usize
    }

    /// Adds the span `[t0, t1) @ rate`; merges with a pending span of the
    /// same `(channel, node, t0)`, else emits the pending one first.
    pub(crate) fn push(
        &mut self,
        trace: &mut UsageTrace,
        ch: Channel,
        node: NodeId,
        t0: f64,
        t1: f64,
        rate: f64,
    ) {
        let i = self.slot_index(ch, node);
        if self.on[i] {
            if self.t0[i] == t0 {
                self.rate[i] += rate;
                return;
            }
            trace.add(ch, node, self.t0[i], t1, self.rate[i]);
            self.t0[i] = t0;
            self.rate[i] = rate;
        } else {
            self.on[i] = true;
            self.t0[i] = t0;
            self.rate[i] = rate;
            self.touched.push(i as u32);
        }
    }

    /// Emits every pending span, all ending at `t1`.
    pub(crate) fn flush_all(&mut self, trace: &mut UsageTrace, t1: f64) {
        for k in 0..self.touched.len() {
            let i = self.touched[k] as usize;
            if self.on[i] {
                let ch = channel_of(i / self.nodes);
                let node = NodeId((i % self.nodes) as u16);
                trace.add(ch, node, self.t0[i], t1, self.rate[i]);
                self.on[i] = false;
            }
        }
        self.touched.clear();
    }
}

/// Aggregate-rate usage tracking for the incremental engine.
///
/// Rates are piecewise constant between scheduling events, so each
/// `(channel, node)` pair's usage is fully described by its *summed* rate
/// over time. This keeps that sum and emits one [`UsageTrace`] span per
/// pair per event — independent of how many activities share the pair,
/// and without per-activity whole-lifetime flushes (a long-stable activity
/// would otherwise walk its entire bucket range at completion).
///
/// Rate changes are deferred: the apply/completion loops call [`defer`]
/// per slot (cheap dense accumulation) and a single [`commit`] per event
/// flushes each touched pair once.
///
/// [`defer`]: PairUsage::defer
/// [`commit`]: PairUsage::commit
struct PairUsage {
    rate: Vec<f64>,
    anchor: Vec<f64>,
    pending: Vec<f64>,
    on: Vec<bool>,
    touched: Vec<u32>,
    nodes: usize,
}

impl PairUsage {
    fn new(nodes: usize) -> Self {
        PairUsage {
            rate: vec![0.0; 4 * nodes],
            anchor: vec![0.0; 4 * nodes],
            pending: vec![0.0; 4 * nodes],
            on: vec![false; 4 * nodes],
            touched: Vec::new(),
            nodes,
        }
    }

    /// Queues a rate change of `delta` on `(ch, node)`, effective at the
    /// `now` of the next [`PairUsage::commit`].
    fn defer(&mut self, ch: Channel, node: NodeId, delta: f64) {
        let i = channel_index(ch) * self.nodes + node.0 as usize;
        if !self.on[i] {
            self.on[i] = true;
            self.touched.push(i as u32);
        }
        self.pending[i] += delta;
    }

    /// Applies every queued delta at time `now`; usage accrued since each
    /// touched pair's anchor is flushed first.
    fn commit(&mut self, trace: &mut UsageTrace, now: f64) {
        for k in 0..self.touched.len() {
            let i = self.touched[k] as usize;
            self.on[i] = false;
            let ch = channel_of(i / self.nodes);
            let node = NodeId((i % self.nodes) as u16);
            trace.add(ch, node, self.anchor[i], now, self.rate[i]);
            self.anchor[i] = now;
            self.rate[i] += self.pending[i];
            self.pending[i] = 0.0;
        }
        self.touched.clear();
    }
}

/// Executes `graph` on `cluster` with the incremental scheduler, honoring
/// `plan` (see [`crate::fault`]). Node and plan validity are the caller's
/// responsibility ([`crate::sim::Simulation::run`] checks before
/// dispatching here).
pub(crate) fn run_incremental(
    cluster: &ClusterSpec,
    graph: &ActivityGraph,
    plan: &FaultPlan,
) -> Result<SimResult, SimError> {
    let n = graph.len();
    let _span = granula_trace::span!("engine", "run_incremental activities={n}");
    // Hot-loop telemetry: plain local integers, flushed to the registry
    // once per run (see the end of this function). The loop itself never
    // touches the tracer, so disabled-mode overhead stays at zero.
    let mut ev_events = 0u64;
    let mut ev_refill_waves = 0u64;
    let mut ev_compactions = 0u64;
    let mut ev_heap_pops = 0u64;
    let mut ev_stale_pops = 0u64;
    let mut table = ResourceTable::new(cluster);
    let base_caps = table.caps.clone();
    let active = !plan.is_empty();
    let mut clock = FaultClock::new(plan, cluster.len());
    let mut faults: Vec<FaultEvent> = Vec::new();
    let mut parked: Vec<ActivityId> = Vec::new();
    let mut crashed_buf: Vec<NodeId> = Vec::new();
    let mut restarted_buf: Vec<NodeId> = Vec::new();
    let mut doomed: Vec<(u32, NodeId)> = Vec::new();
    let mut caps_scratch = vec![0.0f64; base_caps.len()];
    let n_res = table.len();
    let mut trace = UsageTrace::new(cluster);
    let mut results = vec![
        ActivityResult {
            start_us: f64::NAN,
            end_us: f64::NAN
        };
        n
    ];

    // Dependency bookkeeping, identical to the reference engine.
    let mut indeg = vec![0u32; n];
    let mut dependents: Vec<Vec<ActivityId>> = vec![Vec::new(); n];
    for a in graph.iter() {
        indeg[a.id.0 as usize] = a.deps.len() as u32;
        for d in &a.deps {
            dependents[d.0 as usize].push(a.id);
        }
    }
    let mut ready: Vec<ActivityId> = graph
        .iter()
        .filter(|a| a.deps.is_empty())
        .map(|a| a.id)
        .collect();

    // Slot storage with a free list; slot indices are reused so every
    // side table stays dense.
    let mut slots: Vec<Slot> = Vec::new();
    let mut free: Vec<u32> = Vec::new();
    let mut occupied = 0usize;

    let mut res_users: Vec<Vec<u32>> = vec![Vec::new(); n_res];
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    // Entries orphaned by generation bumps. When they outnumber the live
    // entries the heap is compacted in one O(n) pass, keeping pushes and
    // pops near O(log live) instead of O(log total-ever-pushed).
    let mut heap_stale = 0usize;

    let mut dirty = vec![false; n_res];
    let mut dirty_list: Vec<usize> = Vec::new();

    // Run-owned scratch, reused across steps.
    let mut affected: Vec<u32> = Vec::new();
    let mut in_affected: Vec<bool> = Vec::new();
    let mut res_list: Vec<usize> = Vec::new();
    let mut res_seen = vec![false; n_res];
    let mut fill_rem = vec![0.0f64; n_res];
    let mut fill_users = vec![0u32; n_res];
    let mut aff_demand: Vec<Demand> = Vec::new();
    let mut new_rate: Vec<f64> = Vec::new();
    let mut frozen: Vec<bool> = Vec::new();
    let mut completing: Vec<u32> = Vec::new();
    let mut usage = PairUsage::new(cluster.len());

    let mut done = 0usize;
    let mut now = 0.0f64;

    // Faults scheduled at t=0 take effect before anything starts, so
    // activities bound to a node that is dead from the outset park instead
    // of starting (mirrors the reference engine).
    if active && matches!(clock.next_boundary(), Some(b) if b <= 0.0) {
        let caps_changed = clock.advance(0.0, &mut crashed_buf, &mut restarted_buf);
        for &node in &restarted_buf {
            faults.push(FaultEvent::NodeRestarted { node, at_us: 0.0 });
        }
        for &node in &crashed_buf {
            faults.push(FaultEvent::NodeCrashed { node, at_us: 0.0 });
        }
        if caps_changed {
            clock.refresh_caps(&base_caps, &mut table.caps, 0.0);
        }
    }

    loop {
        // Start everything ready; zero-amount activities finish at once,
        // cascading through their dependents. Under an active plan,
        // activities bound to a down node park until its restart (or fail
        // the run if it never restarts).
        while let Some(id) = ready.pop() {
            let act = graph.get(id);
            if active {
                if let Some(node) = clock.blocking_node(&act.kind) {
                    if clock.has_pending_restart(node) {
                        parked.push(id);
                        continue;
                    }
                    return Err(SimError::NodeLost {
                        node,
                        activity: id,
                        at_us: now.round() as u64,
                    });
                }
            }
            let amount = act.kind.amount();
            results[id.0 as usize].start_us = now;
            if amount <= 0.0 {
                results[id.0 as usize].end_us = now;
                done += 1;
                for &dep in &dependents[id.0 as usize] {
                    indeg[dep.0 as usize] -= 1;
                    if indeg[dep.0 as usize] == 0 {
                        ready.push(dep);
                    }
                }
                continue;
            }
            let d = demand(&table, &act.kind);
            let si = match free.pop() {
                Some(i) => i as usize,
                None => {
                    slots.push(Slot::vacant());
                    in_affected.push(false);
                    slots.len() - 1
                }
            };
            let gen = slots[si].gen.wrapping_add(1);
            slots[si] = Slot {
                id,
                demand: d,
                rate: 0.0,
                anchor_us: now,
                remaining: amount,
                eps_work: 1e-6 * amount.max(1.0),
                gen,
                live: true,
                trace: trace_targets(&act.kind),
                res_pos: [0; 2],
            };
            occupied += 1;
            if d.n_resources == 0 {
                // No shared resource: the rate is fixed for the slot's
                // lifetime (a delay's 1 µs/µs), so it never refills.
                let rate = if d.cap.is_finite() { d.cap } else { 1.0 };
                slots[si].rate = rate;
                heap.push(HeapEntry {
                    finish_us: now + amount / rate,
                    slot: si as u32,
                    gen,
                });
            } else {
                for (j, &r) in d.resources[..d.n_resources as usize].iter().enumerate() {
                    slots[si].res_pos[j] = res_users[r].len() as u32;
                    res_users[r].push(si as u32);
                    if !dirty[r] {
                        dirty[r] = true;
                        dirty_list.push(r);
                    }
                }
            }
        }
        if done == n {
            break;
        }
        if occupied == 0 && (!active || clock.next_boundary().is_none()) {
            return Err(SimError::Deadlock {
                unstarted: n - done,
            });
        }

        if !dirty_list.is_empty() {
            ev_refill_waves += 1;
            // Transitive closure of the dirty resources over the
            // activity↔resource bipartite graph: BFS alternating
            // resource → users → their other resources.
            affected.clear();
            aff_demand.clear();
            res_list.clear();
            for &r in &dirty_list {
                if !res_seen[r] {
                    res_seen[r] = true;
                    res_list.push(r);
                }
            }
            let mut head = 0;
            while head < res_list.len() {
                let r = res_list[head];
                head += 1;
                for &si in &res_users[r] {
                    if !in_affected[si as usize] {
                        in_affected[si as usize] = true;
                        affected.push(si);
                        // Copy the demand into a dense scratch row so the
                        // fill rounds below iterate contiguously instead of
                        // chasing the (much larger) Slot structs.
                        let d = slots[si as usize].demand;
                        aff_demand.push(d);
                        for &r2 in &d.resources[..d.n_resources as usize] {
                            if !res_seen[r2] {
                                res_seen[r2] = true;
                                res_list.push(r2);
                            }
                        }
                    }
                }
            }
            for &r in &dirty_list {
                dirty[r] = false;
            }
            dirty_list.clear();

            // Progressive filling restricted to the affected set. The
            // closure contains every user of every involved resource, so
            // filling against full capacities reproduces the joint
            // fixpoint for exactly these activities.
            new_rate.clear();
            new_rate.resize(affected.len(), 0.0);
            frozen.clear();
            frozen.resize(affected.len(), false);
            for &r in &res_list {
                fill_rem[r] = table.caps[r];
                fill_users[r] = 0;
            }
            for d in &aff_demand {
                for &r in &d.resources[..d.n_resources as usize] {
                    fill_users[r] += 1;
                }
            }
            const EPS: f64 = 1e-12;
            loop {
                let mut delta = f64::INFINITY;
                for &r in &res_list {
                    if fill_users[r] > 0 {
                        delta = delta.min(fill_rem[r] / fill_users[r] as f64);
                    }
                }
                for (k, d) in aff_demand.iter().enumerate() {
                    if !frozen[k] {
                        delta = delta.min(d.cap - new_rate[k]);
                    }
                }
                if !delta.is_finite() || delta < 0.0 {
                    break;
                }
                let mut any_unfrozen = false;
                for (k, d) in aff_demand.iter().enumerate() {
                    if frozen[k] {
                        continue;
                    }
                    any_unfrozen = true;
                    new_rate[k] += delta;
                    for &r in &d.resources[..d.n_resources as usize] {
                        fill_rem[r] -= delta;
                    }
                }
                if !any_unfrozen {
                    break;
                }
                let mut all_frozen = true;
                for (k, d) in aff_demand.iter().enumerate() {
                    if frozen[k] {
                        continue;
                    }
                    let capped = new_rate[k] >= d.cap - EPS;
                    let saturated = d.resources[..d.n_resources as usize]
                        .iter()
                        .any(|&r| fill_rem[r] <= EPS * table.caps[r].max(1.0));
                    if capped || saturated {
                        frozen[k] = true;
                        for &r in &d.resources[..d.n_resources as usize] {
                            fill_users[r] -= 1;
                        }
                    } else {
                        all_frozen = false;
                    }
                }
                if all_frozen {
                    break;
                }
            }
            for &r in &res_list {
                res_seen[r] = false;
            }

            // Apply: re-anchor, bump generations, and re-key the heap for
            // slots whose rate actually changed; untouched slots keep
            // their (still valid) heap entries.
            for (k, &si) in affected.iter().enumerate() {
                in_affected[si as usize] = false;
                let s = &mut slots[si as usize];
                let r_new = new_rate[k];
                if r_new == s.rate {
                    continue;
                }
                if s.rate > 0.0 && now > s.anchor_us {
                    s.remaining -= s.rate * (now - s.anchor_us);
                }
                for t in 0..s.trace.n as usize {
                    let (ch, node) = s.trace.ch[t];
                    usage.defer(ch, node, r_new - s.rate);
                }
                s.anchor_us = now;
                if s.rate > 0.0 {
                    // The slot's previous heap entry (one exists whenever it
                    // had a positive rate) is orphaned by the gen bump.
                    heap_stale += 1;
                }
                s.rate = r_new;
                s.gen = s.gen.wrapping_add(1);
                if r_new > 0.0 {
                    heap.push(HeapEntry {
                        finish_us: now + s.remaining.max(0.0) / r_new,
                        slot: si,
                        gen: s.gen,
                    });
                }
            }
            usage.commit(&mut trace, now);
        }

        // Compact the heap once stale entries outnumber valid ones, so the
        // working set stays O(live) instead of O(total pushes).
        if heap_stale > 128 && heap_stale * 2 > heap.len() {
            ev_compactions += 1;
            let mut entries = std::mem::take(&mut heap).into_vec();
            entries.retain(|e| {
                let s = &slots[e.slot as usize];
                s.live && s.gen == e.gen
            });
            heap = BinaryHeap::from(entries);
            heap_stale = 0;
        }

        // Next event: the earliest valid projected completion, weighed
        // against the next fault boundary when a plan is active.
        let top: Option<HeapEntry> = if occupied == 0 {
            None
        } else {
            loop {
                match heap.pop() {
                    None => break None,
                    Some(e) => {
                        ev_heap_pops += 1;
                        let s = &slots[e.slot as usize];
                        if s.live && s.gen == e.gen {
                            break Some(e);
                        }
                        heap_stale -= 1;
                        ev_stale_pops += 1;
                    }
                }
            }
        };
        let boundary = if active { clock.next_boundary() } else { None };
        let take_boundary = match (&top, boundary) {
            // A completion at exactly a boundary instant wins (strict `<`),
            // matching the reference engine.
            (Some(e), Some(b)) => b < e.finish_us,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => {
                // Live slots remain but none can finish and no fault
                // boundary can change that — stalled on a zero-capacity
                // resource. Report the lowest live id (deterministic
                // regardless of slot layout).
                let activity = slots
                    .iter()
                    .filter(|s| s.live)
                    .map(|s| s.id)
                    .min()
                    .expect("occupied > 0 implies a live slot");
                return Err(SimError::Stalled { activity });
            }
        };

        ev_events += 1;

        if take_boundary {
            // The popped completion (if any) lies beyond the boundary; put
            // it back and process the fault instead.
            if let Some(e) = top {
                heap.push(e);
            }
            now = now.max(boundary.expect("take_boundary implies a boundary"));
            crashed_buf.clear();
            restarted_buf.clear();
            let caps_changed = clock.advance(now, &mut crashed_buf, &mut restarted_buf);
            for &node in &restarted_buf {
                faults.push(FaultEvent::NodeRestarted { node, at_us: now });
            }
            for &node in &crashed_buf {
                faults.push(FaultEvent::NodeCrashed { node, at_us: now });
            }
            if !crashed_buf.is_empty() {
                // Kill every in-flight activity touching a down node:
                // forced completion at the crash instant, dependents
                // released. Killed in ActivityId order for determinism.
                doomed.clear();
                for (si, s) in slots.iter().enumerate() {
                    if s.live {
                        if let Some(node) = clock.blocking_node(&graph.get(s.id).kind) {
                            doomed.push((si as u32, node));
                        }
                    }
                }
                doomed.sort_by_key(|&(si, _)| slots[si as usize].id.0);
                for &(si, node) in &doomed {
                    let (id, rate, d, res_pos, targets) = {
                        let s = &mut slots[si as usize];
                        s.live = false;
                        (s.id, s.rate, s.demand, s.res_pos, s.trace)
                    };
                    occupied -= 1;
                    results[id.0 as usize].end_us = now;
                    done += 1;
                    faults.push(FaultEvent::ActivityKilled {
                        activity: id,
                        node,
                        at_us: now,
                    });
                    if rate > 0.0 {
                        // Its heap entry is orphaned by the kill.
                        heap_stale += 1;
                        for t in 0..targets.n as usize {
                            let (ch, nd) = targets.ch[t];
                            usage.defer(ch, nd, -rate);
                        }
                    }
                    for (j, &r) in d.resources[..d.n_resources as usize].iter().enumerate() {
                        let list = &mut res_users[r];
                        let pos = res_pos[j] as usize;
                        debug_assert_eq!(list[pos], si);
                        list.swap_remove(pos);
                        if pos < list.len() {
                            let moved = list[pos] as usize;
                            let ms = &mut slots[moved];
                            for j2 in 0..ms.demand.n_resources as usize {
                                if ms.demand.resources[j2] == r {
                                    ms.res_pos[j2] = pos as u32;
                                    break;
                                }
                            }
                        }
                        if !dirty[r] {
                            dirty[r] = true;
                            dirty_list.push(r);
                        }
                    }
                    free.push(si);
                    for &dep in &dependents[id.0 as usize] {
                        indeg[dep.0 as usize] -= 1;
                        if indeg[dep.0 as usize] == 0 {
                            ready.push(dep);
                        }
                    }
                }
            }
            if !crashed_buf.is_empty() || !restarted_buf.is_empty() {
                // Re-examine parked activities: a restarted node frees
                // them; a node that lost its last pending restart is gone
                // for good.
                let mut kept = 0;
                for i in 0..parked.len() {
                    let id = parked[i];
                    match clock.blocking_node(&graph.get(id).kind) {
                        None => ready.push(id),
                        Some(node) => {
                            if !clock.has_pending_restart(node) {
                                return Err(SimError::NodeLost {
                                    node,
                                    activity: id,
                                    at_us: now.round() as u64,
                                });
                            }
                            parked[kept] = id;
                            kept += 1;
                        }
                    }
                }
                parked.truncate(kept);
            }
            if caps_changed {
                // Re-derive capacities and mark every changed resource
                // dirty so the next refill re-rates its users.
                clock.refresh_caps(&base_caps, &mut caps_scratch, now);
                for (r, (&new_cap, cur)) in
                    caps_scratch.iter().zip(table.caps.iter_mut()).enumerate()
                {
                    if new_cap != *cur {
                        *cur = new_cap;
                        if !dirty[r] {
                            dirty[r] = true;
                            dirty_list.push(r);
                        }
                    }
                }
            }
            usage.commit(&mut trace, now);
            continue;
        }

        let top = top.expect("take_boundary is false, so a completion was popped");
        now = now.max(top.finish_us);

        // Complete the popped slot plus every further slot projected to
        // land within its own tolerance of `now` — the heap-shaped
        // equivalent of the reference engine's epsilon sweep.
        completing.clear();
        completing.push(top.slot);
        while let Some(&e) = heap.peek() {
            let s = &slots[e.slot as usize];
            if !(s.live && s.gen == e.gen) {
                heap.pop();
                heap_stale -= 1;
                ev_heap_pops += 1;
                ev_stale_pops += 1;
                continue;
            }
            if (e.finish_us - now) * s.rate <= s.eps_work {
                completing.push(e.slot);
                heap.pop();
                ev_heap_pops += 1;
            } else {
                break;
            }
        }
        for &si in &completing {
            let (id, rate, d, res_pos, targets) = {
                let s = &mut slots[si as usize];
                s.live = false;
                (s.id, s.rate, s.demand, s.res_pos, s.trace)
            };
            occupied -= 1;
            results[id.0 as usize].end_us = now;
            done += 1;
            if rate != 0.0 {
                for t in 0..targets.n as usize {
                    let (ch, node) = targets.ch[t];
                    usage.defer(ch, node, -rate);
                }
            }
            for (j, &r) in d.resources[..d.n_resources as usize].iter().enumerate() {
                // O(1) removal: the slot knows its position in the user
                // list; the entry swapped into its place gets its
                // back-pointer fixed up.
                let list = &mut res_users[r];
                let pos = res_pos[j] as usize;
                debug_assert_eq!(list[pos], si);
                list.swap_remove(pos);
                if pos < list.len() {
                    let moved = list[pos] as usize;
                    let ms = &mut slots[moved];
                    for j2 in 0..ms.demand.n_resources as usize {
                        if ms.demand.resources[j2] == r {
                            ms.res_pos[j2] = pos as u32;
                            break;
                        }
                    }
                }
                if !dirty[r] {
                    dirty[r] = true;
                    dirty_list.push(r);
                }
            }
            free.push(si);
            for &dep in &dependents[id.0 as usize] {
                indeg[dep.0 as usize] -= 1;
                if indeg[dep.0 as usize] == 0 {
                    ready.push(dep);
                }
            }
        }
        usage.commit(&mut trace, now);
    }

    if granula_trace::enabled() {
        granula_trace::counter_add("engine.events_processed", ev_events);
        granula_trace::counter_add("engine.refill_waves", ev_refill_waves);
        granula_trace::counter_add("engine.heap_compactions", ev_compactions);
        granula_trace::counter_add("engine.heap_pops", ev_heap_pops);
        granula_trace::counter_add("engine.heap_stale_pops", ev_stale_pops);
        if ev_heap_pops > 0 {
            granula_trace::gauge_set(
                "engine.stale_entry_ratio",
                ev_stale_pops as f64 / ev_heap_pops as f64,
            );
        }
    }

    let makespan_us = results.iter().map(|r| r.end_us).fold(0.0, f64::max);
    Ok(SimResult {
        results,
        makespan_us,
        trace,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeSpec;

    #[test]
    fn heap_orders_by_finish_then_slot() {
        let mut h = BinaryHeap::new();
        h.push(HeapEntry {
            finish_us: 5.0,
            slot: 2,
            gen: 0,
        });
        h.push(HeapEntry {
            finish_us: 3.0,
            slot: 9,
            gen: 0,
        });
        h.push(HeapEntry {
            finish_us: 3.0,
            slot: 1,
            gen: 0,
        });
        let a = h.pop().unwrap();
        assert_eq!((a.finish_us, a.slot), (3.0, 1));
        let b = h.pop().unwrap();
        assert_eq!((b.finish_us, b.slot), (3.0, 9));
        assert_eq!(h.pop().unwrap().slot, 2);
    }

    #[test]
    fn flush_wave_merges_same_span() {
        let cluster = ClusterSpec::homogeneous(
            2,
            NodeSpec {
                name: String::new(),
                cores: 8,
                disk_bps: 1e8,
                nic_bps: 1e8,
                mem_bytes: 1,
            },
        );
        let mut trace = UsageTrace::new(&cluster);
        let mut wave = FlushWave::new(2);
        // Three readers on node 0's disk over the same span merge into one
        // accumulation; a fourth on node 1 stays separate.
        for _ in 0..3 {
            wave.push(&mut trace, Channel::Disk, NodeId(0), 0.0, 10.0, 5.0);
        }
        wave.push(&mut trace, Channel::Disk, NodeId(1), 0.0, 10.0, 7.0);
        wave.flush_all(&mut trace, 10.0);
        let s0 = trace.series(Channel::Disk, NodeId(0));
        let s1 = trace.series(Channel::Disk, NodeId(1));
        assert!((s0[0].1 - 150.0).abs() < 1e-9, "{s0:?}");
        assert!((s1[0].1 - 70.0).abs() < 1e-9, "{s1:?}");
    }

    #[test]
    fn flush_wave_splits_differing_starts() {
        let cluster = ClusterSpec::homogeneous(
            1,
            NodeSpec {
                name: String::new(),
                cores: 8,
                disk_bps: 1e8,
                nic_bps: 1e8,
                mem_bytes: 1,
            },
        );
        let mut trace = UsageTrace::new(&cluster);
        let mut wave = FlushWave::new(1);
        // Same (channel, node), different anchors: both spans must land.
        wave.push(&mut trace, Channel::Disk, NodeId(0), 0.0, 20.0, 1.0);
        wave.push(&mut trace, Channel::Disk, NodeId(0), 10.0, 20.0, 1.0);
        wave.flush_all(&mut trace, 20.0);
        let s = trace.series(Channel::Disk, NodeId(0));
        // 1.0 over [0,20) plus 1.0 over [10,20) = 30 units in the bucket.
        assert!((s[0].1 - 30.0).abs() < 1e-9, "{s:?}");
    }
}
