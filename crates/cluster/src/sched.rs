//! Incremental max-min scheduler: the engine behind [`crate::sim::Simulation::run`].
//!
//! The reference engine ([`crate::sim::Simulation::run_reference`]) rebuilds
//! the whole allocation at every event: it re-runs progressive filling over
//! *all* running activities, rescans them for the earliest completion, and
//! emits a trace span per activity per step. That is O(running) work per
//! event even when the event touches a single disk on a single node.
//!
//! This module exploits the component structure of max-min fairness twice.
//!
//! **Within an event**, the progressive-filling fixpoint decomposes over
//! connected components of the bipartite activity↔resource graph, so an
//! arrival or departure can only change the rates of activities
//! *transitively coupled to it through shared resources*. The engine keeps,
//! per event:
//!
//! - **dirty resources** — resources where the user set changed;
//! - an **affected set** — the transitive closure of the dirty resources
//!   over `resource → users → their resources`, found by BFS;
//! - a **component-local refill** — progressive filling restricted to the
//!   affected activities;
//! - a **lazy completion heap** — a binary heap of `(projected finish, slot,
//!   generation)` entries. A slot's generation bumps whenever its rate
//!   changes, invalidating stale heap entries, which are skipped on pop.
//!
//! **Across the whole run**, the same decomposition is applied statically:
//! [`partition`] splits the activity graph into connected components over
//! `dependency ∪ shared-resource` edges, and [`run_partitioned`] simulates
//! each component independently — optionally on scoped worker threads —
//! then merges results, traces, and fault events deterministically.
//! Components never exchange rates (max-min fairness is exactly
//! component-local) and never share a `(channel, node)` trace series, so
//! the merge is a scatter of per-activity results, an element-wise trace
//! sum, and a replay of the global fault timeline with per-component kill
//! records spliced in at their boundary instants.
//!
//! Slot state lives in [`Slots`], a struct-of-arrays: the refill wave, the
//! heap-validity checks, and the stalled-scan each touch only the one or
//! two parallel arrays they need instead of dragging whole slot structs
//! through the cache.
//!
//! Remaining work is accounted lazily: each slot stores `(anchor_us,
//! remaining-at-anchor, rate)` and is only re-anchored when its rate
//! actually changes. Usage-trace spans are flushed at event boundaries and
//! merged per `(channel, node)` so that e.g. 200 readers on one disk
//! produce one [`UsageTrace`] accumulation per step, not 200.
//!
//! Determinism: iteration orders (ready stack, BFS discovery, heap
//! tie-breaks by slot index, component order by minimum activity id, merge
//! order by component index) are pure functions of the input graph, so a
//! given `(cluster, graph, plan)` triple always produces bit-identical
//! results at any thread count.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Mutex;

use crate::activity::{ActivityGraph, ActivityId, ActivityKind};
use crate::fault::{FaultClock, FaultEvent, FaultPlan};
use crate::resources::{demand, Demand, ResourceTable};
use crate::sim::{ActivityResult, SimError, SimResult};
use crate::topology::{ClusterSpec, NodeId};
use crate::trace::{Channel, UsageTrace};

/// One pending completion: `slot` is projected to finish at `finish_us`
/// under the rate it had at generation `gen`. Entries whose generation no
/// longer matches the slot's are stale and skipped on pop.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    finish_us: f64,
    slot: u32,
    gen: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed so the std max-heap pops the earliest finish; ties break
        // toward the lowest slot index for determinism.
        other
            .finish_us
            .total_cmp(&self.finish_us)
            .then_with(|| other.slot.cmp(&self.slot))
            .then_with(|| other.gen.cmp(&self.gen))
    }
}

/// Where a slot's usage is charged (up to two `(channel, node)` targets).
#[derive(Debug, Clone, Copy)]
struct TraceTargets {
    ch: [(Channel, NodeId); 2],
    n: u8,
}

fn trace_targets(kind: &ActivityKind) -> TraceTargets {
    let mut t = TraceTargets {
        ch: [(Channel::Cpu, NodeId(0)); 2],
        n: 0,
    };
    match kind {
        ActivityKind::Compute { node, .. } => {
            t.ch[0] = (Channel::Cpu, *node);
            t.n = 1;
        }
        ActivityKind::DiskRead { node, .. } | ActivityKind::DiskWrite { node, .. } => {
            t.ch[0] = (Channel::Disk, *node);
            t.n = 1;
        }
        ActivityKind::Transfer { src, dst, .. } => {
            t.ch[0] = (Channel::NetOut, *src);
            t.ch[1] = (Channel::NetIn, *dst);
            t.n = 2;
        }
        ActivityKind::SharedRead { node, .. } => {
            t.ch[0] = (Channel::NetIn, *node);
            t.n = 1;
        }
        ActivityKind::Delay { .. } | ActivityKind::Barrier => {}
    }
    t
}

/// Dense per-`(channel, node)` accumulator batching [`UsageTrace`] spans.
///
/// Within one flush wave every pushed span ends at the same boundary, so
/// spans sharing `(channel, node, start)` — the common case when a whole
/// component re-anchors at once — merge into a single `UsageTrace::add`.
pub(crate) struct FlushWave {
    t0: Vec<f64>,
    rate: Vec<f64>,
    on: Vec<bool>,
    touched: Vec<u32>,
    nodes: usize,
}

fn channel_index(ch: Channel) -> usize {
    match ch {
        Channel::Cpu => 0,
        Channel::Disk => 1,
        Channel::NetIn => 2,
        Channel::NetOut => 3,
    }
}

fn channel_of(i: usize) -> Channel {
    match i {
        0 => Channel::Cpu,
        1 => Channel::Disk,
        2 => Channel::NetIn,
        _ => Channel::NetOut,
    }
}

impl FlushWave {
    pub(crate) fn new(nodes: usize) -> Self {
        FlushWave {
            t0: vec![0.0; 4 * nodes],
            rate: vec![0.0; 4 * nodes],
            on: vec![false; 4 * nodes],
            touched: Vec::new(),
            nodes,
        }
    }

    fn slot_index(&self, ch: Channel, node: NodeId) -> usize {
        channel_index(ch) * self.nodes + node.0 as usize
    }

    /// Adds the span `[t0, t1) @ rate`; merges with a pending span of the
    /// same `(channel, node, t0)`, else emits the pending one first.
    pub(crate) fn push(
        &mut self,
        trace: &mut UsageTrace,
        ch: Channel,
        node: NodeId,
        t0: f64,
        t1: f64,
        rate: f64,
    ) {
        let i = self.slot_index(ch, node);
        if self.on[i] {
            if self.t0[i] == t0 {
                self.rate[i] += rate;
                return;
            }
            trace.add(ch, node, self.t0[i], t1, self.rate[i]);
            self.t0[i] = t0;
            self.rate[i] = rate;
        } else {
            self.on[i] = true;
            self.t0[i] = t0;
            self.rate[i] = rate;
            self.touched.push(i as u32);
        }
    }

    /// Emits every pending span, all ending at `t1`.
    pub(crate) fn flush_all(&mut self, trace: &mut UsageTrace, t1: f64) {
        for k in 0..self.touched.len() {
            let i = self.touched[k] as usize;
            if self.on[i] {
                let ch = channel_of(i / self.nodes);
                let node = NodeId((i % self.nodes) as u16);
                trace.add(ch, node, self.t0[i], t1, self.rate[i]);
                self.on[i] = false;
            }
        }
        self.touched.clear();
    }
}

/// Aggregate-rate usage tracking for the incremental engine.
///
/// Rates are piecewise constant between scheduling events, so each
/// `(channel, node)` pair's usage is fully described by its *summed* rate
/// over time. This keeps that sum and emits one [`UsageTrace`] span per
/// pair per event — independent of how many activities share the pair,
/// and without per-activity whole-lifetime flushes (a long-stable activity
/// would otherwise walk its entire bucket range at completion).
///
/// Rate changes are deferred: the apply/completion loops call [`defer`]
/// per slot (cheap dense accumulation) and a single [`commit`] per event
/// flushes each touched pair once.
///
/// [`defer`]: PairUsage::defer
/// [`commit`]: PairUsage::commit
struct PairUsage {
    rate: Vec<f64>,
    anchor: Vec<f64>,
    pending: Vec<f64>,
    on: Vec<bool>,
    touched: Vec<u32>,
    nodes: usize,
}

impl PairUsage {
    fn new(nodes: usize) -> Self {
        PairUsage {
            rate: vec![0.0; 4 * nodes],
            anchor: vec![0.0; 4 * nodes],
            pending: vec![0.0; 4 * nodes],
            on: vec![false; 4 * nodes],
            touched: Vec::new(),
            nodes,
        }
    }

    /// Queues a rate change of `delta` on `(ch, node)`, effective at the
    /// `now` of the next [`PairUsage::commit`].
    fn defer(&mut self, ch: Channel, node: NodeId, delta: f64) {
        let i = channel_index(ch) * self.nodes + node.0 as usize;
        if !self.on[i] {
            self.on[i] = true;
            self.touched.push(i as u32);
        }
        self.pending[i] += delta;
    }

    /// Applies every queued delta at time `now`; usage accrued since each
    /// touched pair's anchor is flushed first.
    fn commit(&mut self, trace: &mut UsageTrace, now: f64) {
        for k in 0..self.touched.len() {
            let i = self.touched[k] as usize;
            self.on[i] = false;
            let ch = channel_of(i / self.nodes);
            let node = NodeId((i % self.nodes) as u16);
            trace.add(ch, node, self.anchor[i], now, self.rate[i]);
            self.anchor[i] = now;
            self.rate[i] += self.pending[i];
            self.pending[i] = 0.0;
        }
        self.touched.clear();
    }
}

/// Struct-of-arrays slot storage for running activities.
///
/// Each array is indexed by slot; slots are recycled through a free list so
/// the arrays stay dense at O(peak concurrency). The hot loops each touch
/// only the arrays they need: heap-validity checks read `live`/`gen`, the
/// refill wave reads `demand`, re-anchoring reads/writes the four `f64`
/// columns — contiguous scans instead of striding over a 100-byte struct.
///
/// `gen` survives slot reuse (it is incremented, never reset), so heap
/// entries from a slot's previous occupant can never validate against the
/// new one.
struct Slots {
    /// Component-local activity index occupying the slot.
    id: Vec<u32>,
    demand: Vec<Demand>,
    rate: Vec<f64>,
    anchor_us: Vec<f64>,
    remaining: Vec<f64>,
    /// Completion tolerance in work units (`1e-6 × amount`, floored at
    /// `1e-6`), matching the reference engine's epsilon grouping.
    eps_work: Vec<f64>,
    gen: Vec<u32>,
    live: Vec<bool>,
    trace: Vec<TraceTargets>,
    /// Position of this slot inside each of its resources' user lists,
    /// kept in sync by the O(1) swap-remove on completion.
    res_pos: Vec<[u32; 2]>,
}

impl Slots {
    fn new() -> Self {
        Slots {
            id: Vec::new(),
            demand: Vec::new(),
            rate: Vec::new(),
            anchor_us: Vec::new(),
            remaining: Vec::new(),
            eps_work: Vec::new(),
            gen: Vec::new(),
            live: Vec::new(),
            trace: Vec::new(),
            res_pos: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.id.len()
    }

    /// Appends one vacant slot and returns its index.
    fn push_vacant(&mut self) -> usize {
        self.id.push(0);
        self.demand.push(Demand {
            resources: [0, 0],
            n_resources: 0,
            cap: 0.0,
        });
        self.rate.push(0.0);
        self.anchor_us.push(0.0);
        self.remaining.push(0.0);
        self.eps_work.push(0.0);
        self.gen.push(0);
        self.live.push(false);
        self.trace.push(TraceTargets {
            ch: [(Channel::Cpu, NodeId(0)); 2],
            n: 0,
        });
        self.res_pos.push([0; 2]);
        self.id.len() - 1
    }
}

/// Hot-loop telemetry, accumulated locally per component and flushed to the
/// trace registry once per [`run_partitioned`] call.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct EngineStats {
    pub(crate) events: u64,
    pub(crate) refill_waves: u64,
    pub(crate) compactions: u64,
    pub(crate) heap_pops: u64,
    pub(crate) stale_pops: u64,
}

impl EngineStats {
    fn absorb(&mut self, o: &EngineStats) {
        self.events += o.events;
        self.refill_waves += o.refill_waves;
        self.compactions += o.compactions;
        self.heap_pops += o.heap_pops;
        self.stale_pops += o.stale_pops;
    }
}

/// Result of simulating one connected component in isolation.
struct CompOutcome {
    /// Per-activity results, indexed by component-local activity index.
    results: Vec<ActivityResult>,
    trace: UsageTrace,
    /// `(at_us, global activity id, node)` for every activity killed by a
    /// crash, in the order the component emitted them (ascending time,
    /// ascending id within a time).
    kills: Vec<(f64, u32, NodeId)>,
    /// Highest fault boundary this component processed in its main loop
    /// (prestep boundaries at t ≤ 0 excluded).
    last_boundary: Option<f64>,
    makespan: f64,
    stats: EngineStats,
}

/// Connected components of the activity graph over
/// `dependency ∪ shared-resource` edges.
///
/// `comp_items[comp_off[c]..comp_off[c+1]]` lists component `c`'s activity
/// ids in ascending order; components are numbered by their minimum
/// activity id. `g2l[i]` is activity `i`'s index within its component —
/// ascending global order maps to ascending local order, which is what
/// keeps the per-component engine's iteration orders identical to the
/// monolithic engine's.
pub(crate) struct Partition {
    pub(crate) comp_off: Vec<u32>,
    pub(crate) comp_items: Vec<u32>,
    pub(crate) g2l: Vec<u32>,
}

impl Partition {
    pub(crate) fn component_count(&self) -> usize {
        self.comp_off.len().saturating_sub(1)
    }
}

fn uf_find(parent: &mut [u32], mut x: u32) -> u32 {
    // Path halving.
    while parent[x as usize] != x {
        let gp = parent[parent[x as usize] as usize];
        parent[x as usize] = gp;
        x = gp;
    }
    x
}

fn uf_union(parent: &mut [u32], a: u32, b: u32) {
    let ra = uf_find(parent, a);
    let rb = uf_find(parent, b);
    if ra != rb {
        // Smaller root wins so roots stay stable-ish; correctness does not
        // depend on it (component numbering re-sorts by min id below).
        if ra < rb {
            parent[rb as usize] = ra;
        } else {
            parent[ra as usize] = rb;
        }
    }
}

/// Partitions `graph` into connected components over dependency edges and
/// shared-resource co-use (two activities demanding the same resource are
/// coupled, transitively). Max-min fair rates — and therefore the whole
/// event timeline — decompose exactly over these components.
pub(crate) fn partition(cluster: &ClusterSpec, graph: &ActivityGraph) -> Partition {
    let n = graph.len();
    let table = ResourceTable::new(cluster);
    let mut parent: Vec<u32> = (0..n as u32).collect();
    // First activity seen demanding each resource; later users union with it.
    let mut res_rep: Vec<u32> = vec![u32::MAX; table.len()];
    for i in 0..n {
        let id = ActivityId(i as u32);
        for &d in graph.deps_of(id) {
            uf_union(&mut parent, i as u32, d.0);
        }
        let dem = demand(&table, graph.kind_of(id));
        for &r in &dem.resources[..dem.n_resources as usize] {
            if res_rep[r] == u32::MAX {
                res_rep[r] = i as u32;
            } else {
                uf_union(&mut parent, i as u32, res_rep[r]);
            }
        }
    }
    // Number components by first appearance (== minimum activity id) and
    // group members with a counting sort so each component's items ascend.
    let mut comp_of = vec![0u32; n];
    let mut comp_sizes: Vec<u32> = Vec::new();
    for i in 0..n {
        let root = uf_find(&mut parent, i as u32) as usize;
        let c = if root == i {
            comp_sizes.push(0);
            (comp_sizes.len() - 1) as u32
        } else {
            // The root has a smaller id than any non-root member under the
            // min-root union rule, so it was numbered already.
            comp_of[root]
        };
        comp_of[i] = c;
        comp_sizes[c as usize] += 1;
    }
    let k = comp_sizes.len();
    let mut comp_off = vec![0u32; k + 1];
    for c in 0..k {
        comp_off[c + 1] = comp_off[c] + comp_sizes[c];
    }
    let mut cursor: Vec<u32> = comp_off[..k].to_vec();
    let mut comp_items = vec![0u32; n];
    let mut g2l = vec![0u32; n];
    for i in 0..n {
        let c = comp_of[i] as usize;
        let pos = cursor[c];
        comp_items[pos as usize] = i as u32;
        g2l[i] = pos - comp_off[c];
        cursor[c] += 1;
    }
    Partition {
        comp_off,
        comp_items,
        g2l,
    }
}

/// Simulates one connected component in isolation.
///
/// `ids` lists the component's activities (ascending global ids) and `g2l`
/// maps global activity id → component-local index (only entries for this
/// component's activities are read). The body is an exact port of the
/// pre-partitioning monolithic engine with component-local indexing: for a
/// single-component graph every f64 operation happens in the same order,
/// so results, traces, and fault timing are bit-identical to it.
///
/// Fault handling differs from the monolithic engine in bookkeeping only:
/// `NodeCrashed`/`NodeRestarted` events are *not* recorded here (every
/// component sees the same global fault plan; [`run_partitioned`] replays
/// the plan once to reconstruct them), while `ActivityKilled` events are
/// recorded as raw `(at_us, id, node)` rows for the merge to splice into
/// the replayed timeline.
fn run_component(
    cluster: &ClusterSpec,
    graph: &ActivityGraph,
    plan: &FaultPlan,
    ids: &[u32],
    g2l: &[u32],
) -> Result<CompOutcome, SimError> {
    let n = ids.len();
    let mut stats = EngineStats::default();
    let mut table = ResourceTable::new(cluster);
    let base_caps = table.caps.clone();
    let active = !plan.is_empty();
    let mut clock = FaultClock::new(plan, cluster.len());
    let mut kills: Vec<(f64, u32, NodeId)> = Vec::new();
    let mut last_boundary: Option<f64> = None;
    let mut parked: Vec<u32> = Vec::new();
    let mut crashed_buf: Vec<NodeId> = Vec::new();
    let mut restarted_buf: Vec<NodeId> = Vec::new();
    let mut doomed: Vec<(u32, NodeId)> = Vec::new();
    let mut caps_scratch = vec![0.0f64; base_caps.len()];
    let n_res = table.len();
    let mut trace = UsageTrace::new(cluster);
    let mut results = vec![
        ActivityResult {
            start_us: f64::NAN,
            end_us: f64::NAN
        };
        n
    ];

    // Dependency bookkeeping over component-local indices, as a CSR built
    // in two passes. Filling ascending keeps each dependent list in
    // ascending local (== global) order, matching the monolithic engine's
    // push order.
    let mut indeg = vec![0u32; n];
    let mut dep_cnt = vec![0u32; n];
    for (li, &gi) in ids.iter().enumerate() {
        let deps = graph.deps_of(ActivityId(gi));
        indeg[li] = deps.len() as u32;
        for d in deps {
            dep_cnt[g2l[d.0 as usize] as usize] += 1;
        }
    }
    let mut dep_off = vec![0u32; n + 1];
    for i in 0..n {
        dep_off[i + 1] = dep_off[i] + dep_cnt[i];
    }
    let mut dep_cursor = dep_off[..n].to_vec();
    let mut dep_buf = vec![0u32; dep_off[n] as usize];
    for (li, &gi) in ids.iter().enumerate() {
        for d in graph.deps_of(ActivityId(gi)) {
            let dl = g2l[d.0 as usize] as usize;
            dep_buf[dep_cursor[dl] as usize] = li as u32;
            dep_cursor[dl] += 1;
        }
    }
    let dependents = |li: usize| &dep_buf[dep_off[li] as usize..dep_off[li + 1] as usize];

    let mut ready: Vec<u32> = (0..n as u32)
        .filter(|&li| indeg[li as usize] == 0)
        .collect();

    // SoA slot storage with a free list; slot indices are reused so every
    // column stays dense.
    let mut slots = Slots::new();
    let mut free: Vec<u32> = Vec::new();
    let mut occupied = 0usize;

    let mut res_users: Vec<Vec<u32>> = vec![Vec::new(); n_res];
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    // Entries orphaned by generation bumps. When they outnumber the live
    // entries the heap is compacted in one O(n) pass, keeping pushes and
    // pops near O(log live) instead of O(log total-ever-pushed).
    let mut heap_stale = 0usize;

    let mut dirty = vec![false; n_res];
    let mut dirty_list: Vec<usize> = Vec::new();

    // Run-owned scratch, reused across steps.
    let mut affected: Vec<u32> = Vec::new();
    let mut in_affected: Vec<bool> = Vec::new();
    let mut res_list: Vec<usize> = Vec::new();
    let mut res_seen = vec![false; n_res];
    let mut fill_rem = vec![0.0f64; n_res];
    let mut fill_users = vec![0u32; n_res];
    let mut aff_demand: Vec<Demand> = Vec::new();
    let mut new_rate: Vec<f64> = Vec::new();
    let mut frozen: Vec<bool> = Vec::new();
    let mut completing: Vec<u32> = Vec::new();
    let mut usage = PairUsage::new(cluster.len());

    let mut done = 0usize;
    let mut now = 0.0f64;

    // Faults scheduled at t=0 take effect before anything starts, so
    // activities bound to a node that is dead from the outset park instead
    // of starting (mirrors the reference engine). The events themselves
    // are replayed by the merge.
    if active && matches!(clock.next_boundary(), Some(b) if b <= 0.0) {
        let caps_changed = clock.advance(0.0, &mut crashed_buf, &mut restarted_buf);
        if caps_changed {
            clock.refresh_caps(&base_caps, &mut table.caps, 0.0);
        }
    }

    loop {
        // Start everything ready; zero-amount activities finish at once,
        // cascading through their dependents. Under an active plan,
        // activities bound to a down node park until its restart (or fail
        // the run if it never restarts).
        while let Some(li) = ready.pop() {
            let li = li as usize;
            let kind = graph.kind_of(ActivityId(ids[li]));
            if active {
                if let Some(node) = clock.blocking_node(kind) {
                    if clock.has_pending_restart(node) {
                        parked.push(li as u32);
                        continue;
                    }
                    return Err(SimError::NodeLost {
                        node,
                        activity: ActivityId(ids[li]),
                        at_us: now.round() as u64,
                    });
                }
            }
            let amount = kind.amount();
            results[li].start_us = now;
            if amount <= 0.0 {
                results[li].end_us = now;
                done += 1;
                for &dep in dependents(li) {
                    indeg[dep as usize] -= 1;
                    if indeg[dep as usize] == 0 {
                        ready.push(dep);
                    }
                }
                continue;
            }
            let d = demand(&table, kind);
            let si = match free.pop() {
                Some(i) => i as usize,
                None => {
                    let i = slots.push_vacant();
                    in_affected.push(false);
                    i
                }
            };
            let gen = slots.gen[si].wrapping_add(1);
            slots.id[si] = li as u32;
            slots.demand[si] = d;
            slots.rate[si] = 0.0;
            slots.anchor_us[si] = now;
            slots.remaining[si] = amount;
            slots.eps_work[si] = 1e-6 * amount.max(1.0);
            slots.gen[si] = gen;
            slots.live[si] = true;
            slots.trace[si] = trace_targets(kind);
            slots.res_pos[si] = [0; 2];
            occupied += 1;
            if d.n_resources == 0 {
                // No shared resource: the rate is fixed for the slot's
                // lifetime (a delay's 1 µs/µs), so it never refills.
                let rate = if d.cap.is_finite() { d.cap } else { 1.0 };
                slots.rate[si] = rate;
                heap.push(HeapEntry {
                    finish_us: now + amount / rate,
                    slot: si as u32,
                    gen,
                });
            } else {
                for (j, &r) in d.resources[..d.n_resources as usize].iter().enumerate() {
                    slots.res_pos[si][j] = res_users[r].len() as u32;
                    res_users[r].push(si as u32);
                    if !dirty[r] {
                        dirty[r] = true;
                        dirty_list.push(r);
                    }
                }
            }
        }
        if done == n {
            break;
        }
        if occupied == 0 && (!active || clock.next_boundary().is_none()) {
            return Err(SimError::Deadlock {
                unstarted: n - done,
            });
        }

        if !dirty_list.is_empty() {
            stats.refill_waves += 1;
            // Transitive closure of the dirty resources over the
            // activity↔resource bipartite graph: BFS alternating
            // resource → users → their other resources.
            affected.clear();
            aff_demand.clear();
            res_list.clear();
            for &r in &dirty_list {
                if !res_seen[r] {
                    res_seen[r] = true;
                    res_list.push(r);
                }
            }
            let mut head = 0;
            while head < res_list.len() {
                let r = res_list[head];
                head += 1;
                for &si in &res_users[r] {
                    if !in_affected[si as usize] {
                        in_affected[si as usize] = true;
                        affected.push(si);
                        // Copy the demand into a dense scratch row so the
                        // fill rounds below iterate contiguously.
                        let d = slots.demand[si as usize];
                        aff_demand.push(d);
                        for &r2 in &d.resources[..d.n_resources as usize] {
                            if !res_seen[r2] {
                                res_seen[r2] = true;
                                res_list.push(r2);
                            }
                        }
                    }
                }
            }
            for &r in &dirty_list {
                dirty[r] = false;
            }
            dirty_list.clear();

            // Progressive filling restricted to the affected set. The
            // closure contains every user of every involved resource, so
            // filling against full capacities reproduces the joint
            // fixpoint for exactly these activities.
            new_rate.clear();
            new_rate.resize(affected.len(), 0.0);
            frozen.clear();
            frozen.resize(affected.len(), false);
            for &r in &res_list {
                fill_rem[r] = table.caps[r];
                fill_users[r] = 0;
            }
            for d in &aff_demand {
                for &r in &d.resources[..d.n_resources as usize] {
                    fill_users[r] += 1;
                }
            }
            const EPS: f64 = 1e-12;
            loop {
                let mut delta = f64::INFINITY;
                for &r in &res_list {
                    if fill_users[r] > 0 {
                        delta = delta.min(fill_rem[r] / fill_users[r] as f64);
                    }
                }
                for (k, d) in aff_demand.iter().enumerate() {
                    if !frozen[k] {
                        delta = delta.min(d.cap - new_rate[k]);
                    }
                }
                if !delta.is_finite() || delta < 0.0 {
                    break;
                }
                let mut any_unfrozen = false;
                for (k, d) in aff_demand.iter().enumerate() {
                    if frozen[k] {
                        continue;
                    }
                    any_unfrozen = true;
                    new_rate[k] += delta;
                    for &r in &d.resources[..d.n_resources as usize] {
                        fill_rem[r] -= delta;
                    }
                }
                if !any_unfrozen {
                    break;
                }
                let mut all_frozen = true;
                for (k, d) in aff_demand.iter().enumerate() {
                    if frozen[k] {
                        continue;
                    }
                    let capped = new_rate[k] >= d.cap - EPS;
                    let saturated = d.resources[..d.n_resources as usize]
                        .iter()
                        .any(|&r| fill_rem[r] <= EPS * table.caps[r].max(1.0));
                    if capped || saturated {
                        frozen[k] = true;
                        for &r in &d.resources[..d.n_resources as usize] {
                            fill_users[r] -= 1;
                        }
                    } else {
                        all_frozen = false;
                    }
                }
                if all_frozen {
                    break;
                }
            }
            for &r in &res_list {
                res_seen[r] = false;
            }

            // Apply: re-anchor, bump generations, and re-key the heap for
            // slots whose rate actually changed; untouched slots keep
            // their (still valid) heap entries.
            for (k, &si) in affected.iter().enumerate() {
                let si = si as usize;
                in_affected[si] = false;
                let r_new = new_rate[k];
                if r_new == slots.rate[si] {
                    continue;
                }
                if slots.rate[si] > 0.0 && now > slots.anchor_us[si] {
                    slots.remaining[si] -= slots.rate[si] * (now - slots.anchor_us[si]);
                }
                let targets = slots.trace[si];
                for t in 0..targets.n as usize {
                    let (ch, node) = targets.ch[t];
                    usage.defer(ch, node, r_new - slots.rate[si]);
                }
                slots.anchor_us[si] = now;
                if slots.rate[si] > 0.0 {
                    // The slot's previous heap entry (one exists whenever it
                    // had a positive rate) is orphaned by the gen bump.
                    heap_stale += 1;
                }
                slots.rate[si] = r_new;
                slots.gen[si] = slots.gen[si].wrapping_add(1);
                if r_new > 0.0 {
                    heap.push(HeapEntry {
                        finish_us: now + slots.remaining[si].max(0.0) / r_new,
                        slot: si as u32,
                        gen: slots.gen[si],
                    });
                }
            }
            usage.commit(&mut trace, now);
        }

        // Compact the heap once stale entries outnumber valid ones, so the
        // working set stays O(live) instead of O(total pushes).
        if heap_stale > 128 && heap_stale * 2 > heap.len() {
            stats.compactions += 1;
            let mut entries = std::mem::take(&mut heap).into_vec();
            entries.retain(|e| {
                let si = e.slot as usize;
                slots.live[si] && slots.gen[si] == e.gen
            });
            heap = BinaryHeap::from(entries);
            heap_stale = 0;
        }

        // Next event: the earliest valid projected completion, weighed
        // against the next fault boundary when a plan is active.
        let top: Option<HeapEntry> = if occupied == 0 {
            None
        } else {
            loop {
                match heap.pop() {
                    None => break None,
                    Some(e) => {
                        stats.heap_pops += 1;
                        let si = e.slot as usize;
                        if slots.live[si] && slots.gen[si] == e.gen {
                            break Some(e);
                        }
                        heap_stale -= 1;
                        stats.stale_pops += 1;
                    }
                }
            }
        };
        let boundary = if active { clock.next_boundary() } else { None };
        let take_boundary = match (&top, boundary) {
            // A completion at exactly a boundary instant wins (strict `<`),
            // matching the reference engine.
            (Some(e), Some(b)) => b < e.finish_us,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => {
                // Live slots remain but none can finish and no fault
                // boundary can change that — stalled on a zero-capacity
                // resource. Report the lowest live id (deterministic
                // regardless of slot layout).
                let activity = (0..slots.len())
                    .filter(|&si| slots.live[si])
                    .map(|si| ActivityId(ids[slots.id[si] as usize]))
                    .min()
                    .expect("occupied > 0 implies a live slot");
                return Err(SimError::Stalled { activity });
            }
        };

        stats.events += 1;

        if take_boundary {
            // The popped completion (if any) lies beyond the boundary; put
            // it back and process the fault instead.
            if let Some(e) = top {
                heap.push(e);
            }
            let b = boundary.expect("take_boundary implies a boundary");
            now = now.max(b);
            last_boundary = Some(b);
            crashed_buf.clear();
            restarted_buf.clear();
            let caps_changed = clock.advance(now, &mut crashed_buf, &mut restarted_buf);
            if !crashed_buf.is_empty() {
                // Kill every in-flight activity touching a down node:
                // forced completion at the crash instant, dependents
                // released. Killed in ActivityId order for determinism.
                doomed.clear();
                for si in 0..slots.len() {
                    if slots.live[si] {
                        let gi = ids[slots.id[si] as usize];
                        if let Some(node) = clock.blocking_node(graph.kind_of(ActivityId(gi))) {
                            doomed.push((si as u32, node));
                        }
                    }
                }
                doomed.sort_by_key(|&(si, _)| slots.id[si as usize]);
                for &(si, node) in &doomed {
                    let si = si as usize;
                    slots.live[si] = false;
                    let li = slots.id[si] as usize;
                    let rate = slots.rate[si];
                    let d = slots.demand[si];
                    let res_pos = slots.res_pos[si];
                    let targets = slots.trace[si];
                    occupied -= 1;
                    results[li].end_us = now;
                    done += 1;
                    kills.push((now, ids[li], node));
                    if rate > 0.0 {
                        // Its heap entry is orphaned by the kill.
                        heap_stale += 1;
                        for t in 0..targets.n as usize {
                            let (ch, nd) = targets.ch[t];
                            usage.defer(ch, nd, -rate);
                        }
                    }
                    for (j, &r) in d.resources[..d.n_resources as usize].iter().enumerate() {
                        let list = &mut res_users[r];
                        let pos = res_pos[j] as usize;
                        debug_assert_eq!(list[pos] as usize, si);
                        list.swap_remove(pos);
                        if pos < list.len() {
                            let moved = list[pos] as usize;
                            let md = slots.demand[moved];
                            for j2 in 0..md.n_resources as usize {
                                if md.resources[j2] == r {
                                    slots.res_pos[moved][j2] = pos as u32;
                                    break;
                                }
                            }
                        }
                        if !dirty[r] {
                            dirty[r] = true;
                            dirty_list.push(r);
                        }
                    }
                    free.push(si as u32);
                    for &dep in dependents(li) {
                        indeg[dep as usize] -= 1;
                        if indeg[dep as usize] == 0 {
                            ready.push(dep);
                        }
                    }
                }
            }
            if !crashed_buf.is_empty() || !restarted_buf.is_empty() {
                // Re-examine parked activities: a restarted node frees
                // them; a node that lost its last pending restart is gone
                // for good.
                let mut kept = 0;
                for i in 0..parked.len() {
                    let li = parked[i];
                    match clock.blocking_node(graph.kind_of(ActivityId(ids[li as usize]))) {
                        None => ready.push(li),
                        Some(node) => {
                            if !clock.has_pending_restart(node) {
                                return Err(SimError::NodeLost {
                                    node,
                                    activity: ActivityId(ids[li as usize]),
                                    at_us: now.round() as u64,
                                });
                            }
                            parked[kept] = li;
                            kept += 1;
                        }
                    }
                }
                parked.truncate(kept);
            }
            if caps_changed {
                // Re-derive capacities and mark every changed resource
                // dirty so the next refill re-rates its users.
                clock.refresh_caps(&base_caps, &mut caps_scratch, now);
                for (r, (&new_cap, cur)) in
                    caps_scratch.iter().zip(table.caps.iter_mut()).enumerate()
                {
                    if new_cap != *cur {
                        *cur = new_cap;
                        if !dirty[r] {
                            dirty[r] = true;
                            dirty_list.push(r);
                        }
                    }
                }
            }
            usage.commit(&mut trace, now);
            continue;
        }

        let top = top.expect("take_boundary is false, so a completion was popped");
        now = now.max(top.finish_us);

        // Complete the popped slot plus every further slot projected to
        // land within its own tolerance of `now` — the heap-shaped
        // equivalent of the reference engine's epsilon sweep.
        completing.clear();
        completing.push(top.slot);
        while let Some(&e) = heap.peek() {
            let si = e.slot as usize;
            if !(slots.live[si] && slots.gen[si] == e.gen) {
                heap.pop();
                heap_stale -= 1;
                stats.heap_pops += 1;
                stats.stale_pops += 1;
                continue;
            }
            if (e.finish_us - now) * slots.rate[si] <= slots.eps_work[si] {
                completing.push(e.slot);
                heap.pop();
                stats.heap_pops += 1;
            } else {
                break;
            }
        }
        for &si in &completing {
            let si = si as usize;
            slots.live[si] = false;
            let li = slots.id[si] as usize;
            let rate = slots.rate[si];
            let d = slots.demand[si];
            let res_pos = slots.res_pos[si];
            let targets = slots.trace[si];
            occupied -= 1;
            results[li].end_us = now;
            done += 1;
            if rate != 0.0 {
                for t in 0..targets.n as usize {
                    let (ch, node) = targets.ch[t];
                    usage.defer(ch, node, -rate);
                }
            }
            for (j, &r) in d.resources[..d.n_resources as usize].iter().enumerate() {
                // O(1) removal: the slot knows its position in the user
                // list; the entry swapped into its place gets its
                // back-pointer fixed up.
                let list = &mut res_users[r];
                let pos = res_pos[j] as usize;
                debug_assert_eq!(list[pos] as usize, si);
                list.swap_remove(pos);
                if pos < list.len() {
                    let moved = list[pos] as usize;
                    let md = slots.demand[moved];
                    for j2 in 0..md.n_resources as usize {
                        if md.resources[j2] == r {
                            slots.res_pos[moved][j2] = pos as u32;
                            break;
                        }
                    }
                }
                if !dirty[r] {
                    dirty[r] = true;
                    dirty_list.push(r);
                }
            }
            free.push(si as u32);
            for &dep in dependents(li) {
                indeg[dep as usize] -= 1;
                if indeg[dep as usize] == 0 {
                    ready.push(dep);
                }
            }
        }
        usage.commit(&mut trace, now);
    }

    let makespan = results.iter().map(|r| r.end_us).fold(0.0, f64::max);
    Ok(CompOutcome {
        results,
        trace,
        kills,
        last_boundary,
        makespan,
        stats,
    })
}

/// Highest fault boundary processed by any component (used to decide
/// whether a boundary landing exactly on the makespan was reached).
fn max_last_boundary(comps: &[CompOutcome]) -> Option<f64> {
    comps
        .iter()
        .filter_map(|c| c.last_boundary)
        .fold(None, |acc, b| match acc {
            None => Some(b),
            Some(a) => Some(a.max(b)),
        })
}

/// Executes `graph` on `cluster` with the incremental scheduler, honoring
/// `plan` (see [`crate::fault`]). The graph is partitioned into connected
/// components which are simulated independently — on up to `threads`
/// scoped worker threads when `threads > 1` — and merged deterministically.
/// Node and plan validity are the caller's responsibility
/// ([`crate::sim::Simulation::run`] checks before dispatching here).
///
/// Results are identical for every value of `threads`: workers pull
/// component indices from an atomic cursor but deposit outcomes by index,
/// and every merge step iterates in component order.
pub(crate) fn run_partitioned(
    cluster: &ClusterSpec,
    graph: &ActivityGraph,
    plan: &FaultPlan,
    threads: usize,
) -> Result<SimResult, SimError> {
    let n = graph.len();
    let part = partition(cluster, graph);
    let k = part.component_count();
    let _span = granula_trace::span!(
        "engine",
        "run_partitioned activities={n} components={k} threads={threads}"
    );

    // Simulate every component (even after one errors: the canonical error
    // merge below needs all verdicts to pick the same error the monolithic
    // engine would have reported).
    let mut outcomes: Vec<Option<Result<CompOutcome, SimError>>> = Vec::with_capacity(k);
    if threads <= 1 || k <= 1 {
        for c in 0..k {
            let items = &part.comp_items[part.comp_off[c] as usize..part.comp_off[c + 1] as usize];
            outcomes.push(Some(run_component(cluster, graph, plan, items, &part.g2l)));
        }
    } else {
        outcomes.resize_with(k, || None);
        let slots = Mutex::new(&mut outcomes);
        let cursor = AtomicUsize::new(0);
        let workers = threads.min(k);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Result<CompOutcome, SimError>)> = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                        if c >= k {
                            break;
                        }
                        let items = &part.comp_items
                            [part.comp_off[c] as usize..part.comp_off[c + 1] as usize];
                        local.push((c, run_component(cluster, graph, plan, items, &part.g2l)));
                    }
                    let mut out = slots.lock().unwrap();
                    for (c, r) in local {
                        out[c] = Some(r);
                    }
                });
            }
        });
    }

    // Canonical error merge, matching what the monolithic engine reports:
    // the first node loss in time wins over everything (it aborts the run
    // mid-timeline); a stall wins over deadlock (stalls are detected while
    // other components still hold live work, deadlock only once nothing
    // does); deadlock reports the total unstarted count.
    let mut comps: Vec<CompOutcome> = Vec::with_capacity(k);
    let mut node_lost: Option<(u64, u32, NodeId)> = None;
    let mut stalled: Option<u32> = None;
    let mut deadlocked = false;
    let mut unstarted_total = 0usize;
    for r in outcomes.into_iter().map(|o| o.expect("all components ran")) {
        match r {
            Ok(c) => comps.push(c),
            Err(SimError::NodeLost {
                node,
                activity,
                at_us,
            }) => {
                let better = node_lost.is_none_or(|(a, id, _)| (at_us, activity.0) < (a, id));
                if better {
                    node_lost = Some((at_us, activity.0, node));
                }
            }
            Err(SimError::Stalled { activity }) => {
                stalled = Some(stalled.map_or(activity.0, |s| s.min(activity.0)));
            }
            Err(SimError::Deadlock { unstarted }) => {
                deadlocked = true;
                unstarted_total += unstarted;
            }
            Err(e) => return Err(e),
        }
    }
    if let Some((at_us, id, node)) = node_lost {
        return Err(SimError::NodeLost {
            node,
            activity: ActivityId(id),
            at_us,
        });
    }
    if let Some(id) = stalled {
        return Err(SimError::Stalled {
            activity: ActivityId(id),
        });
    }
    if deadlocked {
        return Err(SimError::Deadlock {
            unstarted: unstarted_total,
        });
    }

    // Scatter per-activity results back to global ids and fold makespan in
    // component order.
    let mut results = vec![
        ActivityResult {
            start_us: f64::NAN,
            end_us: f64::NAN
        };
        n
    ];
    let mut makespan_us = 0.0f64;
    for (c, comp) in comps.iter().enumerate() {
        let items = &part.comp_items[part.comp_off[c] as usize..part.comp_off[c + 1] as usize];
        for (li, r) in comp.results.iter().enumerate() {
            results[items[li] as usize] = *r;
        }
        makespan_us = makespan_us.max(comp.makespan);
    }

    // Components never share a (channel, node) series — trace targets are
    // derived from the same resources that define the partition — so the
    // merged trace is an element-wise sum onto zeros. The single-component
    // case moves its trace through untouched (bit-identical path).
    let trace = if comps.len() == 1 {
        std::mem::replace(&mut comps[0].trace, UsageTrace::new(cluster))
    } else {
        let mut t = UsageTrace::new(cluster);
        for comp in &comps {
            t.absorb(&comp.trace);
        }
        t
    };

    // Rebuild the global fault timeline: replay the plan's boundaries that
    // the run reached (all below the makespan, plus a final boundary
    // landing exactly on it if some component processed one there), and
    // splice each component's kill records in at their boundary instants,
    // sorted by activity id within an instant — exactly the monolithic
    // engine's emission order.
    let mut faults: Vec<FaultEvent> = Vec::new();
    if !plan.is_empty() {
        let mut kills: Vec<(f64, u32, NodeId)> = Vec::new();
        for comp in &comps {
            kills.extend_from_slice(&comp.kills);
        }
        kills.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let last = max_last_boundary(&comps);
        let mut clock = FaultClock::new(plan, cluster.len());
        let mut crashed: Vec<NodeId> = Vec::new();
        let mut restarted: Vec<NodeId> = Vec::new();
        if matches!(clock.next_boundary(), Some(b) if b <= 0.0) {
            clock.advance(0.0, &mut crashed, &mut restarted);
            for &node in &restarted {
                faults.push(FaultEvent::NodeRestarted { node, at_us: 0.0 });
            }
            for &node in &crashed {
                faults.push(FaultEvent::NodeCrashed { node, at_us: 0.0 });
            }
        }
        let mut ki = 0usize;
        while let Some(b) = clock.next_boundary() {
            let reached = b < makespan_us || last.is_some_and(|m| m == b);
            if !reached {
                break;
            }
            crashed.clear();
            restarted.clear();
            clock.advance(b, &mut crashed, &mut restarted);
            for &node in &restarted {
                faults.push(FaultEvent::NodeRestarted { node, at_us: b });
            }
            for &node in &crashed {
                faults.push(FaultEvent::NodeCrashed { node, at_us: b });
            }
            while ki < kills.len() && kills[ki].0 == b {
                faults.push(FaultEvent::ActivityKilled {
                    activity: ActivityId(kills[ki].1),
                    node: kills[ki].2,
                    at_us: b,
                });
                ki += 1;
            }
        }
        debug_assert_eq!(ki, kills.len(), "every kill maps to a replayed boundary");
    }

    if granula_trace::enabled() {
        let mut stats = EngineStats::default();
        for comp in &comps {
            stats.absorb(&comp.stats);
        }
        granula_trace::counter_add("engine.events_processed", stats.events);
        granula_trace::counter_add("engine.refill_waves", stats.refill_waves);
        granula_trace::counter_add("engine.heap_compactions", stats.compactions);
        granula_trace::counter_add("engine.heap_pops", stats.heap_pops);
        granula_trace::counter_add("engine.heap_stale_pops", stats.stale_pops);
        granula_trace::gauge_set("engine.components", k as f64);
        if stats.heap_pops > 0 {
            granula_trace::gauge_set(
                "engine.stale_entry_ratio",
                stats.stale_pops as f64 / stats.heap_pops as f64,
            );
        }
    }

    Ok(SimResult {
        results,
        makespan_us,
        trace,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeSpec;

    #[test]
    fn heap_orders_by_finish_then_slot() {
        let mut h = BinaryHeap::new();
        h.push(HeapEntry {
            finish_us: 5.0,
            slot: 2,
            gen: 0,
        });
        h.push(HeapEntry {
            finish_us: 3.0,
            slot: 9,
            gen: 0,
        });
        h.push(HeapEntry {
            finish_us: 3.0,
            slot: 1,
            gen: 0,
        });
        let a = h.pop().unwrap();
        assert_eq!((a.finish_us, a.slot), (3.0, 1));
        let b = h.pop().unwrap();
        assert_eq!((b.finish_us, b.slot), (3.0, 9));
        assert_eq!(h.pop().unwrap().slot, 2);
    }

    #[test]
    fn flush_wave_merges_same_span() {
        let cluster = ClusterSpec::homogeneous(
            2,
            NodeSpec {
                name: String::new(),
                cores: 8,
                disk_bps: 1e8,
                nic_bps: 1e8,
                mem_bytes: 1,
            },
        );
        let mut trace = UsageTrace::new(&cluster);
        let mut wave = FlushWave::new(2);
        // Three readers on node 0's disk over the same span merge into one
        // accumulation; a fourth on node 1 stays separate.
        for _ in 0..3 {
            wave.push(&mut trace, Channel::Disk, NodeId(0), 0.0, 10.0, 5.0);
        }
        wave.push(&mut trace, Channel::Disk, NodeId(1), 0.0, 10.0, 7.0);
        wave.flush_all(&mut trace, 10.0);
        let s0 = trace.series(Channel::Disk, NodeId(0));
        let s1 = trace.series(Channel::Disk, NodeId(1));
        assert!((s0[0].1 - 150.0).abs() < 1e-9, "{s0:?}");
        assert!((s1[0].1 - 70.0).abs() < 1e-9, "{s1:?}");
    }

    #[test]
    fn flush_wave_splits_differing_starts() {
        let cluster = ClusterSpec::homogeneous(
            1,
            NodeSpec {
                name: String::new(),
                cores: 8,
                disk_bps: 1e8,
                nic_bps: 1e8,
                mem_bytes: 1,
            },
        );
        let mut trace = UsageTrace::new(&cluster);
        let mut wave = FlushWave::new(1);
        // Same (channel, node), different anchors: both spans must land.
        wave.push(&mut trace, Channel::Disk, NodeId(0), 0.0, 20.0, 1.0);
        wave.push(&mut trace, Channel::Disk, NodeId(0), 10.0, 20.0, 1.0);
        wave.flush_all(&mut trace, 20.0);
        let s = trace.series(Channel::Disk, NodeId(0));
        // 1.0 over [0,20) plus 1.0 over [10,20) = 30 units in the bucket.
        assert!((s[0].1 - 30.0).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn partition_separates_independent_islands() {
        use crate::activity::ActivityGraph;
        let cluster = ClusterSpec::homogeneous(
            2,
            NodeSpec {
                name: String::new(),
                cores: 4,
                disk_bps: 1e8,
                nic_bps: 1e8,
                mem_bytes: 1,
            },
        );
        let mut g = ActivityGraph::new();
        // Island A: chain of two computes on node 0.
        let a0 = g.add(
            ActivityKind::Compute {
                node: NodeId(0),
                work_core_us: 1e6,
                parallelism: 4,
            },
            &[],
            "a0",
        );
        let _a1 = g.add(
            ActivityKind::Compute {
                node: NodeId(0),
                work_core_us: 1e6,
                parallelism: 4,
            },
            &[a0],
            "a1",
        );
        // Island B: one disk read on node 1.
        let _b0 = g.add(
            ActivityKind::DiskRead {
                node: NodeId(1),
                bytes: 1e6,
            },
            &[],
            "b0",
        );
        let p = partition(&cluster, &g);
        assert_eq!(p.component_count(), 2);
        assert_eq!(&p.comp_items[..], &[0, 1, 2]);
        assert_eq!(&p.comp_off[..], &[0, 2, 3]);
        assert_eq!(&p.g2l[..], &[0, 1, 0]);
    }

    #[test]
    fn partition_couples_via_shared_resources() {
        use crate::activity::ActivityGraph;
        let cluster = ClusterSpec::homogeneous(
            1,
            NodeSpec {
                name: String::new(),
                cores: 4,
                disk_bps: 1e8,
                nic_bps: 1e8,
                mem_bytes: 1,
            },
        );
        let mut g = ActivityGraph::new();
        // No dependency edges, but both computes land on node 0's cores —
        // max-min couples them, so they must share a component.
        g.add(
            ActivityKind::Compute {
                node: NodeId(0),
                work_core_us: 1e6,
                parallelism: 4,
            },
            &[],
            "x",
        );
        g.add(
            ActivityKind::Compute {
                node: NodeId(0),
                work_core_us: 1e6,
                parallelism: 4,
            },
            &[],
            "y",
        );
        let p = partition(&cluster, &g);
        assert_eq!(p.component_count(), 1);
    }
}
