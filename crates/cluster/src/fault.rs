//! Deterministic fault injection: node crashes and degradation windows.
//!
//! A [`FaultPlan`] describes *when* the cluster misbehaves — a node crashes
//! at simulated time `T` (optionally coming back after a restart delay), or
//! a node's CPU/disk/NIC capacity is multiplied by a factor over a time
//! window. Both engines ([`crate::sim::Simulation::run_with_faults`] and
//! [`crate::sim::Simulation::run_reference_with_faults`]) honor the same
//! plan with identical semantics:
//!
//! - At a crash, every in-flight activity touching the node is **killed**:
//!   it is forced to complete at the crash instant (its unfinished work is
//!   lost), its dependents are released, and an
//!   [`FaultEvent::ActivityKilled`] is recorded. Failures are first-class
//!   events, not errors — platform drivers model what happens next
//!   (checkpoint recovery, full restart) in the activity DAG itself.
//! - A ready activity bound to a down node is **parked** until the node's
//!   scheduled restart. If the node will never restart, the run fails with
//!   [`crate::sim::SimError::NodeLost`] naming the activity and the
//!   simulated time.
//! - Slowdown windows scale resource capacities multiplicatively while
//!   active; rates are re-derived at every window edge.
//!
//! An empty plan adds no floating-point work to either engine, so fault
//! support leaves healthy simulations bit-identical.

use serde::{Deserialize, Serialize};

use crate::activity::{ActivityId, ActivityKind};
use crate::topology::NodeId;

/// Which of a node's resource channels a [`Slowdown`] degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradedChannel {
    /// The node's cores.
    Cpu,
    /// The node's disk bandwidth.
    Disk,
    /// Both NIC directions.
    Nic,
    /// Every channel of the node.
    All,
}

/// A node crash at a simulated instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// The node that dies.
    pub node: NodeId,
    /// Crash instant, microseconds since job epoch.
    pub at_us: f64,
    /// Delay until the node is usable again (a replacement container /
    /// rebooted machine). `None` means the node never comes back.
    pub restart_after_us: Option<f64>,
}

/// A transient capacity-degradation window on one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Slowdown {
    /// Affected node.
    pub node: NodeId,
    /// Affected channel(s).
    pub channel: DegradedChannel,
    /// Window start (inclusive), microseconds.
    pub from_us: f64,
    /// Window end (exclusive), microseconds.
    pub to_us: f64,
    /// Multiplier applied to the channel capacity while the window is
    /// active; in `(0, 1]`.
    pub factor: f64,
}

/// A deterministic schedule of faults, honored identically by both engines.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Node crashes.
    pub crashes: Vec<NodeCrash>,
    /// Capacity-degradation windows.
    pub slowdowns: Vec<Slowdown>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.slowdowns.is_empty()
    }

    /// Adds a permanent crash of `node` at `at_us`.
    pub fn crash(mut self, node: NodeId, at_us: f64) -> Self {
        assert!(at_us.is_finite() && at_us >= 0.0, "crash time {at_us}");
        self.crashes.push(NodeCrash {
            node,
            at_us,
            restart_after_us: None,
        });
        self
    }

    /// Adds a crash of `node` at `at_us` after which a replacement becomes
    /// usable `restart_after_us` later.
    pub fn crash_with_restart(mut self, node: NodeId, at_us: f64, restart_after_us: f64) -> Self {
        assert!(at_us.is_finite() && at_us >= 0.0, "crash time {at_us}");
        assert!(
            restart_after_us.is_finite() && restart_after_us > 0.0,
            "restart delay {restart_after_us}"
        );
        self.crashes.push(NodeCrash {
            node,
            at_us,
            restart_after_us: Some(restart_after_us),
        });
        self
    }

    /// Adds a degradation window: `channel` of `node` runs at `factor`
    /// capacity over `[from_us, to_us)`.
    pub fn slow(
        mut self,
        node: NodeId,
        channel: DegradedChannel,
        from_us: f64,
        to_us: f64,
        factor: f64,
    ) -> Self {
        assert!(
            from_us.is_finite() && from_us >= 0.0 && to_us.is_finite() && to_us > from_us,
            "window [{from_us}, {to_us})"
        );
        assert!(factor > 0.0 && factor <= 1.0, "factor {factor}");
        self.slowdowns.push(Slowdown {
            node,
            channel,
            from_us,
            to_us,
            factor,
        });
        self
    }

    /// A reproducible pseudo-random plan over `nodes` nodes within
    /// `[0, horizon_us)`: one restarting crash plus two degradation
    /// windows. Same seed, same plan.
    pub fn seeded(seed: u64, nodes: u16, horizon_us: f64) -> Self {
        assert!(nodes > 0 && horizon_us > 0.0);
        // Inline LCG (Numerical Recipes constants); no external RNG.
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 // in [0, 1)
        };
        let mut plan = FaultPlan::new();
        let crash_node = NodeId((next() * nodes as f64) as u16 % nodes);
        let at = (0.1 + 0.8 * next()) * horizon_us;
        plan = plan.crash_with_restart(crash_node, at, (0.02 + 0.08 * next()) * horizon_us);
        for _ in 0..2 {
            let node = NodeId((next() * nodes as f64) as u16 % nodes);
            let channel = match (next() * 4.0) as u8 {
                0 => DegradedChannel::Cpu,
                1 => DegradedChannel::Disk,
                2 => DegradedChannel::Nic,
                _ => DegradedChannel::All,
            };
            let from = next() * 0.8 * horizon_us;
            let len = (0.05 + 0.2 * next()) * horizon_us;
            plan = plan.slow(node, channel, from, from + len, 0.1 + 0.85 * next());
        }
        plan
    }

    /// Largest node id referenced by the plan, if any — used by the engines
    /// to validate the plan against the cluster.
    pub(crate) fn max_node(&self) -> Option<NodeId> {
        self.crashes
            .iter()
            .map(|c| c.node)
            .chain(self.slowdowns.iter().map(|s| s.node))
            .max()
    }
}

/// A failure observed during simulation — first-class output, not an error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A node crashed.
    NodeCrashed {
        /// The node.
        node: NodeId,
        /// Simulated instant, microseconds.
        at_us: f64,
    },
    /// A crashed node became usable again.
    NodeRestarted {
        /// The node.
        node: NodeId,
        /// Simulated instant, microseconds.
        at_us: f64,
    },
    /// An in-flight activity was killed by a node crash; its remaining work
    /// is lost and its dependents were released at the crash instant.
    ActivityKilled {
        /// The killed activity.
        activity: ActivityId,
        /// The node whose crash killed it.
        node: NodeId,
        /// Simulated instant, microseconds.
        at_us: f64,
    },
}

/// The nodes an activity kind physically occupies (none for delays and
/// barriers, two for cross-node transfers).
pub(crate) fn touched_nodes(kind: &ActivityKind) -> [Option<NodeId>; 2] {
    match kind {
        ActivityKind::Compute { node, .. }
        | ActivityKind::DiskRead { node, .. }
        | ActivityKind::DiskWrite { node, .. }
        | ActivityKind::SharedRead { node, .. } => [Some(*node), None],
        ActivityKind::Transfer { src, dst, .. } => [Some(*src), Some(*dst)],
        ActivityKind::Delay { .. } | ActivityKind::Barrier => [None, None],
    }
}

/// Engine-side clock over a plan's fault boundaries.
///
/// Crash instants, restart instants, and slowdown-window edges form a merged,
/// sorted timeline; the engines never advance simulated time past the next
/// unprocessed boundary. [`FaultClock::advance`] consumes boundaries up to
/// `t` and reports which nodes crashed/restarted and whether capacities
/// need re-deriving.
pub(crate) struct FaultClock<'a> {
    plan: &'a FaultPlan,
    /// `(at_us, node)` sorted ascending.
    crash_events: Vec<(f64, NodeId)>,
    /// `(at_us, node)` sorted ascending.
    restart_events: Vec<(f64, NodeId)>,
    /// Slowdown window edges (`from_us` and `to_us`), sorted ascending.
    cap_edges: Vec<f64>,
    ci: usize,
    ri: usize,
    ei: usize,
    down: Vec<bool>,
    /// Unprocessed restart events per node; a down node with none pending
    /// is lost for good.
    pending_restarts: Vec<u32>,
}

impl<'a> FaultClock<'a> {
    pub(crate) fn new(plan: &'a FaultPlan, nodes: usize) -> Self {
        let mut crash_events: Vec<(f64, NodeId)> =
            plan.crashes.iter().map(|c| (c.at_us, c.node)).collect();
        crash_events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut restart_events: Vec<(f64, NodeId)> = plan
            .crashes
            .iter()
            .filter_map(|c| c.restart_after_us.map(|r| (c.at_us + r, c.node)))
            .collect();
        restart_events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut cap_edges: Vec<f64> = plan
            .slowdowns
            .iter()
            .flat_map(|s| [s.from_us, s.to_us])
            .collect();
        cap_edges.sort_by(f64::total_cmp);
        let mut pending_restarts = vec![0u32; nodes];
        for &(_, node) in &restart_events {
            pending_restarts[node.0 as usize] += 1;
        }
        FaultClock {
            plan,
            crash_events,
            restart_events,
            cap_edges,
            ci: 0,
            ri: 0,
            ei: 0,
            down: vec![false; nodes],
            pending_restarts,
        }
    }

    /// The earliest unprocessed fault boundary, if any.
    pub(crate) fn next_boundary(&self) -> Option<f64> {
        let mut b = f64::INFINITY;
        if let Some(&(t, _)) = self.crash_events.get(self.ci) {
            b = b.min(t);
        }
        if let Some(&(t, _)) = self.restart_events.get(self.ri) {
            b = b.min(t);
        }
        if let Some(&t) = self.cap_edges.get(self.ei) {
            b = b.min(t);
        }
        b.is_finite().then_some(b)
    }

    /// Consumes every boundary at or before `t`. Appends nodes that came
    /// back up to `restarted` and nodes that went down to `crashed` (each in
    /// timeline order), and returns `true` when a slowdown edge was crossed
    /// (capacities must be re-derived). Restarts are applied before crashes
    /// sharing the same instant, so a node crashed and restarted at the
    /// exact same time ends up down.
    pub(crate) fn advance(
        &mut self,
        t: f64,
        crashed: &mut Vec<NodeId>,
        restarted: &mut Vec<NodeId>,
    ) -> bool {
        while let Some(&(at, node)) = self.restart_events.get(self.ri) {
            if at > t {
                break;
            }
            self.ri += 1;
            self.pending_restarts[node.0 as usize] -= 1;
            if self.down[node.0 as usize] {
                self.down[node.0 as usize] = false;
                restarted.push(node);
            }
        }
        while let Some(&(at, node)) = self.crash_events.get(self.ci) {
            if at > t {
                break;
            }
            self.ci += 1;
            if !self.down[node.0 as usize] {
                self.down[node.0 as usize] = true;
                crashed.push(node);
            }
        }
        let mut caps_changed = false;
        while let Some(&at) = self.cap_edges.get(self.ei) {
            if at > t {
                break;
            }
            self.ei += 1;
            caps_changed = true;
        }
        caps_changed
    }

    /// Whether `node` is currently down.
    pub(crate) fn is_down(&self, node: NodeId) -> bool {
        self.down[node.0 as usize]
    }

    /// Whether a restart is still scheduled for `node`.
    pub(crate) fn has_pending_restart(&self, node: NodeId) -> bool {
        self.pending_restarts[node.0 as usize] > 0
    }

    /// The first down node the activity kind touches, if any.
    pub(crate) fn blocking_node(&self, kind: &ActivityKind) -> Option<NodeId> {
        touched_nodes(kind)
            .into_iter()
            .flatten()
            .find(|&n| self.is_down(n))
    }

    /// Rebuilds `caps` from `base` with every slowdown window active at `t`
    /// applied multiplicatively, in plan order. Layout matches
    /// [`crate::resources::ResourceTable`]: cores, disk, NIC-in, NIC-out
    /// blocks of `nodes` entries each, then the shared-FS server.
    pub(crate) fn refresh_caps(&self, base: &[f64], caps: &mut [f64], t: f64) {
        caps.copy_from_slice(base);
        let nodes = (base.len() - 1) / 4;
        for s in &self.plan.slowdowns {
            if !(s.from_us <= t && t < s.to_us) {
                continue;
            }
            let i = s.node.0 as usize;
            match s.channel {
                DegradedChannel::Cpu => caps[i] *= s.factor,
                DegradedChannel::Disk => caps[nodes + i] *= s.factor,
                DegradedChannel::Nic => {
                    caps[2 * nodes + i] *= s.factor;
                    caps[3 * nodes + i] *= s.factor;
                }
                DegradedChannel::All => {
                    caps[i] *= s.factor;
                    caps[nodes + i] *= s.factor;
                    caps[2 * nodes + i] *= s.factor;
                    caps[3 * nodes + i] *= s.factor;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_has_no_boundaries() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let clock = FaultClock::new(&plan, 4);
        assert_eq!(clock.next_boundary(), None);
    }

    #[test]
    fn boundaries_merge_in_time_order() {
        let plan = FaultPlan::new()
            .crash_with_restart(NodeId(1), 50.0, 25.0)
            .slow(NodeId(0), DegradedChannel::Disk, 10.0, 60.0, 0.5);
        let mut clock = FaultClock::new(&plan, 2);
        let (mut crashed, mut restarted) = (Vec::new(), Vec::new());
        assert_eq!(clock.next_boundary(), Some(10.0));
        assert!(clock.advance(10.0, &mut crashed, &mut restarted));
        assert_eq!(clock.next_boundary(), Some(50.0));
        assert!(!clock.advance(50.0, &mut crashed, &mut restarted));
        assert_eq!(crashed, vec![NodeId(1)]);
        assert!(clock.is_down(NodeId(1)));
        assert!(clock.has_pending_restart(NodeId(1)));
        assert_eq!(clock.next_boundary(), Some(60.0));
        assert!(clock.advance(60.0, &mut crashed, &mut restarted));
        assert_eq!(clock.next_boundary(), Some(75.0));
        clock.advance(75.0, &mut crashed, &mut restarted);
        assert_eq!(restarted, vec![NodeId(1)]);
        assert!(!clock.is_down(NodeId(1)));
        assert_eq!(clock.next_boundary(), None);
    }

    #[test]
    fn refresh_caps_applies_active_windows_only() {
        let plan = FaultPlan::new()
            .slow(NodeId(0), DegradedChannel::All, 0.0, 100.0, 0.5)
            .slow(NodeId(1), DegradedChannel::Cpu, 200.0, 300.0, 0.25);
        let clock = FaultClock::new(&plan, 2);
        let base = vec![8.0, 8.0, 100.0, 100.0, 10.0, 10.0, 10.0, 10.0, 1000.0];
        let mut caps = vec![0.0; base.len()];
        clock.refresh_caps(&base, &mut caps, 50.0);
        assert_eq!(caps[0], 4.0); // node 0 cpu halved
        assert_eq!(caps[2], 50.0); // node 0 disk halved
        assert_eq!(caps[1], 8.0); // node 1 untouched at t=50
        assert_eq!(caps[8], 1000.0); // shared fs never degraded
        clock.refresh_caps(&base, &mut caps, 250.0);
        assert_eq!(caps[0], 8.0); // window over
        assert_eq!(caps[1], 2.0); // node 1 cpu quartered
    }

    #[test]
    fn touched_nodes_by_kind() {
        assert_eq!(
            touched_nodes(&ActivityKind::Transfer {
                src: NodeId(1),
                dst: NodeId(2),
                bytes: 1.0
            }),
            [Some(NodeId(1)), Some(NodeId(2))]
        );
        assert_eq!(
            touched_nodes(&ActivityKind::Delay { duration_us: 1.0 }),
            [None, None]
        );
    }

    #[test]
    fn seeded_plans_are_reproducible_and_valid() {
        let a = FaultPlan::seeded(42, 8, 1e7);
        let b = FaultPlan::seeded(42, 8, 1e7);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(43, 8, 1e7));
        assert_eq!(a.crashes.len(), 1);
        assert_eq!(a.slowdowns.len(), 2);
        assert!(a.max_node().unwrap().0 < 8);
    }
}
