//! Global string interner for activity tags and node names.
//!
//! Tags used to be owned `String`s carried inside every activity — a heap
//! allocation per activity in the platform drivers' construction loops and a
//! clone whenever a graph was copied or truncated. A [`Symbol`] is a `u32`
//! handle into a process-wide append-only table: interning the same text
//! always yields the same handle, comparisons are integer compares, and
//! resolution returns a `&'static str` (the table never frees).
//!
//! Determinism: the id assigned to a given string depends only on the order
//! of first interning within the process, which the engines never rely on —
//! every ordered operation ([`crate::activity::ActivityGraph::tagged`],
//! serde) resolves symbols back to text first. Re-interning a string is
//! idempotent and returns the original id, so symbol↔string is a bijection
//! for the life of the process.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

use serde::{DeError, Deserialize, Serialize, Value};

/// Interned string handle. `Copy`-cheap, `Eq` by id (equal text ⇔ equal id).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    list: Vec<&'static str>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            list: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its stable handle. The first interning of a
    /// string leaks one copy of it; later calls are a read-locked lookup.
    pub fn intern(s: &str) -> Symbol {
        {
            let t = table().read().unwrap();
            if let Some(&id) = t.map.get(s) {
                return Symbol(id);
            }
        }
        let mut t = table().write().unwrap();
        // Re-check under the write lock: another thread may have won.
        if let Some(&id) = t.map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(t.list.len()).expect("interner overflow");
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        t.list.push(leaked);
        t.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned text. O(1) behind a read lock.
    pub fn as_str(self) -> &'static str {
        table().read().unwrap().list[self.0 as usize]
    }

    /// The raw table index (diagnostics only — not stable across processes).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

/// Symbols serialize as their text so archives and fixtures stay portable
/// across processes (raw ids are process-local).
impl Serialize for Symbol {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Symbol {
    fn from_value(v: &Value) -> Result<Symbol, DeError> {
        match v {
            Value::Str(s) => Ok(Symbol::intern(s)),
            _ => Err(DeError::expected("string (interned symbol)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("intern-test/alpha");
        let b = Symbol::intern("intern-test/alpha");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "intern-test/alpha");
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let a = Symbol::intern("intern-test/x");
        let b = Symbol::intern("intern-test/y");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "intern-test/x");
        assert_eq!(b.as_str(), "intern-test/y");
    }

    #[test]
    fn empty_string_interns() {
        let e = Symbol::intern("");
        assert_eq!(e.as_str(), "");
        assert_eq!(e, Symbol::intern(""));
    }

    #[test]
    fn display_matches_text() {
        let s = Symbol::intern("intern-test/display");
        assert_eq!(s.to_string(), "intern-test/display");
        assert_eq!(format!("{s:?}"), "Symbol(\"intern-test/display\")");
    }

    #[test]
    fn serde_round_trips_as_text() {
        let s = Symbol::intern("intern-test/serde");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"intern-test/serde\"");
        let back: Symbol = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let ids: Vec<Symbol> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| Symbol::intern("intern-test/concurrent")))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
