//! The simulation engine: executes an activity DAG on a cluster.
//!
//! Event-driven with analytic progression: at every step the engine computes
//! the max-min fair rate of each running activity, advances time to the
//! earliest completion, accumulates resource usage into the [`UsageTrace`],
//! and releases newly-ready activities. Deterministic by construction.
//!
//! Two engines share this contract. [`Simulation::run`] is the partitioned
//! incremental scheduler ([`crate::sched`]): the DAG splits into connected
//! components over `dependency ∪ shared-resource` edges, each simulated
//! independently (optionally on scoped worker threads) with rates
//! recomputed only for activities transitively coupled to an arrival or
//! departure, and the next completion coming from a lazy-invalidation heap
//! instead of a scan. [`Simulation::run_reference`] is the straightforward
//! recompute-everything loop, kept as the oracle the incremental engine is
//! tested against.
//!
//! Small DAGs skip the incremental machinery: below
//! [`Simulation::DEFAULT_CUTOVER`] activities the per-event closure/heap
//! bookkeeping costs more than it saves, so [`Simulation::run`] dispatches
//! to the dense recompute loop there (tunable via
//! [`Simulation::with_cutover`]).

use std::fmt;

use crate::activity::{ActivityGraph, ActivityId, ActivityKind};
use crate::fault::{FaultClock, FaultEvent, FaultPlan};
use crate::resources::{assign_rates, demand, Demand, ResourceTable};
use crate::topology::{ClusterSpec, NodeId};
use crate::trace::{Channel, UsageTrace};

/// Simulated start/end of one activity, microseconds since job epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityResult {
    /// When the activity became runnable and started.
    pub start_us: f64,
    /// When it finished.
    pub end_us: f64,
}

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Some activities could never start (cyclic dependencies cannot occur
    /// with [`ActivityGraph::add`], so this indicates an internal error).
    Deadlock {
        /// Count of activities that never became ready.
        unstarted: usize,
    },
    /// Running activities all have zero rate (a zero-capacity resource).
    Stalled {
        /// Activity that could not progress.
        activity: ActivityId,
    },
    /// An activity references a node outside the cluster.
    UnknownNode {
        /// The offending node id.
        node: NodeId,
    },
    /// An activity became ready on a node that crashed with no restart
    /// scheduled in the [`FaultPlan`] — the work can never run.
    NodeLost {
        /// The dead node.
        node: NodeId,
        /// The activity that needed it.
        activity: ActivityId,
        /// Simulated time of the attempt, microseconds (rounded).
        at_us: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { unstarted } => {
                write!(
                    f,
                    "simulation deadlock: {unstarted} activities never started"
                )
            }
            SimError::Stalled { activity } => {
                write!(f, "activity {activity:?} stalled at rate 0")
            }
            SimError::UnknownNode { node } => write!(f, "unknown node {node:?}"),
            SimError::NodeLost {
                node,
                activity,
                at_us,
            } => {
                write!(
                    f,
                    "activity {activity:?} cannot run: node {node:?} was lost \
                     at t={at_us} µs (simulated) with no restart scheduled"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-activity timings, indexed by [`ActivityId`].
    pub results: Vec<ActivityResult>,
    /// End of the last activity, microseconds.
    pub makespan_us: f64,
    /// Per-node, per-second resource usage.
    pub trace: UsageTrace,
    /// Failures observed during the run (crashes, restarts, killed
    /// activities), in simulated-time order. Empty for a healthy run.
    pub faults: Vec<FaultEvent>,
}

impl SimResult {
    /// Timing of one activity.
    pub fn of(&self, id: ActivityId) -> ActivityResult {
        self.results[id.0 as usize]
    }

    /// `(min start, max end)` over all activities whose tag starts with
    /// `prefix` — the interval of a platform operation.
    pub fn span_of_tag(&self, graph: &ActivityGraph, prefix: &str) -> Option<(f64, f64)> {
        let mut span: Option<(f64, f64)> = None;
        for a in graph.tagged(prefix) {
            let r = self.of(a.id);
            span = Some(match span {
                None => (r.start_us, r.end_us),
                Some((lo, hi)) => (lo.min(r.start_us), hi.max(r.end_us)),
            });
        }
        span
    }
}

/// The engine. Construct with a cluster, then [`Simulation::run`] graphs.
#[derive(Debug, Clone)]
pub struct Simulation {
    cluster: ClusterSpec,
    cutover: usize,
    threads: Option<usize>,
}

struct Running {
    id: ActivityId,
    remaining: f64,
    demand: Demand,
    rate: f64,
}

impl Simulation {
    /// Activity count below which [`Simulation::run`] uses the dense
    /// recompute engine instead of the incremental one. Chosen from the
    /// `simulator_scale` bench sweep: the incremental engine's closure/heap
    /// bookkeeping only pays for itself above a few thousand activities
    /// (the seed engine was 1.3–1.5× *faster* on 651/3251-activity DAGs).
    pub const DEFAULT_CUTOVER: usize = 4096;

    /// Creates an engine over a cluster with the default small-DAG cutover
    /// and auto-detected thread count.
    pub fn new(cluster: ClusterSpec) -> Self {
        Simulation {
            cluster,
            cutover: Self::DEFAULT_CUTOVER,
            threads: None,
        }
    }

    /// Sets the activity count below which [`Simulation::run`] uses the
    /// dense engine. `0` forces the incremental engine for every size
    /// (useful for equivalence tests); `usize::MAX` forces the dense one.
    pub fn with_cutover(mut self, cutover: usize) -> Self {
        self.cutover = cutover;
        self
    }

    /// Sets the worker-thread budget for the partitioned engine. `1` is
    /// fully sequential; higher counts simulate independent components
    /// concurrently. Results are bit-identical for every value. Defaults to
    /// the machine's available parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// The cluster being simulated.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    fn thread_budget(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    fn check_nodes(&self, graph: &ActivityGraph) -> Result<(), SimError> {
        let n = self.cluster.len() as u16;
        let bad = |node: &NodeId| node.0 >= n;
        for a in graph.iter() {
            let offending = match a.kind {
                ActivityKind::Compute { node, .. }
                | ActivityKind::DiskRead { node, .. }
                | ActivityKind::DiskWrite { node, .. }
                | ActivityKind::SharedRead { node, .. } => bad(node).then_some(*node),
                ActivityKind::Transfer { src, dst, .. } => bad(src)
                    .then_some(*src)
                    .or_else(|| bad(dst).then_some(*dst)),
                _ => None,
            };
            if let Some(node) = offending {
                return Err(SimError::UnknownNode { node });
            }
        }
        Ok(())
    }

    fn check_plan(&self, plan: &FaultPlan) -> Result<(), SimError> {
        match plan.max_node() {
            Some(node) if node.0 as usize >= self.cluster.len() => {
                Err(SimError::UnknownNode { node })
            }
            _ => Ok(()),
        }
    }

    /// Executes the DAG; returns per-activity timings and the usage trace.
    ///
    /// Uses the partitioned incremental scheduler (see [`crate::sched`])
    /// above the cutover and the dense recompute engine below it; results
    /// agree with [`Simulation::run_reference`] up to floating-point noise
    /// and are bit-identical across repeated runs of the same input at any
    /// thread count.
    pub fn run(&self, graph: &ActivityGraph) -> Result<SimResult, SimError> {
        self.run_with_faults(graph, &FaultPlan::default())
    }

    /// Executes the DAG under a [`FaultPlan`]. See [`crate::fault`] for the
    /// fault semantics; an empty plan is bit-identical to
    /// [`Simulation::run`].
    pub fn run_with_faults(
        &self,
        graph: &ActivityGraph,
        plan: &FaultPlan,
    ) -> Result<SimResult, SimError> {
        self.check_nodes(graph)?;
        self.check_plan(plan)?;
        if graph.len() < self.cutover {
            self.run_dense(graph, plan)
        } else {
            crate::sched::run_partitioned(&self.cluster, graph, plan, self.thread_budget())
        }
    }

    /// Executes the DAG with the naive reference engine: every event
    /// re-runs progressive filling over *all* running activities and
    /// rescans them for the earliest completion.
    ///
    /// O(running) per event where [`Simulation::run`] touches only the
    /// affected component — kept as the oracle for equivalence tests and as
    /// the baseline for the scheduler benchmarks.
    pub fn run_reference(&self, graph: &ActivityGraph) -> Result<SimResult, SimError> {
        self.run_reference_with_faults(graph, &FaultPlan::default())
    }

    /// Executes the DAG under a [`FaultPlan`] with the reference engine —
    /// the oracle for [`Simulation::run_with_faults`]. Fault semantics are
    /// identical to the incremental engine: same kill instants, same
    /// parking, same capacity windows.
    pub fn run_reference_with_faults(
        &self,
        graph: &ActivityGraph,
        plan: &FaultPlan,
    ) -> Result<SimResult, SimError> {
        self.check_nodes(graph)?;
        self.check_plan(plan)?;
        self.run_dense(graph, plan)
    }

    /// The dense recompute loop shared by [`Simulation::run_reference`] and
    /// the small-DAG path of [`Simulation::run`]: every event re-runs
    /// progressive filling over all running activities. O(running) per
    /// event, but with near-zero bookkeeping — fastest below a few thousand
    /// activities.
    fn run_dense(&self, graph: &ActivityGraph, plan: &FaultPlan) -> Result<SimResult, SimError> {
        let n = graph.len();
        let mut table = ResourceTable::new(&self.cluster);
        let base_caps = table.caps.clone();
        let active = !plan.is_empty();
        let mut clock = FaultClock::new(plan, self.cluster.len());
        let mut faults: Vec<FaultEvent> = Vec::new();
        let mut parked: Vec<ActivityId> = Vec::new();
        let mut crashed_buf: Vec<NodeId> = Vec::new();
        let mut restarted_buf: Vec<NodeId> = Vec::new();
        let mut trace = UsageTrace::new(&self.cluster);
        let mut results = vec![
            ActivityResult {
                start_us: f64::NAN,
                end_us: f64::NAN
            };
            n
        ];

        // Dependency bookkeeping.
        let mut indeg = vec![0u32; n];
        let mut dependents: Vec<Vec<ActivityId>> = vec![Vec::new(); n];
        for a in graph.iter() {
            indeg[a.id.0 as usize] = a.deps.len() as u32;
            for d in a.deps {
                dependents[d.0 as usize].push(a.id);
            }
        }

        let mut ready: Vec<ActivityId> = graph
            .iter()
            .filter(|a| a.deps.is_empty())
            .map(|a| a.id)
            .collect();
        let mut running: Vec<Running> = Vec::new();
        let mut demands: Vec<Demand> = Vec::new();
        let mut wave = crate::sched::FlushWave::new(self.cluster.len());
        let mut done = 0usize;
        let mut now = 0.0f64;

        // Faults scheduled at t=0 take effect before anything starts, so
        // activities bound to a node that is dead from the outset park
        // instead of starting.
        if active && matches!(clock.next_boundary(), Some(b) if b <= 0.0) {
            let caps_changed = clock.advance(0.0, &mut crashed_buf, &mut restarted_buf);
            for &node in &restarted_buf {
                faults.push(FaultEvent::NodeRestarted { node, at_us: 0.0 });
            }
            for &node in &crashed_buf {
                faults.push(FaultEvent::NodeCrashed { node, at_us: 0.0 });
            }
            if caps_changed {
                clock.refresh_caps(&base_caps, &mut table.caps, 0.0);
            }
        }

        while done < n {
            // Start everything ready; zero-amount activities finish at once.
            // Under an active plan, activities bound to a down node park
            // until its restart (or fail the run if it never restarts).
            while let Some(id) = ready.pop() {
                let act = graph.get(id);
                if active {
                    if let Some(node) = clock.blocking_node(act.kind) {
                        if clock.has_pending_restart(node) {
                            parked.push(id);
                            continue;
                        }
                        return Err(SimError::NodeLost {
                            node,
                            activity: id,
                            at_us: now.round() as u64,
                        });
                    }
                }
                let amount = act.kind.amount();
                results[id.0 as usize].start_us = now;
                if amount <= 0.0 {
                    results[id.0 as usize].end_us = now;
                    done += 1;
                    for &dep in &dependents[id.0 as usize] {
                        indeg[dep.0 as usize] -= 1;
                        if indeg[dep.0 as usize] == 0 {
                            ready.push(dep);
                        }
                    }
                } else {
                    running.push(Running {
                        id,
                        remaining: amount,
                        demand: demand(&table, act.kind),
                        rate: 0.0,
                    });
                }
            }
            if done == n {
                break;
            }

            let boundary = if active { clock.next_boundary() } else { None };

            // Assign fair rates (`Demand` is `Copy`; the buffer is reused
            // across steps) and find the earliest completion. `running` may
            // be empty under an active plan — everything parked — in which
            // case the only way forward is the next fault boundary.
            let t1 = if running.is_empty() {
                f64::INFINITY
            } else {
                demands.clear();
                demands.extend(running.iter().map(|r| r.demand));
                let rates = assign_rates(&table, &demands);
                for (r, &rate) in running.iter_mut().zip(&rates) {
                    r.rate = rate;
                }
                let mut dt = f64::INFINITY;
                for r in &running {
                    if r.rate > 0.0 {
                        dt = dt.min(r.remaining / r.rate);
                    }
                }
                now + dt
            };

            // A completion at exactly a boundary instant wins (strict `<`),
            // matching the incremental engine.
            let at_boundary = matches!(boundary, Some(b) if b < t1);
            let step_to = if at_boundary { boundary.unwrap() } else { t1 };
            if !step_to.is_finite() {
                return if running.is_empty() {
                    Err(SimError::Deadlock {
                        unstarted: n - done,
                    })
                } else {
                    Err(SimError::Stalled {
                        activity: running[0].id,
                    })
                };
            }
            let dt = step_to - now;

            // Accumulate usage over [now, step_to), batched so each
            // (channel, node) pair gets one UsageTrace::add per step no
            // matter how many activities share it.
            for r in &running {
                let act = graph.get(r.id);
                match act.kind {
                    ActivityKind::Compute { node, .. } => {
                        wave.push(&mut trace, Channel::Cpu, *node, now, step_to, r.rate);
                    }
                    ActivityKind::DiskRead { node, .. } | ActivityKind::DiskWrite { node, .. } => {
                        wave.push(&mut trace, Channel::Disk, *node, now, step_to, r.rate);
                    }
                    ActivityKind::Transfer { src, dst, .. } => {
                        wave.push(&mut trace, Channel::NetOut, *src, now, step_to, r.rate);
                        wave.push(&mut trace, Channel::NetIn, *dst, now, step_to, r.rate);
                    }
                    ActivityKind::SharedRead { node, .. } => {
                        wave.push(&mut trace, Channel::NetIn, *node, now, step_to, r.rate);
                    }
                    ActivityKind::Delay { .. } | ActivityKind::Barrier => {}
                }
            }
            wave.flush_all(&mut trace, step_to);

            now = step_to;
            // Progress and complete.
            let mut i = 0;
            while i < running.len() {
                let r = &mut running[i];
                r.remaining -= r.rate * dt;
                let eps = 1e-6 * graph.get(r.id).kind.amount().max(1.0);
                if r.remaining <= eps {
                    let id = r.id;
                    results[id.0 as usize].end_us = now;
                    done += 1;
                    running.swap_remove(i);
                    for &dep in &dependents[id.0 as usize] {
                        indeg[dep.0 as usize] -= 1;
                        if indeg[dep.0 as usize] == 0 {
                            ready.push(dep);
                        }
                    }
                } else {
                    i += 1;
                }
            }

            if at_boundary {
                crashed_buf.clear();
                restarted_buf.clear();
                let caps_changed = clock.advance(now, &mut crashed_buf, &mut restarted_buf);
                for &node in &restarted_buf {
                    faults.push(FaultEvent::NodeRestarted { node, at_us: now });
                }
                for &node in &crashed_buf {
                    faults.push(FaultEvent::NodeCrashed { node, at_us: now });
                }
                if !crashed_buf.is_empty() {
                    // Kill every in-flight activity touching a down node:
                    // forced completion at the crash instant, dependents
                    // released. Killed in ActivityId order for determinism.
                    let mut killed: Vec<(ActivityId, NodeId)> = running
                        .iter()
                        .filter_map(|r| {
                            clock
                                .blocking_node(graph.get(r.id).kind)
                                .map(|node| (r.id, node))
                        })
                        .collect();
                    killed.sort_by_key(|&(id, _)| id.0);
                    for &(id, node) in &killed {
                        results[id.0 as usize].end_us = now;
                        done += 1;
                        faults.push(FaultEvent::ActivityKilled {
                            activity: id,
                            node,
                            at_us: now,
                        });
                        for &dep in &dependents[id.0 as usize] {
                            indeg[dep.0 as usize] -= 1;
                            if indeg[dep.0 as usize] == 0 {
                                ready.push(dep);
                            }
                        }
                    }
                    running.retain(|r| clock.blocking_node(graph.get(r.id).kind).is_none());
                }
                if !crashed_buf.is_empty() || !restarted_buf.is_empty() {
                    // Re-examine parked activities: a restarted node frees
                    // them; a node that lost its last pending restart is
                    // gone for good.
                    let mut kept = 0;
                    for i in 0..parked.len() {
                        let id = parked[i];
                        match clock.blocking_node(graph.get(id).kind) {
                            None => ready.push(id),
                            Some(node) => {
                                if !clock.has_pending_restart(node) {
                                    return Err(SimError::NodeLost {
                                        node,
                                        activity: id,
                                        at_us: now.round() as u64,
                                    });
                                }
                                parked[kept] = id;
                                kept += 1;
                            }
                        }
                    }
                    parked.truncate(kept);
                }
                if caps_changed {
                    clock.refresh_caps(&base_caps, &mut table.caps, now);
                }
            }
        }

        let makespan_us = results.iter().map(|r| r.end_us).fold(0.0, f64::max);
        Ok(SimResult {
            results,
            makespan_us,
            trace,
            faults,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeSpec;

    fn cluster(nodes: u16) -> ClusterSpec {
        ClusterSpec::homogeneous(
            nodes,
            NodeSpec {
                name: String::new(),
                cores: 8,
                disk_bps: 100e6, // 100 bytes/µs
                nic_bps: 10e6,   // 10 bytes/µs
                mem_bytes: 1 << 30,
            },
        )
    }

    #[test]
    fn empty_graph_runs_to_zero_makespan() {
        let sim = Simulation::new(cluster(1));
        let res = sim.run(&ActivityGraph::new()).unwrap();
        assert_eq!(res.makespan_us, 0.0);
    }

    #[test]
    fn delay_takes_its_duration() {
        let sim = Simulation::new(cluster(1));
        let mut g = ActivityGraph::new();
        g.add(
            ActivityKind::Delay {
                duration_us: 1234.0,
            },
            &[],
            "d",
        );
        let res = sim.run(&g).unwrap();
        assert!((res.makespan_us - 1234.0).abs() < 1e-6);
    }

    #[test]
    fn compute_duration_is_work_over_cores() {
        let sim = Simulation::new(cluster(1));
        let mut g = ActivityGraph::new();
        // 8e6 core-µs on 8 cores -> 1e6 µs.
        g.add(
            ActivityKind::Compute {
                node: NodeId(0),
                work_core_us: 8e6,
                parallelism: 8,
            },
            &[],
            "c",
        );
        let res = sim.run(&g).unwrap();
        assert!((res.makespan_us - 1e6).abs() < 1.0);
        // Trace shows 8 busy cores for the one-second bucket.
        let s = res.trace.series(Channel::Cpu, NodeId(0));
        assert!((s[0].1 - 8.0).abs() < 1e-3, "{s:?}");
    }

    #[test]
    fn dependency_chains_serialize() {
        let sim = Simulation::new(cluster(1));
        let mut g = ActivityGraph::new();
        let a = g.add(ActivityKind::Delay { duration_us: 100.0 }, &[], "a");
        let b = g.add(ActivityKind::Delay { duration_us: 50.0 }, &[a], "b");
        let res = sim.run(&g).unwrap();
        assert!((res.of(a).end_us - 100.0).abs() < 1e-6);
        assert!((res.of(b).start_us - 100.0).abs() < 1e-6);
        assert!((res.of(b).end_us - 150.0).abs() < 1e-6);
    }

    #[test]
    fn contending_compute_slows_down() {
        let sim = Simulation::new(cluster(1));
        let mut g = ActivityGraph::new();
        // Two 8-way activities on one 8-core node: each effectively gets 4
        // cores -> both take 2e6 µs for 8e6 core-µs.
        for i in 0..2 {
            g.add(
                ActivityKind::Compute {
                    node: NodeId(0),
                    work_core_us: 8e6,
                    parallelism: 8,
                },
                &[],
                format!("c{i}"),
            );
        }
        let res = sim.run(&g).unwrap();
        assert!((res.makespan_us - 2e6).abs() < 10.0, "{}", res.makespan_us);
    }

    #[test]
    fn transfer_throughput_follows_nic() {
        let sim = Simulation::new(cluster(2));
        let mut g = ActivityGraph::new();
        // 10e6 bytes over a 10 bytes/µs NIC -> 1e6 µs.
        g.add(
            ActivityKind::Transfer {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 10e6,
            },
            &[],
            "t",
        );
        let res = sim.run(&g).unwrap();
        assert!((res.makespan_us - 1e6).abs() < 1.0);
        // Both NIC directions traced.
        assert!((res.trace.series(Channel::NetOut, NodeId(0))[0].1 - 1e7).abs() < 1e3);
        assert!((res.trace.series(Channel::NetIn, NodeId(1))[0].1 - 1e7).abs() < 1e3);
    }

    #[test]
    fn barrier_joins_parallel_branches() {
        let sim = Simulation::new(cluster(2));
        let mut g = ActivityGraph::new();
        let a = g.add(ActivityKind::Delay { duration_us: 100.0 }, &[], "a");
        let b = g.add(ActivityKind::Delay { duration_us: 300.0 }, &[], "b");
        let j = g.barrier(&[a, b], "join");
        let c = g.add(ActivityKind::Delay { duration_us: 10.0 }, &[j], "c");
        let res = sim.run(&g).unwrap();
        assert!((res.of(j).end_us - 300.0).abs() < 1e-6);
        assert!((res.of(c).end_us - 310.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_node_rejected() {
        let sim = Simulation::new(cluster(1));
        let mut g = ActivityGraph::new();
        g.add(
            ActivityKind::DiskRead {
                node: NodeId(7),
                bytes: 1.0,
            },
            &[],
            "x",
        );
        match sim.run(&g) {
            Err(SimError::UnknownNode { node }) => assert_eq!(node, NodeId(7)),
            other => panic!("expected UnknownNode, got {other:?}"),
        }
    }

    #[test]
    fn span_of_tag_covers_group() {
        let sim = Simulation::new(cluster(1));
        let mut g = ActivityGraph::new();
        let a = g.add(ActivityKind::Delay { duration_us: 100.0 }, &[], "load/a");
        g.add(ActivityKind::Delay { duration_us: 250.0 }, &[a], "load/b");
        g.add(ActivityKind::Delay { duration_us: 40.0 }, &[], "other");
        let res = sim.run(&g).unwrap();
        let (s, e) = res.span_of_tag(&g, "load").unwrap();
        assert_eq!(s, 0.0);
        assert!((e - 350.0).abs() < 1e-6);
        assert!(res.span_of_tag(&g, "nope").is_none());
    }

    #[test]
    fn zero_byte_reads_complete_instantly() {
        let sim = Simulation::new(cluster(1));
        let mut g = ActivityGraph::new();
        g.add(
            ActivityKind::DiskRead {
                node: NodeId(0),
                bytes: 0.0,
            },
            &[],
            "z",
        );
        let res = sim.run(&g).unwrap();
        assert_eq!(res.makespan_us, 0.0);
    }

    #[test]
    fn reference_engine_agrees_with_incremental() {
        // A mixed DAG exercising contention, fan-in, and chained phases on
        // a 3-node cluster; both engines must tell the same story.
        let sim = Simulation::new(cluster(3));
        let mut g = ActivityGraph::new();
        let mut loads = Vec::new();
        for node in 0..3u16 {
            let r = g.add(
                ActivityKind::DiskRead {
                    node: NodeId(node),
                    bytes: 3e6 + node as f64 * 1e6,
                },
                &[],
                format!("load/{node}"),
            );
            loads.push(r);
        }
        let join = g.barrier(&loads, "join");
        let mut computes = Vec::new();
        for node in 0..3u16 {
            for k in 0..4 {
                computes.push(g.add(
                    ActivityKind::Compute {
                        node: NodeId(node),
                        work_core_us: 1e6 * (1.0 + k as f64),
                        parallelism: 4,
                    },
                    &[join],
                    format!("proc/{node}/{k}"),
                ));
            }
        }
        let sync = g.barrier(&computes, "sync");
        g.add(
            ActivityKind::Transfer {
                src: NodeId(0),
                dst: NodeId(2),
                bytes: 5e6,
            },
            &[sync],
            "ship",
        );
        let a = sim.run(&g).unwrap();
        let b = sim.run_reference(&g).unwrap();
        assert!(
            (a.makespan_us - b.makespan_us).abs() <= 1e-6 * b.makespan_us,
            "{} vs {}",
            a.makespan_us,
            b.makespan_us
        );
        for (x, y) in a.results.iter().zip(&b.results) {
            assert!((x.start_us - y.start_us).abs() <= 1e-6 * y.start_us.max(1.0));
            assert!((x.end_us - y.end_us).abs() <= 1e-6 * y.end_us.max(1.0));
        }
        // Bitwise determinism of the incremental engine.
        let a2 = sim.run(&g).unwrap();
        assert_eq!(a.makespan_us.to_bits(), a2.makespan_us.to_bits());
        for (x, y) in a.results.iter().zip(&a2.results) {
            assert_eq!(x.start_us.to_bits(), y.start_us.to_bits());
            assert_eq!(x.end_us.to_bits(), y.end_us.to_bits());
        }
    }

    #[test]
    fn crash_kills_in_flight_work_in_both_engines() {
        // A 1e6-µs compute on node 1 is killed by a crash at 4e5; its
        // dependent (a delay) is released at the crash instant.
        let mut g = ActivityGraph::new();
        let c = g.add(
            ActivityKind::Compute {
                node: NodeId(1),
                work_core_us: 8e6,
                parallelism: 8,
            },
            &[],
            "c",
        );
        g.add(ActivityKind::Delay { duration_us: 100.0 }, &[c], "after");
        let plan = FaultPlan::new().crash(NodeId(1), 4e5);
        let sim = Simulation::new(cluster(2));
        for res in [
            sim.run_with_faults(&g, &plan).unwrap(),
            sim.run_reference_with_faults(&g, &plan).unwrap(),
        ] {
            assert!((res.of(c).end_us - 4e5).abs() < 1e-6, "{:?}", res.of(c));
            assert!((res.makespan_us - 4e5 - 100.0).abs() < 1e-6);
            assert!(res.faults.iter().any(|f| matches!(
                f,
                FaultEvent::ActivityKilled { activity, node, .. }
                    if *activity == c && *node == NodeId(1)
            )));
        }
    }

    #[test]
    fn ready_work_parks_until_restart() {
        // Node 0 is down over [0, 5e5); a compute ready at t=0 must wait
        // for the replacement and then run at full speed.
        let mut g = ActivityGraph::new();
        let c = g.add(
            ActivityKind::Compute {
                node: NodeId(0),
                work_core_us: 8e5,
                parallelism: 8,
            },
            &[],
            "c",
        );
        let plan = FaultPlan::new().crash_with_restart(NodeId(0), 0.0, 5e5);
        let sim = Simulation::new(cluster(1));
        for res in [
            sim.run_with_faults(&g, &plan).unwrap(),
            sim.run_reference_with_faults(&g, &plan).unwrap(),
        ] {
            assert!((res.of(c).start_us - 5e5).abs() < 1e-6, "{:?}", res.of(c));
            assert!((res.makespan_us - 6e5).abs() < 1.0, "{}", res.makespan_us);
        }
    }

    #[test]
    fn permanent_loss_is_an_error_with_timestamp() {
        let mut g = ActivityGraph::new();
        let gate = g.add(ActivityKind::Delay { duration_us: 300.0 }, &[], "gate");
        g.add(
            ActivityKind::DiskRead {
                node: NodeId(0),
                bytes: 1e6,
            },
            &[gate],
            "read",
        );
        let plan = FaultPlan::new().crash(NodeId(0), 100.0);
        let sim = Simulation::new(cluster(1));
        for res in [
            sim.run_with_faults(&g, &plan),
            sim.run_reference_with_faults(&g, &plan),
        ] {
            match res {
                Err(SimError::NodeLost { node, at_us, .. }) => {
                    assert_eq!(node, NodeId(0));
                    assert_eq!(at_us, 300);
                }
                other => panic!("expected NodeLost, got {other:?}"),
            }
        }
        let msg = SimError::NodeLost {
            node: NodeId(0),
            activity: ActivityId(1),
            at_us: 300,
        }
        .to_string();
        assert!(msg.contains("t=300"), "{msg}");
    }

    #[test]
    fn slowdown_window_stretches_work() {
        // Disk at half speed over the whole read: 1e6 bytes at an effective
        // 50 bytes/µs take 2e4 µs instead of 1e4.
        let mut g = ActivityGraph::new();
        g.add(
            ActivityKind::DiskRead {
                node: NodeId(0),
                bytes: 1e6,
            },
            &[],
            "r",
        );
        let plan = FaultPlan::new().slow(
            NodeId(0),
            crate::fault::DegradedChannel::Disk,
            0.0,
            1e9,
            0.5,
        );
        let sim = Simulation::new(cluster(1));
        for res in [
            sim.run_with_faults(&g, &plan).unwrap(),
            sim.run_reference_with_faults(&g, &plan).unwrap(),
        ] {
            assert!((res.makespan_us - 2e4).abs() < 10.0, "{}", res.makespan_us);
        }
    }

    #[test]
    fn empty_plan_is_bit_identical_to_run() {
        let sim = Simulation::new(cluster(2));
        let mut g = ActivityGraph::new();
        let a = g.add(
            ActivityKind::DiskRead {
                node: NodeId(0),
                bytes: 3e6,
            },
            &[],
            "a",
        );
        g.add(
            ActivityKind::Transfer {
                src: NodeId(0),
                dst: NodeId(1),
                bytes: 2e6,
            },
            &[a],
            "b",
        );
        let healthy = sim.run(&g).unwrap();
        let planned = sim.run_with_faults(&g, &FaultPlan::new()).unwrap();
        assert_eq!(healthy.makespan_us.to_bits(), planned.makespan_us.to_bits());
        for (x, y) in healthy.results.iter().zip(&planned.results) {
            assert_eq!(x.start_us.to_bits(), y.start_us.to_bits());
            assert_eq!(x.end_us.to_bits(), y.end_us.to_bits());
        }
        assert!(planned.faults.is_empty());
    }

    #[test]
    fn plan_referencing_unknown_node_rejected() {
        let sim = Simulation::new(cluster(2));
        let g = ActivityGraph::new();
        let plan = FaultPlan::new().crash(NodeId(9), 1.0);
        match sim.run_with_faults(&g, &plan) {
            Err(SimError::UnknownNode { node }) => assert_eq!(node, NodeId(9)),
            other => panic!("expected UnknownNode, got {other:?}"),
        }
    }

    #[test]
    fn straggler_determines_makespan() {
        // Fair sharing: 3 disk readers on one 100 bytes/µs disk. Two small
        // (1e6 B), one large (98e6 B). Small ones finish, then the large one
        // gets the full bandwidth.
        let sim = Simulation::new(cluster(1));
        let mut g = ActivityGraph::new();
        for (i, b) in [1e6, 1e6, 98e6].into_iter().enumerate() {
            g.add(
                ActivityKind::DiskRead {
                    node: NodeId(0),
                    bytes: b,
                },
                &[],
                format!("r{i}"),
            );
        }
        let res = sim.run(&g).unwrap();
        // Total bytes 100e6 at aggregate 100 B/µs -> exactly 1e6 µs since the
        // disk is never idle.
        assert!((res.makespan_us - 1e6).abs() < 10.0, "{}", res.makespan_us);
    }
}
