//! Stress and property tests for the arena-backed activity storage and the
//! global string interner — the structures the full-scale (dg1000-volume)
//! experiments lean on.

use gpsim_cluster::{ActivityGraph, ActivityId, ActivityKind, NodeId, Symbol};
use proptest::prelude::*;

/// A million-activity graph builds, indexes, and iterates correctly. This
/// is the dg1000-full construction shape: long per-worker chains stitched
/// by barriers, with heavily shared tag text.
#[test]
fn arena_holds_a_million_activities() {
    const WORKERS: u32 = 8;
    const STEPS: u32 = 160_000; // 8 workers × 160k steps ≈ 1.28M activities

    let mut g = ActivityGraph::with_capacity(
        (WORKERS * STEPS + STEPS) as usize,
        (WORKERS * STEPS * 2) as usize,
    );
    let mut prev: Vec<Option<ActivityId>> = vec![None; WORKERS as usize];
    let mut last_barrier: Option<ActivityId> = None;
    for step in 0..STEPS {
        let mut layer = Vec::with_capacity(WORKERS as usize);
        for w in 0..WORKERS {
            let mut deps = Vec::new();
            if let Some(p) = prev[w as usize] {
                deps.push(p);
            }
            if let Some(b) = last_barrier {
                deps.push(b);
            }
            let id = g.add(
                ActivityKind::Compute {
                    node: NodeId(w as u16),
                    work_core_us: 1.0 + (step % 7) as f64,
                    parallelism: 1,
                },
                &deps,
                // Tag text repeats across steps: interning must dedupe it.
                if w % 2 == 0 {
                    "worker/even"
                } else {
                    "worker/odd"
                },
            );
            prev[w as usize] = Some(id);
            layer.push(id);
        }
        if step % 1000 == 999 {
            last_barrier = Some(g.barrier(&layer, "superstep/barrier"));
        }
    }

    assert!(g.len() > 1_000_000, "only {} activities", g.len());
    assert_eq!(g.iter().count(), g.len());

    // Spot-check structural integrity across the arena.
    let mid = ActivityId((g.len() / 2) as u32);
    for d in g.deps_of(mid) {
        assert!(d.0 < mid.0, "dependency {d:?} not before {mid:?}");
    }
    assert!(matches!(
        g.kind_of(mid),
        ActivityKind::Compute { .. } | ActivityKind::Barrier
    ));

    // Tag interning: three distinct strings total, shared by all activities.
    let even = Symbol::intern("worker/even");
    let odd = Symbol::intern("worker/odd");
    let bar = Symbol::intern("superstep/barrier");
    assert!(g.iter().all(|a| {
        let t = a.tag_symbol();
        t == even || t == odd || t == bar
    }));
    assert_eq!(g.tagged("superstep/").count(), (STEPS / 1000) as usize);

    // Every dependency edge lands in the flat CSR pool exactly once.
    let edges: usize = g.iter().map(|a| a.deps.len()).sum();
    assert_eq!(edges, g.dep_count());
}

proptest! {
    /// Interning is a bijection for the life of the process: any string
    /// round-trips through its symbol, and symbol equality tracks string
    /// equality.
    #[test]
    fn interner_round_trips(a in ".{0,40}", b in ".{0,40}") {
        let sa = Symbol::intern(&a);
        let sb = Symbol::intern(&b);
        prop_assert_eq!(sa.as_str(), a.as_str());
        prop_assert_eq!(sb.as_str(), b.as_str());
        prop_assert_eq!(sa == sb, a == b);
        // Re-interning is idempotent.
        prop_assert_eq!(Symbol::intern(&a), sa);
    }

    /// Graphs survive a serde round trip: same kinds, deps, and tag text
    /// (symbols serialize as text, so this also crosses the interner).
    #[test]
    fn graph_serde_round_trips(
        specs in proptest::collection::vec((0u8..3, ".{0,12}", 1.0f64..1e6), 0..20),
    ) {
        let mut g = ActivityGraph::new();
        for (i, (sel, tag, amount)) in specs.iter().enumerate() {
            let deps: Vec<ActivityId> = if i == 0 {
                Vec::new()
            } else {
                vec![ActivityId((i - 1) as u32)]
            };
            let kind = match sel {
                0 => ActivityKind::Compute {
                    node: NodeId(0),
                    work_core_us: *amount,
                    parallelism: 2,
                },
                1 => ActivityKind::DiskRead {
                    node: NodeId(0),
                    bytes: *amount,
                },
                _ => ActivityKind::Barrier,
            };
            g.add(kind, &deps, tag.as_str());
        }
        let json = serde_json::to_string(&g).unwrap();
        let back: ActivityGraph = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.len(), g.len());
        prop_assert_eq!(back.dep_count(), g.dep_count());
        for (x, y) in g.iter().zip(back.iter()) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.deps, y.deps);
            prop_assert_eq!(x.tag(), y.tag());
            prop_assert_eq!(format!("{:?}", x.kind), format!("{:?}", y.kind));
        }
    }
}
