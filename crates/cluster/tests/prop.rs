//! Property-based tests of the simulator's physical invariants: dependency
//! ordering, work conservation, fair-sharing bounds.

use proptest::prelude::*;

use gpsim_cluster::trace::Channel;
use gpsim_cluster::{
    ActivityGraph, ActivityId, ActivityKind, ClusterSpec, NodeId, NodeSpec, Simulation,
};

fn cluster(nodes: u16, cores: u32) -> ClusterSpec {
    ClusterSpec::homogeneous(
        nodes,
        NodeSpec {
            name: String::new(),
            cores,
            disk_bps: 100e6,
            nic_bps: 50e6,
            mem_bytes: 1 << 30,
        },
    )
}

/// A random layered DAG spec: per activity `(layer_links, kind_pick, size)`.
type DagSpec = Vec<(u8, u8, u32)>;

fn build_dag(spec: &DagSpec, nodes: u16) -> ActivityGraph {
    let mut g = ActivityGraph::new();
    let mut prev_layer: Vec<ActivityId> = Vec::new();
    let mut cur_layer: Vec<ActivityId> = Vec::new();
    for (i, &(links, kind_pick, size)) in spec.iter().enumerate() {
        // Start a new layer every 5 activities.
        if i % 5 == 0 && !cur_layer.is_empty() {
            prev_layer = std::mem::take(&mut cur_layer);
        }
        let deps: Vec<ActivityId> = prev_layer
            .iter()
            .enumerate()
            .filter(|&(j, _)| links & (1 << (j % 8)) != 0)
            .map(|(_, &id)| id)
            .collect();
        let node = NodeId((i % nodes as usize) as u16);
        let other = NodeId(((i + 1) % nodes as usize) as u16);
        let amount = 1.0 + size as f64;
        let kind = match kind_pick % 5 {
            0 => ActivityKind::Compute {
                node,
                work_core_us: amount,
                parallelism: 1 + (size % 8),
            },
            1 => ActivityKind::DiskRead {
                node,
                bytes: amount,
            },
            2 => ActivityKind::Transfer {
                src: node,
                dst: other,
                bytes: amount,
            },
            3 => ActivityKind::Delay {
                duration_us: amount,
            },
            _ => ActivityKind::SharedRead {
                node,
                bytes: amount,
            },
        };
        cur_layer.push(g.add(kind, &deps, format!("a{i}")));
    }
    g
}

proptest! {
    /// Every simulated activity respects its dependencies and has a
    /// non-negative duration; the makespan is the max end time.
    #[test]
    fn dependencies_and_makespan(spec in prop::collection::vec((any::<u8>(), any::<u8>(), 0u32..1_000_000), 1..40)) {
        let g = build_dag(&spec, 4);
        let sim = Simulation::new(cluster(4, 8));
        let res = sim.run(&g).expect("layered DAGs are acyclic");
        let mut max_end = 0.0f64;
        for a in g.iter() {
            let r = res.of(a.id);
            prop_assert!(r.end_us >= r.start_us, "negative duration");
            prop_assert!(r.start_us >= 0.0);
            max_end = max_end.max(r.end_us);
            for d in a.deps {
                prop_assert!(
                    res.of(*d).end_us <= r.start_us + 1e-6,
                    "activity started before its dependency finished"
                );
            }
        }
        prop_assert!((res.makespan_us - max_end).abs() < 1e-6);
    }

    /// Work conservation: total CPU core-seconds in the trace equal the
    /// total compute work submitted (within a sampling tolerance).
    #[test]
    fn cpu_work_is_conserved(works in prop::collection::vec(1.0e5f64..5.0e6, 1..20)) {
        let mut g = ActivityGraph::new();
        for (i, w) in works.iter().enumerate() {
            g.add(
                ActivityKind::Compute {
                    node: NodeId((i % 2) as u16),
                    work_core_us: *w,
                    parallelism: 1 + (i as u32 % 4),
                },
                &[],
                format!("c{i}"),
            );
        }
        let sim = Simulation::new(cluster(2, 8));
        let res = sim.run(&g).expect("independent activities");
        let traced: f64 = res
            .trace
            .cumulative(Channel::Cpu)
            .into_iter()
            .map(|(_, v)| v)
            .sum();
        let submitted: f64 = works.iter().sum::<f64>() / 1e6; // core-seconds
        prop_assert!(
            (traced - submitted).abs() <= 0.01 * submitted.max(1.0),
            "traced {traced} vs submitted {submitted}"
        );
    }

    /// A node's CPU trace never exceeds its core count per second.
    #[test]
    fn cpu_capacity_respected(works in prop::collection::vec(1.0e6f64..1.0e7, 1..16)) {
        let mut g = ActivityGraph::new();
        for (i, w) in works.iter().enumerate() {
            g.add(
                ActivityKind::Compute { node: NodeId(0), work_core_us: *w, parallelism: 32 },
                &[],
                format!("c{i}"),
            );
        }
        let sim = Simulation::new(cluster(1, 8));
        let res = sim.run(&g).expect("independent activities");
        for (_, v) in res.trace.series(Channel::Cpu, NodeId(0)) {
            prop_assert!(v <= 8.0 + 1e-6, "bucket exceeds core capacity: {v}");
        }
    }

    /// Saturated single-core workloads finish in exactly total-work time.
    #[test]
    fn serialized_work_takes_total_time(works in prop::collection::vec(1.0e3f64..1.0e6, 1..10)) {
        // parallelism 1 activities on a 1-core node serialize perfectly
        // under fair sharing (they share the core, total time = total work).
        let mut g = ActivityGraph::new();
        for (i, w) in works.iter().enumerate() {
            g.add(
                ActivityKind::Compute { node: NodeId(0), work_core_us: *w, parallelism: 1 },
                &[],
                format!("c{i}"),
            );
        }
        let sim = Simulation::new(cluster(1, 1));
        let res = sim.run(&g).expect("independent activities");
        let total: f64 = works.iter().sum();
        prop_assert!((res.makespan_us - total).abs() < 1e-3 * total, "{} vs {total}", res.makespan_us);
    }

    /// Transfers move their bytes: NIC-out trace totals match submitted bytes.
    #[test]
    fn transfer_bytes_conserved(bytes in prop::collection::vec(1.0e5f64..1.0e7, 1..12)) {
        let mut g = ActivityGraph::new();
        for (i, b) in bytes.iter().enumerate() {
            g.add(
                ActivityKind::Transfer { src: NodeId(0), dst: NodeId(1), bytes: *b },
                &[],
                format!("t{i}"),
            );
        }
        let sim = Simulation::new(cluster(2, 4));
        let res = sim.run(&g).expect("independent transfers");
        let traced: f64 = res
            .trace
            .series(Channel::NetOut, NodeId(0))
            .into_iter()
            .map(|(_, v)| v)
            .sum();
        let submitted: f64 = bytes.iter().sum();
        prop_assert!((traced - submitted).abs() <= 0.01 * submitted, "{traced} vs {submitted}");
    }

    /// Determinism: identical DAGs simulate to identical results.
    #[test]
    fn simulation_deterministic(spec in prop::collection::vec((any::<u8>(), any::<u8>(), 0u32..100_000), 1..25)) {
        let g = build_dag(&spec, 3);
        let sim = Simulation::new(cluster(3, 8));
        let a = sim.run(&g).expect("acyclic");
        let b = sim.run(&g).expect("acyclic");
        prop_assert_eq!(a.makespan_us, b.makespan_us);
        for act in g.iter() {
            prop_assert_eq!(a.of(act.id), b.of(act.id));
        }
    }
}
