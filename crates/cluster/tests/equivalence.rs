//! Property tests: the incremental scheduler ([`Simulation::run`]) against
//! the naive reference engine ([`Simulation::run_reference`]).
//!
//! Random DAGs over heterogeneous clusters must produce the same
//! per-activity timings, makespan, and usage traces from both engines (up
//! to floating-point noise: the engines accumulate remaining work in
//! different orders), and the incremental engine must be bit-identical
//! across repeated runs of the same input.

use gpsim_cluster::trace::Channel;
use gpsim_cluster::{
    ActivityGraph, ActivityId, ActivityKind, ClusterSpec, DegradedChannel, FaultPlan, NodeId,
    NodeSpec, SimError, Simulation,
};
use proptest::prelude::*;

/// Relative tolerance for cross-engine comparison. The engines compute the
/// same progressive-filling fixpoints but account remaining work in a
/// different order (per-step subtraction vs lazy re-anchoring), so times
/// agree only up to accumulated rounding.
const REL: f64 = 1e-6;

fn close(x: f64, y: f64) -> bool {
    (x - y).abs() <= REL * x.abs().max(y.abs()).max(1.0)
}

/// One randomly-drawn scenario: a heterogeneous cluster plus a DAG.
#[derive(Debug, Clone)]
struct World {
    cluster: ClusterSpec,
    graph: ActivityGraph,
}

type RawAct = (u8, u16, u16, f64, u32, Vec<u32>);

fn build_world(nodes: Vec<(u32, f64, f64)>, acts: Vec<RawAct>) -> World {
    let n = nodes.len() as u16;
    let cluster = ClusterSpec {
        nodes: nodes
            .into_iter()
            .enumerate()
            .map(|(i, (cores, disk_bps, nic_bps))| NodeSpec {
                name: format!("n{i}"),
                cores,
                disk_bps,
                nic_bps,
                mem_bytes: 1 << 30,
            })
            .collect(),
        // Deliberately small so SharedRead activities contend on the server.
        shared_fs_bps: 5.0e7,
    };
    let mut graph = ActivityGraph::new();
    for (i, (sel, a, b, amount, par, deps)) in acts.into_iter().enumerate() {
        let deps: Vec<ActivityId> = if i == 0 {
            Vec::new()
        } else {
            deps.into_iter().map(|d| ActivityId(d % i as u32)).collect()
        };
        let na = NodeId(a % n);
        let nb = NodeId(b % n);
        let kind = match sel {
            0 => ActivityKind::Compute {
                node: na,
                work_core_us: amount,
                parallelism: par,
            },
            1 => ActivityKind::DiskRead {
                node: na,
                bytes: amount,
            },
            2 => ActivityKind::DiskWrite {
                node: na,
                bytes: amount,
            },
            // May draw src == dst: the instant-completion path.
            3 => ActivityKind::Transfer {
                src: na,
                dst: nb,
                bytes: amount,
            },
            4 => ActivityKind::SharedRead {
                node: na,
                bytes: amount,
            },
            5 => ActivityKind::Delay {
                duration_us: amount / 100.0,
            },
            _ => ActivityKind::Barrier,
        };
        graph.add(kind, &deps, format!("k{sel}/{i}"));
    }
    World { cluster, graph }
}

fn arb_world() -> impl Strategy<Value = World> {
    let node = (1u32..=8, 1.0e6f64..4.0e8, 1.0e6f64..1.0e8);
    let act = (
        0u8..7,
        any::<u16>(),
        any::<u16>(),
        prop_oneof![
            1 => Just(0.0f64),
            9 => 1.0f64..3.0e6,
        ],
        1u32..=8,
        proptest::collection::vec(any::<u32>(), 0..=3),
    );
    (
        proptest::collection::vec(node, 1..=4),
        proptest::collection::vec(act, 0..=40),
    )
        .prop_map(|(nodes, acts)| build_world(nodes, acts))
}

/// Raw draw for one fault plan: a crash (node selector, time, optional
/// restart delay) plus up to two slowdown windows.
type RawPlan = (u16, f64, Option<f64>, Vec<(u16, u8, f64, f64, f64)>);

fn arb_raw_plan() -> impl Strategy<Value = RawPlan> {
    (
        any::<u16>(),
        1.0f64..3.0e6,
        proptest::option::of(1.0e5f64..1.0e6),
        proptest::collection::vec(
            (
                any::<u16>(),
                0u8..4,
                1.0f64..2.4e6,
                1.0e5f64..1.0e6,
                0.1f64..1.0,
            ),
            0..=2,
        ),
    )
}

/// Instantiates a raw plan against a concrete cluster size.
fn build_plan(raw: RawPlan, nodes: u16) -> FaultPlan {
    let (crash_sel, at, restart, slows) = raw;
    let mut plan = match restart {
        Some(r) => FaultPlan::new().crash_with_restart(NodeId(crash_sel % nodes), at, r),
        None => FaultPlan::new().crash(NodeId(crash_sel % nodes), at),
    };
    for (sel, ch, from, len, factor) in slows {
        let channel = match ch {
            0 => DegradedChannel::Cpu,
            1 => DegradedChannel::Disk,
            2 => DegradedChannel::Nic,
            _ => DegradedChannel::All,
        };
        plan = plan.slow(NodeId(sel % nodes), channel, from, from + len, factor);
    }
    plan
}

/// Pads the shorter series with zeros; engines may disagree on whether the
/// final event grazes a new bucket.
fn series_close(a: &[(u64, f64)], b: &[(u64, f64)]) -> bool {
    let len = a.len().max(b.len());
    (0..len).all(|i| {
        let x = a.get(i).map_or(0.0, |&(_, v)| v);
        let y = b.get(i).map_or(0.0, |&(_, v)| v);
        close(x, y)
    })
}

proptest! {
    /// The incremental engine reproduces the reference engine's timings,
    /// makespan, and traces on arbitrary DAG × cluster combinations.
    #[test]
    fn incremental_matches_reference(w in arb_world()) {
        let sim = Simulation::new(w.cluster.clone());
        let inc = sim.run(&w.graph);
        let reference = sim.run_reference(&w.graph);
        match (inc, reference) {
            (Ok(inc), Ok(reference)) => {
                prop_assert!(
                    close(inc.makespan_us, reference.makespan_us),
                    "makespan {} vs {}", inc.makespan_us, reference.makespan_us
                );
                for (id, (x, y)) in inc.results.iter().zip(&reference.results).enumerate() {
                    prop_assert!(
                        close(x.start_us, y.start_us),
                        "act {id} start {} vs {}", x.start_us, y.start_us
                    );
                    prop_assert!(
                        close(x.end_us, y.end_us),
                        "act {id} end {} vs {}", x.end_us, y.end_us
                    );
                }
                for ch in [Channel::Cpu, Channel::Disk, Channel::NetIn, Channel::NetOut] {
                    for node in 0..w.cluster.len() as u16 {
                        let a = inc.trace.series(ch, NodeId(node));
                        let b = reference.trace.series(ch, NodeId(node));
                        prop_assert!(
                            series_close(&a, &b),
                            "trace {ch:?} node {node}: {a:?} vs {b:?}"
                        );
                    }
                }
            }
            (inc, reference) => prop_assert!(
                matches!(
                    (&inc, &reference),
                    (Err(SimError::Deadlock { .. }), Err(SimError::Deadlock { .. }))
                        | (Err(SimError::Stalled { .. }), Err(SimError::Stalled { .. }))
                        | (Err(SimError::UnknownNode { .. }), Err(SimError::UnknownNode { .. }))
                ),
                "engines disagree: {inc:?} vs {reference:?}"
            ),
        }
    }

    /// Repeated runs of the incremental engine are bit-identical —
    /// timings, makespan, and every trace bucket.
    #[test]
    fn incremental_is_bitwise_deterministic(w in arb_world()) {
        let sim = Simulation::new(w.cluster.clone());
        let (Ok(a), Ok(b)) = (sim.run(&w.graph), sim.run(&w.graph)) else {
            return Ok(()); // error cases covered by the equivalence property
        };
        prop_assert_eq!(a.makespan_us.to_bits(), b.makespan_us.to_bits());
        for (x, y) in a.results.iter().zip(&b.results) {
            prop_assert_eq!(x.start_us.to_bits(), y.start_us.to_bits());
            prop_assert_eq!(x.end_us.to_bits(), y.end_us.to_bits());
        }
        for ch in [Channel::Cpu, Channel::Disk, Channel::NetIn, Channel::NetOut] {
            for node in 0..w.cluster.len() as u16 {
                let sa = a.trace.series(ch, NodeId(node));
                let sb = b.trace.series(ch, NodeId(node));
                prop_assert_eq!(sa.len(), sb.len());
                for (&(ta, va), &(tb, vb)) in sa.iter().zip(&sb) {
                    prop_assert_eq!(ta, tb);
                    prop_assert_eq!(va.to_bits(), vb.to_bits());
                }
            }
        }
    }

    /// With an active fault plan, the incremental engine still reproduces
    /// the reference engine: same timings, same makespan, same error kind
    /// when the plan makes the job impossible. Fault-event lists are *not*
    /// compared — engines may interleave kill bookkeeping differently
    /// around near-coincident completions — but timings must agree.
    #[test]
    fn engines_agree_under_faults(w in arb_world(), raw in arb_raw_plan()) {
        let plan = build_plan(raw, w.cluster.len() as u16);
        let sim = Simulation::new(w.cluster.clone());
        let inc = sim.run_with_faults(&w.graph, &plan);
        let reference = sim.run_reference_with_faults(&w.graph, &plan);
        match (inc, reference) {
            (Ok(inc), Ok(reference)) => {
                prop_assert!(
                    close(inc.makespan_us, reference.makespan_us),
                    "makespan {} vs {}", inc.makespan_us, reference.makespan_us
                );
                for (id, (x, y)) in inc.results.iter().zip(&reference.results).enumerate() {
                    // NaN start/end (never-started work after an engine
                    // error cannot occur on Ok; parked-forever cannot
                    // occur either) — compare everything.
                    prop_assert!(
                        close(x.start_us, y.start_us),
                        "act {id} start {} vs {}", x.start_us, y.start_us
                    );
                    prop_assert!(
                        close(x.end_us, y.end_us),
                        "act {id} end {} vs {}", x.end_us, y.end_us
                    );
                }
            }
            (
                Err(SimError::NodeLost { at_us: a, node: na, .. }),
                Err(SimError::NodeLost { at_us: b, node: nb, .. }),
            ) => {
                // Rounded simulated instants may differ by 1 µs across
                // engines; the lost node must match.
                prop_assert!(a.abs_diff(b) <= 1, "NodeLost at {a} vs {b}");
                prop_assert_eq!(na, nb);
            }
            (inc, reference) => prop_assert!(
                matches!(
                    (&inc, &reference),
                    (Err(SimError::Deadlock { .. }), Err(SimError::Deadlock { .. }))
                        | (Err(SimError::Stalled { .. }), Err(SimError::Stalled { .. }))
                ),
                "engines disagree under faults: {inc:?} vs {reference:?}"
            ),
        }
    }

    /// Fault-injected runs of the incremental engine are bit-identical
    /// across repeats: timings, makespan, and the fault-event list.
    #[test]
    fn fault_injection_is_bitwise_deterministic(w in arb_world(), raw in arb_raw_plan()) {
        let plan = build_plan(raw, w.cluster.len() as u16);
        let sim = Simulation::new(w.cluster.clone());
        let first = sim.run_with_faults(&w.graph, &plan);
        let second = sim.run_with_faults(&w.graph, &plan);
        match (first, second) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.makespan_us.to_bits(), b.makespan_us.to_bits());
                for (x, y) in a.results.iter().zip(&b.results) {
                    prop_assert_eq!(x.start_us.to_bits(), y.start_us.to_bits());
                    prop_assert_eq!(x.end_us.to_bits(), y.end_us.to_bits());
                }
                prop_assert_eq!(&a.faults, &b.faults);
                for ch in [Channel::Cpu, Channel::Disk, Channel::NetIn, Channel::NetOut] {
                    for node in 0..w.cluster.len() as u16 {
                        let sa = a.trace.series(ch, NodeId(node));
                        let sb = b.trace.series(ch, NodeId(node));
                        prop_assert_eq!(sa.len(), sb.len());
                        for (&(ta, va), &(tb, vb)) in sa.iter().zip(&sb) {
                            prop_assert_eq!(ta, tb);
                            prop_assert_eq!(va.to_bits(), vb.to_bits());
                        }
                    }
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "determinism violated: {a:?} vs {b:?}"),
        }
    }

    /// The partitioned incremental engine (forced via `with_cutover(0)`)
    /// reproduces the reference engine under arbitrary fault plans. Small
    /// random DAGs dispatch to the dense path by default, so without the
    /// forced cutover this suite would never exercise the component
    /// scheduler.
    #[test]
    fn partitioned_matches_reference_under_faults(w in arb_world(), raw in arb_raw_plan()) {
        let plan = build_plan(raw, w.cluster.len() as u16);
        let part = Simulation::new(w.cluster.clone())
            .with_cutover(0)
            .run_with_faults(&w.graph, &plan);
        let reference = Simulation::new(w.cluster.clone())
            .run_reference_with_faults(&w.graph, &plan);
        match (part, reference) {
            (Ok(part), Ok(reference)) => {
                prop_assert!(
                    close(part.makespan_us, reference.makespan_us),
                    "makespan {} vs {}", part.makespan_us, reference.makespan_us
                );
                for (id, (x, y)) in part.results.iter().zip(&reference.results).enumerate() {
                    prop_assert!(
                        close(x.start_us, y.start_us),
                        "act {id} start {} vs {}", x.start_us, y.start_us
                    );
                    prop_assert!(
                        close(x.end_us, y.end_us),
                        "act {id} end {} vs {}", x.end_us, y.end_us
                    );
                }
                for ch in [Channel::Cpu, Channel::Disk, Channel::NetIn, Channel::NetOut] {
                    for node in 0..w.cluster.len() as u16 {
                        let a = part.trace.series(ch, NodeId(node));
                        let b = reference.trace.series(ch, NodeId(node));
                        prop_assert!(
                            series_close(&a, &b),
                            "trace {ch:?} node {node}: {a:?} vs {b:?}"
                        );
                    }
                }
            }
            (
                Err(SimError::NodeLost { at_us: a, node: na, .. }),
                Err(SimError::NodeLost { at_us: b, node: nb, .. }),
            ) => {
                prop_assert!(a.abs_diff(b) <= 1, "NodeLost at {a} vs {b}");
                prop_assert_eq!(na, nb);
            }
            (part, reference) => prop_assert!(
                matches!(
                    (&part, &reference),
                    (Err(SimError::Deadlock { .. }), Err(SimError::Deadlock { .. }))
                        | (Err(SimError::Stalled { .. }), Err(SimError::Stalled { .. }))
                ),
                "engines disagree: {part:?} vs {reference:?}"
            ),
        }
    }

    /// The parallel merge is deterministic: every worker-thread count yields
    /// the same bits as the sequential component loop — timings, makespan,
    /// fault-event list, and every trace bucket — even under fault plans.
    #[test]
    fn parallel_thread_counts_are_bit_identical(
        w in arb_world(),
        raw in arb_raw_plan(),
        threads in 2usize..=5,
    ) {
        let plan = build_plan(raw, w.cluster.len() as u16);
        let seq = Simulation::new(w.cluster.clone())
            .with_cutover(0)
            .with_threads(1)
            .run_with_faults(&w.graph, &plan);
        let par = Simulation::new(w.cluster.clone())
            .with_cutover(0)
            .with_threads(threads)
            .run_with_faults(&w.graph, &plan);
        match (seq, par) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.makespan_us.to_bits(), b.makespan_us.to_bits());
                for (x, y) in a.results.iter().zip(&b.results) {
                    prop_assert_eq!(x.start_us.to_bits(), y.start_us.to_bits());
                    prop_assert_eq!(x.end_us.to_bits(), y.end_us.to_bits());
                }
                prop_assert_eq!(&a.faults, &b.faults);
                for ch in [Channel::Cpu, Channel::Disk, Channel::NetIn, Channel::NetOut] {
                    for node in 0..w.cluster.len() as u16 {
                        let sa = a.trace.series(ch, NodeId(node));
                        let sb = b.trace.series(ch, NodeId(node));
                        prop_assert_eq!(sa.len(), sb.len());
                        for (&(ta, va), &(tb, vb)) in sa.iter().zip(&sb) {
                            prop_assert_eq!(ta, tb);
                            prop_assert_eq!(va.to_bits(), vb.to_bits());
                        }
                    }
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "thread-count divergence: {a:?} vs {b:?}"),
        }
    }

    /// Size-based dispatch never changes the answer: the default engine
    /// choice agrees with both forced engines within tolerance.
    #[test]
    fn dispatch_is_consistent(w in arb_world()) {
        let auto = Simulation::new(w.cluster.clone()).run(&w.graph);
        let dense = Simulation::new(w.cluster.clone())
            .with_cutover(usize::MAX)
            .run(&w.graph);
        let part = Simulation::new(w.cluster.clone()).with_cutover(0).run(&w.graph);
        match (auto, dense, part) {
            (Ok(auto), Ok(dense), Ok(part)) => {
                prop_assert!(close(auto.makespan_us, dense.makespan_us));
                prop_assert!(close(auto.makespan_us, part.makespan_us));
                for ((x, y), z) in auto.results.iter().zip(&dense.results).zip(&part.results) {
                    prop_assert!(close(x.end_us, y.end_us));
                    prop_assert!(close(x.end_us, z.end_us));
                }
            }
            (Err(_), Err(_), Err(_)) => {}
            (a, d, p) => prop_assert!(
                false,
                "dispatch disagrees: auto={a:?} dense={d:?} partitioned={p:?}"
            ),
        }
    }

    /// `span_of_tag` through the tag index equals a brute-force scan.
    #[test]
    fn span_of_tag_matches_linear_scan(w in arb_world(), sel in 0u8..7) {
        let sim = Simulation::new(w.cluster.clone());
        let Ok(res) = sim.run(&w.graph) else { return Ok(()) };
        let prefix = format!("k{sel}");
        let indexed = res.span_of_tag(&w.graph, &prefix);
        let mut scanned: Option<(f64, f64)> = None;
        for a in w.graph.iter().filter(|a| a.tag().starts_with(&prefix)) {
            let r = res.of(a.id);
            scanned = Some(match scanned {
                None => (r.start_us, r.end_us),
                Some((lo, hi)) => (lo.min(r.start_us), hi.max(r.end_us)),
            });
        }
        prop_assert_eq!(indexed, scanned);
    }
}

#[test]
fn stall_reported_by_both_engines() {
    // A zero-bandwidth disk can never serve its reader: both engines must
    // report a stall (the incremental engine names the lowest live id).
    let cluster = ClusterSpec {
        nodes: vec![NodeSpec {
            name: "n0".into(),
            cores: 4,
            disk_bps: 0.0,
            nic_bps: 1e8,
            mem_bytes: 1 << 30,
        }],
        shared_fs_bps: 1e9,
    };
    let mut g = ActivityGraph::new();
    let r = g.add(
        ActivityKind::DiskRead {
            node: NodeId(0),
            bytes: 100.0,
        },
        &[],
        "r",
    );
    let sim = Simulation::new(cluster);
    match sim.run(&g) {
        Err(SimError::Stalled { activity }) => assert_eq!(activity, r),
        other => panic!("expected Stalled, got {other:?}"),
    }
    assert!(matches!(
        sim.run_reference(&g),
        Err(SimError::Stalled { .. })
    ));
}

#[test]
fn wide_contention_engines_agree() {
    // The scheduler bench's shape, shrunk: many readers on one saturated
    // disk plus independent computes elsewhere.
    let cluster = ClusterSpec::das5(4);
    let mut g = ActivityGraph::new();
    for i in 0..48 {
        g.add(
            ActivityKind::DiskRead {
                node: NodeId(0),
                bytes: 1e6 * (1.0 + 0.37 * i as f64),
            },
            &[],
            format!("read/{i}"),
        );
    }
    for node in 1..4u16 {
        for k in 0..8 {
            g.add(
                ActivityKind::Compute {
                    node: NodeId(node),
                    work_core_us: 4e6 + 1e5 * k as f64,
                    parallelism: 2,
                },
                &[],
                format!("work/{node}/{k}"),
            );
        }
    }
    let sim = Simulation::new(cluster);
    let a = sim.run(&g).unwrap();
    let b = sim.run_reference(&g).unwrap();
    assert!(
        (a.makespan_us - b.makespan_us).abs() <= REL * b.makespan_us,
        "{} vs {}",
        a.makespan_us,
        b.makespan_us
    );
    for (x, y) in a.results.iter().zip(&b.results) {
        assert!(close(x.end_us, y.end_us), "{} vs {}", x.end_us, y.end_us);
    }
}
