//! Property-based totality tests: every renderer must accept *any* archive
//! — including pathological trees monitoring might assemble from damaged
//! logs — without panicking, and must produce structurally sane output.

use proptest::prelude::*;

use granula_archive::{JobArchive, JobMeta};
use granula_model::{Actor, Info, InfoValue, Mission, OperationTree};
use granula_monitor::{EnvLog, ResourceKind, ResourceSample};
use granula_viz::report::html_report;
use granula_viz::tree::render_operation_tree;
use granula_viz::{
    diff_archives, render_diff, BreakdownChart, BreakdownRow, GanttChart, TimelineChart,
};

/// Random archives: arbitrary shapes, arbitrary (possibly missing or
/// inverted) timestamps, arbitrary actor/mission names.
fn arb_archive() -> impl Strategy<Value = JobArchive> {
    prop::collection::vec(
        (
            0usize..50,
            "[A-Za-z]{1,10}",
            "[0-9]{1,2}",
            prop::option::of((0u64..100_000_000, 0u64..100_000_000)),
        ),
        0..40,
    )
    .prop_map(|nodes| {
        let mut tree = OperationTree::new();
        let root = tree
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .expect("fresh tree");
        let mut ids = vec![root];
        for (pick, kind, mid, stamps) in nodes {
            let parent = ids[pick % ids.len()];
            let id = tree
                .add_child(
                    parent,
                    Actor::new("W", mid.clone()),
                    Mission::new(kind, mid),
                )
                .expect("parent exists");
            if let Some((s, e)) = stamps {
                // Deliberately allow e < s: damaged logs do this.
                tree.set_info(
                    id,
                    Info::raw(granula_model::names::START_TIME, InfoValue::Int(s as i64)),
                )
                .expect("id valid");
                tree.set_info(
                    id,
                    Info::raw(granula_model::names::END_TIME, InfoValue::Int(e as i64)),
                )
                .expect("id valid");
            }
            ids.push(id);
        }
        JobArchive::new(
            JobMeta {
                job_id: "prop".into(),
                platform: "P".into(),
                ..Default::default()
            },
            tree,
        )
    })
}

fn arb_env() -> impl Strategy<Value = EnvLog> {
    prop::collection::vec((0u64..200, 0usize..4, -10.0f64..1e12), 0..120).prop_map(|samples| {
        let mut env = EnvLog::new();
        for (t, node, value) in samples {
            env.push(ResourceSample {
                time_us: t * 1_000_000,
                node: format!("n{node}"),
                kind: if node % 2 == 0 {
                    ResourceKind::Cpu
                } else {
                    ResourceKind::Memory
                },
                value,
            });
        }
        env
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The operation-tree renderer is total and mentions the root.
    #[test]
    fn tree_renderer_total(archive in arb_archive(), depth in 0usize..6) {
        let out = render_operation_tree(&archive.tree, depth);
        prop_assert!(out.contains("Job-0 @ Job-0"));
    }

    /// The Gantt renderer is total for any kind selection and any window.
    #[test]
    fn gantt_total(archive in arb_archive(), a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let chart = GanttChart::from_archive(&archive, &["Compute", "A", "B"], "Compute")
            .with_window(a.min(b), a.max(b));
        let text = chart.render_text(60);
        prop_assert!(!text.is_empty());
        let svg = chart.render_svg();
        prop_assert!(svg.starts_with("<svg"));
    }

    /// The breakdown renderer is total even with zero/overflowing segments.
    #[test]
    fn breakdown_total(segs in prop::collection::vec((("[A-Z][a-z]{1,8}"), 0u64..u64::MAX / 8), 0..6), total in 0u64..u64::MAX / 2) {
        let mut row = BreakdownRow::new("X", total);
        for (label, us) in segs {
            row = row.with_segment(label, us);
        }
        let mut chart = BreakdownChart::new();
        chart.add_row(row);
        let _ = chart.render_text(40);
        let svg = chart.render_svg();
        prop_assert!(svg.trim_end().ends_with("</svg>"));
    }

    /// The timeline renderer is total for arbitrary sample soups and bands.
    #[test]
    fn timeline_total(env in arb_env(), bands in prop::collection::vec((0u64..300_000_000, 0u64..300_000_000), 0..4)) {
        let mut chart = TimelineChart::new(&env, ResourceKind::Cpu);
        for (i, (a, b)) in bands.into_iter().enumerate() {
            chart = chart.with_phase(format!("P{i}"), a.min(b), a.max(b));
        }
        let _ = chart.render_text(50, 6);
        let svg = chart.render_svg();
        prop_assert!(svg.starts_with("<svg"));
    }

    /// The HTML report is total and well-formed-ish for any archive/env.
    #[test]
    fn report_total(archive in arb_archive(), env in arb_env()) {
        let html = html_report(&archive, &env);
        prop_assert!(html.starts_with("<!DOCTYPE html>"));
        prop_assert!(html.trim_end().ends_with("</html>"));
        // Escaping holds: no raw operation labels can open a tag.
        prop_assert!(!html.contains("<W-"));
    }

    /// Diffing any two random archives is total, and self-diff is empty.
    #[test]
    fn diff_total(a in arb_archive(), b in arb_archive()) {
        let rows = diff_archives(&a, &b, 0);
        let _ = render_diff(&rows, 10);
        // Self-diff has no change above any positive threshold.
        prop_assert!(diff_archives(&a, &a, 1).is_empty());
        // Antisymmetry of deltas on the matched subset.
        let back = diff_archives(&b, &a, 0);
        let sum_fwd: i64 = rows.iter().map(|r| r.delta_us()).sum();
        let sum_back: i64 = back.iter().map(|r| r.delta_us()).sum();
        prop_assert_eq!(sum_fwd, -sum_back);
    }
}
