//! The cross-platform choke-point matrix: engines × algorithms, every
//! cell naming the dominant domain phase.
//!
//! The paper's comparative claim is that fine-grained decomposition turns
//! "platform A is slower than B" into "platform A is slower than B
//! *because its loader serializes*". The matrix renders that claim across
//! paradigms: one row per (platform, partitioner) configuration, one
//! column per algorithm, each cell carrying the total runtime and the
//! choke point — the domain phase with the largest runtime share.

use crate::svg::SvgCanvas;

/// One evaluated cell of the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixCell {
    /// Total job runtime, µs.
    pub total_us: u64,
    /// The dominant domain phase, e.g. `"LoadGraph"`.
    pub bottleneck: String,
    /// The dominant phase's share of the total runtime, 0..=1.
    pub bottleneck_frac: f64,
}

/// An engines × algorithms grid of [`MatrixCell`]s.
#[derive(Debug, Clone)]
pub struct MatrixChart {
    row_labels: Vec<String>,
    col_labels: Vec<String>,
    cells: Vec<Option<MatrixCell>>,
}

impl MatrixChart {
    /// Creates an empty matrix with fixed row/column headers.
    pub fn new<S: Into<String>>(
        rows: impl IntoIterator<Item = S>,
        cols: impl IntoIterator<Item = S>,
    ) -> Self {
        let row_labels: Vec<String> = rows.into_iter().map(Into::into).collect();
        let col_labels: Vec<String> = cols.into_iter().map(Into::into).collect();
        let cells = vec![None; row_labels.len() * col_labels.len()];
        MatrixChart {
            row_labels,
            col_labels,
            cells,
        }
    }

    /// Fills the cell at (`row`, `col`).
    ///
    /// # Panics
    /// When the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, cell: MatrixCell) {
        assert!(row < self.row_labels.len() && col < self.col_labels.len());
        self.cells[row * self.col_labels.len() + col] = Some(cell);
    }

    fn get(&self, row: usize, col: usize) -> Option<&MatrixCell> {
        self.cells[row * self.col_labels.len() + col].as_ref()
    }

    fn max_total_us(&self) -> u64 {
        self.cells
            .iter()
            .flatten()
            .map(|c| c.total_us)
            .max()
            .unwrap_or(0)
    }

    /// Renders as an aligned text table, one `total_s  bottleneck  share`
    /// triple per cell:
    ///
    /// ```text
    /// engine           | BFS                      | PageRank
    /// Giraph/hash-ec   |   81.9s LoadGraph    43% |  123.4s ProcessGraph 61%
    /// ```
    pub fn render_text(&self) -> String {
        const CELL: usize = 26;
        let label_w = self
            .row_labels
            .iter()
            .map(|l| l.len())
            .max()
            .unwrap_or(6)
            .max("engine".len());
        let mut out = format!("{:<label_w$}", "engine");
        for col in &self.col_labels {
            out.push_str(&format!(" | {col:<CELL$}"));
        }
        out.push('\n');
        for (r, row) in self.row_labels.iter().enumerate() {
            out.push_str(&format!("{row:<label_w$}"));
            for c in 0..self.col_labels.len() {
                let body = match self.get(r, c) {
                    Some(cell) => format!(
                        "{:>7.1}s {:<12} {:>3.0}%",
                        cell.total_us as f64 / 1e6,
                        cell.bottleneck,
                        100.0 * cell.bottleneck_frac
                    ),
                    None => "-".into(),
                };
                out.push_str(&format!(" | {body:<CELL$}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as an SVG heat grid: cell shading scales with total runtime
    /// relative to the slowest cell, and each cell prints the runtime and
    /// its choke point.
    pub fn render_svg(&self) -> String {
        let (cell_w, cell_h, left, top) = (190.0, 56.0, 150.0, 36.0);
        let w = left + self.col_labels.len() as f64 * cell_w + 20.0;
        let h = top + self.row_labels.len() as f64 * cell_h + 20.0;
        let mut canvas = SvgCanvas::new(w, h);
        let max = self.max_total_us().max(1) as f64;
        for (c, col) in self.col_labels.iter().enumerate() {
            canvas.text(left + c as f64 * cell_w + 6.0, top - 10.0, 13.0, col);
        }
        for (r, row) in self.row_labels.iter().enumerate() {
            let y = top + r as f64 * cell_h;
            canvas.text(4.0, y + cell_h / 2.0 + 4.0, 12.0, row);
            for c in 0..self.col_labels.len() {
                let x = left + c as f64 * cell_w;
                match self.get(r, c) {
                    Some(cell) => {
                        // Shade from near-white (fast) to deep red (the
                        // slowest cell in the matrix).
                        let t = cell.total_us as f64 / max;
                        let chan = (235.0 - 150.0 * t).round() as u8;
                        let fill = format!("#f0{chan:02x}{chan:02x}");
                        canvas.rect(x + 2.0, y + 2.0, cell_w - 4.0, cell_h - 4.0, &fill);
                        canvas.text(
                            x + 8.0,
                            y + 22.0,
                            12.0,
                            &format!("{:.1}s", cell.total_us as f64 / 1e6),
                        );
                        canvas.text(
                            x + 8.0,
                            y + 40.0,
                            11.0,
                            &format!("{} {:.0}%", cell.bottleneck, 100.0 * cell.bottleneck_frac),
                        );
                    }
                    None => {
                        canvas.rect(x + 2.0, y + 2.0, cell_w - 4.0, cell_h - 4.0, "#f5f5f5");
                        canvas.text(x + 8.0, y + 30.0, 12.0, "-");
                    }
                }
            }
        }
        canvas.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> MatrixChart {
        let mut m = MatrixChart::new(["Giraph/hash-ec", "Grape/block-ec"], ["BFS", "PageRank"]);
        m.set(
            0,
            0,
            MatrixCell {
                total_us: 81_900_000,
                bottleneck: "LoadGraph".into(),
                bottleneck_frac: 0.43,
            },
        );
        m.set(
            1,
            1,
            MatrixCell {
                total_us: 40_000_000,
                bottleneck: "ProcessGraph".into(),
                bottleneck_frac: 0.61,
            },
        );
        m
    }

    #[test]
    fn text_render_has_headers_cells_and_gaps() {
        let s = chart().render_text();
        assert!(s.contains("engine"));
        assert!(s.contains("BFS"));
        assert!(s.contains("PageRank"));
        assert!(s.contains("81.9s"));
        assert!(s.contains("LoadGraph"));
        assert!(s.contains("43%"));
        // The unfilled cells render as dashes.
        assert_eq!(s.matches(" | -").count(), 2);
    }

    #[test]
    fn svg_render_shades_by_total() {
        let s = chart().render_svg();
        assert!(s.contains("<svg"));
        assert!(s.contains("Giraph/hash-ec"));
        assert!(s.contains("81.9s"));
        assert!(s.contains("ProcessGraph 61%"));
        // Four cells: two filled, two empty placeholders.
        assert_eq!(s.matches("<rect").count(), 4);
    }

    #[test]
    #[should_panic]
    fn out_of_range_set_panics() {
        chart().set(
            5,
            0,
            MatrixCell {
                total_us: 1,
                bottleneck: "X".into(),
                bottleneck_frac: 1.0,
            },
        );
    }
}
