//! Stacked runtime-decomposition bars: paper Figure 5.
//!
//! One row per job, segments for the domain phases, with the dual
//! percent/seconds axis of the original figure.

use crate::svg::{SvgCanvas, PALETTE};

/// One segment of a bar.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Segment label, e.g. `"LoadGraph"`.
    pub label: String,
    /// Duration, µs.
    pub duration_us: u64,
}

/// One bar: a job decomposed into segments.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Row label, e.g. `"Giraph"`.
    pub label: String,
    /// Segments in display order.
    pub segments: Vec<Segment>,
    /// Total runtime, µs (segments may not cover it fully).
    pub total_us: u64,
}

impl BreakdownRow {
    /// Creates a row.
    pub fn new(label: impl Into<String>, total_us: u64) -> Self {
        BreakdownRow {
            label: label.into(),
            segments: Vec::new(),
            total_us,
        }
    }

    /// Appends a segment.
    pub fn with_segment(mut self, label: impl Into<String>, duration_us: u64) -> Self {
        self.segments.push(Segment {
            label: label.into(),
            duration_us,
        });
        self
    }
}

/// A Figure-5-style chart.
#[derive(Debug, Clone, Default)]
pub struct BreakdownChart {
    rows: Vec<BreakdownRow>,
}

impl BreakdownChart {
    /// Creates an empty chart.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a row.
    pub fn add_row(&mut self, row: BreakdownRow) {
        self.rows.push(row);
    }

    /// Renders as terminal text: one bar per row plus a dual axis, e.g.
    ///
    /// ```text
    /// Giraph     |SSSSSSS|LLLLLLLLLLL|PPPPPPP|  81.59s
    ///             Startup 30.9%  LoadGraph 43.3% ...
    /// ```
    pub fn render_text(&self, bar_width: usize) -> String {
        let mut out = String::new();
        for row in &self.rows {
            if row.total_us == 0 {
                continue;
            }
            let mut bar = String::new();
            let mut legend = Vec::new();
            for (i, seg) in row.segments.iter().enumerate() {
                let frac = seg.duration_us as f64 / row.total_us as f64;
                let cells = (frac * bar_width as f64).round() as usize;
                let ch = seg.label.chars().next().unwrap_or('?');
                for _ in 0..cells {
                    bar.push(ch);
                }
                legend.push(format!("{}={} {:.1}%", ch, seg.label, 100.0 * frac));
                let _ = i;
            }
            // Pad/truncate to the exact bar width (rounding drift).
            let bar: String = bar.chars().take(bar_width).collect();
            let pad = bar_width.saturating_sub(bar.chars().count());
            out.push_str(&format!(
                "{:<12} |{}{}| {:>8.2}s\n",
                row.label,
                bar,
                " ".repeat(pad),
                row.total_us as f64 / 1e6
            ));
            out.push_str(&format!("{:<12}  {}\n", "", legend.join("  ")));
        }
        // Percent axis.
        out.push_str(&format!(
            "{:<12}  {}\n",
            "",
            axis_line(bar_width, &["0%", "20%", "40%", "60%", "80%", "100%"])
        ));
        out
    }

    /// Renders as SVG with per-segment colors and a percent axis.
    pub fn render_svg(&self) -> String {
        let (w, row_h, left, top) = (720.0, 42.0, 110.0, 24.0);
        let bar_w = w - left - 90.0;
        let h = top + self.rows.len() as f64 * row_h + 40.0;
        let mut c = SvgCanvas::new(w, h);
        // Percent gridlines.
        for pct in [0, 20, 40, 60, 80, 100] {
            let x = left + bar_w * pct as f64 / 100.0;
            c.line(x, top - 6.0, x, h - 34.0, "#dddddd", 1.0);
            c.text(x - 10.0, h - 20.0, 11.0, &format!("{pct}%"));
        }
        for (r, row) in self.rows.iter().enumerate() {
            let y = top + r as f64 * row_h;
            c.text(4.0, y + 18.0, 12.0, &row.label);
            if row.total_us == 0 {
                continue;
            }
            let mut x = left;
            for (i, seg) in row.segments.iter().enumerate() {
                let frac = seg.duration_us as f64 / row.total_us as f64;
                let sw = bar_w * frac;
                c.rect(x, y, sw, row_h - 14.0, PALETTE[i % PALETTE.len()]);
                if sw > 60.0 {
                    c.text(
                        x + 4.0,
                        y + 17.0,
                        10.0,
                        &format!("{} {:.1}%", seg.label, frac * 100.0),
                    );
                }
                x += sw;
            }
            c.text(
                left + bar_w + 6.0,
                y + 18.0,
                11.0,
                &format!("{:.2}s", row.total_us as f64 / 1e6),
            );
        }
        c.finish()
    }
}

fn axis_line(width: usize, labels: &[&str]) -> String {
    // Leave room for the final label to extend past the bar edge.
    let mut line = vec![b' '; width + 6];
    let n = labels.len();
    for (i, l) in labels.iter().enumerate() {
        let pos = (width as f64 * i as f64 / (n - 1) as f64) as usize;
        for (j, b) in l.bytes().enumerate() {
            if pos + j < line.len() {
                line[pos + j] = b;
            }
        }
    }
    String::from_utf8(line).expect("ascii axis")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BreakdownChart {
        let mut c = BreakdownChart::new();
        c.add_row(
            BreakdownRow::new("Giraph", 100_000_000)
                .with_segment("Setup", 31_000_000)
                .with_segment("IO", 43_000_000)
                .with_segment("Proc", 26_000_000),
        );
        c.add_row(
            BreakdownRow::new("PowerGraph", 400_000_000)
                .with_segment("Setup", 8_000_000)
                .with_segment("IO", 380_000_000)
                .with_segment("Proc", 12_000_000),
        );
        c
    }

    #[test]
    fn text_render_shows_rows_percentages_and_axis() {
        let s = chart().render_text(50);
        assert!(s.contains("Giraph"));
        assert!(s.contains("PowerGraph"));
        assert!(s.contains("IO 43.0%"));
        assert!(s.contains("IO 95.0%"));
        assert!(s.contains("100.00s"));
        assert!(s.contains("100%"));
    }

    #[test]
    fn bar_lengths_reflect_fractions() {
        let s = chart().render_text(100);
        let giraph_line = s.lines().next().unwrap();
        // 43% of 100 cells of the 'I' segment.
        assert_eq!(giraph_line.matches('I').count(), 43);
        assert_eq!(giraph_line.matches('S').count(), 31);
    }

    #[test]
    fn zero_total_rows_are_skipped() {
        let mut c = BreakdownChart::new();
        c.add_row(BreakdownRow::new("Empty", 0).with_segment("X", 0));
        let s = c.render_text(20);
        assert!(!s.contains("Empty"));
    }

    #[test]
    fn svg_contains_segments_and_axis() {
        let s = chart().render_svg();
        assert!(s.contains("<svg"));
        assert!(s.matches("<rect").count() >= 6);
        assert!(s.contains("100%"));
        assert!(s.contains("400.00s"));
    }
}
