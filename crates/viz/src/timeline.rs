//! Resource-usage timelines mapped onto operation phases: Figures 6–7.
//!
//! Per-node series from the environment log are drawn over the job's
//! timeline; labeled phase bands (Startup / LoadGraph / …) show which
//! operation each burst of usage belongs to — the mapping that let the
//! paper's analysts spot Giraph's compute-intensive loader and
//! PowerGraph's one-node loading.

use granula_monitor::{EnvLog, ResourceKind};

use crate::svg::{SvgCanvas, PALETTE};

/// One labeled phase band on the time axis.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBand {
    /// Label, e.g. `"LoadGraph"`.
    pub label: String,
    /// Band start, µs.
    pub start_us: u64,
    /// Band end, µs.
    pub end_us: u64,
}

/// A Figures-6/7-style chart.
#[derive(Debug, Clone)]
pub struct TimelineChart<'a> {
    env: &'a EnvLog,
    kind: ResourceKind,
    phases: Vec<PhaseBand>,
}

impl<'a> TimelineChart<'a> {
    /// Creates a chart over one resource of an environment log.
    pub fn new(env: &'a EnvLog, kind: ResourceKind) -> Self {
        TimelineChart {
            env,
            kind,
            phases: Vec::new(),
        }
    }

    /// Adds a phase band.
    pub fn with_phase(mut self, label: impl Into<String>, start_us: u64, end_us: u64) -> Self {
        self.phases.push(PhaseBand {
            label: label.into(),
            start_us,
            end_us,
        });
        self
    }

    fn span(&self) -> (u64, u64) {
        let series = self.env.cumulative(self.kind);
        let mut lo = u64::MAX;
        let mut hi = 0;
        for &(t, _) in &series {
            lo = lo.min(t);
            hi = hi.max(t);
        }
        for p in &self.phases {
            lo = lo.min(p.start_us);
            hi = hi.max(p.end_us);
        }
        if lo > hi {
            (0, 0)
        } else {
            (lo, hi)
        }
    }

    /// Renders the cluster-cumulative series as an ASCII chart with the
    /// phase bands underneath, `height` value rows by `width` time columns.
    pub fn render_text(&self, width: usize, height: usize) -> String {
        let _span = granula_trace::span!("visualization", "timeline.render_text {:?}", self.kind);
        // Degenerate widths would underflow the column math below.
        let width = width.max(2);
        let height = height.max(1);
        let series = self.env.cumulative(self.kind);
        let (lo, hi) = self.span();
        if series.is_empty() || hi <= lo {
            return String::from("(no samples)\n");
        }
        let peak = series
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max)
            .max(1e-9);
        // Bucket samples into columns (mean per column).
        let mut cols = vec![0.0f64; width];
        let mut counts = vec![0u32; width];
        for &(t, v) in &series {
            let c = (((t - lo) as f64 / (hi - lo) as f64) * (width - 1) as f64) as usize;
            cols[c] += v;
            counts[c] += 1;
        }
        for (c, n) in cols.iter_mut().zip(&counts) {
            if *n > 0 {
                *c /= *n as f64;
            }
        }
        let mut out = String::new();
        for r in (0..height).rev() {
            let threshold = peak * (r as f64 + 0.5) / height as f64;
            let label = if r == height - 1 {
                format!("{peak:>8.2} ")
            } else if r == 0 {
                format!("{:>8.2} ", 0.0)
            } else {
                " ".repeat(9)
            };
            out.push_str(&label);
            out.push('|');
            for &v in &cols {
                out.push(if v >= threshold { '#' } else { ' ' });
            }
            out.push('\n');
        }
        out.push_str(&format!("{}+{}\n", " ".repeat(9), "-".repeat(width)));
        // Phase bands.
        if !self.phases.is_empty() {
            let mut band = vec![b' '; width];
            for p in &self.phases {
                let a = (((p.start_us.saturating_sub(lo)) as f64 / (hi - lo) as f64)
                    * (width - 1) as f64) as usize;
                let b = (((p.end_us.saturating_sub(lo)) as f64 / (hi - lo) as f64)
                    * (width - 1) as f64) as usize;
                let label = p.label.as_bytes();
                let end = b.min(width - 1);
                if a > end {
                    // Malformed band (start after end): skip rather than panic.
                    continue;
                }
                for (rel, cell) in band[a..=end].iter_mut().enumerate() {
                    *cell = match label.get(rel) {
                        // Non-ASCII label bytes would break the UTF-8 band.
                        Some(&c) if c.is_ascii() => c,
                        Some(_) => b'?',
                        None => b'.',
                    };
                }
            }
            out.push_str(&" ".repeat(10));
            out.push_str(&String::from_utf8(band).expect("band bytes are ascii by construction"));
            out.push('\n');
        }
        out.push_str(&format!(
            "{}0s{}{:.2}s\n",
            " ".repeat(10),
            " ".repeat(width.saturating_sub(10)),
            (hi - lo) as f64 / 1e6
        ));
        out
    }

    /// Renders per-node polylines plus phase bands as SVG (one colored line
    /// per node, like the paper's figures).
    pub fn render_svg(&self) -> String {
        let _span = granula_trace::span!("visualization", "timeline.render_svg {:?}", self.kind);
        let (lo, hi) = self.span();
        let (w, h, left, top, bottom) = (760.0, 320.0, 60.0, 18.0, 60.0);
        let mut c = SvgCanvas::new(w, h);
        if hi <= lo {
            c.text(left, h / 2.0, 12.0, "(no samples)");
            return c.finish();
        }
        let plot_w = w - left - 14.0;
        let plot_h = h - top - bottom;
        let nodes: Vec<String> = self.env.nodes().iter().map(|s| s.to_string()).collect();
        let peak = nodes
            .iter()
            .filter_map(|n| self.env.series(n, self.kind))
            .flat_map(|s| s.iter().map(|&(_, v)| v))
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let x_of = |t: u64| left + plot_w * (t - lo) as f64 / (hi - lo) as f64;
        let y_of = |v: f64| top + plot_h * (1.0 - v / peak);

        // Phase bands (alternating light backgrounds + labels).
        for (i, p) in self.phases.iter().enumerate() {
            let x0 = x_of(p.start_us.max(lo));
            let x1 = x_of(p.end_us.min(hi));
            c.rect(
                x0,
                top,
                x1 - x0,
                plot_h,
                if i % 2 == 0 { "#f2f2f2" } else { "#e6e6e6" },
            );
            c.text(x0 + 2.0, h - bottom + 14.0, 10.0, &p.label);
        }
        // Axes.
        c.line(left, top, left, top + plot_h, "#333333", 1.0);
        c.line(
            left,
            top + plot_h,
            left + plot_w,
            top + plot_h,
            "#333333",
            1.0,
        );
        c.text(2.0, top + 10.0, 10.0, &format!("{peak:.2}"));
        c.text(2.0, top + plot_h, 10.0, "0.00");
        c.text(
            left + plot_w - 48.0,
            h - bottom + 28.0,
            10.0,
            &format!("{:.1}s", (hi - lo) as f64 / 1e6),
        );
        // Per-node series.
        for (i, node) in nodes.iter().enumerate() {
            if let Some(series) = self.env.series(node, self.kind) {
                let pts: Vec<(f64, f64)> = series
                    .iter()
                    .map(|&(t, v)| (x_of(t.clamp(lo, hi)), y_of(v)))
                    .collect();
                c.polyline(&pts, PALETTE[i % PALETTE.len()], 1.2);
                c.text(
                    left + 6.0 + (i as f64 % 4.0) * 170.0,
                    h - 18.0 + 12.0 * ((i / 4) as f64),
                    10.0,
                    node,
                );
            }
        }
        c.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_monitor::ResourceSample;

    fn env() -> EnvLog {
        let mut e = EnvLog::new();
        for t in 0..10u64 {
            for node in ["n0", "n1"] {
                e.push(ResourceSample {
                    time_us: t * 1_000_000,
                    node: node.into(),
                    kind: ResourceKind::Cpu,
                    value: if (3..7).contains(&t) { 8.0 } else { 0.5 },
                });
            }
        }
        e
    }

    #[test]
    fn text_chart_shows_burst_and_phases() {
        let e = env();
        let chart = TimelineChart::new(&e, ResourceKind::Cpu)
            .with_phase("Startup", 0, 3_000_000)
            .with_phase("LoadGraph", 3_000_000, 7_000_000)
            .with_phase("Cleanup", 7_000_000, 9_000_000);
        let s = chart.render_text(60, 8);
        assert!(s.contains('#'));
        assert!(s.contains("LoadGraph"));
        assert!(s.contains("16.00")); // cumulative peak of two nodes
        assert!(s.contains("9.00s"));
    }

    #[test]
    fn empty_log_renders_placeholder() {
        let e = EnvLog::new();
        let s = TimelineChart::new(&e, ResourceKind::Cpu).render_text(40, 5);
        assert_eq!(s, "(no samples)\n");
    }

    #[test]
    fn svg_has_one_polyline_per_node() {
        let e = env();
        let s = TimelineChart::new(&e, ResourceKind::Cpu)
            .with_phase("LoadGraph", 3_000_000, 7_000_000)
            .render_svg();
        assert_eq!(s.matches("<polyline").count(), 2);
        assert!(s.contains("LoadGraph"));
    }

    #[test]
    fn malformed_bands_and_degenerate_widths_do_not_panic() {
        let e = env();
        // Reversed band (start after end) and a non-ASCII label: both may
        // arrive from foreign archives; rendering must stay total.
        let chart = TimelineChart::new(&e, ResourceKind::Cpu)
            .with_phase("Zürich", 0, 4_000_000)
            .with_phase("Reversed", 8_000_000, 2_000_000);
        let s = chart.render_text(30, 4);
        assert!(s.contains("Z?"), "{s}"); // non-ASCII byte sanitized
        assert!(!s.contains("Reversed"), "{s}");
        // Zero-width charts are clamped rather than underflowing.
        let _ = chart.render_text(0, 0);
    }

    #[test]
    fn phase_band_is_clamped_to_width() {
        let e = env();
        // Band extending past the last sample must not panic.
        let s = TimelineChart::new(&e, ResourceKind::Cpu)
            .with_phase("Tail", 8_000_000, 30_000_000)
            .render_text(30, 4);
        assert!(s.contains("Tail"));
    }
}
