//! Trend charts: one metric's value across a run history, with the
//! tolerance band and the first offending run highlighted. The rendering
//! side of the regression service's `regress.json`.

use crate::svg::{SvgCanvas, PALETTE};

/// One metric series prepared for rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendChart {
    /// Chart title, e.g. `"giraph-bfs-dg1000 makespan"`.
    pub title: String,
    /// Unit suffix printed after values, e.g. `"us"`.
    pub unit: String,
    /// `(label, value)` per run, oldest first.
    pub points: Vec<(String, f64)>,
    /// Tolerance band `(low, high)` around the baseline mean, drawn as a
    /// shaded corridor; omitted when `None`.
    pub band: Option<(f64, f64)>,
    /// Index of the first offending run, marked on the chart.
    pub flagged: Option<usize>,
}

impl TrendChart {
    /// A chart with no band and no flag.
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> Self {
        TrendChart {
            title: title.into(),
            unit: unit.into(),
            points: Vec::new(),
            band: None,
            flagged: None,
        }
    }

    /// Appends a run's value.
    pub fn push(&mut self, label: impl Into<String>, value: f64) {
        self.points.push((label.into(), value));
    }

    /// Plain-text sparkline rendering: one line per run, a bar scaled to
    /// the series maximum, the flagged run marked with `<<`.
    pub fn render_text(&self) -> String {
        let mut out = format!("{} [{}]\n", self.title, self.unit);
        let max = self
            .points
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::EPSILON, f64::max);
        let label_w = self.points.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        const BAR: usize = 40;
        for (i, (label, value)) in self.points.iter().enumerate() {
            let filled = ((value / max) * BAR as f64).round() as usize;
            let mut line = format!(
                "  {label:<label_w$}  {:<BAR$} {value:>14.0}",
                "#".repeat(filled.min(BAR)),
            );
            if let Some((lo, hi)) = self.band {
                if *value < lo || *value > hi {
                    line.push_str("  !band");
                }
            }
            if self.flagged == Some(i) {
                line.push_str("  <<");
            }
            out.push_str(line.trim_end());
            out.push('\n');
        }
        out
    }
}

/// Renders a stack of trend charts into one SVG panel, one row per
/// chart: the tolerance corridor (shaded), the series polyline, and a
/// marker at the flagged run.
pub fn render_trend_svg(charts: &[TrendChart]) -> String {
    const ROW_H: f64 = 140.0;
    const W: f64 = 640.0;
    const MARGIN: f64 = 40.0;
    let mut canvas = SvgCanvas::new(W, ROW_H * charts.len().max(1) as f64);
    for (row, chart) in charts.iter().enumerate() {
        let top = row as f64 * ROW_H;
        canvas.text(8.0, top + 16.0, 12.0, &chart.title);
        if chart.points.is_empty() {
            continue;
        }
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, v) in &chart.points {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        if let Some((blo, bhi)) = chart.band {
            lo = lo.min(blo);
            hi = hi.max(bhi);
        }
        let pad = ((hi - lo) * 0.1).max(hi.abs() * 1e-6).max(1e-9);
        let (lo, hi) = (lo - pad, hi + pad);
        let plot_top = top + 24.0;
        let plot_h = ROW_H - 40.0;
        let y = |v: f64| plot_top + plot_h * (1.0 - (v - lo) / (hi - lo));
        let x = |i: usize| {
            let n = chart.points.len().max(2) as f64;
            MARGIN + (W - 2.0 * MARGIN) * i as f64 / (n - 1.0)
        };
        if let Some((blo, bhi)) = chart.band {
            canvas.rect(MARGIN, y(bhi), W - 2.0 * MARGIN, y(blo) - y(bhi), "#eef2e6");
        }
        let pts: Vec<(f64, f64)> = chart
            .points
            .iter()
            .enumerate()
            .map(|(i, (_, v))| (x(i), y(*v)))
            .collect();
        canvas.polyline(&pts, PALETTE[row % PALETTE.len()], 1.5);
        for (i, &(px, py)) in pts.iter().enumerate() {
            canvas.rect(px - 1.5, py - 1.5, 3.0, 3.0, PALETTE[row % PALETTE.len()]);
            if chart.flagged == Some(i) {
                canvas.line(px, plot_top, px, plot_top + plot_h, PALETTE[1], 1.0);
                canvas.text(px + 3.0, plot_top + 10.0, 10.0, &chart.points[i].0);
            }
        }
        // First and last run labels anchor the x axis.
        canvas.text(MARGIN, top + ROW_H - 4.0, 9.0, &chart.points[0].0);
        let last = chart.points.len() - 1;
        canvas.text(
            (W - MARGIN - 30.0).max(MARGIN),
            top + ROW_H - 4.0,
            9.0,
            &chart.points[last].0,
        );
    }
    canvas.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> TrendChart {
        let mut c = TrendChart::new("job makespan", "us");
        for (i, v) in [100.0, 101.0, 99.0, 110.0].iter().enumerate() {
            c.push(format!("r{i}"), *v);
        }
        c.band = Some((98.0, 102.0));
        c.flagged = Some(3);
        c
    }

    #[test]
    fn text_marks_band_breach_and_flag() {
        let text = chart().render_text();
        assert!(text.starts_with("job makespan [us]"));
        assert_eq!(text.lines().count(), 5);
        let last = text.lines().last().unwrap();
        assert!(last.contains("!band") && last.contains("<<"), "{last}");
        assert!(!text.lines().nth(1).unwrap().contains("!band"));
    }

    #[test]
    fn svg_panel_draws_series_band_and_marker() {
        let svg = render_trend_svg(&[chart(), TrendChart::new("empty", "us")]);
        assert!(svg.starts_with("<svg "));
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert!(svg.contains("#eef2e6"), "band corridor is shaded");
        assert!(svg.contains("job makespan"));
        assert!(svg.contains("empty"), "empty charts still get a title");
        assert_eq!(svg.matches("<line").count(), 1, "one flag marker");
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let mut c = TrendChart::new("flat", "us");
        c.push("a", 5.0);
        c.push("b", 5.0);
        let svg = render_trend_svg(&[c]);
        assert!(!svg.contains("NaN") && !svg.contains("inf"));
    }
}
