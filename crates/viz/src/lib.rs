//! # granula-viz
//!
//! The Granula **visualization** stage (paper §3.3, P4): archived
//! performance results rendered as human-readable visuals for efficient
//! navigation and presentation among analysts.
//!
//! Renderers mirror the paper's figures:
//!
//! * [`breakdown`] — stacked runtime-decomposition bars (Figure 5),
//! * [`timeline`] — per-node resource series mapped onto operation phases
//!   (Figures 6–7),
//! * [`gantt`] — per-worker operation charts exposing imbalance (Figure 8),
//! * [`tree`] — performance-model and operation hierarchies (Figures 1, 4),
//! * [`matrix`] — the cross-platform choke-point matrix (engines ×
//!   algorithms, each cell naming the dominant domain phase),
//! * [`report`] — a self-contained HTML report combining everything,
//! * [`trend`] — metric trends over an archive history, the rendering
//!   side of the `granula-cli regress` service.
//!
//! Every renderer has a plain-text (terminal) output; the timeline,
//! breakdown, and gantt renderers also emit dependency-free SVG via
//! [`svg::SvgCanvas`].

pub mod breakdown;
pub mod diff;
pub mod gantt;
pub mod matrix;
pub mod report;
pub mod svg;
pub mod timeline;
pub mod tree;
pub mod trend;

pub use breakdown::{BreakdownChart, BreakdownRow, Segment};
pub use diff::{diff_archives, render_diff, DiffRow};
pub use gantt::GanttChart;
pub use matrix::{MatrixCell, MatrixChart};
pub use svg::SvgCanvas;
pub use timeline::TimelineChart;
pub use trend::{render_trend_svg, TrendChart};
