//! Tree renderers: performance models (Figure 4) and operation hierarchies
//! (Figure 1).

use granula_model::{AbstractionLevel, OperationTree, PerformanceModel};

/// Renders a performance model as an indented tree grouped by parent, with
/// level annotations — a textual Figure 4.
pub fn render_model(model: &PerformanceModel) -> String {
    let mut out = format!(
        "Performance model `{}` for platform {} ({} operation types, {} levels)\n",
        model.name,
        model.platform,
        model.types.len(),
        model.max_depth()
    );
    // Roots are types without parents.
    let roots: Vec<_> = model.types.iter().filter(|t| t.parent.is_none()).collect();
    for root in roots {
        render_model_rec(model, &root.id, 0, &mut out);
    }
    out
}

fn render_model_rec(
    model: &PerformanceModel,
    id: &granula_model::OperationTypeId,
    indent: usize,
    out: &mut String,
) {
    let Some(ty) = model.get_type(id) else { return };
    let mut flags = Vec::new();
    if ty.iterative {
        flags.push("iterative");
    }
    if ty.parallel {
        flags.push("parallel");
    }
    let flags = if flags.is_empty() {
        String::new()
    } else {
        format!(" [{}]", flags.join(","))
    };
    out.push_str(&format!(
        "{}{} @ {}  (level {}{})\n",
        "  ".repeat(indent),
        ty.id.mission_kind,
        ty.id.actor_kind,
        ty.level.depth(),
        flags
    ));
    if !ty.description.is_empty() {
        out.push_str(&format!("{}  ~ {}\n", "  ".repeat(indent), ty.description));
    }
    let children: Vec<_> = model
        .types
        .iter()
        .filter(|t| t.parent.as_ref() == Some(id))
        .map(|t| t.id.clone())
        .collect();
    for child in children {
        render_model_rec(model, &child, indent + 1, out);
    }
}

/// Renders an observed operation tree with durations and info counts — a
/// textual Figure 1. `max_depth` prunes the output (0 = root only).
pub fn render_operation_tree(tree: &OperationTree, max_depth: usize) -> String {
    let mut out = String::new();
    let Some(root) = tree.root() else {
        return String::from("(empty tree)\n");
    };
    let mut stack = vec![(root, 0usize)];
    while let Some((id, depth)) = stack.pop() {
        let op = tree.op(id);
        let duration = op
            .duration_us()
            .map(|d| format!("{:.3}s", d as f64 / 1e6))
            .unwrap_or_else(|| "?".into());
        out.push_str(&format!(
            "{}{}  [{} | {} infos]\n",
            "  ".repeat(depth),
            op.label(),
            duration,
            op.infos.len()
        ));
        if depth < max_depth {
            for &c in op.children.iter().rev() {
                stack.push((c, depth + 1));
            }
        } else if !op.children.is_empty() {
            out.push_str(&format!(
                "{}… {} filial operations pruned\n",
                "  ".repeat(depth + 1),
                tree.subtree(id).len() - 1
            ));
        }
    }
    out
}

/// Renders a flat listing of selected operations — the output format of
/// `granula-cli archive query`. Each row shows the operation's path from
/// the root (mission kinds joined by `/`), its actor, duration, and start
/// time, so query hits are readable without re-rendering the whole tree.
pub fn render_ops(tree: &OperationTree, ids: &[granula_model::OpId]) -> String {
    let mut out = String::new();
    for &id in ids {
        let op = tree.op(id);
        // Path of mission names from root to the op.
        let mut path = vec![op.mission.to_string()];
        let mut cur = op.parent;
        while let Some(pid) = cur {
            let p = tree.op(pid);
            path.push(p.mission.to_string());
            cur = p.parent;
        }
        path.reverse();
        let duration = op
            .duration_us()
            .map(|d| format!("{:.3}s", d as f64 / 1e6))
            .unwrap_or_else(|| "?".into());
        let start = op
            .start_us()
            .map(|s| format!("@{:.3}s", s as f64 / 1e6))
            .unwrap_or_else(|| "@?".into());
        out.push_str(&format!(
            "{:<56} {:<12} {:>10} {:>12}\n",
            path.join("/"),
            op.actor.to_string(),
            duration,
            start
        ));
    }
    out
}

/// Renders only the types at one abstraction level (the "focus only on the
/// system components of interest" view of R3).
pub fn render_level(model: &PerformanceModel, level: AbstractionLevel) -> String {
    let mut out = format!("Level {} of `{}`:\n", level.depth(), model.name);
    for ty in model.types_at(level) {
        out.push_str(&format!(
            "  {} @ {}\n",
            ty.id.mission_kind, ty.id.actor_kind
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTypeDef};

    fn model() -> PerformanceModel {
        PerformanceModel::new("m", "P")
            .with_type(OperationTypeDef::new(
                "Job",
                "Job",
                AbstractionLevel::Domain,
            ))
            .with_type(
                OperationTypeDef::new("Job", "LoadGraph", AbstractionLevel::Domain)
                    .child_of("Job", "Job")
                    .describe("loads data"),
            )
            .with_type(
                OperationTypeDef::new("Worker", "LocalLoad", AbstractionLevel::System)
                    .child_of("Job", "LoadGraph")
                    .parallel(),
            )
    }

    #[test]
    fn model_rendering_is_indented_by_hierarchy() {
        let s = render_model(&model());
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("3 operation types"));
        assert!(s.contains("Job @ Job  (level 1)"));
        assert!(s.contains("  LoadGraph @ Job"));
        assert!(s.contains("    LocalLoad @ Worker"));
        assert!(s.contains("[parallel]"));
        assert!(s.contains("~ loads data"));
    }

    #[test]
    fn operation_tree_rendering_prunes_below_max_depth() {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        t.set_info(job, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(job, Info::raw(names::END_TIME, InfoValue::Int(2_000_000)))
            .unwrap();
        let load = t
            .add_child(job, Actor::new("Job", "0"), Mission::new("Load", "0"))
            .unwrap();
        t.add_child(
            load,
            Actor::new("Worker", "1"),
            Mission::new("LocalLoad", "0"),
        )
        .unwrap();
        let full = render_operation_tree(&t, 5);
        assert!(full.contains("LocalLoad-0 @ Worker-1"));
        assert!(full.contains("2.000s"));
        let pruned = render_operation_tree(&t, 1);
        assert!(!pruned.contains("LocalLoad"));
        assert!(pruned.contains("1 filial operations pruned"));
    }

    #[test]
    fn level_view_lists_only_that_level() {
        let s = render_level(&model(), AbstractionLevel::System);
        assert!(s.contains("LocalLoad"));
        assert!(!s.contains("LoadGraph @ Job"));
    }

    #[test]
    fn empty_tree_renders_placeholder() {
        assert_eq!(
            render_operation_tree(&OperationTree::new(), 3),
            "(empty tree)\n"
        );
    }
}
