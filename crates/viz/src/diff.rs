//! Archive diffing: where did the time go between two runs?
//!
//! Matches operations across two archives by their hierarchical path
//! (`GiraphJob-0/ProcessGraph-0/Superstep-4/...`) and reports the largest
//! duration changes — the drill-down view behind a failed performance-
//! regression check.

use std::collections::BTreeMap;

use granula_archive::JobArchive;
use granula_model::{OpId, OperationTree};

/// One matched (or unmatched) operation pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Hierarchical operation path.
    pub path: String,
    /// Duration in the baseline, µs (`None` = operation absent there).
    pub baseline_us: Option<u64>,
    /// Duration in the candidate, µs.
    pub candidate_us: Option<u64>,
}

impl DiffRow {
    /// Absolute duration change, µs (positive = candidate slower). Missing
    /// sides count as zero, so an appearing operation is all-regression.
    pub fn delta_us(&self) -> i64 {
        self.candidate_us.unwrap_or(0) as i64 - self.baseline_us.unwrap_or(0) as i64
    }

    /// Relative change; `None` when the baseline is absent or zero.
    pub fn relative(&self) -> Option<f64> {
        let base = self.baseline_us? as f64;
        if base == 0.0 {
            return None;
        }
        Some(self.delta_us() as f64 / base)
    }
}

fn paths_of(tree: &OperationTree) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    let Some(root) = tree.root() else { return out };
    let mut stack: Vec<(OpId, String)> = vec![(root, tree.op(root).label())];
    while let Some((id, path)) = stack.pop() {
        let op = tree.op(id);
        if let Some(d) = op.duration_us() {
            out.insert(path.clone(), d);
        }
        for &c in &op.children {
            stack.push((c, format!("{path}/{}", tree.op(c).label())));
        }
    }
    out
}

/// Diffs two archives; rows sorted by |delta| descending, unchanged
/// operations (|delta| < `min_delta_us`) omitted.
pub fn diff_archives(
    baseline: &JobArchive,
    candidate: &JobArchive,
    min_delta_us: u64,
) -> Vec<DiffRow> {
    let a = paths_of(&baseline.tree);
    let b = paths_of(&candidate.tree);
    let mut rows = Vec::new();
    for (path, &dur) in &a {
        rows.push(DiffRow {
            path: path.clone(),
            baseline_us: Some(dur),
            candidate_us: b.get(path).copied(),
        });
    }
    for (path, &dur) in &b {
        if !a.contains_key(path) {
            rows.push(DiffRow {
                path: path.clone(),
                baseline_us: None,
                candidate_us: Some(dur),
            });
        }
    }
    rows.retain(|r| r.delta_us().unsigned_abs() >= min_delta_us);
    // Largest change first; ties broken toward deeper (more specific) paths,
    // since a child explains its parent.
    rows.sort_by_key(|r| {
        (
            std::cmp::Reverse(r.delta_us().unsigned_abs()),
            std::cmp::Reverse(r.path.matches('/').count()),
        )
    });
    rows
}

/// Renders a diff as a signed-bar text table (top `limit` rows).
pub fn render_diff(rows: &[DiffRow], limit: usize) -> String {
    if rows.is_empty() {
        return String::from("(no differences above threshold)\n");
    }
    let max_delta = rows
        .iter()
        .map(|r| r.delta_us().unsigned_abs())
        .max()
        .expect("non-empty")
        .max(1) as f64;
    let mut out = format!(
        "{:<56} {:>10} {:>10} {:>9}  {}\n",
        "operation path", "baseline", "candidate", "change", "impact"
    );
    for r in rows.iter().take(limit) {
        let delta = r.delta_us();
        let bar_len = ((delta.unsigned_abs() as f64 / max_delta) * 16.0).round() as usize;
        let bar: String = if delta >= 0 {
            format!("+{}", "#".repeat(bar_len))
        } else {
            format!("-{}", "#".repeat(bar_len))
        };
        let fmt_side = |v: Option<u64>| match v {
            Some(us) => format!("{:.2}s", us as f64 / 1e6),
            None => "-".into(),
        };
        let change = match r.relative() {
            Some(rel) => format!("{:+.1}%", 100.0 * rel),
            None => "new".into(),
        };
        // Deep paths: keep the tail, which names the operation. The cut
        // point must land on a char boundary (paths may carry non-ASCII
        // actor/mission names from foreign archives).
        let path = if r.path.len() > 54 {
            let mut cut = r.path.len() - 53;
            while !r.path.is_char_boundary(cut) {
                cut += 1;
            }
            format!("…{}", &r.path[cut..])
        } else {
            r.path.clone()
        };
        out.push_str(&format!(
            "{:<56} {:>10} {:>10} {:>9}  {}\n",
            path,
            fmt_side(r.baseline_us),
            fmt_side(r.candidate_us),
            change,
            bar
        ));
    }
    if rows.len() > limit {
        out.push_str(&format!("… {} more rows\n", rows.len() - limit));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_archive::JobMeta;
    use granula_model::{names, Actor, Info, InfoValue, Mission};

    fn archive(load_us: i64, extra_op: bool) -> JobArchive {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        t.set_info(job, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(
            job,
            Info::raw(names::END_TIME, InfoValue::Int(load_us + 50)),
        )
        .unwrap();
        let load = t
            .add_child(job, Actor::new("Job", "0"), Mission::new("Load", "0"))
            .unwrap();
        t.set_info(load, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(load, Info::raw(names::END_TIME, InfoValue::Int(load_us)))
            .unwrap();
        if extra_op {
            let x = t
                .add_child(job, Actor::new("Job", "0"), Mission::new("Extra", "0"))
                .unwrap();
            t.set_info(x, Info::raw(names::START_TIME, InfoValue::Int(load_us)))
                .unwrap();
            t.set_info(x, Info::raw(names::END_TIME, InfoValue::Int(load_us + 30)))
                .unwrap();
        }
        JobArchive::new(JobMeta::default(), t)
    }

    #[test]
    fn diff_ranks_largest_change_first() {
        let rows = diff_archives(&archive(100, false), &archive(400, false), 1);
        assert_eq!(rows.len(), 2); // job + load both changed
        assert!(rows[0].path.ends_with("Load-0 @ Job-0"));
        assert_eq!(rows[0].delta_us(), 300);
        assert!((rows[0].relative().unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn appearing_operation_reported_as_new() {
        let rows = diff_archives(&archive(100, false), &archive(100, true), 1);
        let extra = rows
            .iter()
            .find(|r| r.path.contains("Extra"))
            .expect("found");
        assert_eq!(extra.baseline_us, None);
        assert_eq!(extra.relative(), None);
        assert_eq!(extra.delta_us(), 30);
    }

    #[test]
    fn threshold_filters_noise() {
        let rows = diff_archives(&archive(100, false), &archive(102, false), 10);
        assert!(rows.is_empty());
    }

    #[test]
    fn render_shows_bars_and_truncates() {
        let rows = diff_archives(&archive(100, false), &archive(400, true), 1);
        let text = render_diff(&rows, 2);
        assert!(text.contains("+################"));
        assert!(text.contains("more rows"));
        assert!(text.contains("+300.0%"));
        assert_eq!(render_diff(&[], 5), "(no differences above threshold)\n");
    }

    #[test]
    fn long_non_ascii_paths_truncate_on_char_boundaries() {
        // A deep path whose byte length puts the 53-byte cut inside a
        // multi-byte character must not panic.
        let rows = vec![DiffRow {
            path: "Jöb-0/".repeat(12),
            baseline_us: Some(1_000),
            candidate_us: Some(5_000),
        }];
        let text = render_diff(&rows, 5);
        assert!(text.contains('…'), "{text}");
    }

    #[test]
    fn identical_archives_diff_empty() {
        let rows = diff_archives(&archive(100, true), &archive(100, true), 1);
        assert!(rows.is_empty());
    }
}
