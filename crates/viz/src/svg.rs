//! A minimal, dependency-free SVG canvas.
//!
//! Only the primitives the chart renderers need: rectangles, lines,
//! polylines, and text. Coordinates are f64 user units; all output is
//! escaped and deterministic.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    body: String,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn fmt_f(v: f64) -> String {
    // Two decimals are plenty for chart coordinates and keep files small.
    format!("{v:.2}")
}

impl SvgCanvas {
    /// Creates a canvas of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        SvgCanvas {
            width,
            height,
            body: String::new(),
        }
    }

    /// Canvas width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Canvas height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Adds a filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            r#"<rect x="{}" y="{}" width="{}" height="{}" fill="{}"/>"#,
            fmt_f(x),
            fmt_f(y),
            fmt_f(w.max(0.0)),
            fmt_f(h.max(0.0)),
            esc(fill)
        );
    }

    /// Adds a line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{}" stroke-width="{}"/>"#,
            fmt_f(x1),
            fmt_f(y1),
            fmt_f(x2),
            fmt_f(y2),
            esc(stroke),
            fmt_f(width)
        );
    }

    /// Adds a polyline through the points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.len() < 2 {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|&(x, y)| format!("{},{}", fmt_f(x), fmt_f(y)))
            .collect();
        let _ = writeln!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="{}"/>"#,
            pts.join(" "),
            esc(stroke),
            fmt_f(width)
        );
    }

    /// Adds text anchored at `(x, y)`.
    pub fn text(&mut self, x: f64, y: f64, size: f64, content: &str) {
        let _ = writeln!(
            self.body,
            r#"<text x="{}" y="{}" font-size="{}" font-family="sans-serif">{}</text>"#,
            fmt_f(x),
            fmt_f(y),
            fmt_f(size),
            esc(content)
        );
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
             viewBox=\"0 0 {} {}\">\n{}</svg>\n",
            fmt_f(self.width),
            fmt_f(self.height),
            fmt_f(self.width),
            fmt_f(self.height),
            self.body
        )
    }
}

/// A small categorical palette (color-blind-safe-ish, stable order).
pub const PALETTE: [&str; 8] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb", "#222255",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure_is_valid() {
        let mut c = SvgCanvas::new(100.0, 50.0);
        c.rect(0.0, 0.0, 10.0, 10.0, "#fff");
        c.line(0.0, 0.0, 5.0, 5.0, "black", 1.0);
        c.polyline(&[(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)], "red", 0.5);
        c.text(1.0, 1.0, 12.0, "hello <world> & \"quotes\"");
        let s = c.finish();
        assert!(s.starts_with("<svg "));
        assert!(s.trim_end().ends_with("</svg>"));
        assert!(s.contains("&lt;world&gt; &amp; &quot;quotes&quot;"));
        assert_eq!(s.matches("<rect").count(), 1);
        assert_eq!(s.matches("<polyline").count(), 1);
    }

    #[test]
    fn degenerate_polyline_is_skipped() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.polyline(&[(0.0, 0.0)], "red", 1.0);
        assert!(!c.finish().contains("polyline"));
    }

    #[test]
    fn negative_rect_sizes_clamp_to_zero() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.rect(0.0, 0.0, -5.0, 5.0, "#000");
        assert!(c.finish().contains(r#"width="0.00""#));
    }
}
