//! Self-contained HTML report for one archive: the shareable artifact of
//! the visualization stage.

use granula_archive::{JobArchive, ServeSnapshot};
use granula_monitor::{EnvLog, ResourceKind};

use crate::breakdown::{BreakdownChart, BreakdownRow};
use crate::gantt::GanttChart;
use crate::timeline::TimelineChart;
use crate::tree::render_operation_tree;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Builds a single-file HTML report: metadata, domain breakdown, CPU
/// timeline with phase bands, a worker Gantt of the Compute operations, and
/// the operation tree (pruned).
pub fn html_report(archive: &JobArchive, env: &EnvLog) -> String {
    let _span = granula_trace::span!("visualization", "html_report {}", archive.meta.job_id);
    let meta = &archive.meta;
    let mut html = String::new();
    html.push_str("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n");
    html.push_str(&format!(
        "<title>Granula report — {}</title>\n",
        esc(&meta.job_id)
    ));
    html.push_str(
        "<style>body{font-family:sans-serif;margin:24px;}pre{background:#f7f7f7;\
         padding:8px;overflow-x:auto;}h2{border-bottom:1px solid #ddd;}</style>\n</head><body>\n",
    );
    html.push_str(&format!(
        "<h1>Granula performance report: {}</h1>\n",
        esc(&meta.job_id)
    ));
    html.push_str(&format!(
        "<p>Platform <b>{}</b>, algorithm <b>{}</b>, dataset <b>{}</b>, {} nodes, \
         model <code>{}</code>. Total runtime: <b>{:.2} s</b>. {} operations, {} infos.</p>\n",
        esc(&meta.platform),
        esc(&meta.algorithm),
        esc(&meta.dataset),
        meta.nodes,
        esc(&meta.model),
        archive.total_runtime_us().unwrap_or(0) as f64 / 1e6,
        archive.num_operations(),
        archive.num_infos(),
    ));

    // Domain breakdown.
    if let Some(total) = archive.total_runtime_us() {
        let mut row = BreakdownRow::new(meta.platform.clone(), total);
        for kind in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            let d = archive.total_duration_of_us(kind);
            if d > 0 {
                row = row.with_segment(kind, d);
            }
        }
        let mut chart = BreakdownChart::new();
        chart.add_row(row);
        html.push_str("<h2>Domain-level job decomposition</h2>\n");
        html.push_str(&chart.render_svg());
    }

    // CPU timeline with domain phase bands.
    let mut timeline = TimelineChart::new(env, ResourceKind::Cpu);
    if let Some(root) = archive.tree.root() {
        for kind in [
            "Startup",
            "LoadGraph",
            "ProcessGraph",
            "OffloadGraph",
            "Cleanup",
        ] {
            if let Some(id) = archive.tree.child_by_mission(root, kind) {
                let op = archive.tree.op(id);
                if let (Some(s), Some(e)) = (op.start_us(), op.end_us()) {
                    timeline = timeline.with_phase(kind, s, e);
                }
            }
        }
    }
    html.push_str("<h2>CPU utilization per node</h2>\n");
    html.push_str(&timeline.render_svg());

    // Memory timeline, when the environment log carries it.
    if !env.cumulative(ResourceKind::Memory).is_empty() {
        let mut mem = TimelineChart::new(env, ResourceKind::Memory);
        if let Some(root) = archive.tree.root() {
            for kind in [
                "Startup",
                "LoadGraph",
                "ProcessGraph",
                "OffloadGraph",
                "Cleanup",
            ] {
                if let Some(id) = archive.tree.child_by_mission(root, kind) {
                    let op = archive.tree.op(id);
                    if let (Some(s), Some(e)) = (op.start_us(), op.end_us()) {
                        mem = mem.with_phase(kind, s, e);
                    }
                }
            }
        }
        html.push_str("<h2>Memory (RSS) per node</h2>\n");
        html.push_str(&mem.render_svg());
    }

    // Worker Gantt of the compute-level operations, if modeled.
    let gantt = GanttChart::from_archive(
        archive,
        &[
            "PreStep", "Compute", "PostStep", "Gather", "Apply", "Scatter",
        ],
        "Compute",
    );
    if !gantt.is_empty() {
        html.push_str("<h2>Per-worker operation timeline</h2>\n");
        html.push_str(&gantt.render_svg());
    }

    // Pruned operation tree.
    html.push_str("<h2>Operation hierarchy (pruned to 3 levels)</h2>\n<pre>");
    html.push_str(&esc(&render_operation_tree(&archive.tree, 3)));
    html.push_str("</pre>\n</body></html>\n");
    html
}

/// Renders a daemon's `STAT` snapshot (`granula-cli serve`) as a small
/// self-contained HTML status panel: fleet shape, cache effectiveness,
/// admission/eviction pressure. Feed it the JSON-decoded
/// [`ServeSnapshot`] a `STAT` round trip returns.
pub fn serve_status_html(snapshot: &ServeSnapshot) -> String {
    let probes = snapshot.cache_hits + snapshot.cache_misses;
    let hit_rate = if probes == 0 {
        0.0
    } else {
        100.0 * snapshot.cache_hits as f64 / probes as f64
    };
    let mut html = String::new();
    html.push_str("<section class=\"serve-status\">\n<h2>Archive daemon status</h2>\n");
    html.push_str(&format!(
        "<p><b>{}</b> jobs over <b>{}</b> shards, {} resident (decoded) — \
         {} generation swaps published.</p>\n",
        snapshot.jobs, snapshot.shards, snapshot.resident_jobs, snapshot.swaps,
    ));
    html.push_str("<table border=\"1\" cellpadding=\"4\" cellspacing=\"0\">\n");
    html.push_str("<tr><th>counter</th><th>value</th></tr>\n");
    for (name, value) in [
        ("queries", snapshot.queries),
        ("batches", snapshot.batches),
        ("result-cache hits", snapshot.cache_hits),
        ("result-cache misses", snapshot.cache_misses),
        ("result evictions", snapshot.result_evictions),
        ("job admissions", snapshot.admissions),
        ("resident evictions", snapshot.resident_evictions),
        ("decode races", snapshot.decode_races),
    ] {
        html.push_str(&format!("<tr><td>{name}</td><td>{value}</td></tr>\n"));
    }
    html.push_str("</table>\n");
    html.push_str(&format!(
        "<p>Result-cache hit rate: <b>{hit_rate:.1}%</b> over {probes} probes.</p>\n</section>\n"
    ));
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_archive::JobMeta;
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};
    use granula_monitor::ResourceSample;

    fn archive() -> JobArchive {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
            .unwrap();
        t.set_info(job, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(job, Info::raw(names::END_TIME, InfoValue::Int(10_000_000)))
            .unwrap();
        let load = t
            .add_child(job, Actor::new("Job", "0"), Mission::new("LoadGraph", "0"))
            .unwrap();
        t.set_info(load, Info::raw(names::START_TIME, InfoValue::Int(0)))
            .unwrap();
        t.set_info(load, Info::raw(names::END_TIME, InfoValue::Int(6_000_000)))
            .unwrap();
        JobArchive::new(
            JobMeta {
                job_id: "demo".into(),
                platform: "Giraph".into(),
                algorithm: "BFS".into(),
                dataset: "dg".into(),
                nodes: 2,
                model: "giraph-v4".into(),
            },
            t,
        )
    }

    fn env() -> EnvLog {
        let mut e = EnvLog::new();
        for t in 0..10u64 {
            e.push(ResourceSample {
                time_us: t * 1_000_000,
                node: "n0".into(),
                kind: ResourceKind::Cpu,
                value: t as f64,
            });
        }
        e
    }

    #[test]
    fn report_contains_all_sections() {
        let html = html_report(&archive(), &env());
        assert!(html.contains("<!DOCTYPE html>"));
        assert!(html.contains("Granula performance report: demo"));
        assert!(html.contains("Domain-level job decomposition"));
        assert!(html.contains("CPU utilization per node"));
        assert!(html.contains("Operation hierarchy"));
        assert!(html.contains("<svg"));
        // No unescaped raw labels that could break HTML.
        assert!(!html.contains("<LoadGraph"));
    }

    #[test]
    fn gantt_section_omitted_without_worker_ops() {
        let html = html_report(&archive(), &env());
        assert!(!html.contains("Per-worker operation timeline"));
    }

    #[test]
    fn memory_section_present_only_with_memory_samples() {
        let html = html_report(&archive(), &env());
        assert!(!html.contains("Memory (RSS) per node"));
        let mut e = env();
        e.push(ResourceSample {
            time_us: 0,
            node: "n0".into(),
            kind: ResourceKind::Memory,
            value: 1e9,
        });
        let html = html_report(&archive(), &e);
        assert!(html.contains("Memory (RSS) per node"));
    }

    #[test]
    fn serve_status_panel_reports_counters_and_hit_rate() {
        let snapshot = ServeSnapshot {
            queries: 100,
            batches: 20,
            cache_hits: 75,
            cache_misses: 25,
            admissions: 5,
            swaps: 2,
            jobs: 8,
            shards: 4,
            resident_jobs: 3,
            ..ServeSnapshot::default()
        };
        let html = serve_status_html(&snapshot);
        assert!(html.contains("Archive daemon status"));
        assert!(html.contains("<b>8</b> jobs over <b>4</b> shards"));
        assert!(html.contains("75.0%"));
        assert!(html.contains("<td>decode races</td><td>0</td>"));

        // No probes yet: the rate degrades to zero, not NaN.
        let cold = serve_status_html(&ServeSnapshot::default());
        assert!(cold.contains("0.0%"));
    }
}
