//! Per-worker operation Gantt charts: paper Figure 8.
//!
//! One row per actor (worker), one bar per operation instance, over a time
//! window. Rendering Compute operations against their PreStep/PostStep
//! siblings exposes both superstep skew (Compute-4 longer than the rest)
//! and worker imbalance (fast workers idling at the barrier).

use granula_archive::JobArchive;
use granula_model::Operation;

use crate::svg::{SvgCanvas, PALETTE};

/// Mission kinds drawn as failure-recovery work: checkpointing, crash
/// repair, and replay of lost progress. Rendered distinctly so the cost of
/// a fault stands out against healthy computation and overhead.
pub const RECOVERY_KINDS: &[&str] = &[
    "Checkpoint",
    "FailedSuperstep",
    "Recover",
    "DetectFailure",
    "Provision",
    "LoadCheckpoint",
    "Replay",
    "Respawn",
];

/// Solid fill for recovery bars in SVG output.
const RECOVERY_COLOR: &str = "#d62728";

/// A bar to draw: `(actor label, mission label, start, end, emphasized)`.
#[derive(Debug, Clone, PartialEq)]
struct Bar {
    actor: String,
    mission: String,
    start_us: u64,
    end_us: u64,
    emphasized: bool,
    recovery: bool,
}

/// A Figure-8-style chart builder.
#[derive(Debug, Clone)]
pub struct GanttChart {
    bars: Vec<Bar>,
    window: Option<(u64, u64)>,
}

impl GanttChart {
    /// Collects all operations of the given mission kinds from the archive,
    /// one row per distinct actor. `emphasized_kind` (e.g. `"Compute"`) is
    /// drawn solid; everything else is drawn as overhead.
    pub fn from_archive(
        archive: &JobArchive,
        mission_kinds: &[&str],
        emphasized_kind: &str,
    ) -> Self {
        let _span = granula_trace::span!(
            "visualization",
            "gantt.from_archive {}",
            archive.meta.job_id
        );
        let mut bars = Vec::new();
        let collect = |op: &Operation, bars: &mut Vec<Bar>| {
            if let (Some(s), Some(e)) = (op.start_us(), op.end_us()) {
                bars.push(Bar {
                    actor: op.actor.to_string(),
                    mission: op.mission.to_string(),
                    start_us: s,
                    end_us: e,
                    emphasized: op.mission.kind == emphasized_kind,
                    recovery: RECOVERY_KINDS.contains(&op.mission.kind.as_str()),
                });
            }
        };
        for kind in mission_kinds {
            for op in archive.tree.by_mission_kind(kind) {
                collect(op, &mut bars);
            }
        }
        bars.sort_by(|a, b| a.actor.cmp(&b.actor).then(a.start_us.cmp(&b.start_us)));
        GanttChart { bars, window: None }
    }

    /// Restricts rendering to a time window.
    pub fn with_window(mut self, start_us: u64, end_us: u64) -> Self {
        self.window = Some((start_us, end_us));
        self
    }

    fn effective_window(&self) -> Option<(u64, u64)> {
        if let Some(w) = self.window {
            return Some(w);
        }
        let lo = self.bars.iter().map(|b| b.start_us).min()?;
        let hi = self.bars.iter().map(|b| b.end_us).max()?;
        Some((lo, hi))
    }

    fn rows(&self) -> Vec<String> {
        let mut rows: Vec<String> = self.bars.iter().map(|b| b.actor.clone()).collect();
        rows.dedup();
        rows
    }

    /// Renders as terminal text: emphasized bars as `#`, overhead as `.`,
    /// idle as spaces.
    pub fn render_text(&self, width: usize) -> String {
        let _span = granula_trace::span!(
            "visualization",
            "gantt.render_text bars={}",
            self.bars.len()
        );
        // A zero/one-column chart would underflow the column math below.
        let width = width.max(2);
        let Some((lo, hi)) = self.effective_window() else {
            return String::from("(no operations)\n");
        };
        if hi <= lo {
            return String::from("(empty window)\n");
        }
        let col = |t: u64| -> usize {
            (((t.clamp(lo, hi) - lo) as f64 / (hi - lo) as f64) * (width - 1) as f64) as usize
        };
        let mut out = String::new();
        for actor in self.rows() {
            let mut line = vec![b' '; width];
            for b in self.bars.iter().filter(|b| b.actor == actor) {
                if b.end_us < lo || b.start_us > hi {
                    continue;
                }
                let (a, z) = (col(b.start_us), col(b.end_us));
                for cell in line.iter_mut().take(z + 1).skip(a) {
                    // Recovery overwrites everything; emphasized work
                    // overwrites overhead marks.
                    if b.recovery {
                        *cell = b'!';
                    } else if b.emphasized && *cell != b'!' {
                        *cell = b'#';
                    } else if *cell == b' ' {
                        *cell = b'.';
                    }
                }
            }
            out.push_str(&format!(
                "{:<10} |{}|\n",
                actor,
                String::from_utf8(line).expect("ascii gantt")
            ));
        }
        out.push_str(&format!(
            "{:<10}  {:.2}s{}{:.2}s   (#=computation, .=overhead, !=recovery)\n",
            "",
            lo as f64 / 1e6,
            " ".repeat(width.saturating_sub(12)),
            hi as f64 / 1e6
        ));
        out
    }

    /// Renders as SVG: emphasized bars in color (per mission id), overhead
    /// in gray — the visual of Figure 8.
    pub fn render_svg(&self) -> String {
        let _span =
            granula_trace::span!("visualization", "gantt.render_svg bars={}", self.bars.len());
        let Some((lo, hi)) = self.effective_window() else {
            return SvgCanvas::new(300.0, 60.0).finish();
        };
        let rows = self.rows();
        let (left, top, row_h) = (86.0, 16.0, 26.0);
        let w = 780.0;
        let plot_w = w - left - 16.0;
        let h = top + rows.len() as f64 * row_h + 40.0;
        let mut c = SvgCanvas::new(w, h);
        let x_of = |t: u64| left + plot_w * (t.clamp(lo, hi) - lo) as f64 / (hi - lo).max(1) as f64;
        for (r, actor) in rows.iter().enumerate() {
            let y = top + r as f64 * row_h;
            c.text(4.0, y + 15.0, 11.0, actor);
            for b in self.bars.iter().filter(|b| &b.actor == actor) {
                if b.end_us < lo || b.start_us > hi {
                    continue;
                }
                let (x0, x1) = (x_of(b.start_us), x_of(b.end_us));
                if b.recovery {
                    c.rect(x0, y + 2.0, x1 - x0, row_h - 8.0, RECOVERY_COLOR);
                    if x1 - x0 > 56.0 {
                        c.text(x0 + 2.0, y + 15.0, 9.0, &b.mission);
                    }
                } else if b.emphasized {
                    // Color by mission id so e.g. Compute-4 aligns vertically.
                    let idx = b
                        .mission
                        .rsplit('-')
                        .next()
                        .and_then(|s| s.parse::<usize>().ok())
                        .unwrap_or(0);
                    c.rect(
                        x0,
                        y + 2.0,
                        x1 - x0,
                        row_h - 8.0,
                        PALETTE[idx % PALETTE.len()],
                    );
                    if x1 - x0 > 56.0 {
                        c.text(x0 + 2.0, y + 15.0, 9.0, &b.mission);
                    }
                } else {
                    c.rect(x0, y + 6.0, x1 - x0, row_h - 16.0, "#c9c9c9");
                }
            }
        }
        c.text(left, h - 10.0, 10.0, &format!("{:.2}s", lo as f64 / 1e6));
        c.text(
            w - 60.0,
            h - 10.0,
            10.0,
            &format!("{:.2}s", hi as f64 / 1e6),
        );
        c.finish()
    }

    /// Number of bars collected.
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// True when no bars were collected.
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use granula_archive::{JobArchive, JobMeta};
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn one_bar() -> JobArchive {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        let c = t
            .add_child(
                job,
                Actor::new("Worker", "0"),
                Mission::new("Compute", "12"),
            )
            .unwrap();
        t.set_info(c, Info::raw(names::START_TIME, InfoValue::Int(1_000_000)))
            .unwrap();
        t.set_info(c, Info::raw(names::END_TIME, InfoValue::Int(2_000_000)))
            .unwrap();
        JobArchive::new(JobMeta::default(), t)
    }

    #[test]
    fn degenerate_window_renders_placeholder() {
        let g = GanttChart::from_archive(&one_bar(), &["Compute"], "Compute").with_window(5, 5);
        assert_eq!(g.render_text(40), "(empty window)\n");
    }

    #[test]
    fn svg_colors_by_mission_id() {
        // Mission id 12 -> palette index 12 % len.
        let s = GanttChart::from_archive(&one_bar(), &["Compute"], "Compute").render_svg();
        assert!(s.contains(crate::svg::PALETTE[12 % crate::svg::PALETTE.len()]));
    }

    #[test]
    fn recovery_operations_render_distinctly() {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        let mut add = |actor: (&str, &str), mission: (&str, &str), s: i64, e: i64| {
            let id = t
                .add_child(
                    job,
                    Actor::new(actor.0, actor.1),
                    Mission::new(mission.0, mission.1),
                )
                .unwrap();
            t.set_info(id, Info::raw(names::START_TIME, InfoValue::Int(s)))
                .unwrap();
            t.set_info(id, Info::raw(names::END_TIME, InfoValue::Int(e)))
                .unwrap();
        };
        add(("Worker", "0"), ("Compute", "1"), 0, 400_000);
        add(("Master", "0"), ("Recover", "0"), 400_000, 700_000);
        add(("Master", "0"), ("Replay", "1"), 700_000, 900_000);
        let a = JobArchive::new(JobMeta::default(), t);
        let g = GanttChart::from_archive(&a, &["Compute", "Recover", "Replay"], "Compute");
        let text = g.render_text(60);
        assert!(text.contains('!'), "{text}");
        assert!(text.contains('#'), "{text}");
        let svg = g.render_svg();
        assert!(
            svg.contains(super::RECOVERY_COLOR),
            "recovery color missing"
        );
    }

    #[test]
    fn bars_outside_window_do_not_render() {
        let g =
            GanttChart::from_archive(&one_bar(), &["Compute"], "Compute").with_window(0, 500_000);
        let text = g.render_text(40);
        // Row exists but carries no computation cells inside the window.
        assert!(text.contains("Worker-0"));
        let row = text.lines().next().unwrap();
        assert!(!row.contains('#'), "{row}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use granula_archive::JobMeta;
    use granula_model::{names, Actor, Info, InfoValue, Mission, OperationTree};

    fn archive() -> JobArchive {
        let mut t = OperationTree::new();
        let job = t
            .add_root(Actor::new("Job", "0"), Mission::new("Job", "0"))
            .unwrap();
        for w in 0..2u32 {
            for (s, a, b) in [(0u32, 0i64, 40i64), (1, 50, 90)] {
                let pre = t
                    .add_child(
                        job,
                        Actor::new("Worker", w.to_string()),
                        Mission::new("PreStep", s.to_string()),
                    )
                    .unwrap();
                t.set_info(pre, Info::raw(names::START_TIME, InfoValue::Int(a)))
                    .unwrap();
                t.set_info(pre, Info::raw(names::END_TIME, InfoValue::Int(a + 5)))
                    .unwrap();
                let cmp = t
                    .add_child(
                        job,
                        Actor::new("Worker", w.to_string()),
                        Mission::new("Compute", s.to_string()),
                    )
                    .unwrap();
                t.set_info(cmp, Info::raw(names::START_TIME, InfoValue::Int(a + 5)))
                    .unwrap();
                t.set_info(
                    cmp,
                    Info::raw(names::END_TIME, InfoValue::Int(b - (w as i64) * 10)),
                )
                .unwrap();
            }
        }
        JobArchive::new(JobMeta::default(), t)
    }

    #[test]
    fn collects_rows_per_worker() {
        let g = GanttChart::from_archive(&archive(), &["Compute", "PreStep"], "Compute");
        assert_eq!(g.len(), 8);
        let s = g.render_text(60);
        assert!(s.contains("Worker-0"));
        assert!(s.contains("Worker-1"));
        assert!(s.contains('#'));
        assert!(s.contains('.'));
    }

    #[test]
    fn empty_archive_renders_placeholder() {
        let a = JobArchive::new(JobMeta::default(), OperationTree::new());
        let g = GanttChart::from_archive(&a, &["Compute"], "Compute");
        assert!(g.is_empty());
        assert_eq!(g.render_text(40), "(no operations)\n");
    }

    #[test]
    fn window_filters_bars() {
        let g = GanttChart::from_archive(&archive(), &["Compute"], "Compute").with_window(0, 45);
        let s = g.render_text(40);
        // Second superstep (starting at 50) excluded from the window; bars
        // beyond the window do not mark cells at the left edge.
        assert!(s.contains('#'));
    }

    #[test]
    fn svg_emphasizes_compute() {
        let s =
            GanttChart::from_archive(&archive(), &["Compute", "PreStep"], "Compute").render_svg();
        assert!(s.contains("#c9c9c9")); // overhead gray present
        assert!(s.matches("<rect").count() >= 8);
    }
}
