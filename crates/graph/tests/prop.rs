//! Property-based tests of the graph substrate: CSR consistency, algorithm
//! invariants, partitioning guarantees.

use proptest::prelude::*;

use gpsim_graph::gen::{datagen_like, uniform, with_uniform_weights, GenConfig};
use gpsim_graph::{algos, EdgeCutPartition, Graph, VertexCutPartition};

fn arb_edges() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2u32..80).prop_flat_map(|n| (Just(n), prop::collection::vec((0..n, 0..n), 0..300)))
}

proptest! {
    /// CSR construction preserves every edge in both directions.
    #[test]
    fn csr_round_trips_edges((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges);
        prop_assert_eq!(g.num_edges(), edges.len() as u64);
        // Forward adjacency matches the multiset of edges.
        let mut fwd: Vec<(u32, u32)> = g.edges().collect();
        let mut expect = edges.clone();
        fwd.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(fwd, expect);
        // Degrees are consistent between directions.
        let out_sum: u64 = (0..n).map(|v| g.out_degree(v) as u64).sum();
        let in_sum: u64 = (0..n).map(|v| g.in_degree(v) as u64).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
        // Every in-edge mirrors an out-edge.
        for v in 0..n {
            for &u in g.in_neighbors(v) {
                prop_assert!(g.neighbors(u).contains(&v));
            }
        }
    }

    /// BFS levels satisfy the edge relaxation property and source is 0.
    #[test]
    fn bfs_levels_are_tight((n, edges) in arb_edges(), src_pick in any::<u32>()) {
        let g = Graph::from_edges(n, &edges);
        let src = src_pick % n;
        let level = algos::bfs(&g, src);
        prop_assert_eq!(level[src as usize], 0);
        for (u, v) in g.edges() {
            if level[u as usize] != u32::MAX {
                prop_assert!(level[v as usize] <= level[u as usize] + 1);
            }
        }
        // Every reached vertex (except src) has a predecessor one level up.
        for v in 0..n {
            let l = level[v as usize];
            if l != u32::MAX && v != src {
                prop_assert!(
                    g.in_neighbors(v).iter().any(|&u| level[u as usize] == l - 1),
                    "no tight predecessor for {v}"
                );
            }
        }
    }

    /// WCC labels are constant within edges and equal the component minimum.
    #[test]
    fn wcc_labels_consistent((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges);
        let label = algos::wcc(&g);
        for (u, v) in g.edges() {
            prop_assert_eq!(label[u as usize], label[v as usize]);
        }
        for v in 0..n {
            prop_assert!(label[v as usize] <= v, "label must be component minimum");
        }
    }

    /// PageRank is a probability distribution for any graph.
    #[test]
    fn pagerank_is_a_distribution((n, edges) in arb_edges(), iters in 1u32..20) {
        let g = Graph::from_edges(n, &edges);
        let pr = algos::pagerank(&g, iters, 0.85);
        let sum: f64 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        prop_assert!(pr.iter().all(|&x| x >= 0.0));
    }

    /// SSSP distances satisfy the triangle inequality over edges.
    #[test]
    fn sssp_relaxed((n, edges) in arb_edges(), src_pick in any::<u32>(), seed in any::<u64>()) {
        let g0 = Graph::from_edges(n, &edges);
        let g = with_uniform_weights(&g0, 5.0, seed);
        let src = src_pick % n;
        let dist = algos::sssp(&g, src);
        prop_assert_eq!(dist[src as usize], 0.0);
        for v in 0..n {
            let ws = g.edge_weights(v).expect("weighted");
            for (i, &t) in g.neighbors(v).iter().enumerate() {
                if dist[v as usize].is_finite() {
                    prop_assert!(
                        dist[t as usize] <= dist[v as usize] + ws[i] as f64 + 1e-9,
                        "edge ({v},{t}) not relaxed"
                    );
                }
            }
        }
    }

    /// LCC is always within [0, 1].
    #[test]
    fn lcc_in_unit_interval((n, edges) in arb_edges()) {
        let g = Graph::from_edges(n, &edges);
        for c in algos::lcc(&g) {
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }

    /// Hash edge-cut: every vertex gets an owner below k; partition sizes
    /// sum to n.
    #[test]
    fn edge_cut_total(n in 1u32..5_000, k in 1u16..32) {
        let p = EdgeCutPartition::hash(n, k);
        prop_assert!(p.owner.iter().all(|&o| o < k));
        prop_assert_eq!(p.sizes().iter().sum::<u64>(), n as u64);
    }

    /// Greedy vertex-cut: every edge owned, every endpoint's replica set
    /// contains the edge's machine, replication factor >= 1.
    #[test]
    fn vertex_cut_invariants((n, edges) in arb_edges(), k in 1u16..10) {
        let g = Graph::from_edges(n, &edges);
        let p = VertexCutPartition::greedy(&g, k);
        prop_assert_eq!(p.edge_owner.len() as u64, g.num_edges());
        for (e, (u, v)) in g.edges().enumerate() {
            let m = p.edge_owner[e];
            prop_assert!(m < k);
            prop_assert!(p.replicas[u as usize].contains(&m));
            prop_assert!(p.replicas[v as usize].contains(&m));
        }
        if g.num_edges() > 0 {
            prop_assert!(p.replication_factor() >= 1.0);
            prop_assert!(p.replication_factor() <= k as f64);
        }
    }
}

/// Generator sanity at a fixed size: datagen is more skewed than uniform.
#[test]
fn datagen_skew_exceeds_uniform() {
    let d = datagen_like(&GenConfig::datagen(5_000, 3));
    let u = uniform(5_000, 45_000, 3);
    let ds = gpsim_graph::DegreeStats::in_degrees(&d);
    let us = gpsim_graph::DegreeStats::in_degrees(&u);
    assert!(
        ds.gini > us.gini + 0.2,
        "datagen {} vs uniform {}",
        ds.gini,
        us.gini
    );
}
