//! Synthetic graph generators.
//!
//! `dg1000` — the LDBC Datagen graph of the paper — is a social network
//! with a heavily skewed degree distribution. [`datagen_like`] reproduces
//! that shape: vertex "popularity" follows a truncated power law, sources
//! are chosen uniformly-ish and destinations proportionally to popularity,
//! which yields the hub structure that drives PowerGraph-style vertex-cuts
//! and Pregel-style superstep imbalance. [`rmat`] and [`uniform`] cover the
//! other common benchmark families.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, VertexId};

/// Parameters of the Datagen-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Number of vertices.
    pub vertices: u32,
    /// Target number of directed edges.
    pub edges: u64,
    /// Power-law exponent of the popularity distribution (Datagen's degree
    /// tail is roughly `alpha ≈ 2.2`).
    pub alpha: f64,
    /// RNG seed; identical configs produce identical graphs.
    pub seed: u64,
}

impl GenConfig {
    /// A convenient scaled-down Datagen-like config: `scale` vertices with
    /// average degree 9 (close to dg1000's edge/vertex ratio).
    pub fn datagen(scale: u32, seed: u64) -> Self {
        GenConfig {
            vertices: scale,
            edges: scale as u64 * 9,
            alpha: 2.2,
            seed,
        }
    }
}

/// Generates a Datagen-like directed graph with a power-law in-degree tail.
pub fn datagen_like(cfg: &GenConfig) -> Graph {
    assert!(cfg.vertices > 0, "need at least one vertex");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.vertices;
    // Popularity ~ (rank)^(-1/(alpha-1)) (Zipf-like over a random permutation
    // of vertices so hubs are not clustered at low ids).
    let exponent = 1.0 / (cfg.alpha - 1.0).max(0.1);
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut weight = vec![0.0f64; n as usize];
    for (rank, &v) in perm.iter().enumerate() {
        weight[v as usize] = 1.0 / ((rank + 1) as f64).powf(exponent);
    }
    let dist = WeightedIndex::new(&weight).expect("weights are positive");

    let mut edges = Vec::with_capacity(cfg.edges as usize);
    for _ in 0..cfg.edges {
        // Sources mildly skewed too (active users post more).
        let src = if rng.gen_bool(0.3) {
            dist.sample(&mut rng) as VertexId
        } else {
            rng.gen_range(0..n)
        };
        let mut dst = dist.sample(&mut rng) as VertexId;
        if dst == src {
            dst = (dst + 1) % n;
        }
        edges.push((src, dst));
    }
    Graph::from_edges(n, &edges)
}

/// Generates an R-MAT (Kronecker) graph: `2^scale` vertices, `edges` edges,
/// with the canonical Graph500 probabilities `(a, b, c) = (0.57, 0.19, 0.19)`.
pub fn rmat(scale: u32, edges: u64, seed: u64) -> Graph {
    let n: u32 = 1 << scale;
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = Vec::with_capacity(edges as usize);
    for _ in 0..edges {
        let (mut x, mut y) = (0u32, 0u32);
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (dx, dy) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            x |= dx << bit;
            y |= dy << bit;
        }
        list.push((x, y));
    }
    Graph::from_edges(n, &list)
}

/// Generates a uniform (Erdős–Rényi G(n, m)) directed graph.
pub fn uniform(n: u32, m: u64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = Vec::with_capacity(m as usize);
    for _ in 0..m {
        list.push((rng.gen_range(0..n), rng.gen_range(0..n)));
    }
    Graph::from_edges(n, &list)
}

/// Attaches uniform random weights in `(0, max_w]` to a graph's edges,
/// producing the weighted variant used by SSSP.
pub fn with_uniform_weights(g: &Graph, max_w: f32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let weights: Vec<f32> = edges
        .iter()
        .map(|_| rng.gen::<f32>() * max_w + 1e-3)
        .collect();
    Graph::from_edges_weighted(g.num_vertices(), &edges, Some(&weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn datagen_is_deterministic() {
        let cfg = GenConfig::datagen(1_000, 42);
        let g1 = datagen_like(&cfg);
        let g2 = datagen_like(&cfg);
        assert_eq!(g1, g2);
        assert_eq!(g1.num_vertices(), 1_000);
        assert_eq!(g1.num_edges(), 9_000);
    }

    #[test]
    fn datagen_seeds_differ() {
        let g1 = datagen_like(&GenConfig::datagen(1_000, 1));
        let g2 = datagen_like(&GenConfig::datagen(1_000, 2));
        assert_ne!(g1, g2);
    }

    #[test]
    fn datagen_in_degree_is_skewed() {
        let g = datagen_like(&GenConfig::datagen(5_000, 7));
        let stats = DegreeStats::in_degrees(&g);
        // Hubs exist: max in-degree far above the mean.
        assert!(
            stats.max as f64 > 20.0 * stats.mean,
            "max={} mean={}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn datagen_has_no_self_loops() {
        let g = datagen_like(&GenConfig::datagen(2_000, 3));
        assert!(g.edges().all(|(s, t)| s != t));
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(10, 16_000, 5);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 16_000);
        let stats = DegreeStats::out_degrees(&g);
        assert!(stats.max > 100, "R-MAT should have hubs, max={}", stats.max);
    }

    #[test]
    fn uniform_has_no_heavy_hubs() {
        let g = uniform(1_000, 10_000, 5);
        let stats = DegreeStats::out_degrees(&g);
        // Binomial(10_000, 1/1000): mean 10, tail far below 100.
        assert!(stats.max < 50, "max={}", stats.max);
    }

    #[test]
    fn weights_attach_to_every_edge() {
        let g = uniform(100, 500, 9);
        let w = with_uniform_weights(&g, 10.0, 11);
        assert!(w.is_weighted());
        assert_eq!(w.num_edges(), 500);
        for v in 0..w.num_vertices() {
            let ws = w.edge_weights(v).unwrap();
            assert!(ws.iter().all(|&x| x > 0.0 && x <= 10.0 + 1e-2));
        }
    }
}
