//! Synthetic graph generators.
//!
//! `dg1000` — the LDBC Datagen graph of the paper — is a social network
//! with a heavily skewed degree distribution. [`datagen_like`] reproduces
//! that shape: vertex "popularity" follows a truncated power law, sources
//! are chosen uniformly-ish and destinations proportionally to popularity,
//! which yields the hub structure that drives PowerGraph-style vertex-cuts
//! and Pregel-style superstep imbalance. [`rmat`] and [`uniform`] cover the
//! other common benchmark families.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, VertexId};

/// Parameters of the Datagen-like generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Number of vertices.
    pub vertices: u32,
    /// Target number of directed edges.
    pub edges: u64,
    /// Power-law exponent of the popularity distribution (Datagen's degree
    /// tail is roughly `alpha ≈ 2.2`).
    pub alpha: f64,
    /// RNG seed; identical configs produce identical graphs.
    pub seed: u64,
}

impl GenConfig {
    /// A convenient scaled-down Datagen-like config: `scale` vertices with
    /// average degree 9 (close to dg1000's edge/vertex ratio).
    pub fn datagen(scale: u32, seed: u64) -> Self {
        GenConfig {
            vertices: scale,
            edges: scale as u64 * 9,
            alpha: 2.2,
            seed,
        }
    }
}

/// Generates a Datagen-like directed graph with a power-law in-degree tail.
pub fn datagen_like(cfg: &GenConfig) -> Graph {
    assert!(cfg.vertices > 0, "need at least one vertex");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.vertices;
    // Popularity ~ (rank)^(-1/(alpha-1)) (Zipf-like over a random permutation
    // of vertices so hubs are not clustered at low ids).
    let exponent = 1.0 / (cfg.alpha - 1.0).max(0.1);
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut weight = vec![0.0f64; n as usize];
    for (rank, &v) in perm.iter().enumerate() {
        weight[v as usize] = 1.0 / ((rank + 1) as f64).powf(exponent);
    }
    let dist = WeightedIndex::new(&weight).expect("weights are positive");

    let mut edges = Vec::with_capacity(cfg.edges as usize);
    for _ in 0..cfg.edges {
        // Sources mildly skewed too (active users post more).
        let src = if rng.gen_bool(0.3) {
            dist.sample(&mut rng) as VertexId
        } else {
            rng.gen_range(0..n)
        };
        let mut dst = dist.sample(&mut rng) as VertexId;
        if dst == src {
            dst = (dst + 1) % n;
        }
        edges.push((src, dst));
    }
    Graph::from_edges(n, &edges)
}

/// O(1)-per-draw sampling from a discrete distribution (Vose's alias
/// method). [`WeightedIndex`] pays a `log n` binary search per draw, which
/// at dg1000 scale (~10⁸ vertices, ~10⁹ draws) is the difference between
/// seconds and hours of generation time.
#[derive(Debug, Clone)]
pub struct AliasSampler {
    /// Acceptance probability of each slot's own index.
    prob: Vec<f64>,
    /// Fallback index when the slot's own index is rejected.
    alias: Vec<u32>,
}

impl AliasSampler {
    /// Builds the alias table in O(n). Weights must be non-negative and
    /// sum to a positive finite value.
    pub fn new(weights: &[f64]) -> AliasSampler {
        let n = weights.len();
        assert!(n > 0 && n <= u32::MAX as usize, "bad table size {n}");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weights must sum to a positive finite value"
        );
        // Scaled weights; slots with p < 1 borrow mass from slots with
        // p > 1 until every slot holds exactly one unit.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            let leftover = prob[l as usize] + prob[s as usize] - 1.0;
            prob[l as usize] = leftover;
            if leftover < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Float round-off can strand entries in either list; they hold
        // (numerically) exactly one unit.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        AliasSampler { prob, alias }
    }

    /// Draws one index: a uniform slot plus one accept/alias coin.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let i = rng.gen_range(0..self.prob.len() as u32);
        if rng.gen::<f64>() < self.prob[i as usize] {
            i
        } else {
            self.alias[i as usize]
        }
    }
}

/// The Zipf-like popularity table of [`datagen_like`], as an alias sampler:
/// rank weights `1/(rank+1)^(1/(alpha-1))` over a seed-determined random
/// permutation of the vertices.
fn popularity_sampler(cfg: &GenConfig) -> AliasSampler {
    let n = cfg.vertices;
    let exponent = 1.0 / (cfg.alpha - 1.0).max(0.1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut perm: Vec<u32> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut weight = vec![0.0f64; n as usize];
    for (rank, &v) in perm.iter().enumerate() {
        weight[v as usize] = 1.0 / ((rank + 1) as f64).powf(exponent);
    }
    AliasSampler::new(&weight)
}

/// Emits `cfg.edges` Datagen-like edges into `emit`, using `sampler` for
/// popularity draws. Deterministic in `cfg.seed`: every call emits the
/// identical sequence.
fn stream_edges(cfg: &GenConfig, sampler: &AliasSampler, emit: &mut dyn FnMut(VertexId, VertexId)) {
    // Edge stream gets its own generator so the table-construction draws
    // (permutation) don't shift it.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let n = cfg.vertices;
    for _ in 0..cfg.edges {
        let src = if rng.gen_bool(0.3) {
            sampler.sample(&mut rng)
        } else {
            rng.gen_range(0..n)
        };
        let mut dst = sampler.sample(&mut rng);
        if dst == src {
            dst = (dst + 1) % n;
        }
        emit(src, dst);
    }
}

/// Streams a Datagen-like edge sequence into `emit` without building a
/// graph: the same hub structure as [`datagen_like`] (alias-method
/// sampling, so O(1) per edge), deterministic in the seed. Pair with
/// [`crate::Graph::from_out_edges`] — or use [`datagen_like_full`], which
/// does exactly that — for full-scale datasets where an edge list or a
/// reverse CSR would not be affordable.
pub fn datagen_like_streamed<F: FnMut(VertexId, VertexId)>(cfg: &GenConfig, mut emit: F) {
    let sampler = popularity_sampler(cfg);
    stream_edges(cfg, &sampler, &mut emit);
}

/// Generates a full-scale Datagen-like graph as out-CSR only, streaming
/// the edges twice through [`crate::Graph::from_out_edges`] (the alias
/// table is built once). Memory high-water is the out-CSR plus the
/// sampler — ~6 GB for dg1000's 103 M vertices / 927 M edges — and no
/// reverse CSR is built, so only forward traversals work on the result.
pub fn datagen_like_full(cfg: &GenConfig) -> Graph {
    assert!(cfg.vertices > 0, "need at least one vertex");
    let sampler = popularity_sampler(cfg);
    Graph::from_out_edges(cfg.vertices, |sink| stream_edges(cfg, &sampler, sink))
}

/// Generates an R-MAT (Kronecker) graph: `2^scale` vertices, `edges` edges,
/// with the canonical Graph500 probabilities `(a, b, c) = (0.57, 0.19, 0.19)`.
pub fn rmat(scale: u32, edges: u64, seed: u64) -> Graph {
    let n: u32 = 1 << scale;
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = Vec::with_capacity(edges as usize);
    for _ in 0..edges {
        let (mut x, mut y) = (0u32, 0u32);
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (dx, dy) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            x |= dx << bit;
            y |= dy << bit;
        }
        list.push((x, y));
    }
    Graph::from_edges(n, &list)
}

/// Generates a uniform (Erdős–Rényi G(n, m)) directed graph.
pub fn uniform(n: u32, m: u64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut list = Vec::with_capacity(m as usize);
    for _ in 0..m {
        list.push((rng.gen_range(0..n), rng.gen_range(0..n)));
    }
    Graph::from_edges(n, &list)
}

/// Attaches uniform random weights in `(0, max_w]` to a graph's edges,
/// producing the weighted variant used by SSSP.
pub fn with_uniform_weights(g: &Graph, max_w: f32, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let weights: Vec<f32> = edges
        .iter()
        .map(|_| rng.gen::<f32>() * max_w + 1e-3)
        .collect();
    Graph::from_edges_weighted(g.num_vertices(), &edges, Some(&weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn datagen_is_deterministic() {
        let cfg = GenConfig::datagen(1_000, 42);
        let g1 = datagen_like(&cfg);
        let g2 = datagen_like(&cfg);
        assert_eq!(g1, g2);
        assert_eq!(g1.num_vertices(), 1_000);
        assert_eq!(g1.num_edges(), 9_000);
    }

    #[test]
    fn datagen_seeds_differ() {
        let g1 = datagen_like(&GenConfig::datagen(1_000, 1));
        let g2 = datagen_like(&GenConfig::datagen(1_000, 2));
        assert_ne!(g1, g2);
    }

    #[test]
    fn datagen_in_degree_is_skewed() {
        let g = datagen_like(&GenConfig::datagen(5_000, 7));
        let stats = DegreeStats::in_degrees(&g);
        // Hubs exist: max in-degree far above the mean.
        assert!(
            stats.max as f64 > 20.0 * stats.mean,
            "max={} mean={}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn datagen_has_no_self_loops() {
        let g = datagen_like(&GenConfig::datagen(2_000, 3));
        assert!(g.edges().all(|(s, t)| s != t));
    }

    #[test]
    fn alias_sampler_matches_weighted_index_distribution() {
        // Chi-squared-ish check: alias draws land proportionally to weight.
        let weights = [1.0, 2.0, 4.0, 8.0, 1.0];
        let sampler = AliasSampler::new(&weights);
        let mut rng = StdRng::seed_from_u64(77);
        let mut counts = [0u64; 5];
        const DRAWS: u64 = 200_000;
        for _ in 0..DRAWS {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = DRAWS as f64 * w / total;
            let got = counts[i] as f64;
            assert!(
                (got - expected).abs() < 0.05 * expected + 50.0,
                "slot {i}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn streamed_datagen_is_deterministic_and_replayable() {
        let cfg = GenConfig::datagen(3_000, 17);
        let mut a = Vec::new();
        datagen_like_streamed(&cfg, |s, t| a.push((s, t)));
        let mut b = Vec::new();
        datagen_like_streamed(&cfg, |s, t| b.push((s, t)));
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, cfg.edges);
        assert!(a.iter().all(|&(s, t)| s != t && s < 3_000 && t < 3_000));
    }

    #[test]
    fn full_graph_matches_streamed_edges() {
        let cfg = GenConfig::datagen(2_000, 23);
        let g = datagen_like_full(&cfg);
        let mut edges = Vec::new();
        datagen_like_streamed(&cfg, |s, t| edges.push((s, t)));
        let reference = Graph::from_edges(cfg.vertices, &edges);
        assert_eq!(g.num_edges(), reference.num_edges());
        for v in 0..cfg.vertices {
            assert_eq!(g.neighbors(v), reference.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn full_datagen_in_degree_is_skewed() {
        let g = datagen_like_full(&GenConfig::datagen(5_000, 7));
        // No reverse CSR: measure skew on the forward direction's targets.
        let mut indeg = vec![0u64; 5_000];
        for (_, t) in g.edges() {
            indeg[t as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap() as f64;
        let mean = g.num_edges() as f64 / 5_000.0;
        assert!(max > 20.0 * mean, "max={max} mean={mean}");
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(10, 16_000, 5);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 16_000);
        let stats = DegreeStats::out_degrees(&g);
        assert!(stats.max > 100, "R-MAT should have hubs, max={}", stats.max);
    }

    #[test]
    fn uniform_has_no_heavy_hubs() {
        let g = uniform(1_000, 10_000, 5);
        let stats = DegreeStats::out_degrees(&g);
        // Binomial(10_000, 1/1000): mean 10, tail far below 100.
        assert!(stats.max < 50, "max={}", stats.max);
    }

    #[test]
    fn weights_attach_to_every_edge() {
        let g = uniform(100, 500, 9);
        let w = with_uniform_weights(&g, 10.0, 11);
        assert!(w.is_weighted());
        assert_eq!(w.num_edges(), 500);
        for v in 0..w.num_vertices() {
            let ws = w.edge_weights(v).unwrap();
            assert!(ws.iter().all(|&x| x > 0.0 && x <= 10.0 + 1e-2));
        }
    }
}
