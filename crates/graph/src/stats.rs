//! Degree statistics: the structural properties the cost models consume.

use crate::graph::Graph;

/// Summary statistics of a degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: u32,
    /// Largest degree.
    pub max: u32,
    /// Mean degree.
    pub mean: f64,
    /// Degree at the 99th percentile.
    pub p99: u32,
    /// Gini coefficient of the degrees — 0 for perfectly regular graphs,
    /// approaching 1 for extreme hub concentration. A robust skew measure
    /// that does not assume an exact power law.
    pub gini: f64,
}

impl DegreeStats {
    /// Statistics of the out-degree distribution.
    pub fn out_degrees(g: &Graph) -> DegreeStats {
        Self::from_degrees((0..g.num_vertices()).map(|v| g.out_degree(v)).collect())
    }

    /// Statistics of the in-degree distribution.
    pub fn in_degrees(g: &Graph) -> DegreeStats {
        Self::from_degrees((0..g.num_vertices()).map(|v| g.in_degree(v)).collect())
    }

    /// Builds stats from a raw degree vector.
    pub fn from_degrees(mut degrees: Vec<u32>) -> DegreeStats {
        assert!(!degrees.is_empty(), "degree vector must be non-empty");
        degrees.sort_unstable();
        let n = degrees.len();
        let sum: u64 = degrees.iter().map(|&d| d as u64).sum();
        let mean = sum as f64 / n as f64;
        let p99 = degrees[((n - 1) as f64 * 0.99) as usize];
        // Gini from the sorted vector: G = (2*sum(i*x_i)/(n*sum) - (n+1)/n).
        let gini = if sum == 0 {
            0.0
        } else {
            let weighted: f64 = degrees
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
                .sum();
            (2.0 * weighted / (n as f64 * sum as f64)) - (n as f64 + 1.0) / n as f64
        };
        DegreeStats {
            min: degrees[0],
            max: degrees[n - 1],
            mean,
            p99,
            gini,
        }
    }
}

/// Degree histogram in logarithmic buckets `[2^k, 2^(k+1))` — the data behind
/// a degree-distribution plot.
pub fn log_histogram(degrees: impl Iterator<Item = u32>) -> Vec<(u32, u64)> {
    let mut buckets: Vec<u64> = Vec::new();
    for d in degrees {
        let b = if d == 0 { 0 } else { 32 - d.leading_zeros() } as usize;
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(b, c)| (if b == 0 { 0 } else { 1u32 << (b - 1) }, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_degrees_have_zero_gini() {
        let s = DegreeStats::from_degrees(vec![4; 100]);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert!((s.gini).abs() < 1e-9);
    }

    #[test]
    fn single_hub_has_high_gini() {
        let mut d = vec![0u32; 99];
        d.push(1000);
        let s = DegreeStats::from_degrees(d);
        assert!(s.gini > 0.95, "gini={}", s.gini);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn mean_and_percentile() {
        let s = DegreeStats::from_degrees((1..=100).collect());
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.p99, 99);
    }

    #[test]
    fn log_histogram_buckets_powers_of_two() {
        let h = log_histogram([0u32, 1, 1, 2, 3, 4, 8, 9].into_iter());
        // bucket 0: degree 0 (count 1); bucket 1 (start 1): degrees 1,1 (2);
        // bucket 2 (start 2): 2,3 (2); bucket 3 (start 4): 4 (1);
        // bucket 4 (start 8): 8,9 (2).
        assert_eq!(h, vec![(0, 1), (1, 2), (2, 2), (4, 1), (8, 2)]);
    }
}
