//! Compressed sparse row (CSR) graphs.
//!
//! Directed graphs with `u32` vertex ids, stored in forward CSR with a
//! lazily-shared reverse CSR for in-neighbour traversal (needed by GAS
//! gather phases and by algorithms that treat the graph as undirected).

/// Vertex identifier.
pub type VertexId = u32;

/// A directed graph in CSR form, with optional edge weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// Out-edge offsets, length `n + 1`.
    out_offsets: Vec<u64>,
    /// Out-edge targets, length `m`.
    out_targets: Vec<VertexId>,
    /// In-edge offsets, length `n + 1`.
    in_offsets: Vec<u64>,
    /// In-edge sources, length `m`.
    in_sources: Vec<VertexId>,
    /// Optional per-out-edge weights (parallel to `out_targets`).
    weights: Option<Vec<f32>>,
    /// Optional per-in-edge weights (parallel to `in_sources`).
    in_weights: Option<Vec<f32>>,
}

impl Graph {
    /// Builds a graph from an edge list. Self-loops and duplicates are kept
    /// (real-world datasets have them; platforms must cope).
    pub fn from_edges(n: u32, edges: &[(VertexId, VertexId)]) -> Graph {
        Self::from_edges_weighted(n, edges, None)
    }

    /// Builds a weighted graph; `weights`, when given, must parallel `edges`.
    pub fn from_edges_weighted(
        n: u32,
        edges: &[(VertexId, VertexId)],
        weights: Option<&[f32]>,
    ) -> Graph {
        if let Some(w) = weights {
            assert_eq!(w.len(), edges.len(), "weights must parallel edges");
        }
        let n = n as usize;
        let mut out_deg = vec![0u64; n + 1];
        let mut in_deg = vec![0u64; n + 1];
        for &(s, t) in edges {
            assert!(
                (s as usize) < n && (t as usize) < n,
                "edge ({s},{t}) out of range"
            );
            out_deg[s as usize + 1] += 1;
            in_deg[t as usize + 1] += 1;
        }
        for i in 0..n {
            out_deg[i + 1] += out_deg[i];
            in_deg[i + 1] += in_deg[i];
        }
        let m = edges.len();
        let mut out_targets = vec![0 as VertexId; m];
        let mut in_sources = vec![0 as VertexId; m];
        let mut out_w = weights.map(|_| vec![0.0f32; m]);
        let mut in_w = weights.map(|_| vec![0.0f32; m]);
        let mut out_cursor = out_deg.clone();
        let mut in_cursor = in_deg.clone();
        for (i, &(s, t)) in edges.iter().enumerate() {
            let oc = &mut out_cursor[s as usize];
            out_targets[*oc as usize] = t;
            if let (Some(ws), Some(w)) = (&mut out_w, weights) {
                ws[*oc as usize] = w[i];
            }
            *oc += 1;
            let ic = &mut in_cursor[t as usize];
            in_sources[*ic as usize] = s;
            if let (Some(ws), Some(w)) = (&mut in_w, weights) {
                ws[*ic as usize] = w[i];
            }
            *ic += 1;
        }
        Graph {
            out_offsets: out_deg,
            out_targets,
            in_offsets: in_deg,
            in_sources,
            weights: out_w,
            in_weights: in_w,
        }
    }

    /// Builds an **out-edges-only** graph from a replayable edge stream,
    /// without ever materializing an edge list.
    ///
    /// `each_pass` is invoked twice with an edge sink and must emit the
    /// identical edge sequence both times (pass 1 counts degrees, pass 2
    /// fills the CSR). This is the full-scale loader: a dg1000-sized graph
    /// (~927 M edges) costs only the out-CSR itself (~4.5 GB) instead of
    /// the ~17 GB that [`Graph::from_edges`] needs for the edge list plus
    /// both CSR directions.
    ///
    /// The reverse CSR is left empty: [`Graph::in_neighbors`] and
    /// [`Graph::in_degree`] report no in-edges. Use this constructor only
    /// for forward-traversal algorithms (BFS, PageRank-by-push, SSSP).
    pub fn from_out_edges<F>(n: u32, mut each_pass: F) -> Graph
    where
        F: FnMut(&mut dyn FnMut(VertexId, VertexId)),
    {
        let nu = n as usize;
        let mut out_deg = vec![0u64; nu + 1];
        let mut m = 0u64;
        each_pass(&mut |s, t| {
            assert!(
                (s as usize) < nu && (t as usize) < nu,
                "edge ({s},{t}) out of range"
            );
            out_deg[s as usize + 1] += 1;
            m += 1;
        });
        for i in 0..nu {
            out_deg[i + 1] += out_deg[i];
        }
        let mut out_targets = vec![0 as VertexId; m as usize];
        let mut cursor = out_deg.clone();
        let mut m2 = 0u64;
        each_pass(&mut |s, t| {
            let c = &mut cursor[s as usize];
            out_targets[*c as usize] = t;
            *c += 1;
            m2 += 1;
        });
        assert_eq!(m, m2, "edge stream must replay identically across passes");
        Graph {
            out_offsets: out_deg,
            out_targets,
            in_offsets: vec![0u64; nu + 1],
            in_sources: Vec::new(),
            weights: None,
            in_weights: None,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.out_offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.out_targets.len() as u64
    }

    /// Out-neighbours of `v`.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (a, b) = (
            self.out_offsets[v as usize],
            self.out_offsets[v as usize + 1],
        );
        &self.out_targets[a as usize..b as usize]
    }

    /// In-neighbours of `v`.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let (a, b) = (self.in_offsets[v as usize], self.in_offsets[v as usize + 1]);
        &self.in_sources[a as usize..b as usize]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> u32 {
        (self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]) as u32
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> u32 {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as u32
    }

    /// Out-edge weights of `v` (parallel to [`Graph::neighbors`]); `None`
    /// when the graph is unweighted.
    pub fn edge_weights(&self, v: VertexId) -> Option<&[f32]> {
        let w = self.weights.as_ref()?;
        let (a, b) = (
            self.out_offsets[v as usize],
            self.out_offsets[v as usize + 1],
        );
        Some(&w[a as usize..b as usize])
    }

    /// In-edge weights of `v` (parallel to [`Graph::in_neighbors`]); `None`
    /// when the graph is unweighted.
    pub fn in_edge_weights(&self, v: VertexId) -> Option<&[f32]> {
        let w = self.in_weights.as_ref()?;
        let (a, b) = (self.in_offsets[v as usize], self.in_offsets[v as usize + 1]);
        Some(&w[a as usize..b as usize])
    }

    /// True when the graph carries edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Iterates over all edges `(src, dst)` in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| self.neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// Total bytes a platform would ship for this graph in a simple text
    /// edge-list encoding (used by the cost models: ~2 decimal ids + separators
    /// per edge, ~20 bytes).
    pub fn encoded_bytes(&self) -> f64 {
        self.num_edges() as f64 * 20.0 + self.num_vertices() as f64 * 10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_shape() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
    }

    #[test]
    fn reverse_csr_mirrors_forward() {
        let g = diamond();
        let mut ins = g.in_neighbors(3).to_vec();
        ins.sort_unstable();
        assert_eq!(ins, vec![1, 2]);
        assert_eq!(g.in_neighbors(0), &[] as &[u32]);
    }

    #[test]
    fn weights_parallel_neighbors() {
        let g = Graph::from_edges_weighted(3, &[(0, 1), (0, 2)], Some(&[0.5, 2.5]));
        assert!(g.is_weighted());
        assert_eq!(g.edge_weights(0), Some(&[0.5f32, 2.5][..]));
        assert_eq!(g.edge_weights(1), Some(&[][..]));
    }

    #[test]
    fn self_loops_and_duplicates_kept() {
        let g = Graph::from_edges(2, &[(0, 0), (0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[0, 1, 1]);
    }

    #[test]
    fn edges_iterator_roundtrips() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn from_out_edges_matches_from_edges_forward() {
        let edges = [(0u32, 1u32), (0, 2), (1, 3), (2, 3), (3, 3), (0, 1)];
        let dense = Graph::from_edges(4, &edges);
        let streamed = Graph::from_out_edges(4, |sink| {
            for &(s, t) in &edges {
                sink(s, t);
            }
        });
        assert_eq!(streamed.num_vertices(), dense.num_vertices());
        assert_eq!(streamed.num_edges(), dense.num_edges());
        for v in 0..4 {
            assert_eq!(streamed.neighbors(v), dense.neighbors(v), "vertex {v}");
            assert_eq!(streamed.out_degree(v), dense.out_degree(v));
        }
        // The reverse direction is intentionally absent.
        assert_eq!(streamed.in_neighbors(3), &[] as &[u32]);
        assert_eq!(streamed.in_degree(3), 0);
    }

    #[test]
    #[should_panic(expected = "replay identically")]
    fn from_out_edges_rejects_diverging_streams() {
        let mut pass = 0;
        Graph::from_out_edges(2, |sink| {
            pass += 1;
            if pass == 1 {
                sink(0, 1);
            }
        });
    }
}
