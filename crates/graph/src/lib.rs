//! # gpsim-graph
//!
//! The graph substrate: data structures, synthetic generators, partitioners
//! and reference algorithms.
//!
//! The paper's experiments run BFS on `dg1000`, an LDBC Datagen social-
//! network graph with a skewed (power-law-like) degree distribution. This
//! crate provides a Datagen-like generator ([`gen::datagen_like`]) plus
//! R-MAT and uniform generators, the two partitioning families the studied
//! platforms use (Pregel-style **edge-cut** hash partitioning and
//! PowerGraph-style greedy **vertex-cut**), and sequential reference
//! implementations of the LDBC Graphalytics algorithms (BFS, PageRank, WCC,
//! SSSP, CDLP, LCC) used to validate the simulated platforms' outputs.

pub mod algos;
pub mod gen;
pub mod graph;
pub mod partition;
pub mod stats;

pub use gen::{datagen_like, rmat, uniform, GenConfig};
pub use graph::{Graph, VertexId};
pub use partition::{BlockPartition, EdgeCutPartition, VertexCutPartition};
pub use stats::DegreeStats;
