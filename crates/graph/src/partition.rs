//! Graph partitioning: edge-cut (Pregel family) and vertex-cut (GAS family).
//!
//! Giraph hash-partitions *vertices* across workers; messages along edges
//! whose endpoints live on different workers cross the network (the edge
//! cut). PowerGraph instead assigns *edges* to machines; a vertex is
//! replicated on every machine holding one of its edges and one replica is
//! the master (the vertex cut). The replication factor drives PowerGraph's
//! sync traffic, which is why it wins on power-law graphs.

use crate::graph::{Graph, VertexId};

/// Hash-based edge-cut partitioning of vertices over `k` workers.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeCutPartition {
    /// Owner worker of each vertex.
    pub owner: Vec<u16>,
    /// Number of workers.
    pub k: u16,
}

impl EdgeCutPartition {
    /// Giraph-style hash partitioning (`v % k`, after id-mixing so that
    /// consecutively-generated hubs spread out).
    pub fn hash(n: u32, k: u16) -> EdgeCutPartition {
        assert!(k > 0, "need at least one worker");
        let owner = (0..n).map(|v| (mix(v) % k as u32) as u16).collect();
        EdgeCutPartition { owner, k }
    }

    /// Owner of a vertex.
    pub fn owner_of(&self, v: VertexId) -> u16 {
        self.owner[v as usize]
    }

    /// Vertices per worker.
    pub fn sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.k as usize];
        for &o in &self.owner {
            sizes[o as usize] += 1;
        }
        sizes
    }

    /// Number of edges whose endpoints live on different workers.
    pub fn cut_edges(&self, g: &Graph) -> u64 {
        g.edges()
            .filter(|&(s, t)| self.owner_of(s) != self.owner_of(t))
            .count() as u64
    }

    /// Load imbalance: `max_partition_vertices / mean`.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.sizes();
        let max = sizes.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.owner.len() as f64 / self.k as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

fn mix(v: u32) -> u32 {
    // Finalizer of MurmurHash3 (32-bit): cheap, well-distributed.
    let mut h = v;
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// Greedy vertex-cut partitioning of edges over `k` machines
/// (the PowerGraph heuristic).
#[derive(Debug, Clone, PartialEq)]
pub struct VertexCutPartition {
    /// Machine of each edge, in [`Graph::edges`] order.
    pub edge_owner: Vec<u16>,
    /// For each vertex, the sorted machines holding at least one of its
    /// edges (its replicas).
    pub replicas: Vec<Vec<u16>>,
    /// Number of machines.
    pub k: u16,
}

impl VertexCutPartition {
    /// Greedy placement: for each edge pick, in order of preference, (1) a
    /// machine both endpoints already live on, (2) the least-loaded machine
    /// one endpoint lives on, (3) the least-loaded machine overall.
    pub fn greedy(g: &Graph, k: u16) -> VertexCutPartition {
        assert!(k > 0, "need at least one machine");
        let n = g.num_vertices() as usize;
        let mut replicas: Vec<Vec<u16>> = vec![Vec::new(); n];
        let mut load = vec![0u64; k as usize];
        let mut edge_owner = Vec::with_capacity(g.num_edges() as usize);

        for (s, t) in g.edges() {
            let rs = &replicas[s as usize];
            let rt = &replicas[t as usize];
            let choice = common_least_loaded(rs, rt, &load)
                .or_else(|| least_loaded_of(rs.iter().chain(rt.iter()), &load))
                .unwrap_or_else(|| least_loaded(&load));
            edge_owner.push(choice);
            load[choice as usize] += 1;
            insert_sorted(&mut replicas[s as usize], choice);
            insert_sorted(&mut replicas[t as usize], choice);
        }
        VertexCutPartition {
            edge_owner,
            replicas,
            k,
        }
    }

    /// The master machine of a vertex: its first replica (or a hash when the
    /// vertex has no edges).
    pub fn master_of(&self, v: VertexId) -> u16 {
        self.replicas[v as usize]
            .first()
            .copied()
            .unwrap_or((mix(v) % self.k as u32) as u16)
    }

    /// Mean number of replicas per vertex (vertices with edges only) — the
    /// replication factor PowerGraph's paper optimizes.
    pub fn replication_factor(&self) -> f64 {
        let (sum, cnt) = self
            .replicas
            .iter()
            .filter(|r| !r.is_empty())
            .fold((0usize, 0usize), |(s, c), r| (s + r.len(), c + 1));
        if cnt == 0 {
            0.0
        } else {
            sum as f64 / cnt as f64
        }
    }

    /// Edges per machine.
    pub fn sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.k as usize];
        for &o in &self.edge_owner {
            sizes[o as usize] += 1;
        }
        sizes
    }
}

fn insert_sorted(v: &mut Vec<u16>, x: u16) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

fn common_least_loaded(a: &[u16], b: &[u16], load: &[u64]) -> Option<u16> {
    let mut best: Option<u16> = None;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                let m = a[i];
                if best.is_none_or(|cur| load[m as usize] < load[cur as usize]) {
                    best = Some(m);
                }
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    best
}

fn least_loaded_of<'a>(machines: impl Iterator<Item = &'a u16>, load: &[u64]) -> Option<u16> {
    machines.copied().min_by_key(|&m| load[m as usize])
}

fn least_loaded(load: &[u64]) -> u16 {
    load.iter()
        .enumerate()
        .min_by_key(|&(_, &l)| l)
        .map(|(i, _)| i as u16)
        .expect("k > 0")
}

/// 1D block (row) partitioning over contiguous vertex ranges, balanced by
/// out-edge count — the matrix layout of SpMV platforms such as GraphMat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPartition {
    /// `bounds[i]..bounds[i+1]` is machine i's vertex range; length `k + 1`.
    pub bounds: Vec<u32>,
}

impl BlockPartition {
    /// Splits the vertex id space into `k` contiguous blocks with
    /// approximately equal out-edge counts (greedy prefix scan).
    pub fn by_edges(g: &Graph, k: u16) -> BlockPartition {
        assert!(k > 0, "need at least one machine");
        let n = g.num_vertices();
        let target = g.num_edges() as f64 / k as f64;
        let mut bounds = Vec::with_capacity(k as usize + 1);
        bounds.push(0u32);
        let mut acc = 0u64;
        let mut next_cut = target;
        for v in 0..n {
            acc += g.out_degree(v) as u64;
            if acc as f64 >= next_cut && (bounds.len() as u16) < k {
                bounds.push(v + 1);
                next_cut += target;
            }
        }
        // Degenerate graphs may not fill all cuts; pad with n.
        while (bounds.len() as u16) <= k {
            bounds.push(n);
        }
        BlockPartition { bounds }
    }

    /// Number of machines.
    pub fn k(&self) -> u16 {
        (self.bounds.len() - 1) as u16
    }

    /// Owner machine of a vertex (binary search over the bounds).
    pub fn owner_of(&self, v: VertexId) -> u16 {
        (self.bounds.partition_point(|&b| b <= v) - 1) as u16
    }

    /// Vertex range of machine `m`.
    pub fn range(&self, m: u16) -> std::ops::Range<u32> {
        self.bounds[m as usize]..self.bounds[m as usize + 1]
    }

    /// Out-edges per machine.
    pub fn edge_sizes(&self, g: &Graph) -> Vec<u64> {
        (0..self.k())
            .map(|m| self.range(m).map(|v| g.out_degree(v) as u64).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{datagen_like, uniform, GenConfig};

    #[test]
    fn hash_partition_is_balanced() {
        let p = EdgeCutPartition::hash(10_000, 8);
        assert!(p.imbalance() < 1.1, "imbalance={}", p.imbalance());
        assert_eq!(p.sizes().iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn single_worker_has_no_cut() {
        let g = uniform(100, 1_000, 1);
        let p = EdgeCutPartition::hash(100, 1);
        assert_eq!(p.cut_edges(&g), 0);
    }

    #[test]
    fn hash_cut_approaches_random_fraction() {
        let g = uniform(2_000, 20_000, 2);
        let p = EdgeCutPartition::hash(2_000, 4);
        let frac = p.cut_edges(&g) as f64 / g.num_edges() as f64;
        // Random 4-way cut: expect ~3/4 of edges crossing.
        assert!((frac - 0.75).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn greedy_vertex_cut_beats_trivial_replication_bound() {
        let g = datagen_like(&GenConfig::datagen(3_000, 13));
        let p = VertexCutPartition::greedy(&g, 8);
        let rf = p.replication_factor();
        assert!(rf >= 1.0);
        assert!(rf < 4.0, "replication factor too high: {rf}");
        assert_eq!(p.sizes().iter().sum::<u64>(), g.num_edges());
    }

    #[test]
    fn vertex_cut_load_is_reasonably_balanced() {
        let g = datagen_like(&GenConfig::datagen(3_000, 13));
        let p = VertexCutPartition::greedy(&g, 8);
        let sizes = p.sizes();
        let max = *sizes.iter().max().unwrap() as f64;
        let mean = g.num_edges() as f64 / 8.0;
        assert!(max / mean < 1.5, "edge imbalance {}", max / mean);
    }

    #[test]
    fn replicas_are_sorted_and_deduped() {
        let g = uniform(500, 5_000, 3);
        let p = VertexCutPartition::greedy(&g, 4);
        for r in &p.replicas {
            assert!(r.windows(2).all(|w| w[0] < w[1]), "{r:?}");
        }
    }

    #[test]
    fn master_is_a_replica_when_vertex_has_edges() {
        let g = uniform(500, 5_000, 3);
        let p = VertexCutPartition::greedy(&g, 4);
        for v in 0..g.num_vertices() {
            if !p.replicas[v as usize].is_empty() {
                assert!(p.replicas[v as usize].contains(&p.master_of(v)));
            }
        }
    }

    #[test]
    fn isolated_vertex_still_gets_a_master() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let p = VertexCutPartition::greedy(&g, 2);
        let m = p.master_of(2);
        assert!(m < 2);
    }

    #[test]
    fn block_partition_covers_all_vertices_contiguously() {
        let g = datagen_like(&GenConfig::datagen(3_000, 5));
        let p = BlockPartition::by_edges(&g, 8);
        assert_eq!(p.k(), 8);
        assert_eq!(p.bounds[0], 0);
        assert_eq!(*p.bounds.last().unwrap(), g.num_vertices());
        for v in 0..g.num_vertices() {
            let m = p.owner_of(v);
            assert!(p.range(m).contains(&v));
        }
    }

    #[test]
    fn block_partition_balances_edges_not_vertices() {
        let g = datagen_like(&GenConfig::datagen(3_000, 5));
        let p = BlockPartition::by_edges(&g, 8);
        let sizes = p.edge_sizes(&g);
        assert_eq!(sizes.iter().sum::<u64>(), g.num_edges());
        let mean = g.num_edges() as f64 / 8.0;
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(max / mean < 1.35, "edge imbalance {}", max / mean);
    }

    #[test]
    fn block_partition_single_machine() {
        let g = uniform(100, 500, 1);
        let p = BlockPartition::by_edges(&g, 1);
        assert_eq!(p.range(0), 0..100);
        assert_eq!(p.owner_of(99), 0);
    }

    #[test]
    fn block_partition_more_machines_than_edges() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let p = BlockPartition::by_edges(&g, 8);
        assert_eq!(p.k(), 8);
        // Every vertex still has exactly one owner.
        for v in 0..4 {
            assert!(p.owner_of(v) < 8);
        }
    }
}
