//! Sequential reference algorithms (the LDBC Graphalytics set).
//!
//! These are the ground truth the simulated platforms are validated against:
//! every Pregel/GAS execution must produce exactly these results.

use std::collections::VecDeque;

use crate::graph::{Graph, VertexId};

/// Level reached from `src`, `u32::MAX` for unreachable vertices
/// (directed BFS over out-edges, as Graphalytics specifies).
pub fn bfs(g: &Graph, src: VertexId) -> Vec<u32> {
    let mut level = vec![u32::MAX; g.num_vertices() as usize];
    let mut q = VecDeque::new();
    level[src as usize] = 0;
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        let next = level[v as usize] + 1;
        for &t in g.neighbors(v) {
            if level[t as usize] == u32::MAX {
                level[t as usize] = next;
                q.push_back(t);
            }
        }
    }
    level
}

/// PageRank with damping `d` for a fixed number of iterations, with the
/// Graphalytics dangling-vertex redistribution.
pub fn pagerank(g: &Graph, iterations: u32, d: f64) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    assert!(n > 0, "pagerank over an empty graph");
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        let dangling: f64 = (0..n)
            .filter(|&v| g.out_degree(v as u32) == 0)
            .map(|v| rank[v])
            .sum();
        let base = (1.0 - d) / n as f64 + d * dangling / n as f64;
        next.iter_mut().for_each(|x| *x = base);
        #[allow(clippy::needless_range_loop)] // vertex ids are the natural index
        for v in 0..n {
            let deg = g.out_degree(v as u32);
            if deg > 0 {
                let share = d * rank[v] / deg as f64;
                for &t in g.neighbors(v as u32) {
                    next[t as usize] += share;
                }
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Weakly-connected components: each vertex is labeled with the smallest
/// vertex id in its component (edges treated as undirected).
pub fn wcc(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut q = VecDeque::new();
    let mut visited = vec![false; n];
    for start in 0..n as u32 {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        q.push_back(start);
        while let Some(v) = q.pop_front() {
            label[v as usize] = label[start as usize];
            for &t in g.neighbors(v).iter().chain(g.in_neighbors(v)) {
                if !visited[t as usize] {
                    visited[t as usize] = true;
                    q.push_back(t);
                }
            }
        }
    }
    label
}

/// Single-source shortest paths over non-negative edge weights (Dijkstra);
/// unweighted graphs fall back to weight 1 per edge. `f64::INFINITY` marks
/// unreachable vertices.
pub fn sssp(g: &Graph, src: VertexId) -> Vec<f64> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct Entry(f64, VertexId);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // Min-heap on distance.
            other.0.total_cmp(&self.0)
        }
    }

    let n = g.num_vertices() as usize;
    let mut dist = vec![f64::INFINITY; n];
    dist[src as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Entry(0.0, src));
    while let Some(Entry(d, v)) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let neighbors = g.neighbors(v);
        for (i, &t) in neighbors.iter().enumerate() {
            let w = g.edge_weights(v).map_or(1.0, |ws| ws[i] as f64);
            let nd = d + w;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(Entry(nd, t));
            }
        }
    }
    dist
}

/// Community detection by label propagation (synchronous, Graphalytics
/// CDLP): every iteration each vertex adopts the most frequent label among
/// its in- and out-neighbours, ties broken towards the smallest label.
pub fn cdlp(g: &Graph, iterations: u32) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut next = label.clone();
    let mut counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for _ in 0..iterations {
        for v in 0..n as u32 {
            counts.clear();
            for &t in g.neighbors(v).iter().chain(g.in_neighbors(v)) {
                *counts.entry(label[t as usize]).or_insert(0) += 1;
            }
            if counts.is_empty() {
                next[v as usize] = label[v as usize];
                continue;
            }
            let mut best = (0u32, u32::MAX); // (count, label)
            for (&l, &c) in &counts {
                if c > best.0 || (c == best.0 && l < best.1) {
                    best = (c, l);
                }
            }
            next[v as usize] = best.1;
        }
        std::mem::swap(&mut label, &mut next);
    }
    label
}

/// Local clustering coefficient per vertex, over the undirected neighbour
/// sets (Graphalytics LCC).
pub fn lcc(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    // Undirected, deduplicated neighbour sets.
    let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        let mut set: Vec<u32> = g
            .neighbors(v)
            .iter()
            .chain(g.in_neighbors(v))
            .copied()
            .filter(|&t| t != v)
            .collect();
        set.sort_unstable();
        set.dedup();
        nbrs[v as usize] = set;
    }
    let mut out = vec![0.0f64; n];
    for v in 0..n {
        let set = &nbrs[v];
        let k = set.len();
        if k < 2 {
            continue;
        }
        let mut links = 0u64;
        for &u in set {
            // Count neighbours of u that are also neighbours of v.
            let nu = &nbrs[u as usize];
            let (mut i, mut j) = (0, 0);
            while i < set.len() && j < nu.len() {
                match set[i].cmp(&nu[j]) {
                    std::cmp::Ordering::Equal => {
                        links += 1;
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                }
            }
        }
        out[v] = links as f64 / (k as f64 * (k as f64 - 1.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::uniform;

    /// 0 -> 1 -> 2, 0 -> 2, 3 isolated.
    fn small() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn bfs_levels() {
        let l = bfs(&small(), 0);
        assert_eq!(l, vec![0, 1, 1, u32::MAX]);
    }

    #[test]
    fn bfs_respects_direction() {
        let l = bfs(&small(), 2);
        assert_eq!(l, vec![u32::MAX, u32::MAX, 0, u32::MAX]);
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = uniform(200, 2_000, 4);
        let pr = pagerank(&g, 20, 0.85);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        assert!(pr.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pagerank_ranks_sinks_of_a_chain_higher() {
        // 0 -> 1 -> 2: rank grows along the chain.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let pr = pagerank(&g, 30, 0.85);
        assert!(pr[2] > pr[1] && pr[1] > pr[0], "{pr:?}");
    }

    #[test]
    fn wcc_ignores_direction() {
        let l = wcc(&small());
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_ne!(l[0], l[3]);
        assert_eq!(l[0], 0); // smallest id in component
        assert_eq!(l[3], 3);
    }

    #[test]
    fn sssp_unweighted_matches_bfs() {
        let g = uniform(300, 3_000, 6);
        let d = sssp(&g, 0);
        let l = bfs(&g, 0);
        for v in 0..300usize {
            if l[v] == u32::MAX {
                assert!(d[v].is_infinite());
            } else {
                assert_eq!(d[v], l[v] as f64);
            }
        }
    }

    #[test]
    fn sssp_weighted_takes_cheap_detour() {
        // 0 -> 1 (10.0), 0 -> 2 (1.0), 2 -> 1 (1.0): best path to 1 costs 2.
        let g = Graph::from_edges_weighted(3, &[(0, 1), (0, 2), (2, 1)], Some(&[10.0, 1.0, 1.0]));
        let d = sssp(&g, 0);
        assert!((d[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn cdlp_converges_on_two_cliques() {
        // Two triangles joined by nothing.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let l = cdlp(&g, 10);
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[3], l[4]);
        assert_eq!(l[4], l[5]);
        assert_ne!(l[0], l[3]);
    }

    #[test]
    fn lcc_of_triangle_is_one() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let c = lcc(&g);
        for v in 0..3 {
            assert!((c[v] - 1.0).abs() < 1e-9, "{c:?}");
        }
    }

    #[test]
    fn lcc_of_star_center_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let c = lcc(&g);
        assert_eq!(c[0], 0.0);
        assert_eq!(c[1], 0.0); // leaves have < 2 neighbours
    }

    #[test]
    fn lcc_counts_directed_links_once() {
        // 0-1-2 triangle with one extra reciprocal edge; LCC uses the
        // undirected view, so it is still a triangle.
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 0)]);
        let c = lcc(&g);
        assert!((c[0] - 1.0).abs() < 1e-9, "{c:?}");
    }
}
