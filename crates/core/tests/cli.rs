//! Integration tests of the `granula-cli` binary: the full analyst
//! round-trip through files — run → archive JSON → inspect / query /
//! breakdown / chokepoints / regression / diff.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_granula-cli"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("granula-cli-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn run_job(dir: &Path, name: &str, extra: &[&str]) -> PathBuf {
    let out = dir.join(format!("{name}.json"));
    let mut args = vec![
        "run",
        "--platform",
        "giraph",
        "--vertices",
        "2500",
        "--out",
        out.to_str().expect("utf8 path"),
    ];
    args.extend_from_slice(extra);
    let status = cli().args(&args).output().expect("spawn");
    assert!(
        status.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&status.stderr)
    );
    out
}

#[test]
fn run_inspect_query_breakdown_roundtrip() {
    let dir = workdir("roundtrip");
    let archive = run_job(&dir, "a", &[]);

    let inspect = cli()
        .args(["inspect", archive.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(inspect.status.success());
    let text = String::from_utf8_lossy(&inspect.stdout);
    assert!(text.contains("BFS on Giraph"));
    assert!(text.contains("GiraphJob"));

    let query = cli()
        .args([
            "query",
            archive.to_str().unwrap(),
            "GiraphJob/ProcessGraph/Superstep",
        ])
        .output()
        .unwrap();
    assert!(query.status.success());
    assert!(String::from_utf8_lossy(&query.stdout).contains("operations match"));

    let breakdown = cli()
        .args(["breakdown", archive.to_str().unwrap()])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&breakdown.stdout);
    assert!(text.contains("Setup") && text.contains("Input/output"));

    let choke = cli()
        .args(["chokepoints", archive.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(choke.status.success());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn regression_passes_identical_and_fails_slower() {
    let dir = workdir("regression");
    let baseline = run_job(&dir, "base", &[]);
    let same = run_job(&dir, "same", &[]);

    let pass = cli()
        .args([
            "regression",
            baseline.to_str().unwrap(),
            same.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        pass.status.success(),
        "{}",
        String::from_utf8_lossy(&pass.stdout)
    );

    // A 4-node run of the same workload is slower end-to-end (less
    // parallelism) but shares the (platform, algorithm, dataset) key.
    let slower = run_job(&dir, "slower", &["--nodes", "4"]);
    let fail = cli()
        .args([
            "regression",
            baseline.to_str().unwrap(),
            slower.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        !fail.status.success(),
        "slower candidate must fail the gate"
    );
    assert!(String::from_utf8_lossy(&fail.stdout).contains("FAIL"));

    // The diff names where the time went.
    let diff = cli()
        .args(["diff", baseline.to_str().unwrap(), slower.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(diff.status.success());
    assert!(String::from_utf8_lossy(&diff.stdout).contains("LoadGraph"));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn html_report_written() {
    let dir = workdir("report");
    let report = dir.join("r.html");
    run_job(&dir, "a", &["--report", report.to_str().unwrap()]);
    let html = fs::read_to_string(&report).expect("report written");
    assert!(html.contains("<svg"));
    assert!(html.contains("Granula performance report"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unknown_subcommand_errors() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn model_subcommand_exports_shareable_json() {
    let dir = workdir("model");
    let out = dir.join("giraph.json");
    let status = cli()
        .args(["model", "giraph", "--out", out.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(status.status.success());
    let json = fs::read_to_string(&out).unwrap();
    let model = granula_model::model_from_json(&json).expect("model parses");
    assert_eq!(model.name, "giraph-v4");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn suite_writes_every_archive() {
    let dir = workdir("suite");
    let out = cli()
        .args([
            "suite",
            "--out-dir",
            dir.to_str().unwrap(),
            "--vertices",
            "1500",
            "--nodes",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let archives = fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .count();
    assert_eq!(archives, 15, "3 platforms x 5 algorithms");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn archive_save_query_stat_roundtrip() {
    let dir = workdir("archive");
    let a = run_job(&dir, "a", &[]);
    let store = dir.join("store.gar");

    // Pack the JSON envelope into a binary store.
    let save = cli()
        .args([
            "archive",
            "save",
            store.to_str().unwrap(),
            a.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        save.status.success(),
        "{}",
        String::from_utf8_lossy(&save.stderr)
    );
    assert!(String::from_utf8_lossy(&save.stdout).contains("1 jobs ->"));
    assert!(store.exists());

    // Query it back through the indexed engine; hits list mission paths.
    // An anchored select without a window is cost-planned to the scan
    // (the anchored walk already prunes; see TreeIndex::plan_for).
    let query = cli()
        .args([
            "archive",
            "query",
            store.to_str().unwrap(),
            "*",
            "GiraphJob/ProcessGraph/Superstep",
            "--explain",
        ])
        .output()
        .unwrap();
    assert!(
        query.status.success(),
        "{}",
        String::from_utf8_lossy(&query.stderr)
    );
    let text = String::from_utf8_lossy(&query.stdout);
    assert!(text.contains("plan = full scan"), "{text}");
    assert!(text.contains("operations match"));
    assert!(text.contains("GiraphJob-0/ProcessGraph-0/Superstep-0"));

    // A selective find-all genuinely engages the mission-kind index.
    let find_all = cli()
        .args([
            "archive",
            "query",
            store.to_str().unwrap(),
            "*",
            "ProcessGraph/Superstep",
            "--find-all",
            "--explain",
        ])
        .output()
        .unwrap();
    assert!(find_all.status.success());
    let text = String::from_utf8_lossy(&find_all.stdout);
    assert!(
        text.contains("plan = mission-kind index `Superstep`"),
        "{text}"
    );
    assert!(text.contains("GiraphJob-0/ProcessGraph-0/Superstep-0"));

    // A window query routes through the interval index and still matches.
    let windowed = cli()
        .args([
            "archive",
            "query",
            store.to_str().unwrap(),
            "*",
            "*[0..1000000000]",
            "--find-all",
        ])
        .output()
        .unwrap();
    assert!(windowed.status.success());
    assert!(String::from_utf8_lossy(&windowed.stdout).contains("operations match"));

    // Stat reports the index shapes.
    let stat = cli()
        .args(["archive", "stat", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(stat.status.success());
    let text = String::from_utf8_lossy(&stat.stdout);
    assert!(text.contains("1 jobs (format v3)"), "{text}");
    assert!(text.contains("mission kinds"));

    // Unknown job ids and truncated stores fail loudly.
    let miss = cli()
        .args([
            "archive",
            "query",
            store.to_str().unwrap(),
            "nope",
            "GiraphJob",
        ])
        .output()
        .unwrap();
    assert!(!miss.status.success());
    assert!(String::from_utf8_lossy(&miss.stderr).contains("no job matches"));

    let truncated = dir.join("truncated.gar");
    let bytes = fs::read(&store).unwrap();
    fs::write(&truncated, &bytes[..bytes.len() / 2]).unwrap();
    let bad = cli()
        .args(["archive", "stat", truncated.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!bad.status.success());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flags_before_positionals_parse_correctly() {
    let dir = workdir("flag-order");
    let baseline = run_job(&dir, "base", &[]);
    let same = run_job(&dir, "same", &[]);
    // The flag and its value precede the positionals.
    let out = cli()
        .args([
            "regression",
            "--tolerance",
            "0.2",
            baseline.to_str().unwrap(),
            same.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
    let _ = fs::remove_dir_all(&dir);
}
