//! Integration tests of the serving surface of `granula-cli`: the
//! `serve` daemon end-to-end over TCP (responses bit-identical to the
//! in-process `QueryEngine`), the `loadgen` benchmark client, and the
//! `archive fsck` exit-code contract CI gates on.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use granula_archive::{
    format_ids, frame_table, ArchiveStore, JobArchive, JobMeta, Query, QueryEngine, QueryMode,
    FRAME_JOB,
};
use granula_model::{Actor, Mission, OperationTree};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_granula-cli"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("granula-serve-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("tempdir");
    dir
}

/// A small synthetic archive: one job root, `supersteps` supersteps with
/// two workers each.
fn archive(job_id: &str, supersteps: i64) -> JobArchive {
    let mut t = OperationTree::new();
    let job = t
        .add_root(Actor::new("Job", "0"), Mission::new("GiraphJob", "0"))
        .unwrap();
    for s in 0..supersteps {
        let ss = t
            .add_child(
                job,
                Actor::new("Job", "0"),
                Mission::new("Superstep", s.to_string()),
            )
            .unwrap();
        for w in 0..2 {
            t.add_child(
                ss,
                Actor::new("Worker", w.to_string()),
                Mission::new("Compute", "0"),
            )
            .unwrap();
        }
    }
    JobArchive::new(
        JobMeta {
            job_id: job_id.into(),
            platform: "Giraph".into(),
            algorithm: "BFS".into(),
            dataset: "d".into(),
            nodes: 2,
            model: "m".into(),
        },
        t,
    )
}

fn save_store(path: &Path, jobs: &[(&str, i64)]) {
    let mut store = ArchiveStore::new();
    for (id, n) in jobs {
        store.add(archive(id, *n)).unwrap();
    }
    store.save(path).unwrap();
}

// ------------------------------------------------------------------ fsck

#[test]
fn fsck_exit_codes_clean_damaged_and_total_loss() {
    let dir = workdir("fsck");
    let store = dir.join("store.gar");
    save_store(&store, &[("a", 6), ("b", 6)]);

    // Clean: exit 0 and a parseable status line.
    let clean = cli()
        .args(["archive", "fsck", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(clean.status.code(), Some(0));
    let text = String::from_utf8_lossy(&clean.stdout);
    assert!(
        text.contains("fsck: status=clean"),
        "structured summary missing: {text}"
    );
    assert!(text.contains("recovered=2"));

    // Damaged: flip one byte in a job frame. Exit 2, status=corrupt.
    let bytes = fs::read(&store).unwrap();
    let victim = frame_table(&bytes)
        .unwrap()
        .into_iter()
        .find(|f| f.kind == FRAME_JOB)
        .unwrap();
    let mut corrupt = bytes.clone();
    corrupt[victim.offset + 12] ^= 0x40;
    let damaged = dir.join("damaged.gar");
    fs::write(&damaged, &corrupt).unwrap();
    let out = cli()
        .args(["archive", "fsck", damaged.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "damaged archive exits 2");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fsck: status=corrupt"), "{text}");
    assert!(
        text.contains("recovered=1"),
        "one of two jobs survives: {text}"
    );

    // --repair on the damaged file keeps the survivor and exits 0.
    let repaired = dir.join("repaired.gar");
    let fix = cli()
        .args([
            "archive",
            "fsck",
            damaged.to_str().unwrap(),
            "--repair",
            "--out",
            repaired.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(fix.status.code(), Some(0), "repair with survivors exits 0");
    assert!(repaired.exists());

    // Total loss: garbage from byte zero. Exit 3, status=lost.
    let lost = dir.join("lost.gar");
    fs::write(&lost, vec![0u8; 512]).unwrap();
    let out = cli()
        .args(["archive", "fsck", lost.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "total loss exits 3");
    assert!(String::from_utf8_lossy(&out.stdout).contains("fsck: status=lost"));

    // Repair cannot conjure data out of a total loss: still exit 3.
    let out = cli()
        .args(["archive", "fsck", lost.to_str().unwrap(), "--repair"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));

    // Operational failure (missing file): plain exit 1.
    let out = cli()
        .args(["archive", "fsck", dir.join("absent.gar").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));

    let _ = fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------- serve

/// Spawns the daemon over `fleet` on an ephemeral port and returns the
/// child plus the bound address scraped from its first stdout line.
fn spawn_daemon(fleet: &[&Path]) -> (Child, String) {
    let mut args: Vec<String> = vec!["serve".into()];
    args.extend(fleet.iter().map(|p| p.to_str().unwrap().to_string()));
    args.extend(["--addr".into(), "127.0.0.1:0".into()]);
    let mut child = cli()
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().expect("stdout piped"))
        .read_line(&mut line)
        .expect("daemon banner");
    let addr = line
        .rsplit(" on ")
        .next()
        .expect("banner names the address")
        .trim()
        .to_string();
    assert!(
        addr.starts_with("127.0.0.1:"),
        "unexpected banner line: {line}"
    );
    (child, addr)
}

/// One lockstep request/response exchange on an open connection.
fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
    stream.write_all(request.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    while !buf.contains(&b'\n') {
        let n = stream.read(&mut chunk).unwrap();
        assert!(n > 0, "daemon closed early");
        buf.extend_from_slice(&chunk[..n]);
    }
    String::from_utf8_lossy(&buf).trim_end().to_string()
}

#[test]
fn serve_daemon_responses_are_bit_identical_to_query_engine() {
    let dir = workdir("e2e");
    let f1 = dir.join("f1.gar");
    let f2 = dir.join("f2.gar");
    save_store(&f1, &[("alpha", 40), ("beta", 3)]);
    save_store(&f2, &[("gamma", 100)]);
    let (mut child, addr) = spawn_daemon(&[&f1, &f2]);

    let mut conn = TcpStream::connect(&addr).unwrap();
    assert_eq!(roundtrip(&mut conn, "PING"), "PONG");
    assert_eq!(roundtrip(&mut conn, "JOBS"), "JOBS 3 alpha beta gamma");

    // The reference: an in-process engine over the union of both files,
    // rendered through the same wire formatter.
    let mut engine = QueryEngine::new();
    for path in [&f1, &f2] {
        for a in ArchiveStore::load(path).unwrap().iter() {
            engine.add(a.clone()).unwrap();
        }
    }
    let cases = [
        ("findall", "Compute", QueryMode::FindAll),
        ("select", "GiraphJob/Superstep/Compute", QueryMode::Select),
        ("findall", "Superstep/Compute@Worker-1", QueryMode::FindAll),
        ("findall", "*-1", QueryMode::FindAll),
        ("select", "GiraphJob/Nope", QueryMode::Select),
    ];
    for job in ["alpha", "beta", "gamma"] {
        for (wire_mode, text, mode) in &cases {
            let served = roundtrip(&mut conn, &format!("Q {wire_mode} {job} {text}"));
            let want = engine
                .query(job, &Query::parse(text).unwrap(), *mode)
                .unwrap();
            let expected = format!("OK {} {}", want.len(), format_ids(&want));
            assert_eq!(served, expected, "job {job}, query `{text}`");
        }
    }

    // Errors are structured, not disconnects.
    assert_eq!(
        roundtrip(&mut conn, "Q findall missing Compute"),
        "NOJOB missing"
    );
    assert!(roundtrip(&mut conn, "Q sideways x y").starts_with("ERR "));
    assert!(roundtrip(&mut conn, "STAT").starts_with("STAT {"));

    // Pipelined batch: three requests in one write, three answers back,
    // in order.
    conn.write_all(b"Q findall alpha Compute\nPING\nQ findall gamma Compute\n")
        .unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    while buf.iter().filter(|&&b| b == b'\n').count() < 3 {
        let n = conn.read(&mut chunk).unwrap();
        assert!(n > 0);
        buf.extend_from_slice(&chunk[..n]);
    }
    let lines: Vec<&str> = std::str::from_utf8(&buf).unwrap().lines().collect();
    assert!(
        lines[0].starts_with("OK 80 "),
        "alpha has 40x2 computes: {}",
        lines[0]
    );
    assert_eq!(lines[1], "PONG");
    assert!(
        lines[2].starts_with("OK 200 "),
        "gamma has 100x2: {}",
        lines[2]
    );

    assert_eq!(roundtrip(&mut conn, "SHUTDOWN"), "BYE");
    let status = child.wait().expect("daemon exits after SHUTDOWN");
    assert!(status.success());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn loadgen_writes_the_bench_report() {
    let dir = workdir("loadgen");
    let fleet = dir.join("fleet.gar");
    save_store(&fleet, &[("a", 20), ("b", 20)]);
    let (mut child, addr) = spawn_daemon(&[&fleet]);

    let bench = dir.join("BENCH_serve.json");
    let out = cli()
        .args([
            "loadgen",
            "--addr",
            &addr,
            "--clients",
            "4",
            "--requests",
            "40",
            "--batch",
            "4",
            "--out",
            bench.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "loadgen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = fs::read_to_string(&bench).unwrap();
    for field in [
        "\"schema\"",
        "\"p50\"",
        "\"p99\"",
        "\"throughput_rps\"",
        "\"total_requests\"",
    ] {
        assert!(json.contains(field), "{field} missing from {json}");
    }
    // 4 clients x 40 requests, zero errors.
    assert!(json.contains("\"total_requests\": 160"), "{json}");
    assert!(json.contains("\"errors\": 0"), "{json}");

    let mut conn = TcpStream::connect(&addr).unwrap();
    assert_eq!(roundtrip(&mut conn, "SHUTDOWN"), "BYE");
    child.wait().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn serve_refuses_fleets_with_duplicate_job_ids() {
    let dir = workdir("dup");
    let f1 = dir.join("one.gar");
    let f2 = dir.join("two.gar");
    save_store(&f1, &[("shared", 3)]);
    save_store(&f2, &[("shared", 4)]);
    let out = cli()
        .args([
            "serve",
            f1.to_str().unwrap(),
            f2.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("shared") && err.contains("one.gar") && err.contains("two.gar"),
        "error must name the job and both files: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}
