//! Calibration: the dg1000 / DAS5 experiment configuration.
//!
//! The paper's experiments run BFS on `dg1000` — an LDBC Datagen graph with
//! 1.03 billion vertices-plus-edges — on 8 DAS5 nodes. The reproduction
//! executes the algorithms on a down-sampled Datagen-like graph
//! (100 k vertices, 900 k edges, the same 9:1 edge:vertex ratio) and scales
//! all data volumes and compute work by [`DG1000_SCALE`] so the simulated
//! platforms handle the full dataset's demand.
//!
//! Cost-model constants below are calibrated **once, jointly** so the
//! dg1000/8-node configuration lands near the paper's Figure 5 totals; every
//! other experiment (other algorithms, node counts, ablations) reuses them
//! unchanged.

use gpsim_graph::gen::GenConfig;
use gpsim_graph::Graph;
use gpsim_platforms::{Algorithm, CostModel, JobConfig};

/// Vertices of the down-sampled experiment graph.
pub const DG_VERTICES: u32 = 100_000;

/// Edges of the down-sampled experiment graph.
pub const DG_EDGES: u64 = 900_000;

/// Volume multiplier from the down-sampled graph to dg1000
/// (1.03e9 vertices+edges over 1.0e6).
pub const DG1000_SCALE: f64 = 1_030.0;

/// Seed of the experiment graph (fixed for reproducibility).
pub const DG_SEED: u64 = 1_000;

/// Vertices of the **full-scale** dg1000 graph: the real dataset volume,
/// no down-sampling (103 M vertices + 927 M edges = 1.03e9 elements, the
/// size the paper quotes). Runs at `scale_factor = 1.0`.
pub const DG_FULL_VERTICES: u32 = 103_000_000;

/// Edges of the full-scale dg1000 graph (the Datagen 9:1 edge ratio).
pub const DG_FULL_EDGES: u64 = 927_000_000;

/// Shape targets extracted from the paper's evaluation (§4, Figures 5–8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTargets {
    /// Giraph total runtime, seconds (Figure 5 axis).
    pub giraph_total_s: f64,
    /// Giraph setup / io / processing fractions (§4.2).
    pub giraph_fractions: [f64; 3],
    /// PowerGraph total runtime, seconds (Figure 5 axis).
    pub powergraph_total_s: f64,
    /// PowerGraph I/O fraction (§4.2: 94.8 %).
    pub powergraph_io_fraction: f64,
    /// PowerGraph processing fraction upper bound (§4.2: under 3.1 %).
    pub powergraph_processing_max: f64,
    /// Giraph cluster CPU peak, CPU-time/second (Figure 6 axis top).
    pub giraph_cpu_peak: f64,
    /// PowerGraph cluster CPU peak (Figure 7 axis top).
    pub powergraph_cpu_peak: f64,
}

/// The paper's numbers.
pub const PAPER: PaperTargets = PaperTargets {
    giraph_total_s: 81.59,
    giraph_fractions: [0.309, 0.433, 0.258],
    powergraph_total_s: 400.38,
    powergraph_io_fraction: 0.948,
    powergraph_processing_max: 0.031,
    giraph_cpu_peak: 190.30,
    powergraph_cpu_peak: 46.93,
};

/// Generates the experiment graph (deterministic).
pub fn dg_graph() -> Graph {
    gpsim_graph::gen::datagen_like(&GenConfig {
        vertices: DG_VERTICES,
        edges: DG_EDGES,
        alpha: 2.2,
        seed: DG_SEED,
    })
}

/// Generates the **full-scale** dg1000 graph: 103 M vertices, 927 M edges,
/// built as out-CSR only through the streaming generator (two alias-method
/// passes, no edge list, no reverse CSR — ~6 GB high-water instead of
/// ~17 GB). Takes minutes of real time and is deterministic in
/// [`DG_SEED`]. Forward-traversal algorithms only (BFS).
pub fn dg_graph_full() -> Graph {
    gpsim_graph::gen::datagen_like_full(&GenConfig {
        vertices: DG_FULL_VERTICES,
        edges: DG_FULL_EDGES,
        alpha: 2.2,
        seed: DG_SEED,
    })
}

/// A smaller variant of the experiment graph for fast tests; volumes are
/// still scaled to dg1000 via an adjusted scale factor, preserving the
/// Figure 5 shape at far lower logical cost.
pub fn dg_graph_small(vertices: u32, seed: u64) -> (Graph, f64) {
    let g = gpsim_graph::gen::datagen_like(&GenConfig {
        vertices,
        edges: vertices as u64 * 9,
        alpha: 2.2,
        seed,
    });
    let scale = 1.03e9 / (vertices as f64 * 10.0);
    (g, scale)
}

/// The calibrated Giraph cost model for the DAS5 simulation.
pub fn giraph_costs() -> CostModel {
    CostModel {
        parse_cpu_us_per_byte: 0.27,
        build_cpu_us_per_edge: 0.90,
        compute_us_per_edge: 0.90,
        compute_us_per_vertex: 0.75,
        bytes_per_message: 16.0,
        bytes_per_vertex_out: 16.0,
        bytes_per_edge_in: 20.0,
        bytes_per_edge_mem: 110.0,
        barrier_us: 180_000.0,
        worker_threads: 24,
        serialize_us_per_message: 0.45,
    }
}

/// The calibrated PowerGraph cost model for the DAS5 simulation.
pub fn powergraph_costs() -> CostModel {
    CostModel {
        parse_cpu_us_per_byte: 0.0372,
        build_cpu_us_per_edge: 0.18,
        compute_us_per_edge: 0.05,
        compute_us_per_vertex: 0.06,
        bytes_per_message: 12.0,
        bytes_per_vertex_out: 12.0,
        bytes_per_edge_in: 20.0,
        bytes_per_edge_mem: 40.0,
        barrier_us: 25_000.0,
        worker_threads: 6,
        serialize_us_per_message: 0.03,
    }
}

/// A calibrated GraphMat cost model (Table 1 extension; the paper does not
/// evaluate GraphMat, so these constants only claim plausibility: C++ SIMD
/// compute, cheap parsing, an expensive one-off format conversion).
pub fn graphmat_costs() -> CostModel {
    CostModel {
        parse_cpu_us_per_byte: 0.012,
        build_cpu_us_per_edge: 0.0, // conversion is costed by the platform knob
        compute_us_per_edge: 0.02,
        compute_us_per_vertex: 0.03,
        bytes_per_message: 8.0,
        bytes_per_vertex_out: 12.0,
        bytes_per_edge_in: 20.0,
        bytes_per_edge_mem: 24.0,
        barrier_us: 20_000.0,
        worker_threads: 24,
        serialize_us_per_message: 0.015,
    }
}

/// A calibrated GRAPE cost model (the paper does not evaluate GRAPE; the
/// constants claim plausibility: native C++ compute, but each fragment runs
/// its sequential algorithm on a single core, and boundary sync is cheap
/// compared to Giraph's ZooKeeper barrier).
pub fn grape_costs() -> CostModel {
    CostModel {
        parse_cpu_us_per_byte: 0.040,
        build_cpu_us_per_edge: 0.25,
        compute_us_per_edge: 0.018,
        compute_us_per_vertex: 0.025,
        bytes_per_message: 12.0,
        bytes_per_vertex_out: 12.0,
        bytes_per_edge_in: 20.0,
        bytes_per_edge_mem: 48.0,
        barrier_us: 30_000.0,
        worker_threads: 24,
        serialize_us_per_message: 0.04,
    }
}

/// A calibrated GraphX cost model (plausibility, not a paper target: JVM
/// compute with RDD overhead, expensive shuffle serialization, and
/// memory-hungry cached partitions).
pub fn graphx_costs() -> CostModel {
    CostModel {
        parse_cpu_us_per_byte: 0.30,
        build_cpu_us_per_edge: 1.10,
        compute_us_per_edge: 0.70,
        compute_us_per_vertex: 0.80,
        bytes_per_message: 24.0,
        bytes_per_vertex_out: 16.0,
        bytes_per_edge_in: 20.0,
        bytes_per_edge_mem: 160.0,
        barrier_us: 60_000.0,
        worker_threads: 24,
        serialize_us_per_message: 0.60,
    }
}

/// The GRAPE BFS-on-dg1000 job (choke-point matrix extension).
pub fn grape_dg1000_job() -> JobConfig {
    JobConfig::new(
        "grape-bfs-dg1000",
        "dg1000",
        Algorithm::Bfs { source: 1 },
        8,
        grape_costs(),
    )
    .with_scale(DG1000_SCALE)
}

/// The GraphX BFS-on-dg1000 job (choke-point matrix extension).
pub fn graphx_dg1000_job() -> JobConfig {
    JobConfig::new(
        "graphx-bfs-dg1000",
        "dg1000",
        Algorithm::Bfs { source: 1 },
        8,
        graphx_costs(),
    )
    .with_scale(DG1000_SCALE)
}

/// The GraphMat BFS-on-dg1000 job (extension experiment).
pub fn graphmat_dg1000_job() -> JobConfig {
    JobConfig::new(
        "graphmat-bfs-dg1000",
        "dg1000",
        Algorithm::Bfs { source: 1 },
        8,
        graphmat_costs(),
    )
    .with_scale(DG1000_SCALE)
}

/// The Giraph BFS-on-dg1000 job of the paper's experiments.
pub fn giraph_dg1000_job() -> JobConfig {
    JobConfig::new(
        "giraph-bfs-dg1000",
        "dg1000",
        Algorithm::Bfs { source: 1 },
        8,
        giraph_costs(),
    )
    .with_scale(DG1000_SCALE)
}

/// The PowerGraph BFS-on-dg1000 job of the paper's experiments.
pub fn powergraph_dg1000_job() -> JobConfig {
    JobConfig::new(
        "powergraph-bfs-dg1000",
        "dg1000",
        Algorithm::Bfs { source: 1 },
        8,
        powergraph_costs(),
    )
    .with_scale(DG1000_SCALE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_graph_matches_dg1000_ratio() {
        let (g, scale) = dg_graph_small(5_000, 3);
        assert_eq!(g.num_edges(), 45_000);
        // vertices*10 logical units * scale = 1.03e9 emulated units.
        assert!((5_000.0 * 10.0 * scale - 1.03e9).abs() < 1.0);
    }

    #[test]
    fn scale_constant_covers_dg1000() {
        assert!(((DG_VERTICES as f64 + DG_EDGES as f64) * DG1000_SCALE - 1.03e9).abs() < 1e3);
    }

    #[test]
    fn jobs_reference_the_same_dataset() {
        let g = giraph_dg1000_job();
        let p = powergraph_dg1000_job();
        assert_eq!(g.dataset, "dg1000");
        assert_eq!(p.dataset, "dg1000");
        assert_eq!(g.nodes, 8);
        assert_eq!(p.nodes, 8);
        assert_eq!(g.scale_factor, DG1000_SCALE);
    }
}
