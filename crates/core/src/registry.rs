//! The platform-diversity registry: paper Table 1.
//!
//! "Diversity in (large-scale) graph processing platforms" — 7 platforms
//! across 8 high-level characteristics. The registry is the data source of
//! the `table1` bench binary and of documentation.

use serde::{Deserialize, Serialize};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformEntry {
    /// Platform name.
    pub name: &'static str,
    /// Vendor / origin.
    pub vendor: &'static str,
    /// Version evaluated (empty = unspecified in the paper).
    pub version: &'static str,
    /// Implementation language.
    pub language: &'static str,
    /// Distributed execution supported.
    pub distributed: bool,
    /// Provisioning mechanism.
    pub provisioning: &'static str,
    /// Programming model.
    pub programming_model: &'static str,
    /// Internal data format.
    pub data_format: &'static str,
    /// File system used.
    pub file_system: &'static str,
    /// Focus of the paper's experiments (bold rows in Table 1).
    pub studied: bool,
}

/// The full Table 1 of the paper.
pub fn table1() -> Vec<PlatformEntry> {
    vec![
        PlatformEntry {
            name: "Giraph",
            vendor: "Apache",
            version: "1.2.0",
            language: "Java",
            distributed: true,
            provisioning: "Yarn",
            programming_model: "Pregel",
            data_format: "VertexStore",
            file_system: "HDFS",
            studied: true,
        },
        PlatformEntry {
            name: "PowerGraph",
            vendor: "CMU",
            version: "2.2",
            language: "C++",
            distributed: true,
            provisioning: "OpenMPI",
            programming_model: "GAS",
            data_format: "Edge-based",
            file_system: "local/shared",
            studied: true,
        },
        PlatformEntry {
            name: "GraphMat",
            vendor: "Intel",
            version: "",
            language: "C++",
            distributed: true,
            provisioning: "Intel-MPI",
            programming_model: "SpMV",
            data_format: "SpMV",
            file_system: "local/shared",
            studied: false,
        },
        PlatformEntry {
            name: "PGX.D",
            vendor: "Oracle",
            version: "",
            language: "C++",
            distributed: true,
            provisioning: "Native, Slurm",
            programming_model: "Push-pull",
            data_format: "CSR",
            file_system: "local/shared",
            studied: false,
        },
        PlatformEntry {
            name: "OpenG",
            vendor: "Georgia Tech",
            version: "",
            language: "C++/CUDA",
            distributed: false,
            provisioning: "Native",
            programming_model: "CPU/GPU",
            data_format: "CSR",
            file_system: "local",
            studied: false,
        },
        PlatformEntry {
            name: "TOTEM",
            vendor: "UBC",
            version: "",
            language: "C++/CUDA",
            distributed: false,
            provisioning: "Native",
            programming_model: "CPU+GPU",
            data_format: "CSR",
            file_system: "local",
            studied: false,
        },
        PlatformEntry {
            name: "Hadoop",
            vendor: "Apache",
            version: "",
            language: "Java",
            distributed: true,
            provisioning: "Yarn",
            programming_model: "MapRed",
            data_format: "Out-of-core",
            file_system: "HDFS",
            studied: false,
        },
    ]
}

/// Renders the registry as an aligned text table (the `table1` binary).
pub fn render_table1() -> String {
    let rows = table1();
    let headers = [
        "Name",
        "Vendor",
        "Vers.",
        "Lang.",
        "Distr.",
        "Provisioning",
        "Programming Model",
        "Data Format",
        "File Sys.",
    ];
    let cells: Vec<[String; 9]> = rows
        .iter()
        .map(|r| {
            [
                if r.studied {
                    format!("*{}", r.name)
                } else {
                    r.name.to_string()
                },
                r.vendor.to_string(),
                if r.version.is_empty() {
                    "-".to_string()
                } else {
                    r.version.to_string()
                },
                r.language.to_string(),
                if r.distributed { "yes" } else { "no" }.to_string(),
                r.provisioning.to_string(),
                r.programming_model.to_string(),
                r.data_format.to_string(),
                r.file_system.to_string(),
            ]
        })
        .collect();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &cells {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cols: &[String]| -> String {
        cols.iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &cells {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out.push_str("(* = platforms studied in the paper's experiments)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_seven_platforms() {
        assert_eq!(table1().len(), 7);
    }

    #[test]
    fn studied_platforms_are_giraph_and_powergraph() {
        let studied: Vec<&str> = table1()
            .iter()
            .filter(|p| p.studied)
            .map(|p| p.name)
            .collect();
        assert_eq!(studied, vec!["Giraph", "PowerGraph"]);
    }

    #[test]
    fn rendering_contains_all_rows_and_headers() {
        let s = render_table1();
        for p in table1() {
            assert!(s.contains(p.name), "{}", p.name);
        }
        assert!(s.contains("Programming Model"));
        assert!(s.contains("*Giraph"));
    }

    #[test]
    fn single_node_platforms_are_not_distributed() {
        for p in table1() {
            if p.name == "OpenG" || p.name == "TOTEM" {
                assert!(!p.distributed);
            }
        }
    }
}
